#include "baselines/krum.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace baffle {
namespace {

std::vector<ParamVec> cluster_with_outlier(std::size_t n, Rng& rng,
                                           std::size_t outlier_at) {
  std::vector<ParamVec> updates;
  for (std::size_t i = 0; i < n; ++i) {
    ParamVec u(4);
    for (auto& x : u) {
      x = static_cast<float>(rng.normal(i == outlier_at ? 100.0 : 0.0, 0.1));
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

TEST(Krum, SelectsFromHonestCluster) {
  Rng rng(1);
  const auto updates = cluster_with_outlier(8, rng, 3);
  const KrumAggregator krum(1);
  EXPECT_NE(krum.select(updates), 3u);
}

TEST(Krum, AggregateReturnsSelectedUpdate) {
  Rng rng(2);
  const auto updates = cluster_with_outlier(8, rng, 0);
  const KrumAggregator krum(1);
  EXPECT_EQ(krum.aggregate(updates), updates[krum.select(updates)]);
}

TEST(Krum, NeedsEnoughUpdates) {
  Rng rng(3);
  const auto updates = cluster_with_outlier(3, rng, 0);
  const KrumAggregator krum(1);  // needs n >= f + 3 = 4
  EXPECT_THROW(krum.aggregate(updates), std::invalid_argument);
}

TEST(Krum, MultiKrumAveragesBest) {
  Rng rng(4);
  const auto updates = cluster_with_outlier(8, rng, 5);
  const KrumAggregator multi(1, /*multi=*/true);
  const ParamVec agg = multi.aggregate(updates);
  // Average of honest cluster stays near 0; the 100-outlier must be
  // excluded.
  for (float x : agg) EXPECT_LT(std::abs(x), 1.0f);
}

TEST(Krum, MultiKrumExcludesBoostedUpdate) {
  Rng rng(5);
  auto updates = cluster_with_outlier(10, rng, 9);
  const KrumAggregator multi(2, true);
  const ParamVec agg = multi.aggregate(updates);
  for (float x : agg) EXPECT_LT(std::abs(x), 1.0f);
}

TEST(Krum, Names) {
  EXPECT_EQ(KrumAggregator(1).name(), "krum");
  EXPECT_EQ(KrumAggregator(1, true).name(), "multi-krum");
}

TEST(Krum, KEY_LIMITATION_SybilMajorityShiftsSelection) {
  // The failure mode the paper's related work points at: if the
  // attacker's updates form the tightest cluster (sybils submitting the
  // same vector), Krum selects a malicious update.
  Rng rng(6);
  std::vector<ParamVec> updates;
  for (int i = 0; i < 4; ++i) {
    // Honest but spread out (non-IID clients disagree).
    ParamVec u(4);
    for (auto& x : u) x = static_cast<float>(rng.normal(0.0, 5.0));
    updates.push_back(std::move(u));
  }
  for (int i = 0; i < 3; ++i) {
    // Sybils: nearly identical poisoned updates.
    ParamVec u(4, 10.0f);
    u[0] += static_cast<float>(rng.normal(0.0, 0.01));
    updates.push_back(std::move(u));
  }
  const KrumAggregator krum(1);
  EXPECT_GE(krum.select(updates), 4u);  // a sybil wins
}

}  // namespace
}  // namespace baffle

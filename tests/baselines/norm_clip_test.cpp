#include "baselines/norm_clip.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace baffle {
namespace {

TEST(NormClip, FixedBoundClipsLargeUpdate) {
  const std::vector<ParamVec> updates{{3.0f, 4.0f}};  // norm 5
  const NormClipAggregator agg(1.0);
  const ParamVec out = agg.aggregate(updates);
  EXPECT_NEAR(l2_norm(out), 1.0f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(out[0] / out[1], 0.75f, 1e-5f);
}

TEST(NormClip, SmallUpdatesUntouched) {
  const std::vector<ParamVec> updates{{0.1f, 0.0f}, {0.0f, 0.2f}};
  const NormClipAggregator agg(10.0);
  const ParamVec out = agg.aggregate(updates);
  EXPECT_NEAR(out[0], 0.05f, 1e-6f);
  EXPECT_NEAR(out[1], 0.1f, 1e-6f);
}

TEST(NormClip, AdaptiveBoundUsesMedianNorm) {
  // 4 updates of norm 1, one boosted to norm 1000: median bound = 1, so
  // the boosted update contributes at most norm 1.
  std::vector<ParamVec> updates(4, ParamVec{1.0f, 0.0f});
  updates.push_back(ParamVec{1000.0f, 0.0f});
  const NormClipAggregator agg;  // adaptive
  const ParamVec out = agg.aggregate(updates);
  EXPECT_NEAR(out[0], (4.0f + 1.0f) / 5.0f, 1e-4f);
}

TEST(NormClip, BoostedReplacementBlunted) {
  // Property the paper cares about: clipping caps the influence of a
  // γ-boosted update to the same magnitude as an honest one.
  std::vector<ParamVec> updates(9, ParamVec{0.1f});
  updates.push_back(ParamVec{100.0f});  // γ-boosted poison
  const NormClipAggregator agg;
  EXPECT_LT(agg.aggregate(updates)[0], 0.2f);
}

TEST(NormClip, EmptyThrows) {
  const NormClipAggregator agg;
  EXPECT_THROW(agg.aggregate({}), std::invalid_argument);
}

TEST(NormClip, AllZeroUpdatesSafe) {
  const std::vector<ParamVec> updates{{0.0f}, {0.0f}};
  const NormClipAggregator agg;  // adaptive bound would be 0 -> fallback
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{0.0f}));
}

}  // namespace
}  // namespace baffle

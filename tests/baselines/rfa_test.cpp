#include "baselines/rfa.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

TEST(Rfa, SinglePointIsFixedPoint) {
  const std::vector<ParamVec> updates{{3.0f, -1.0f}};
  const RfaAggregator rfa;
  const ParamVec out = rfa.aggregate(updates);
  EXPECT_NEAR(out[0], 3.0f, 1e-4f);
  EXPECT_NEAR(out[1], -1.0f, 1e-4f);
}

TEST(Rfa, SymmetricPointsGiveCentroid) {
  const std::vector<ParamVec> updates{{1.0f, 0.0f},
                                      {-1.0f, 0.0f},
                                      {0.0f, 1.0f},
                                      {0.0f, -1.0f}};
  const RfaAggregator rfa(32);
  const ParamVec out = rfa.aggregate(updates);
  EXPECT_NEAR(out[0], 0.0f, 1e-3f);
  EXPECT_NEAR(out[1], 0.0f, 1e-3f);
}

TEST(Rfa, GeometricMedianResistsOutlierBetterThanMean) {
  std::vector<ParamVec> updates(9, ParamVec{0.0f});
  updates.push_back(ParamVec{900.0f});
  const RfaAggregator rfa(64);
  const ParamVec robust = rfa.aggregate(updates);
  const ParamVec naive = mean_update(updates);  // = 90
  EXPECT_LT(std::abs(robust[0]), std::abs(naive[0]) / 10.0f);
}

TEST(Rfa, CollinearMajorityWins) {
  Rng rng(1);
  std::vector<ParamVec> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back({static_cast<float>(rng.normal(5.0, 0.1))});
  }
  updates.push_back({-1000.0f});
  const RfaAggregator rfa(64);
  EXPECT_NEAR(rfa.aggregate(updates)[0], 5.0f, 0.5f);
}

TEST(Rfa, EmptyThrows) {
  const RfaAggregator rfa;
  EXPECT_THROW(rfa.aggregate({}), std::invalid_argument);
}

TEST(Rfa, ZeroIterationsRejected) {
  EXPECT_THROW(RfaAggregator(0), std::invalid_argument);
}

TEST(Rfa, NameStable) {
  EXPECT_EQ(RfaAggregator().name(), "rfa");
}

}  // namespace
}  // namespace baffle

#include "baselines/median.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(CoordMedian, OddCountExactMedian) {
  const std::vector<ParamVec> updates{{1.0f, 10.0f},
                                      {2.0f, 20.0f},
                                      {3.0f, 30.0f}};
  const CoordinateMedianAggregator agg;
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{2.0f, 20.0f}));
}

TEST(CoordMedian, EvenCountAveragesMiddle) {
  const std::vector<ParamVec> updates{{1.0f}, {2.0f}, {3.0f}, {10.0f}};
  const CoordinateMedianAggregator agg;
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{2.5f}));
}

TEST(CoordMedian, RobustToSingleBoostedUpdate) {
  std::vector<ParamVec> updates(9, ParamVec{1.0f, -1.0f});
  updates.push_back(ParamVec{1000.0f, -1000.0f});
  const CoordinateMedianAggregator agg;
  const ParamVec out = agg.aggregate(updates);
  EXPECT_NEAR(out[0], 1.0f, 1e-6f);
  EXPECT_NEAR(out[1], -1.0f, 1e-6f);
}

TEST(CoordMedian, SingleUpdateIdentity) {
  const std::vector<ParamVec> updates{{4.0f, 5.0f}};
  const CoordinateMedianAggregator agg;
  EXPECT_EQ(agg.aggregate(updates), updates[0]);
}

TEST(CoordMedian, EmptyThrows) {
  const CoordinateMedianAggregator agg;
  EXPECT_THROW(agg.aggregate({}), std::invalid_argument);
}

TEST(CoordMedian, CoordinatesIndependent) {
  const std::vector<ParamVec> updates{{0.0f, 100.0f},
                                      {1.0f, 0.0f},
                                      {100.0f, 1.0f}};
  const CoordinateMedianAggregator agg;
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{1.0f, 1.0f}));
}

}  // namespace
}  // namespace baffle

#include "baselines/trimmed_mean.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(TrimmedMean, DropsExtremes) {
  const std::vector<ParamVec> updates{{0.0f}, {1.0f}, {2.0f}, {3.0f},
                                      {1000.0f}};
  const TrimmedMeanAggregator agg(1);
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{2.0f}));  // mean of 1,2,3
}

TEST(TrimmedMean, ZeroTrimIsPlainMean) {
  const std::vector<ParamVec> updates{{1.0f}, {3.0f}};
  const TrimmedMeanAggregator agg(0);
  EXPECT_EQ(agg.aggregate(updates), (ParamVec{2.0f}));
}

TEST(TrimmedMean, RequiresEnoughUpdates) {
  const std::vector<ParamVec> updates{{1.0f}, {2.0f}};
  const TrimmedMeanAggregator agg(1);
  EXPECT_THROW(agg.aggregate(updates), std::invalid_argument);
}

TEST(TrimmedMean, BoostedUpdateNeutralized) {
  std::vector<ParamVec> updates(8, ParamVec{1.0f});
  updates.push_back(ParamVec{-500.0f});
  updates.push_back(ParamVec{500.0f});
  const TrimmedMeanAggregator agg(1);
  EXPECT_NEAR(agg.aggregate(updates)[0], 1.0f, 1e-6f);
}

TEST(TrimmedMean, PerCoordinateTrimming) {
  const std::vector<ParamVec> updates{
      {100.0f, 0.0f}, {0.0f, 100.0f}, {1.0f, 1.0f}, {2.0f, 2.0f},
      {-50.0f, -50.0f}};
  const TrimmedMeanAggregator agg(1);
  const ParamVec out = agg.aggregate(updates);
  // Per coordinate, 100 and -50 are trimmed.
  EXPECT_NEAR(out[0], 1.0f, 1e-5f);
  EXPECT_NEAR(out[1], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace baffle

#include "baselines/flguard_lite.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

TEST(FlGuardLite, RejectsBadConfig) {
  EXPECT_THROW(FlGuardLiteAggregator(1.0), std::invalid_argument);
  EXPECT_THROW(FlGuardLiteAggregator(-0.1), std::invalid_argument);
  EXPECT_THROW(FlGuardLiteAggregator(0.25, -1.0), std::invalid_argument);
}

TEST(FlGuardLite, FilterDropsMisalignedUpdate) {
  Rng rng(1);
  std::vector<ParamVec> updates;
  for (int i = 0; i < 7; ++i) {
    ParamVec u{1.0f, 1.0f, 0.0f};
    u[0] += static_cast<float>(rng.normal(0.0, 0.05));
    updates.push_back(std::move(u));
  }
  updates.push_back({-5.0f, -5.0f, 0.0f});  // opposite direction
  const FlGuardLiteAggregator agg(0.2, 0.0);
  const auto kept = agg.filter(updates);
  EXPECT_EQ(std::count(kept.begin(), kept.end(), 7u), 0);
}

TEST(FlGuardLite, ClipsBoostedUpdate) {
  std::vector<ParamVec> updates(9, ParamVec{0.5f});
  updates.push_back(ParamVec{500.0f});
  // No filtering, no noise: pure clipping behaviour.
  const FlGuardLiteAggregator agg(0.0, 0.0);
  EXPECT_LT(agg.aggregate(updates)[0], 1.0f);
}

TEST(FlGuardLite, NoiseIsBoundedAndDeterministic) {
  const std::vector<ParamVec> updates(5, ParamVec{1.0f, 1.0f});
  const FlGuardLiteAggregator agg(0.0, 0.05, /*seed=*/42);
  const ParamVec a = agg.aggregate(updates);
  const ParamVec b = agg.aggregate(updates);
  EXPECT_EQ(a, b);  // deterministic noise
  // Mean preserved up to the small noise.
  EXPECT_NEAR(a[0], 1.0f, 0.3f);
}

TEST(FlGuardLite, EmptyThrows) {
  const FlGuardLiteAggregator agg;
  EXPECT_THROW(agg.aggregate({}), std::invalid_argument);
}

TEST(FlGuardLite, SingleUpdateSurvivesFiltering) {
  const std::vector<ParamVec> updates{{2.0f}};
  const FlGuardLiteAggregator agg(0.9, 0.0);
  EXPECT_EQ(agg.filter(updates).size(), 1u);
  EXPECT_NO_THROW(agg.aggregate(updates));
}

TEST(FlGuardLite, NameStable) {
  EXPECT_EQ(FlGuardLiteAggregator().name(), "flguard-lite");
}

}  // namespace
}  // namespace baffle

#include "baselines/foolsgold.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace baffle {
namespace {

ParamVec noisy(std::initializer_list<float> base, Rng& rng,
               double sigma = 0.05) {
  ParamVec out(base);
  for (auto& x : out) x += static_cast<float>(rng.normal(0.0, sigma));
  return out;
}

TEST(FoolsGold, DownweightsSybilGroup) {
  Rng rng(1);
  FoolsGold fg;
  // 5 honest clients pushing diverse directions, 3 sybils pushing the
  // same direction. Accumulate over several rounds so histories align.
  std::vector<std::size_t> ids{0, 1, 2, 3, 4, 10, 11, 12};
  for (int round = 0; round < 5; ++round) {
    std::vector<ParamVec> updates;
    updates.push_back(noisy({1.0f, 0.0f, 0.0f, 0.0f}, rng));
    updates.push_back(noisy({0.0f, 1.0f, 0.0f, 0.0f}, rng));
    updates.push_back(noisy({0.0f, 0.0f, 1.0f, 0.0f}, rng));
    updates.push_back(noisy({0.0f, 0.0f, 0.0f, 1.0f}, rng));
    updates.push_back(noisy({-1.0f, 0.0f, 0.0f, 0.0f}, rng));
    for (int s = 0; s < 3; ++s) {
      updates.push_back(noisy({5.0f, 5.0f, 5.0f, 5.0f}, rng, 0.01));
    }
    fg.aggregate(updates, ids);
  }
  const auto& w = fg.last_weights();
  ASSERT_EQ(w.size(), 8u);
  double honest_avg = 0.0, sybil_avg = 0.0;
  for (int i = 0; i < 5; ++i) honest_avg += w[i] / 5.0;
  for (int i = 5; i < 8; ++i) sybil_avg += w[i] / 3.0;
  EXPECT_GT(honest_avg, 5.0 * std::max(sybil_avg, 1e-3));
}

TEST(FoolsGold, SingleAttackerNotPenalized) {
  // The paper's point: FoolsGold needs a sybil *group*; one attacker
  // among diverse clients keeps full weight.
  Rng rng(2);
  FoolsGold fg;
  std::vector<std::size_t> ids{0, 1, 2, 3};
  for (int round = 0; round < 4; ++round) {
    std::vector<ParamVec> updates;
    updates.push_back(noisy({1.0f, 0.0f, 0.0f, 0.0f}, rng));
    updates.push_back(noisy({0.0f, 1.0f, 0.0f, 0.0f}, rng));
    updates.push_back(noisy({0.0f, 0.0f, 1.0f, 0.0f}, rng));
    // Lone attacker pushing its own direction — no sybil group whose
    // mutual similarity FoolsGold could latch onto.
    updates.push_back(noisy({0.0f, 0.0f, 0.0f, 9.0f}, rng));
    fg.aggregate(updates, ids);
  }
  EXPECT_GT(fg.last_weights()[3], 0.5);
}

TEST(FoolsGold, OutputHasUpdateDimension) {
  FoolsGold fg;
  const std::vector<ParamVec> updates{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const ParamVec out = fg.aggregate(updates, {0, 1});
  EXPECT_EQ(out.size(), 2u);
}

TEST(FoolsGold, RejectsBadInputs) {
  FoolsGold fg;
  EXPECT_THROW(fg.aggregate({}, {}), std::invalid_argument);
  EXPECT_THROW(fg.aggregate({{1.0f}}, {0, 1}), std::invalid_argument);
}

TEST(FoolsGold, MemoryPersistsAcrossRounds) {
  Rng rng(3);
  FoolsGold fg;
  const std::vector<std::size_t> ids{0, 1};
  fg.aggregate({noisy({1, 0}, rng), noisy({0, 1}, rng)}, ids);
  fg.aggregate({noisy({1, 0}, rng), noisy({0, 1}, rng)}, ids);
  // Orthogonal histories: both keep near-full weight.
  for (double w : fg.last_weights()) EXPECT_GT(w, 0.5);
}

}  // namespace
}  // namespace baffle

// Integration tests for the harness extensions: trigger backdoors, DBA,
// separate validating sets, and validator dropout.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig base() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.train_per_class_override = 500;  // faster
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 5;
  cfg.feedback.validator.lookback = 12;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.rounds = 45;
  cfg.defense_start = 16;
  cfg.track_accuracy = false;
  return cfg;
}

TEST(TriggerBackdoor, UndefendedDbaImplantsBackdoor) {
  ExperimentConfig cfg = base();
  cfg.use_dba = true;
  cfg.dba_colluders = 4;
  cfg.scenario.backdoor_override = BackdoorKind::kTrigger;
  cfg.defense_enabled = false;
  cfg.track_accuracy = true;
  const auto result = run_experiment(cfg, 11);
  EXPECT_GT(result.final_backdoor_accuracy, 0.4);
}

TEST(TriggerBackdoor, BaffleDetectsDbaInjections) {
  ExperimentConfig cfg = base();
  cfg.use_dba = true;
  cfg.dba_colluders = 4;
  cfg.scenario.backdoor_override = BackdoorKind::kTrigger;
  const auto result = run_experiment(cfg, 12);
  EXPECT_EQ(result.rates.poisoned_rounds, 3u);
  EXPECT_EQ(result.rates.false_negatives, 0u);
}

TEST(TriggerBackdoor, DbaRequiresTriggerKind) {
  ExperimentConfig cfg = base();
  cfg.use_dba = true;  // semantic backdoor preset: must throw
  EXPECT_THROW(run_experiment(cfg, 13), std::invalid_argument);
}

TEST(TriggerBackdoor, DbaCannotBeAdaptive) {
  ExperimentConfig cfg = base();
  cfg.use_dba = true;
  cfg.scenario.backdoor_override = BackdoorKind::kTrigger;
  cfg.schedule.adaptive = true;
  EXPECT_THROW(run_experiment(cfg, 14), std::invalid_argument);
}

TEST(SeparateValidators, DetectionStillWorks) {
  ExperimentConfig cfg = base();
  cfg.separate_validators = true;
  const auto result = run_experiment(cfg, 15);
  EXPECT_EQ(result.rates.poisoned_rounds, 3u);
  EXPECT_EQ(result.rates.false_negatives, 0u);
}

TEST(SeparateValidators, ChangesValidatingSet) {
  // With independent validators, the attacker (always a contributor in
  // poison rounds) is usually NOT among the validators — so the
  // colluding-vote manipulation has no effect most rounds. Just check
  // the run completes and the verdicts differ from the merged setup for
  // at least one round.
  ExperimentConfig merged = base();
  ExperimentConfig separate = base();
  separate.separate_validators = true;
  const auto a = run_experiment(merged, 16);
  const auto b = run_experiment(separate, 16);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
}

TEST(ValidatorDropout, DefenseDegradesGracefully) {
  ExperimentConfig cfg = base();
  cfg.validator_dropout = 0.3;
  const auto result = run_experiment(cfg, 17);
  // With 30% dropout, ~7 of 10 validators respond; q = 5 of those still
  // rejects blatant replacement most of the time.
  EXPECT_LE(result.rates.false_negatives, 1u);
}

TEST(ValidatorDropout, FullDropoutAcceptsByDefault) {
  ExperimentConfig cfg = base();
  cfg.feedback.mode = DefenseMode::kClientsOnly;
  cfg.validator_dropout = 1.0;
  const auto result = run_experiment(cfg, 18);
  // Nobody votes: the server accepts by default (footnote 1), so every
  // injection slips through and no clean round is rejected.
  EXPECT_EQ(result.rates.false_negatives, result.rates.poisoned_rounds);
  EXPECT_EQ(result.rates.false_positives, 0u);
}

TEST(BackdoorKindName, AllNamed) {
  EXPECT_STREQ(backdoor_kind_name(BackdoorKind::kSemantic), "semantic");
  EXPECT_STREQ(backdoor_kind_name(BackdoorKind::kLabelFlip), "label-flip");
  EXPECT_STREQ(backdoor_kind_name(BackdoorKind::kTrigger), "trigger-patch");
}

}  // namespace
}  // namespace baffle

// Scaled-down Figure 4 semantics: from-scratch FL with early poisoning.
// Checks the two claims the figure makes — (1) backdoors injected into
// an immature model are short-lived, and (2) enabling the defense late
// still catches subsequent injections even though the early ones were
// never detected.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig early_config(bool defended) {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.train_per_class_override = 500;
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 5;
  cfg.feedback.validator.lookback = 15;
  cfg.stable_start = false;  // from scratch
  cfg.rounds = 160;
  cfg.defense_start = 100;
  cfg.defense_enabled = defended;
  // Early injections at 20 and 50 (defense off), then every 10 rounds
  // from 110 to 150.
  cfg.schedule.poison_rounds = {20, 50, 110, 120, 130, 140, 150};
  return cfg;
}

double backdoor_at(const ExperimentResult& r, std::size_t round) {
  for (const auto& rec : r.rounds) {
    if (rec.round == round) return rec.backdoor_accuracy;
  }
  ADD_FAILURE() << "round " << round << " not recorded";
  return 0.0;
}

class EarlyScenario : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    undefended_ = new ExperimentResult(
        run_experiment(early_config(false), 77));
    defended_ = new ExperimentResult(run_experiment(early_config(true), 77));
  }
  static void TearDownTestSuite() {
    delete undefended_;
    delete defended_;
  }
  static ExperimentResult* undefended_;
  static ExperimentResult* defended_;
};

ExperimentResult* EarlyScenario::undefended_ = nullptr;
ExperimentResult* EarlyScenario::defended_ = nullptr;

TEST_F(EarlyScenario, EarlyBackdoorIsShortLived) {
  // Injection at round 20 spikes the backdoor accuracy...
  EXPECT_GT(backdoor_at(*undefended_, 20), 0.5);
  // ...but the immature model forgets it within ~15 rounds.
  EXPECT_LT(backdoor_at(*undefended_, 35),
            backdoor_at(*undefended_, 20) - 0.2);
}

TEST_F(EarlyScenario, UndefendedLateInjectionsPersist) {
  // During the late injection window the backdoor stays implanted.
  EXPECT_GT(backdoor_at(*undefended_, 145), 0.5);
}

TEST_F(EarlyScenario, DefenseEnabledLateStillDetects) {
  std::size_t late_injections = 0, rejected = 0;
  for (const auto& rec : defended_->rounds) {
    if (rec.poisoned && rec.defense_active) {
      ++late_injections;
      if (rec.rejected) ++rejected;
    }
  }
  EXPECT_EQ(late_injections, 5u);
  EXPECT_GE(rejected, 4u);  // paper: nearly all detected
}

TEST_F(EarlyScenario, DefendedModelEndsClean) {
  EXPECT_LT(defended_->final_backdoor_accuracy, 0.3);
  EXPECT_GT(defended_->final_main_accuracy, 0.7);
}

TEST_F(EarlyScenario, EarlyInjectionsWereNotDetectable) {
  for (const auto& rec : defended_->rounds) {
    if (rec.round <= 50 && rec.poisoned) {
      EXPECT_FALSE(rec.defense_active) << "round " << rec.round;
      EXPECT_FALSE(rec.rejected);
    }
  }
}

TEST_F(EarlyScenario, FromScratchTrainingConverges) {
  // The global model actually learns under federated training alone.
  EXPECT_GT(undefended_->rounds.back().main_accuracy, 0.7);
}

}  // namespace
}  // namespace baffle

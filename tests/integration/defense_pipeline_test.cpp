// Integration of FlServer + BaffleDefense without the experiment
// harness: drives the propose/evaluate/commit protocol by hand and
// checks the contracts between the pieces.

#include <gtest/gtest.h>

#include "core/defense.hpp"
#include "data/partition.hpp"
#include "data/synth.hpp"

namespace baffle {
namespace {

struct Pipeline {
  SynthTask task;
  std::vector<FlClient> clients;
  Dataset server_holdout;
  MlpConfig arch;
  FlServer server;
  BaffleDefense defense;
  HonestUpdateProvider provider;
  Rng rng{555};

  static SynthTask make_task() {
    Rng rng(50);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 150;
    cfg.test_per_class = 30;
    return make_synth_task(cfg, rng);
  }

  static FlConfig fl_config() {
    FlConfig cfg;
    cfg.total_clients = 30;
    cfg.clients_per_round = 6;
    cfg.global_lr = 1.0;
    cfg.secure_aggregation = true;
    return cfg;
  }

  static FeedbackConfig feedback_config() {
    FeedbackConfig cfg;
    cfg.mode = DefenseMode::kClientsAndServer;
    cfg.quorum = 3;
    cfg.validator.lookback = 10;
    return cfg;
  }

  static Dataset make_holdout(const SynthTask& task) {
    Rng setup(51);
    return split_client_server(task.train, 0.1, setup).server_holdout;
  }

  Pipeline()
      : task(make_task()),
        server_holdout(make_holdout(task)),
        arch{{task.config.dim, 32, task.config.num_classes},
             Activation::kRelu},
        server(arch, fl_config(), 99),
        defense(arch, feedback_config(), server_holdout),
        provider(&clients, fl_config().local_train) {
    Rng setup(51);
    auto split = split_client_server(task.train, 0.1, setup);
    auto shards = dirichlet_partition(split.client_pool, 30, 0.9, setup);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      clients.emplace_back(i, shards[i]);
    }

    // Pre-train and seed history.
    TrainConfig pre;
    pre.epochs = 12;
    pre.batch_size = 64;
    pre.sgd.learning_rate = 0.05f;
    Rng pre_rng(52);
    train_sgd(server.global_model(), task.train.features(),
              task.train.labels(), pre, pre_rng);
    defense.on_commit(server.version(), server.global_model().parameters());
  }

  /// Run one honest round through the full protocol; returns decision.
  FeedbackDecision honest_round() {
    const auto proposal = server.propose_round(provider, rng);
    FeedbackDecision decision;
    if (defense.ready()) {
      decision =
          defense.evaluate(proposal.candidate_params, proposal.contributors,
                           clients, {}, VoteStrategy::kHonest);
    }
    if (decision.reject) {
      server.discard(proposal);
      defense.on_reject();
    } else {
      server.commit(proposal);
      defense.on_commit(server.version(), proposal.candidate_params);
    }
    return decision;
  }
};

TEST(DefensePipeline, HistoryGrowsOnlyOnCommit) {
  Pipeline p;
  const std::size_t before = p.defense.history().size();
  std::size_t commits = 0;
  for (int i = 0; i < 8; ++i) {
    const auto d = p.honest_round();
    if (!d.reject) ++commits;
  }
  EXPECT_EQ(p.defense.history().size(), before + commits);
}

TEST(DefensePipeline, BecomesReadyAfterWarmup) {
  Pipeline p;
  EXPECT_FALSE(p.defense.ready());
  for (int i = 0; i < 12; ++i) p.honest_round();
  EXPECT_TRUE(p.defense.ready());
}

TEST(DefensePipeline, HonestRoundsMostlyAccepted) {
  Pipeline p;
  for (int i = 0; i < 12; ++i) p.honest_round();  // warmup
  std::size_t rejects = 0;
  const int rounds = 10;
  for (int i = 0; i < rounds; ++i) {
    if (p.honest_round().reject) ++rejects;
  }
  EXPECT_LE(rejects, 3u);
}

TEST(DefensePipeline, WindowNeverExceedsLookbackPlusOne) {
  Pipeline p;
  for (int i = 0; i < 15; ++i) {
    p.honest_round();
    EXPECT_LE(p.defense.current_window().size(), 11u);
  }
}

TEST(DefensePipeline, VersionsInWindowAreStrictlyIncreasing) {
  Pipeline p;
  for (int i = 0; i < 6; ++i) p.honest_round();
  const auto window = p.defense.current_window();
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_GT(window[i]->version, window[i - 1]->version);
  }
}

}  // namespace
}  // namespace baffle

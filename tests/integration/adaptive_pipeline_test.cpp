// Adaptive (defense-aware) attack end to end — Table II / Figure 5
// machinery: the attacker self-validates with the defense's own
// algorithm and only submits injections that pass its own check.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig adaptive_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 60;
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 5;
  cfg.feedback.validator.lookback = 15;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.schedule.adaptive = true;
  cfg.rounds = 45;
  cfg.defense_start = 18;
  cfg.track_accuracy = false;
  return cfg;
}

TEST(AdaptivePipeline, InjectionsAreSelfPassedOnly) {
  const auto result = run_experiment(adaptive_config(), 31);
  // Every recorded injection passed the attacker's own check; rounds the
  // attacker sat out are counted separately.
  EXPECT_EQ(result.injections.size() + result.adaptive_skipped, 3u);
  for (const auto& inj : result.injections) {
    EXPECT_TRUE(inj.adaptive);
    EXPECT_GT(inj.alpha, 0.0);
    EXPECT_LE(inj.alpha, 1.0);
  }
}

TEST(AdaptivePipeline, MostAdaptiveInjectionsStillDetected) {
  // The paper's headline adaptive result: data the attacker cannot see
  // makes its self-check unreliable; detection stays high.
  std::size_t injections = 0, detected = 0;
  for (std::uint64_t seed = 41; seed < 44; ++seed) {
    const auto result = run_experiment(adaptive_config(), seed);
    for (const auto& inj : result.injections) {
      ++injections;
      if (inj.rejected) ++detected;
    }
  }
  if (injections > 0) {
    EXPECT_GE(static_cast<double>(detected) / injections, 0.6);
  }
}

TEST(AdaptivePipeline, VoteCountsRecordedPerInjection) {
  const auto result = run_experiment(adaptive_config(), 32);
  for (const auto& inj : result.injections) {
    EXPECT_GT(inj.total_voters, 0u);
    EXPECT_LE(inj.reject_votes, inj.total_voters);
  }
}

TEST(AdaptivePipeline, NonAdaptiveAttackerNeverSkips) {
  ExperimentConfig cfg = adaptive_config();
  cfg.schedule.adaptive = false;
  const auto result = run_experiment(cfg, 33);
  EXPECT_EQ(result.adaptive_skipped, 0u);
  EXPECT_EQ(result.injections.size(), 3u);
}

}  // namespace
}  // namespace baffle

// Full-pipeline integration tests through the experiment harness: the
// paper's stable-model scenario end to end, in both defended and
// undefended form.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 60;  // smaller population: faster tests
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 5;
  cfg.feedback.validator.lookback = 15;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.rounds = 45;
  cfg.defense_start = 18;
  return cfg;
}

TEST(EndToEnd, DefendedRunDetectsAllInjections) {
  const auto result = run_experiment(base_config(), 1);
  EXPECT_EQ(result.rates.poisoned_rounds, 3u);
  EXPECT_DOUBLE_EQ(result.rates.fn_rate, 0.0);
  EXPECT_LT(result.rates.fp_rate, 0.25);
  // Backdoor never sticks: final backdoor accuracy stays low.
  EXPECT_LT(result.final_backdoor_accuracy, 0.3);
  EXPECT_GT(result.final_main_accuracy, 0.8);
}

TEST(EndToEnd, UndefendedRunGetsBackdoored) {
  ExperimentConfig cfg = base_config();
  cfg.defense_enabled = false;
  const auto result = run_experiment(cfg, 1);
  EXPECT_GT(result.final_backdoor_accuracy, 0.5);
  // No defense active -> no rounds counted.
  EXPECT_EQ(result.rates.clean_rounds + result.rates.poisoned_rounds, 0u);
}

TEST(EndToEnd, RejectedRoundsRollBackTheModel) {
  const auto result = run_experiment(base_config(), 2);
  for (const auto& r : result.rounds) {
    if (r.poisoned && r.rejected) {
      // Accuracy must not collapse in the round of a rejected injection.
      EXPECT_GT(r.main_accuracy, 0.7) << "round " << r.round;
      EXPECT_LT(r.backdoor_accuracy, 0.3) << "round " << r.round;
    }
  }
}

TEST(EndToEnd, InjectionRecordsMatchSchedule) {
  const auto result = run_experiment(base_config(), 3);
  ASSERT_EQ(result.injections.size(), 3u);
  EXPECT_EQ(result.injections[0].round, 30u);
  EXPECT_EQ(result.injections[1].round, 35u);
  EXPECT_EQ(result.injections[2].round, 40u);
  for (const auto& inj : result.injections) {
    EXPECT_FALSE(inj.adaptive);
    EXPECT_DOUBLE_EQ(inj.alpha, 1.0);
  }
}

TEST(EndToEnd, DeterministicAcrossIdenticalSeeds) {
  const auto a = run_experiment(base_config(), 7);
  const auto b = run_experiment(base_config(), 7);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].rejected, b.rounds[i].rejected);
    EXPECT_DOUBLE_EQ(a.rounds[i].main_accuracy, b.rounds[i].main_accuracy);
  }
}

TEST(EndToEnd, RepeatedRunsAggregateRates) {
  ExperimentConfig cfg = base_config();
  cfg.track_accuracy = false;
  const auto rep = run_repeated(cfg, 2, 100);
  ASSERT_EQ(rep.runs.size(), 2u);
  EXPECT_GE(rep.fp.mean, 0.0);
  EXPECT_LE(rep.fp.mean, 1.0);
  EXPECT_LE(rep.fn.mean, 0.35);
}

TEST(EndToEnd, RepeatedRejectsZeroReps) {
  EXPECT_THROW(run_repeated(base_config(), 0, 1), std::invalid_argument);
}

TEST(EndToEnd, DefenseInactiveBeforeStartRound) {
  const auto result = run_experiment(base_config(), 4);
  for (const auto& r : result.rounds) {
    if (r.round < 18) {
      EXPECT_FALSE(r.defense_active);
    }
  }
}

}  // namespace
}  // namespace baffle

// Secure aggregation inside the full FL round: the compatibility claim
// of the paper is that BaFFLe consumes only the aggregated global model,
// so enabling/disabling secure aggregation must not change the outcome
// beyond fixed-point quantization noise.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig config(bool secure) {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.secure_aggregation = secure;
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 4;
  cfg.feedback.validator.lookback = 10;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.rounds = 42;
  cfg.defense_start = 12;
  cfg.track_accuracy = false;
  return cfg;
}

TEST(SecureAggPipeline, DefenseDecisionsUnchangedBySecureAggregation) {
  // Same seed, secure aggregation on vs off: the defense sees (up to
  // 2^-24 quantization) the same global models, so every round-level
  // verdict must coincide. This is the paper's central compatibility
  // claim, exercised end to end.
  const auto secure = run_experiment(config(true), 21);
  const auto plain = run_experiment(config(false), 21);
  ASSERT_EQ(secure.rounds.size(), plain.rounds.size());
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < secure.rounds.size(); ++i) {
    if (secure.rounds[i].rejected != plain.rounds[i].rejected) {
      ++disagreements;
    }
  }
  EXPECT_EQ(disagreements, 0u);
  EXPECT_DOUBLE_EQ(secure.rates.fn_rate, plain.rates.fn_rate);
}

TEST(SecureAggPipeline, SecureRunIsDeterministic) {
  const auto a = run_experiment(config(true), 22);
  const auto b = run_experiment(config(true), 22);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].rejected, b.rounds[i].rejected);
  }
}

TEST(SecureAggPipeline, AttackDetectedUnderSecureAggregation) {
  const auto result = run_experiment(config(true), 23);
  EXPECT_EQ(result.rates.poisoned_rounds, 3u);
  EXPECT_EQ(result.rates.false_negatives, 0u);
}

}  // namespace
}  // namespace baffle

#pragma once
// Fixture copy of the sanctioned raw-sync sink: util/sync.hpp is the
// one file allowed to touch the naked primitives (it wraps them in the
// annotated capability types). The linter must NOT flag this file.
#include <mutex>

namespace fixture {

class Mutex {
 public:
  void lock() { m_.lock(); }
  void unlock() { m_.unlock(); }

 private:
  std::mutex m_;
};

}  // namespace fixture

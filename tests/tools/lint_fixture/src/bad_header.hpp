#pragma once
// Seeded violation: not self-contained (rule header-hygiene) — uses
// std::vector without including <vector>.

namespace fixture {
inline std::vector<int> needs_vector() { return {}; }
}  // namespace fixture

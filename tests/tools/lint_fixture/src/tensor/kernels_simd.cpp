#include "tensor/kernels.hpp"

namespace fixture {
void frob_rows(int) {}
}  // namespace fixture

#pragma once
// Fixture dispatch table (rule dispatch-table): `frob_rows` is fully
// wired (both arms + parity coverage); `zorp` is the seeded violation —
// it exists only in the scalar arm and has no parity test.

namespace fixture {

struct KernelTable {
  void (*frob_rows)(int);
  double (*zorp)(int);
};

}  // namespace fixture

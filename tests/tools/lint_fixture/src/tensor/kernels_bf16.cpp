#include "tensor/kernels.hpp"
// Fixture reduced-precision TU: present so the dispatch-table rule can
// run (a missing file is its own finding); this fixture table has no
// reduced-precision members, so nothing is implemented here.

namespace fixture {}  // namespace fixture

#include "tensor/kernels.hpp"

namespace fixture {
void frob_rows(int) {}
double zorp(int) { return 0.0; }
}  // namespace fixture

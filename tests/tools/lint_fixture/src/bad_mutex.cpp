// Seeded raw-sync violation: locks with the naked standard-library
// primitives instead of the annotated wrappers in util/sync.hpp.
#include <mutex>

namespace fixture {

std::mutex g_mutex;
int g_value = 0;

void bump() {
  std::lock_guard<std::mutex> lock(g_mutex);
  ++g_value;
}

}  // namespace fixture

// Seeded violation: libc randomness (rule no-libc-random).
#include <cstdlib>

namespace fixture {
int unseeded_entropy() { return std::rand(); }
}  // namespace fixture

// Seeded violation: naked new/delete (rule no-naked-new).
namespace fixture {
int* leak_prone() {
  int* p = new int(42);
  return p;
}
}  // namespace fixture

// Seeded violation: console I/O in a library TU (rule no-iostream).
#include <iostream>

namespace fixture {
void shout() { std::cout << "library code must not own stdout\n"; }
}  // namespace fixture

// Fixture parity suite: covers frob_rows only — the second table entry
// is the seeded dispatch-table violation.
namespace fixture {
void parity_frob_rows() { /* frob_rows */ }
}  // namespace fixture

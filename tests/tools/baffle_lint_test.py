#!/usr/bin/env python3
"""Self-test for tools/baffle_lint.py.

Runs the linter over the committed fixture tree (one seeded violation
per rule) and asserts that it exits non-zero and names every offending
file with the right rule id. Run directly or via ctest:

    python3 tests/tools/baffle_lint_test.py
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "baffle_lint.py")
FIXTURE = os.path.join(HERE, "lint_fixture")

EXPECTED = [
    # (rule, path substring that must appear on the same line)
    ("no-iostream", "bad_iostream.cpp"),
    ("no-naked-new", "bad_new.cpp"),
    ("no-libc-random", "bad_rand.cpp"),
    ("raw-sync", "bad_mutex.cpp"),
    ("header-hygiene", "bad_header.hpp"),
    ("dispatch-table", "kernels_simd.cpp"),   # zorp: no SIMD impl
    ("dispatch-table", "simd_parity_test.cpp"),  # zorp: no parity test
]

CLEAN = [
    # (rule, path substring) pairs that must NOT be reported
    ("no-iostream", "kernels_scalar.cpp"),
    ("dispatch-table", "frob_rows"),
    # The sanctioned wrapper layer is exempt (matched on the full
    # fixture path: the rule's advice text also mentions sync.hpp).
    ("raw-sync", os.path.join("src", "util", "sync.hpp")),
]


def main() -> int:
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", FIXTURE],
        capture_output=True, text=True)
    failures = []

    if proc.returncode != 1:
        failures.append(
            f"expected exit 1 on the seeded fixture, got {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")

    lines = proc.stdout.splitlines()
    for rule, path in EXPECTED:
        if not any(f"[{rule}]" in ln and path in ln for ln in lines):
            failures.append(
                f"missing finding: rule [{rule}] naming {path}")
    for rule, path in CLEAN:
        if any(f"[{rule}]" in ln and path in ln for ln in lines):
            failures.append(
                f"false positive: rule [{rule}] flagged {path}")

    if failures:
        print("baffle_lint_test: FAIL")
        for f in failures:
            print("  -", f)
        print("linter output was:")
        print(proc.stdout)
        return 1
    print(f"baffle_lint_test: PASS ({len(EXPECTED)} seeded findings "
          "detected, no false positives)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

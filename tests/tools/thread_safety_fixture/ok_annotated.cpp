// Positive control for the thread-safety gate: exercises every wrapper
// in util/sync.hpp the way the codebase does — guarded fields accessed
// under scoped locks, a REQUIRES helper called with the lock held, a
// condition-variable wait in the analysis-friendly shape, and shared
// locking for readers. Must compile clean under
//   -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
// or the gate itself is broken (the bad_*.cpp rejections would be
// meaningless).
#include <vector>

#include "util/sync.hpp"

namespace fixture {

class BoundedQueue {
 public:
  void push(int v) {
    baffle::MutexLock lock(mu_);
    items_.push_back(v);
    cv_.notify_one();
  }

  int pop_blocking() {
    baffle::MutexLock lock(mu_);
    while (items_.empty()) cv_.wait(mu_);
    return take_front();
  }

  bool empty() const {
    baffle::MutexLock lock(mu_);
    return items_.empty();
  }

 private:
  int take_front() BAFFLE_REQUIRES(mu_) {
    const int v = items_.front();
    items_.erase(items_.begin());
    return v;
  }

  mutable baffle::Mutex mu_;
  baffle::CondVar cv_;
  std::vector<int> items_ BAFFLE_GUARDED_BY(mu_);
};

class Snapshot {
 public:
  void set(int v) {
    baffle::WriterLock lock(mu_);
    value_ = v;
  }

  int get() const {
    baffle::ReaderLock lock(mu_);
    return value_;
  }

 private:
  mutable baffle::SharedMutex mu_;
  int value_ BAFFLE_GUARDED_BY(mu_) = 0;
};

int drive() {
  BoundedQueue q;
  q.push(1);
  Snapshot s;
  s.set(2);
  return q.pop_blocking() + s.get() + static_cast<int>(q.empty());
}

}  // namespace fixture

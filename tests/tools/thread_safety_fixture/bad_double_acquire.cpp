// Negative fixture: acquires the same mutex twice in one scope — the
// self-deadlock a public method calling another public method would
// hit. The gate must reject this translation unit.
// expect-error: already held
#include "util/sync.hpp"

namespace fixture {

class Widget {
 public:
  void poke() {
    baffle::MutexLock lock(mu_);
    baffle::MutexLock again(mu_);  // deadlock: mu_ is not recursive
    ++value_;
  }

 private:
  baffle::Mutex mu_;
  int value_ BAFFLE_GUARDED_BY(mu_) = 0;
};

void drive() {
  Widget w;
  w.poke();
}

}  // namespace fixture

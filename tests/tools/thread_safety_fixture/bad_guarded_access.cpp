// Negative fixture: writes a BAFFLE_GUARDED_BY field without holding
// its mutex. The gate must reject this translation unit.
// expect-error: requires holding mutex
#include "util/sync.hpp"

namespace fixture {

class Counter {
 public:
  void bump_unlocked() {
    ++value_;  // guarded by mu_, but mu_ is not held here
  }

 private:
  baffle::Mutex mu_;
  int value_ BAFFLE_GUARDED_BY(mu_) = 0;
};

void drive() {
  Counter c;
  c.bump_unlocked();
}

}  // namespace fixture

// Negative fixture: calls a BAFFLE_REQUIRES helper without holding the
// lock it demands. The gate must reject this translation unit.
// expect-error: requires holding mutex
#include <vector>

#include "util/sync.hpp"

namespace fixture {

class Buffer {
 public:
  void flush_unlocked() {
    drain();  // drain() requires mu_, which is not held here
  }

 private:
  void drain() BAFFLE_REQUIRES(mu_) { items_.clear(); }

  baffle::Mutex mu_;
  std::vector<int> items_ BAFFLE_GUARDED_BY(mu_);
};

void drive() {
  Buffer b;
  b.flush_unlocked();
}

}  // namespace fixture

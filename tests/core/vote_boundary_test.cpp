#include <gtest/gtest.h>

#include <stdexcept>

#include "core/feedback_loop.hpp"

// Protocol-boundary tests: votes decoded off the wire must be rejected
// before they reach the quorum tally if they carry duplicate voter ids,
// out-of-range vote values, or a votes/ids length mismatch. In-process
// callers construct votes themselves; transport-fed callers go through
// validate_decoded_votes first.

namespace baffle {
namespace {

TEST(VoteBoundary, WellFormedVotesPass) {
  EXPECT_NO_THROW(validate_decoded_votes({1, 0, 1}, {3, 7, 9}));
  EXPECT_NO_THROW(validate_decoded_votes({}, {}));
}

TEST(VoteBoundary, LengthMismatchRejected) {
  EXPECT_THROW(validate_decoded_votes({1, 0}, {3}), std::invalid_argument);
  EXPECT_THROW(validate_decoded_votes({1}, {3, 4}), std::invalid_argument);
  EXPECT_THROW(validate_decoded_votes({}, {3}), std::invalid_argument);
}

TEST(VoteBoundary, VotesOutsideBinaryRangeRejected) {
  EXPECT_THROW(validate_decoded_votes({2}, {0}), std::invalid_argument);
  EXPECT_THROW(validate_decoded_votes({-1}, {0}), std::invalid_argument);
  EXPECT_THROW(validate_decoded_votes({1, 0, 17}, {0, 1, 2}),
               std::invalid_argument);
}

TEST(VoteBoundary, DuplicateVoterIdsRejected) {
  EXPECT_THROW(validate_decoded_votes({1, 0}, {5, 5}), std::invalid_argument);
  EXPECT_THROW(validate_decoded_votes({0, 1, 0}, {2, 9, 2}),
               std::invalid_argument);
}

// A ballot-stuffing replay: the same client id voting "reject" twice
// must not be able to reach the quorum. With the guard in place the
// forged tally never happens; the legitimate tally below shows the
// quorum would have flipped had the duplicate been admitted.
TEST(VoteBoundary, ReplayedRejectVoteCannotFlipQuorum) {
  const std::vector<int> forged{1, 1, 0};
  const std::vector<std::size_t> forged_ids{5, 5, 6};
  EXPECT_THROW(validate_decoded_votes(forged, forged_ids),
               std::invalid_argument);

  const std::vector<int> honest{1, 0};
  const std::vector<std::size_t> honest_ids{5, 6};
  validate_decoded_votes(honest, honest_ids);
  const auto decision = decide_quorum(DefenseMode::kClientsOnly,
                                      /*quorum=*/2, honest, honest_ids,
                                      /*server_vote=*/0);
  EXPECT_FALSE(decision.reject);  // 1 reject vote < q=2
  const auto would_be = decide_quorum(DefenseMode::kClientsOnly, 2,
                                      {1, 1, 0}, {5, 7, 6}, 0);
  EXPECT_TRUE(would_be.reject);  // the duplicate would have met quorum
}

TEST(VoteBoundary, ValidatedVotesFeedQuorumUnchanged) {
  const std::vector<int> votes{1, 1, 0, 1};
  const std::vector<std::size_t> ids{0, 1, 2, 3};
  validate_decoded_votes(votes, ids);
  const auto decision = decide_quorum(DefenseMode::kClientsAndServer,
                                      /*quorum=*/4, votes, ids,
                                      /*server_vote=*/1);
  EXPECT_TRUE(decision.reject);  // 3 client rejects + server = q
  EXPECT_EQ(decision.reject_votes, 4u);
  EXPECT_EQ(decision.total_voters, 5u);
}

}  // namespace
}  // namespace baffle

#include "core/feedback_loop.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

std::vector<std::size_t> ids(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(Quorum, ClientsOnlyRejectAtThreshold) {
  const std::vector<int> votes{1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  const auto d = decide_quorum(DefenseMode::kClientsOnly, 5, votes, ids(10), 0);
  EXPECT_TRUE(d.reject);
  EXPECT_EQ(d.reject_votes, 5u);
  EXPECT_EQ(d.total_voters, 10u);
  EXPECT_FALSE(d.server_voted);
}

TEST(Quorum, ClientsOnlyAcceptBelowThreshold) {
  const std::vector<int> votes{1, 1, 1, 1, 0, 0, 0, 0, 0, 0};
  const auto d = decide_quorum(DefenseMode::kClientsOnly, 5, votes, ids(10), 0);
  EXPECT_FALSE(d.reject);
  EXPECT_EQ(d.reject_votes, 4u);
}

TEST(Quorum, ServerOnlyIgnoresClientVotesAndQuorum) {
  const std::vector<int> votes{1, 1, 1};
  auto d = decide_quorum(DefenseMode::kServerOnly, 99, votes, ids(3), 0);
  EXPECT_FALSE(d.reject);
  EXPECT_TRUE(d.server_voted);
  EXPECT_EQ(d.total_voters, 1u);
  d = decide_quorum(DefenseMode::kServerOnly, 99, votes, ids(3), 1);
  EXPECT_TRUE(d.reject);
}

TEST(Quorum, ClientsAndServerCountsServerVote) {
  const std::vector<int> votes{1, 1, 1, 1, 0, 0, 0, 0, 0, 0};
  // 4 client votes + server vote = 5 >= q.
  const auto d =
      decide_quorum(DefenseMode::kClientsAndServer, 5, votes, ids(10), 1);
  EXPECT_TRUE(d.reject);
  EXPECT_EQ(d.reject_votes, 5u);
  EXPECT_EQ(d.total_voters, 11u);
}

TEST(Quorum, ClientsAndServerServerVoteAloneInsufficient) {
  const std::vector<int> votes(10, 0);
  const auto d =
      decide_quorum(DefenseMode::kClientsAndServer, 5, votes, ids(10), 1);
  EXPECT_FALSE(d.reject);
  EXPECT_EQ(d.reject_votes, 1u);
}

TEST(Quorum, ServerOnlyAbstentionMeansNoVerdict) {
  const std::vector<int> votes{1, 1, 1};
  const auto d = decide_quorum(DefenseMode::kServerOnly, 1, votes, ids(3), 1,
                               /*server_abstained=*/true);
  EXPECT_FALSE(d.reject);
  EXPECT_FALSE(d.server_voted);
  EXPECT_EQ(d.total_voters, 0u);
  EXPECT_EQ(d.reject_votes, 0u);
}

TEST(Quorum, ClientsAndServerAbstentionExcludesServer) {
  const std::vector<int> votes{1, 1, 1, 1, 0, 0, 0, 0, 0, 0};
  // An abstaining server must not be recorded as an accept vote: the
  // electorate shrinks to the 10 clients and the server's (stale) vote
  // value is ignored entirely.
  const auto d = decide_quorum(DefenseMode::kClientsAndServer, 5, votes,
                               ids(10), 1, /*server_abstained=*/true);
  EXPECT_FALSE(d.reject);
  EXPECT_FALSE(d.server_voted);
  EXPECT_EQ(d.total_voters, 10u);
  EXPECT_EQ(d.reject_votes, 4u);
}

TEST(Quorum, ClientsOnlyIgnoresServerAbstentionFlag) {
  const std::vector<int> votes{1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  const auto d = decide_quorum(DefenseMode::kClientsOnly, 5, votes, ids(10), 0,
                               /*server_abstained=*/true);
  EXPECT_TRUE(d.reject);
  EXPECT_EQ(d.total_voters, 10u);
}

TEST(Quorum, QuorumOneRejectsOnAnyVote) {
  const std::vector<int> votes{0, 0, 1};
  const auto d = decide_quorum(DefenseMode::kClientsOnly, 1, votes, ids(3), 0);
  EXPECT_TRUE(d.reject);
}

TEST(Quorum, MismatchedVotesThrow) {
  EXPECT_THROW(
      decide_quorum(DefenseMode::kClientsOnly, 1, {1, 0}, ids(3), 0),
      std::invalid_argument);
}

TEST(Quorum, DecisionCarriesVoteDetails) {
  const std::vector<int> votes{1, 0};
  const auto d = decide_quorum(DefenseMode::kClientsOnly, 2, votes, ids(2), 0);
  EXPECT_EQ(d.client_votes, votes);
  EXPECT_EQ(d.client_ids, ids(2));
}

TEST(DefenseModeName, AllNamed) {
  EXPECT_STREQ(defense_mode_name(DefenseMode::kServerOnly), "BAFFLE-S");
  EXPECT_STREQ(defense_mode_name(DefenseMode::kClientsOnly), "BAFFLE-C");
  EXPECT_STREQ(defense_mode_name(DefenseMode::kClientsAndServer), "BAFFLE");
}

/// Property: for every (votes, q) the decision equals a direct count.
class QuorumSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(QuorumSweep, RejectIffCountReachesQ) {
  const auto [reject_count, q] = GetParam();
  std::vector<int> votes(10, 0);
  for (std::size_t i = 0; i < reject_count; ++i) votes[i] = 1;
  const auto d =
      decide_quorum(DefenseMode::kClientsOnly, q, votes, ids(10), 0);
  EXPECT_EQ(d.reject, reject_count >= q);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuorumSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 2, 4, 5, 7, 10),
                       ::testing::Values<std::size_t>(1, 3, 5, 7, 9)));

}  // namespace
}  // namespace baffle

// Property-style parity of the incremental validation engine
// (DESIGN.md §12): a validator with cross-round caching (candidate-CM
// promotion, per-pair variation points, incremental distance matrix)
// must produce bit-identical votes/φ/τ to a fresh-recompute validator
// through arbitrary accept/reject/rollback sequences — while doing
// strictly fewer model evaluations.

#include "core/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "data/synth.hpp"

namespace baffle {
namespace {

/// Cheap non-degenerate model chain: random-walk parameter vectors.
/// Parity does not need trained models, only distinct confusion
/// matrices per version.
class ParityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(404);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 25;
    cfg.test_per_class = 20;  // 200 samples; validators draw 120 below
    task_ = make_synth_task(cfg, rng);
    arch_ = MlpConfig{{cfg.dim, 16, cfg.num_classes}, Activation::kRelu};
    Mlp model(arch_);
    model.init(rng);
    params_ = model.parameters();
  }

  /// Next model on the random walk (a fresh "candidate").
  ParamVec next_params(Rng& rng, float step = 0.05f) {
    ParamVec out = params_;
    for (float& p : out) p += static_cast<float>(rng.normal(0.0, step));
    return out;
  }

  Validator make_validator(bool incremental, std::size_t lookback = 8,
                           std::size_t min_variations = 4) {
    Rng rng(9);
    ValidatorConfig cfg;
    cfg.lookback = lookback;
    cfg.min_variations = min_variations;
    cfg.incremental = incremental;
    return Validator(task_.test.sample(120, rng), arch_, cfg);
  }

  static void expect_same(const ValidationOutcome& a,
                          const ValidationOutcome& b) {
    EXPECT_EQ(a.vote, b.vote);
    EXPECT_EQ(a.phi, b.phi);  // bit-exact, not just approximately equal
    EXPECT_EQ(a.tau, b.tau);
    EXPECT_EQ(a.abstained, b.abstained);
  }

  SynthTask task_;
  MlpConfig arch_;
  ParamVec params_;  // current committed chain head
};

TEST_F(ParityFixture, AcceptRejectRollbackSequenceBitIdentical) {
  Validator incremental = make_validator(true);
  Validator fresh = make_validator(false);
  const std::size_t lookback = 8;

  std::deque<GlobalModel> window;
  std::uint64_t version = 0;
  window.push_back({version, params_});

  Rng rng(77);
  // Scripted round outcomes: warmup accepts (through the abstention
  // regime), then rejects — including consecutive ones — interleaved
  // with accepts so the window both shifts and stalls.
  const bool accept_script[] = {true, true,  true, true,  true,  true,
                                true, false, true, false, false, true,
                                true, false, true, true,  true,  true};
  std::size_t accepts = 0;
  std::size_t non_abstained = 0;
  for (bool accept : accept_script) {
    const std::vector<GlobalModel> history(window.begin(), window.end());
    const ParamVec candidate = next_params(rng);
    const auto inc = incremental.validate(candidate, history);
    const auto ref = fresh.validate(candidate, history);
    expect_same(inc, ref);
    if (!inc.abstained) ++non_abstained;
    if (accept) {
      ++version;
      window.push_back({version, candidate});
      while (window.size() > lookback + 1) window.pop_front();
      incremental.notify_commit(version, candidate);
      fresh.notify_commit(version, candidate);
      params_ = candidate;
      ++accepts;
    } else {
      // Rolled back: the window must behave as if the candidate never
      // existed (its pending evaluation is discarded).
      incremental.notify_reject();
      fresh.notify_reject();
    }
  }
  ASSERT_GT(accepts, lookback);     // window rotated through capacity
  ASSERT_GT(non_abstained, 6u);     // the LOF path actually ran

  // The incremental validator promoted committed candidates instead of
  // re-evaluating them as next round's history.back().
  EXPECT_GT(incremental.cache().promotions(), 0u);
  EXPECT_EQ(fresh.cache().promotions(), 0u);
  EXPECT_LT(incremental.cache().misses(), fresh.cache().misses());
}

TEST_F(ParityFixture, RepeatedValidationsSameRoundBitIdentical) {
  // The adaptive attacker's self-check validates many candidates per
  // round against the same window; only the last one may be promoted.
  Validator incremental = make_validator(true);
  Validator fresh = make_validator(false);

  std::vector<GlobalModel> history;
  Rng rng(55);
  for (std::uint64_t v = 0; v <= 8; ++v) {
    history.push_back({v, params_});
    params_ = next_params(rng);
  }
  ParamVec last;
  for (int trial = 0; trial < 5; ++trial) {
    last = next_params(rng, 0.01f * static_cast<float>(trial + 1));
    expect_same(incremental.validate(last, history),
                fresh.validate(last, history));
  }
  // Committing a model that is NOT the last validated candidate must
  // not promote (parameters differ bit-wise from the pending ones).
  const ParamVec other = next_params(rng);
  incremental.notify_commit(9, other);
  EXPECT_EQ(incremental.cache().promotions(), 0u);

  history.push_back({9, other});
  expect_same(incremental.validate(last, history),
              fresh.validate(last, history));

  // Committing exactly the last validated candidate does promote.
  incremental.notify_commit(10, last);
  EXPECT_EQ(incremental.cache().promotions(), 1u);
  history.push_back({10, last});
  const ParamVec candidate = next_params(rng);
  const auto misses_before = incremental.cache().misses();
  expect_same(incremental.validate(candidate, history),
              fresh.validate(candidate, history));
  // The promoted version was needed as history.back() and hit.
  EXPECT_EQ(incremental.cache().misses(), misses_before);
}

TEST_F(ParityFixture, ZScoreAblationsSingleDeltaStayFinite) {
  // Regression: a 2-model history yields one delta; the z-score's
  // sample stddev path must not poison φ with NaN for either ablation.
  Rng rng(66);
  for (ValidationMethod method : {ValidationMethod::kGlobalAccuracyZScore,
                                  ValidationMethod::kVariationNormZScore}) {
    ValidatorConfig cfg;
    cfg.lookback = 2;
    cfg.min_variations = 1;
    cfg.method = method;
    Rng data_rng(9);
    Validator v(task_.test.sample(120, data_rng), arch_, cfg);
    std::vector<GlobalModel> history;
    history.push_back({0, params_});
    history.push_back({1, next_params(rng)});
    const auto outcome = v.validate(next_params(rng), history);
    EXPECT_FALSE(outcome.abstained);
    EXPECT_TRUE(std::isfinite(outcome.phi))
        << validation_method_name(method);
    EXPECT_EQ(outcome.vote, outcome.phi > outcome.tau ? 1 : 0);
  }
}

TEST_F(ParityFixture, LookbackSweepSizesBitIdentical) {
  // table1_lookback sizes: the incremental window must stay exact
  // through growth, saturation and rotation at every ℓ.
  for (std::size_t ell : {4u, 8u, 16u}) {
    SCOPED_TRACE(ell);
    Validator incremental = make_validator(true, ell);
    Validator fresh = make_validator(false, ell);
    std::deque<GlobalModel> window;
    std::uint64_t version = 0;
    window.push_back({version, params_});
    Rng rng(100 + ell);
    for (int round = 0; round < static_cast<int>(ell) + 6; ++round) {
      const std::vector<GlobalModel> history(window.begin(), window.end());
      const ParamVec candidate = next_params(rng);
      expect_same(incremental.validate(candidate, history),
                  fresh.validate(candidate, history));
      ++version;
      window.push_back({version, candidate});
      while (window.size() > ell + 1) window.pop_front();
      incremental.notify_commit(version, candidate);
      fresh.notify_commit(version, candidate);
      params_ = candidate;
    }
  }
}

}  // namespace
}  // namespace baffle

#include "core/lof.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace baffle {
namespace {

std::vector<VariationPoint> uniform_cluster(std::size_t n, Rng& rng,
                                            double spread = 1.0) {
  std::vector<VariationPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-spread, spread),
                      rng.uniform(-spread, spread)});
  }
  return points;
}

TEST(Lof, InlierScoresNearOne) {
  Rng rng(1);
  const auto cluster = uniform_cluster(30, rng);
  const VariationPoint inlier{0.0, 0.0};
  const double score = lof_score(inlier, cluster, 5);
  EXPECT_GT(score, 0.7);
  EXPECT_LT(score, 1.4);
}

TEST(Lof, FarOutlierScoresHigh) {
  Rng rng(2);
  const auto cluster = uniform_cluster(30, rng);
  const VariationPoint outlier{100.0, 100.0};
  EXPECT_GT(lof_score(outlier, cluster, 5), 5.0);
}

TEST(Lof, ScoreIncreasesWithDistance) {
  Rng rng(3);
  const auto cluster = uniform_cluster(25, rng);
  double prev = 0.0;
  for (double d : {2.0, 5.0, 20.0, 100.0}) {
    const double score = lof_score({d, 0.0}, cluster, 5);
    EXPECT_GT(score, prev);
    prev = score;
  }
}

TEST(Lof, PermutationInvariant) {
  Rng rng(4);
  auto cluster = uniform_cluster(20, rng);
  const VariationPoint q{3.0, -1.0};
  const double before = lof_score(q, cluster, 4);
  Rng shuffle_rng(5);
  shuffle_rng.shuffle(cluster);
  EXPECT_DOUBLE_EQ(lof_score(q, cluster, 4), before);
}

TEST(Lof, DuplicateReferencePointsHandled) {
  // All reference points identical: a coincident query is not an
  // outlier; a distant one is.
  const std::vector<VariationPoint> dup(10, VariationPoint{1.0, 1.0});
  EXPECT_NEAR(lof_score({1.0, 1.0}, dup, 3), 1.0, 1e-6);
  EXPECT_GT(lof_score({50.0, 50.0}, dup, 3), 10.0);
}

TEST(Lof, KClampedToReferenceSize) {
  Rng rng(6);
  const auto cluster = uniform_cluster(5, rng);
  // k = 100 >> |ref| - 1; must not throw.
  EXPECT_NO_THROW(lof_score({0.0, 0.0}, cluster, 100));
}

TEST(Lof, TooFewReferencePointsThrow) {
  const std::vector<VariationPoint> one{{0.0, 0.0}};
  EXPECT_THROW(lof_score({1.0, 1.0}, one, 2), std::invalid_argument);
}

TEST(Lof, TwoClusterStructure) {
  // Query near the dense cluster is an inlier even if a sparse cluster
  // exists elsewhere — LOF is *local*.
  Rng rng(7);
  std::vector<VariationPoint> points;
  for (int i = 0; i < 20; ++i) {
    points.push_back({rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)});
  }
  for (int i = 0; i < 5; ++i) {
    points.push_back(
        {100.0 + rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
  }
  EXPECT_LT(lof_score({0.0, 0.0}, points, 5), 1.5);
  // A point between the clusters is an outlier w.r.t. both.
  EXPECT_GT(lof_score({50.0, 0.0}, points, 5), 2.0);
}

TEST(Lof, HigherDimensionalPoints) {
  Rng rng(8);
  std::vector<VariationPoint> points;
  for (int i = 0; i < 30; ++i) {
    VariationPoint p(20);
    for (auto& x : p) x = rng.normal(0.0, 0.1);
    points.push_back(std::move(p));
  }
  VariationPoint inlier(20, 0.0), outlier(20, 5.0);
  EXPECT_LT(lof_score(inlier, points, 10), 1.5);
  EXPECT_GT(lof_score(outlier, points, 10), 3.0);
}

TEST(Lof, ScaleInvariant) {
  // LOF is a ratio of local densities: uniformly scaling every point
  // (and the query) must leave the score unchanged.
  Rng rng(9);
  const auto cluster = uniform_cluster(20, rng);
  const VariationPoint q{4.0, -2.0};
  const double base = lof_score(q, cluster, 5);
  for (double factor : {0.01, 7.0, 1000.0}) {
    std::vector<VariationPoint> scaled = cluster;
    VariationPoint qs = q;
    for (auto& p : scaled) {
      for (auto& x : p) x *= factor;
    }
    for (auto& x : qs) x *= factor;
    EXPECT_NEAR(lof_score(qs, scaled, 5), base, 1e-9 * base + 1e-9)
        << "factor " << factor;
  }
}

TEST(Lof, TranslationInvariant) {
  Rng rng(10);
  const auto cluster = uniform_cluster(20, rng);
  const VariationPoint q{4.0, -2.0};
  const double base = lof_score(q, cluster, 5);
  std::vector<VariationPoint> shifted = cluster;
  VariationPoint qs = q;
  for (auto& p : shifted) {
    p[0] += 100.0;
    p[1] -= 50.0;
  }
  qs[0] += 100.0;
  qs[1] -= 50.0;
  EXPECT_NEAR(lof_score(qs, shifted, 5), base, 1e-9);
}

/// Property sweep over k: outlier score must dominate inlier score.
class LofKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LofKSweep, OutlierAlwaysScoresAboveInlier) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  const auto cluster = uniform_cluster(25, rng);
  const double inlier = lof_score({0.1, 0.1}, cluster, k);
  const double outlier = lof_score({30.0, 30.0}, cluster, k);
  EXPECT_GT(outlier, 2.0 * inlier) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, LofKSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 12,
                                                        20, 24));

}  // namespace
}  // namespace baffle

#include "core/validate.hpp"

#include "core/feedback_loop.hpp"

#include <gtest/gtest.h>

#include "data/backdoor_data.hpp"
#include "data/synth.hpp"
#include "nn/train.hpp"

namespace baffle {
namespace {

TEST(ValidateParams, KIsCeilHalfLookback) {
  EXPECT_EQ(lof_k_for_lookback(20), 10u);
  EXPECT_EQ(lof_k_for_lookback(21), 11u);
  EXPECT_EQ(lof_k_for_lookback(10), 5u);
  EXPECT_EQ(lof_k_for_lookback(3), 2u);
}

TEST(ValidateParams, TauWindowIsFloorQuarterLookback) {
  EXPECT_EQ(tau_window_for_lookback(20), 5u);
  EXPECT_EQ(tau_window_for_lookback(10), 2u);
  EXPECT_EQ(tau_window_for_lookback(30), 7u);
  EXPECT_EQ(tau_window_for_lookback(3), 0u);
}

/// Shared slow fixture: a task, a history of gradually-improving models
/// (one snapshot per training slice), and a validator dataset.
class ValidatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 150;
    cfg.test_per_class = 40;
    task_ = new SynthTask(make_synth_task(cfg, rng));
    arch_ = new MlpConfig{
        {cfg.dim, 32, cfg.num_classes}, Activation::kRelu};

    Mlp model(*arch_);
    model.init(rng);
    // Warm start so the history covers the "stable" regime.
    TrainConfig warm;
    warm.epochs = 12;
    warm.batch_size = 64;
    warm.sgd.learning_rate = 0.05f;
    train_sgd(model, task_->train.features(), task_->train.labels(), warm,
              rng);

    history_ = new std::vector<GlobalModel>;
    history_->push_back({0, model.parameters()});
    TrainConfig slice;
    slice.epochs = 1;
    slice.batch_size = 64;
    slice.sgd.learning_rate = 0.01f;  // small steps: stable history
    for (std::uint64_t v = 1; v <= 20; ++v) {
      train_sgd(model, task_->train.features(), task_->train.labels(),
                slice, rng);
      history_->push_back({v, model.parameters()});
    }
    final_model_ = new Mlp(model);
  }

  static void TearDownTestSuite() {
    delete task_;
    delete arch_;
    delete history_;
    delete final_model_;
  }

  /// A genuine next model: one more small training slice.
  ParamVec genuine_next() const {
    Mlp model = *final_model_;
    Rng rng(7);
    TrainConfig slice;
    slice.epochs = 1;
    slice.batch_size = 64;
    slice.sgd.learning_rate = 0.01f;
    train_sgd(model, task_->train.features(), task_->train.labels(), slice,
              rng);
    return model.parameters();
  }

  /// A backdoored next model: trained on a poisoned blend (model
  /// replacement's local model, i.e. the post-replacement global model).
  ParamVec poisoned_next() const {
    Mlp model = *final_model_;
    Rng rng(8);
    const BackdoorTask bd{BackdoorKind::kSemantic,
                          task_->config.backdoor_source,
                          task_->config.backdoor_target};
    const Dataset blend = make_poisoned_training_set(
        task_->train.sample(300, rng), task_->backdoor_train, bd, 0.3, rng);
    TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 32;
    tc.sgd.learning_rate = 0.05f;
    train_sgd(model, blend.features(), blend.labels(), tc, rng);
    return model.parameters();
  }

  Validator make_validator(std::size_t data_size = 200,
                           std::size_t lookback = 20) const {
    Rng rng(9);
    ValidatorConfig cfg;
    cfg.lookback = lookback;
    return Validator(task_->test.sample(data_size, rng), *arch_, cfg);
  }

  static SynthTask* task_;
  static MlpConfig* arch_;
  static std::vector<GlobalModel>* history_;
  static Mlp* final_model_;
};

SynthTask* ValidatorFixture::task_ = nullptr;
MlpConfig* ValidatorFixture::arch_ = nullptr;
std::vector<GlobalModel>* ValidatorFixture::history_ = nullptr;
Mlp* ValidatorFixture::final_model_ = nullptr;

TEST_F(ValidatorFixture, AcceptsGenuineUpdate) {
  Validator v = make_validator();
  const auto outcome = v.validate(genuine_next(), *history_);
  EXPECT_FALSE(outcome.abstained);
  EXPECT_EQ(outcome.vote, 0);
}

TEST_F(ValidatorFixture, RejectsPoisonedUpdate) {
  Validator v = make_validator();
  const auto outcome = v.validate(poisoned_next(), *history_);
  EXPECT_FALSE(outcome.abstained);
  EXPECT_EQ(outcome.vote, 1);
  EXPECT_GT(outcome.phi, outcome.tau);
}

TEST_F(ValidatorFixture, PoisonedScoresFarAboveGenuine) {
  Validator v1 = make_validator();
  Validator v2 = make_validator();
  const auto good = v1.validate(genuine_next(), *history_);
  const auto bad = v2.validate(poisoned_next(), *history_);
  EXPECT_GT(bad.phi, 2.0 * good.phi);
}

TEST_F(ValidatorFixture, AbstainsOnShortHistory) {
  Validator v = make_validator();
  const std::vector<GlobalModel> short_history(history_->begin(),
                                               history_->begin() + 3);
  const auto outcome = v.validate(genuine_next(), short_history);
  EXPECT_TRUE(outcome.abstained);
  EXPECT_EQ(outcome.vote, 0);
}

TEST_F(ValidatorFixture, AbstainsOnEmptyAndSingletonHistory) {
  Validator v = make_validator();
  EXPECT_TRUE(
      v.validate(genuine_next(), std::span<const GlobalModel>{}).abstained);
  const std::vector<GlobalModel> one(history_->begin(),
                                     history_->begin() + 1);
  EXPECT_TRUE(v.validate(genuine_next(), one).abstained);
}

TEST_F(ValidatorFixture, CachesHistoryEvaluations) {
  Validator v = make_validator();
  v.validate(genuine_next(), *history_);
  const auto misses_first = v.cache().misses();
  v.validate(genuine_next(), *history_);
  // Second validation over the same history: everything cached.
  EXPECT_EQ(v.cache().misses(), misses_first);
  EXPECT_GT(v.cache().hits(), 0u);
}

TEST_F(ValidatorFixture, IdenticalCandidateToLatestIsNotFlagged) {
  // Candidate == last accepted model -> variation point at the origin,
  // which sits inside the benign cluster of small variations.
  Validator v = make_validator();
  const auto outcome =
      v.validate(history_->back().params, *history_);
  EXPECT_EQ(outcome.vote, 0);
}

TEST_F(ValidatorFixture, SmallerValidationSetsStillDetect) {
  // The paper stresses that client validation sets are small; detection
  // should survive down to a few dozen samples.
  Validator v = make_validator(/*data_size=*/50);
  const auto outcome = v.validate(poisoned_next(), *history_);
  EXPECT_EQ(outcome.vote, 1);
}

TEST_F(ValidatorFixture, WorksAcrossLookbackSizes) {
  for (std::size_t ell : {10u, 15u, 20u}) {
    Validator good = make_validator(200, ell);
    Validator bad = make_validator(200, ell);
    const std::vector<GlobalModel> window(
        history_->end() - static_cast<std::ptrdiff_t>(ell + 1),
        history_->end());
    EXPECT_EQ(good.validate(genuine_next(), window).vote, 0)
        << "lookback " << ell;
    EXPECT_EQ(bad.validate(poisoned_next(), window).vote, 1)
        << "lookback " << ell;
  }
}

TEST_F(ValidatorFixture, VariationNormZScoreAblationDetects) {
  Rng rng(9);
  ValidatorConfig cfg;
  cfg.lookback = 20;
  cfg.method = ValidationMethod::kVariationNormZScore;
  Validator v(task_->test.sample(200, rng), *arch_, cfg);
  EXPECT_EQ(v.validate(poisoned_next(), *history_).vote, 1);
  Validator v2(task_->test.sample(200, rng), *arch_, cfg);
  EXPECT_EQ(v2.validate(genuine_next(), *history_).vote, 0);
}

TEST_F(ValidatorFixture, GlobalAccuracyAblationRunsAndAbstainsCorrectly) {
  Rng rng(10);
  ValidatorConfig cfg;
  cfg.lookback = 20;
  cfg.method = ValidationMethod::kGlobalAccuracyZScore;
  Validator v(task_->test.sample(200, rng), *arch_, cfg);
  const auto good = v.validate(genuine_next(), *history_);
  EXPECT_EQ(good.vote, 0);
  // Short history still abstains regardless of method.
  Validator v2(task_->test.sample(200, rng), *arch_, cfg);
  const std::vector<GlobalModel> short_history(history_->begin(),
                                               history_->begin() + 2);
  EXPECT_TRUE(v2.validate(genuine_next(), short_history).abstained);
}

TEST_F(ValidatorFixture, TauMarginMonotone) {
  // Raising the margin can only flip votes from reject to accept.
  Rng rng(11);
  const ParamVec poisoned = poisoned_next();
  int prev_vote = 1;
  for (double margin : {0.5, 1.0, 1.3, 3.0, 50.0, 1e6}) {
    ValidatorConfig cfg;
    cfg.lookback = 20;
    cfg.tau_margin = margin;
    Validator v(task_->test.sample(200, rng), *arch_, cfg);
    const int vote = v.validate(poisoned, *history_).vote;
    EXPECT_LE(vote, prev_vote) << "margin " << margin;
    prev_vote = vote;
  }
  // An absurd margin accepts anything; a sub-1 margin rejects the
  // poisoned candidate for sure.
  EXPECT_EQ(prev_vote, 0);
}

TEST_F(ValidatorFixture, DefaultServerMarginStricterThanInfinity) {
  // Sanity on the FeedbackConfig helper: the server validator inherits
  // everything but the margin.
  FeedbackConfig cfg;
  cfg.validator.lookback = 17;
  cfg.server_tau_margin = 2.5;
  const ValidatorConfig server_cfg = cfg.server_validator();
  EXPECT_EQ(server_cfg.lookback, 17u);
  EXPECT_DOUBLE_EQ(server_cfg.tau_margin, 2.5);
}

TEST(ValidationMethodName, AllNamed) {
  EXPECT_STREQ(validation_method_name(ValidationMethod::kErrorVariationLof),
               "error-variation+LOF");
  EXPECT_STREQ(
      validation_method_name(ValidationMethod::kGlobalAccuracyZScore),
      "global-accuracy");
  EXPECT_STREQ(
      validation_method_name(ValidationMethod::kVariationNormZScore),
      "variation+zscore");
}

TEST(Validator, RejectsEmptyData) {
  const MlpConfig arch{{4, 2}, Activation::kRelu};
  EXPECT_THROW(Validator(Dataset(4, 2), arch, ValidatorConfig{}),
               std::invalid_argument);
}

TEST(Validator, RejectsTinyLookback) {
  const MlpConfig arch{{4, 2}, Activation::kRelu};
  Dataset d(4, 2);
  d.add({{0, 0, 0, 0}, 0});
  ValidatorConfig cfg;
  cfg.lookback = 1;
  EXPECT_THROW(Validator(d, arch, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

#include "core/defense.hpp"

#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "nn/train.hpp"

namespace baffle {
namespace {

/// Small end-to-end-ish fixture: clients with real shards, a history of
/// gradually improving models, and helpers to produce genuine vs
/// poisoned candidates.
class DefenseFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kLookback = 10;

  static void SetUpTestSuite() {
    Rng rng(11);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 120;
    cfg.test_per_class = 40;
    task_ = new SynthTask(make_synth_task(cfg, rng));
    arch_ = new MlpConfig{
        {cfg.dim, 32, cfg.num_classes}, Activation::kRelu};

    clients_ = new std::vector<FlClient>;
    for (std::size_t i = 0; i < 8; ++i) {
      clients_->emplace_back(i, task_->train.sample(100, rng));
    }
    clients_->emplace_back(8, Dataset(cfg.dim, cfg.num_classes));  // empty

    // Model trajectory.
    Mlp model(*arch_);
    model.init(rng);
    TrainConfig warm;
    warm.epochs = 10;
    warm.batch_size = 64;
    warm.sgd.learning_rate = 0.05f;
    train_sgd(model, task_->train.features(), task_->train.labels(), warm,
              rng);
    snapshots_ = new std::vector<ParamVec>;
    snapshots_->push_back(model.parameters());
    TrainConfig slice;
    slice.epochs = 1;
    slice.batch_size = 64;
    slice.sgd.learning_rate = 0.01f;
    for (int i = 0; i < 14; ++i) {
      train_sgd(model, task_->train.features(), task_->train.labels(),
                slice, rng);
      snapshots_->push_back(model.parameters());
    }
    // Poisoned candidate: trained on relabelled backdoor blend.
    Mlp poisoned(*arch_);
    poisoned.set_parameters(snapshots_->back());
    Dataset blend = task_->train.sample(250, rng);
    Dataset bd = task_->backdoor_train;
    for (const auto& ex : bd.examples()) {
      Example flipped = ex;
      flipped.y = task_->config.backdoor_target;
      blend.add(flipped);
    }
    TrainConfig ptc;
    ptc.epochs = 6;
    ptc.batch_size = 32;
    ptc.sgd.learning_rate = 0.05f;
    train_sgd(poisoned, blend.features(), blend.labels(), ptc, rng);
    poisoned_params_ = new ParamVec(poisoned.parameters());

    Mlp genuine(*arch_);
    genuine.set_parameters(snapshots_->back());
    train_sgd(genuine, task_->train.features(), task_->train.labels(),
              slice, rng);
    genuine_params_ = new ParamVec(genuine.parameters());
  }

  static void TearDownTestSuite() {
    delete task_;
    delete arch_;
    delete clients_;
    delete snapshots_;
    delete poisoned_params_;
    delete genuine_params_;
  }

  FeedbackConfig config(DefenseMode mode, std::size_t quorum = 4) const {
    FeedbackConfig cfg;
    cfg.mode = mode;
    cfg.quorum = quorum;
    cfg.validator.lookback = kLookback;
    return cfg;
  }

  BaffleDefense make_defense(DefenseMode mode, std::size_t quorum = 4) const {
    Rng rng(13);
    BaffleDefense defense(*arch_, config(mode, quorum),
                          task_->test.sample(150, rng));
    for (std::size_t i = 0; i < snapshots_->size(); ++i) {
      defense.on_commit(i, (*snapshots_)[i]);
    }
    return defense;
  }

  static std::vector<std::size_t> validator_ids() {
    return {0, 1, 2, 3, 4, 5, 6, 7};
  }

  static SynthTask* task_;
  static MlpConfig* arch_;
  static std::vector<FlClient>* clients_;
  static std::vector<ParamVec>* snapshots_;
  static ParamVec* poisoned_params_;
  static ParamVec* genuine_params_;
};

SynthTask* DefenseFixture::task_ = nullptr;
MlpConfig* DefenseFixture::arch_ = nullptr;
std::vector<FlClient>* DefenseFixture::clients_ = nullptr;
std::vector<ParamVec>* DefenseFixture::snapshots_ = nullptr;
ParamVec* DefenseFixture::poisoned_params_ = nullptr;
ParamVec* DefenseFixture::genuine_params_ = nullptr;

TEST_F(DefenseFixture, RequiresServerHoldoutForServerModes) {
  EXPECT_THROW(BaffleDefense(*arch_, config(DefenseMode::kServerOnly),
                             Dataset(task_->config.dim,
                                     task_->config.num_classes)),
               std::invalid_argument);
  EXPECT_NO_THROW(BaffleDefense(*arch_, config(DefenseMode::kClientsOnly),
                                Dataset(task_->config.dim,
                                        task_->config.num_classes)));
}

TEST_F(DefenseFixture, ReadyAfterEnoughCommits) {
  Rng rng(14);
  BaffleDefense defense(*arch_, config(DefenseMode::kClientsOnly),
                        Dataset(task_->config.dim,
                                task_->config.num_classes));
  EXPECT_FALSE(defense.ready());
  for (std::size_t i = 0; i < 8; ++i) {
    defense.on_commit(i, (*snapshots_)[i]);
  }
  EXPECT_TRUE(defense.ready());
}

TEST_F(DefenseFixture, WindowBoundedByLookback) {
  const BaffleDefense defense = make_defense(DefenseMode::kClientsOnly);
  EXPECT_EQ(defense.current_window().size(), kLookback + 1);
}

TEST_F(DefenseFixture, AcceptsGenuineCandidate) {
  BaffleDefense defense = make_defense(DefenseMode::kClientsAndServer);
  const auto d = defense.evaluate(*genuine_params_, validator_ids(),
                                  *clients_, {}, VoteStrategy::kHonest);
  EXPECT_FALSE(d.reject);
}

TEST_F(DefenseFixture, RejectsPoisonedCandidate) {
  BaffleDefense defense = make_defense(DefenseMode::kClientsAndServer);
  const auto d = defense.evaluate(*poisoned_params_, validator_ids(),
                                  *clients_, {}, VoteStrategy::kHonest);
  EXPECT_TRUE(d.reject);
  EXPECT_GE(d.reject_votes, 4u);
}

TEST_F(DefenseFixture, ServerOnlyModeUsesSingleVote) {
  BaffleDefense defense = make_defense(DefenseMode::kServerOnly);
  const auto d = defense.evaluate(*poisoned_params_, validator_ids(),
                                  *clients_, {}, VoteStrategy::kHonest);
  EXPECT_EQ(d.total_voters, 1u);
  EXPECT_TRUE(d.server_voted);
  EXPECT_TRUE(d.reject);
}

TEST_F(DefenseFixture, EmptyShardClientAbstains) {
  BaffleDefense defense = make_defense(DefenseMode::kClientsOnly);
  const auto d = defense.evaluate(*poisoned_params_, {8}, *clients_, {},
                                  VoteStrategy::kHonest);
  EXPECT_EQ(d.abstentions, 1u);
  EXPECT_FALSE(d.reject);
  EXPECT_EQ(defense.client_validator(8, *clients_), nullptr);
}

TEST_F(DefenseFixture, ColludingVotersLowerRejectCount) {
  BaffleDefense honest_defense = make_defense(DefenseMode::kClientsOnly);
  BaffleDefense attacked_defense = make_defense(DefenseMode::kClientsOnly);
  const auto honest = honest_defense.evaluate(
      *poisoned_params_, validator_ids(), *clients_, {}, VoteStrategy::kHonest);
  const auto attacked = attacked_defense.evaluate(
      *poisoned_params_, validator_ids(), *clients_, {0, 1, 2},
      VoteStrategy::kAlwaysAccept);
  EXPECT_LT(attacked.reject_votes, honest.reject_votes);
  // With q=4 and only 3 colluders of 8, rejection still carries.
  EXPECT_TRUE(attacked.reject);
}

TEST_F(DefenseFixture, DosVotersCannotRejectCleanModelBelowQuorum) {
  // q = 6 leaves room for up to two honest-but-noisy reject votes on a
  // genuine model while keeping the 3 DoS voters below quorum (§IV-B's
  // n_M + ρ(n − n_M) < q bound with ρ = 2/5).
  BaffleDefense defense = make_defense(DefenseMode::kClientsOnly, 6);
  const auto d = defense.evaluate(*genuine_params_, validator_ids(),
                                  *clients_, {0, 1, 2},
                                  VoteStrategy::kAlwaysReject);
  EXPECT_FALSE(d.reject);
  EXPECT_GE(d.reject_votes, 3u);
  EXPECT_LE(d.reject_votes, 5u);
}

TEST_F(DefenseFixture, UnknownValidatorIdThrows) {
  BaffleDefense defense = make_defense(DefenseMode::kClientsOnly);
  EXPECT_THROW(defense.evaluate(*genuine_params_, {99}, *clients_, {},
                                VoteStrategy::kHonest),
               std::out_of_range);
}

TEST_F(DefenseFixture, ValidatorsPersistAcrossRounds) {
  BaffleDefense defense = make_defense(DefenseMode::kClientsOnly);
  defense.evaluate(*genuine_params_, {0, 1}, *clients_, {},
                   VoteStrategy::kHonest);
  Validator* v = defense.client_validator(0, *clients_);
  ASSERT_NE(v, nullptr);
  const auto misses = v->cache().misses();
  defense.evaluate(*genuine_params_, {0, 1}, *clients_, {},
                   VoteStrategy::kHonest);
  EXPECT_EQ(defense.client_validator(0, *clients_)->cache().misses(), misses);
}

}  // namespace
}  // namespace baffle

// Validator-level parity of the batched multi-model evaluation engine
// (DESIGN.md §14).
//
// A cold-window validator routes every uncached history model through
// one MultiModelEval::predict_many pass; a warm validator that saw the
// same window grow round-by-round only ever evaluates one model at a
// time. Both must produce bit-identical votes/φ/τ — the batched pass is
// an execution-schedule change, not a numeric one. The reduced-precision
// arms (ValidatorConfig::eval_precision) must leave votes and cached
// confusion matrices unchanged on the seeded scenarios.

#include "core/validate.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "data/synth.hpp"
#include "metrics/confusion.hpp"
#include "util/metrics.hpp"

namespace baffle {
namespace {

class BatchedValidate : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(404);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 25;
    cfg.test_per_class = 20;
    task_ = make_synth_task(cfg, rng);
    arch_ = MlpConfig{{cfg.dim, 16, cfg.num_classes}, Activation::kRelu};
    Mlp model(arch_);
    model.init(rng);
    params_ = model.parameters();
    Rng data_rng(9);
    data_ = task_.test.sample(120, data_rng);
  }

  ParamVec next_params(Rng& rng, float step = 0.05f) {
    ParamVec out = params_;
    for (float& p : out) p += static_cast<float>(rng.normal(0.0, step));
    return out;
  }

  Validator make_validator(std::size_t lookback,
                           EvalPrecision precision = EvalPrecision::kFp32,
                           bool parallel_eval = true) {
    ValidatorConfig cfg;
    cfg.lookback = lookback;
    cfg.min_variations = 2;
    cfg.eval_precision = precision;
    cfg.parallel_eval = parallel_eval;
    return Validator(data_, arch_, cfg);
  }

  static void expect_same(const ValidationOutcome& a,
                          const ValidationOutcome& b) {
    EXPECT_EQ(a.vote, b.vote);
    EXPECT_EQ(a.phi, b.phi);  // bit-exact, not just approximately equal
    EXPECT_EQ(a.tau, b.tau);
    EXPECT_EQ(a.abstained, b.abstained);
  }

  static void expect_same_cm(const ConfusionMatrix& a,
                             const ConfusionMatrix& b) {
    ASSERT_EQ(a.num_classes(), b.num_classes());
    ASSERT_EQ(a.total(), b.total());
    for (std::size_t t = 0; t < a.num_classes(); ++t) {
      for (std::size_t p = 0; p < a.num_classes(); ++p) {
        ASSERT_EQ(a.count(static_cast<int>(t), static_cast<int>(p)),
                  b.count(static_cast<int>(t), static_cast<int>(p)))
            << "cm[" << t << "][" << p << "]";
      }
    }
  }

  SynthTask task_;
  MlpConfig arch_;
  ParamVec params_;
  Dataset data_;
};

TEST_F(BatchedValidate, ColdWindowBatchedMatchesWarmSequential) {
  // The warm validator sees the window grow one model per round, so its
  // prefetch never finds ≥2 uncached models and every evaluation takes
  // the sequential get_or_eval path. The cold validator receives the
  // full window at once and batches it. Same inputs, same bits out.
  for (std::size_t ell : {std::size_t{2}, std::size_t{10}, std::size_t{40}}) {
    SCOPED_TRACE(ell);
    Validator warm = make_validator(ell);
    std::deque<GlobalModel> window;
    std::uint64_t version = 0;
    window.push_back({version, params_});
    Rng rng(100 + ell);
    ValidationOutcome warm_out;
    std::vector<GlobalModel> history;
    ParamVec candidate;
    for (std::size_t round = 0; round < ell + 4; ++round) {
      history.assign(window.begin(), window.end());
      candidate = next_params(rng);
      warm_out = warm.validate(candidate, history);
      ++version;
      window.push_back({version, candidate});
      while (window.size() > ell + 1) window.pop_front();
      warm.notify_commit(version, candidate);
      params_ = candidate;
    }

    Validator cold = make_validator(ell);
    const auto batched_before =
        MetricsRegistry::global().counter("validator.batched_evals");
    const auto cold_out = cold.validate(candidate, history);
    expect_same(warm_out, cold_out);
    if (ell >= 10) {
      EXPECT_FALSE(cold_out.abstained);
    }
    // The cold window really went through predict_many, and the
    // out-of-band deposits kept miss accounting identical to the
    // sequential path: one miss per window model (the candidate eval is
    // not a cache miss, and re-lookups of deposited entries are hits).
    EXPECT_GT(MetricsRegistry::global().counter("validator.batched_evals"),
              batched_before);
    EXPECT_EQ(cold.cache().misses(), history.size());
  }
}

TEST_F(BatchedValidate, BatchedCmsBitIdenticalToDirectEvaluation) {
  // Every confusion matrix the batched prefetch deposited must equal a
  // plain per-model evaluate_confusion on the same dataset.
  const std::size_t ell = 10;
  Validator v = make_validator(ell);
  std::vector<GlobalModel> history;
  Rng rng(55);
  for (std::uint64_t ver = 0; ver <= ell; ++ver) {
    history.push_back({ver, params_});
    params_ = next_params(rng);
  }
  const ParamVec candidate = next_params(rng);
  const auto outcome = v.validate(candidate, history);
  EXPECT_FALSE(outcome.abstained);

  Mlp model(arch_);
  MlpEvalWorkspace ws;
  for (const auto& entry : history) {
    const ConfusionMatrix* cached = v.cache().find(entry.version);
    ASSERT_NE(cached, nullptr) << "version " << entry.version;
    model.set_parameters(entry.params);
    expect_same_cm(evaluate_confusion(model, data_, ws), *cached);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(BatchedValidate, RepeatCandidateShortCircuitsMaterialization) {
  // The adaptive attacker's self-check re-validates the same candidate;
  // a bit-equal repeat must reuse the previous confusion matrix instead
  // of re-running inference — with identical outcomes.
  const std::size_t ell = 8;
  Validator v = make_validator(ell);
  std::vector<GlobalModel> history;
  Rng rng(66);
  for (std::uint64_t ver = 0; ver <= ell; ++ver) {
    history.push_back({ver, params_});
    params_ = next_params(rng);
  }
  const ParamVec candidate = next_params(rng);
  const auto first = v.validate(candidate, history);
  const auto materialized =
      MetricsRegistry::global().counter("validator.model_materializations");
  const auto reused_before =
      MetricsRegistry::global().counter("validator.candidate_cm_reuse");
  const auto second = v.validate(candidate, history);
  expect_same(first, second);
  EXPECT_EQ(
      MetricsRegistry::global().counter("validator.model_materializations"),
      materialized);
  EXPECT_GT(MetricsRegistry::global().counter("validator.candidate_cm_reuse"),
            reused_before);

  // A different candidate must NOT be served from the memo.
  const ParamVec other = next_params(rng);
  v.validate(other, history);
  EXPECT_GT(
      MetricsRegistry::global().counter("validator.model_materializations"),
      materialized);
}

TEST_F(BatchedValidate, ParallelEvalParityAcrossRoundsAndArms) {
  // ValidatorConfig::parallel_eval only changes which threads execute
  // the engine's tiles (DESIGN.md §17): votes, φ, τ, abstentions and
  // every cached confusion matrix must be bit-identical with the flag
  // on and off, on all three precision arms. The ctest entries
  // multi_eval_parallel_parity_t{1,4} re-run this suite under pinned
  // pool sizes, extending the identity across thread counts.
  const std::size_t ell = 10;
  for (const EvalPrecision prec :
       {EvalPrecision::kFp32, EvalPrecision::kBf16, EvalPrecision::kInt8}) {
    SCOPED_TRACE(static_cast<int>(prec));
    Validator par = make_validator(ell, prec, /*parallel_eval=*/true);
    Validator ser = make_validator(ell, prec, /*parallel_eval=*/false);

    std::deque<GlobalModel> window;
    std::uint64_t version = 0;
    window.push_back({version, params_});
    Rng rng(88);
    std::size_t non_abstained = 0;
    for (std::size_t round = 0; round < ell + 5; ++round) {
      const std::vector<GlobalModel> history(window.begin(), window.end());
      const ParamVec candidate = next_params(rng);
      const auto ref = ser.validate(candidate, history);
      const auto got = par.validate(candidate, history);
      expect_same(ref, got);
      if (!ref.abstained) ++non_abstained;
      ++version;
      window.push_back({version, candidate});
      while (window.size() > ell + 1) window.pop_front();
      ser.notify_commit(version, candidate);
      par.notify_commit(version, candidate);
      params_ = candidate;
    }
    ASSERT_GT(non_abstained, 4u);
    for (const auto& entry : window) {
      const ConfusionMatrix* a = ser.cache().find(entry.version);
      const ConfusionMatrix* b = par.cache().find(entry.version);
      EXPECT_EQ(a == nullptr, b == nullptr) << "version " << entry.version;
      if (a != nullptr && b != nullptr) expect_same_cm(*a, *b);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

class BatchedValidatePrecision
    : public BatchedValidate,
      public ::testing::WithParamInterface<EvalPrecision> {};

TEST_P(BatchedValidatePrecision, VotesAndCmsMatchFp32OnSeededScenario) {
  // The reduced-precision arms are evaluation-only: on the seeded
  // scenarios the guard re-runs every low-margin sample in fp32, so
  // predictions — hence confusion matrices, φ, τ and votes — must be
  // identical to the fp32 arm, round after round.
  const std::size_t ell = 10;
  Validator fp32 = make_validator(ell, EvalPrecision::kFp32);
  Validator reduced = make_validator(ell, GetParam());

  std::deque<GlobalModel> window;
  std::uint64_t version = 0;
  window.push_back({version, params_});
  Rng rng(77);
  std::size_t non_abstained = 0;
  for (std::size_t round = 0; round < ell + 6; ++round) {
    const std::vector<GlobalModel> history(window.begin(), window.end());
    const ParamVec candidate = next_params(rng);
    const auto ref = fp32.validate(candidate, history);
    const auto got = reduced.validate(candidate, history);
    expect_same(ref, got);
    if (!ref.abstained) ++non_abstained;
    ++version;
    window.push_back({version, candidate});
    while (window.size() > ell + 1) window.pop_front();
    fp32.notify_commit(version, candidate);
    reduced.notify_commit(version, candidate);
    params_ = candidate;
  }
  ASSERT_GT(non_abstained, 6u);

  // Spot-check the cached confusion matrices behind those votes.
  for (const auto& entry : window) {
    const ConfusionMatrix* a = fp32.cache().find(entry.version);
    const ConfusionMatrix* b = reduced.cache().find(entry.version);
    if (a != nullptr && b != nullptr) expect_same_cm(*a, *b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(ReducedPrecision, BatchedValidatePrecision,
                         ::testing::Values(EvalPrecision::kBf16,
                                           EvalPrecision::kInt8),
                         [](const auto& info) {
                           return info.param == EvalPrecision::kBf16
                                      ? "bf16"
                                      : "int8";
                         });

}  // namespace
}  // namespace baffle

#include "core/history.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

ParamVec params(float v) { return ParamVec{v, v}; }

TEST(ModelHistory, PushAndLatest) {
  ModelHistory h(5);
  EXPECT_TRUE(h.empty());
  h.push(1, params(1.0f));
  h.push(2, params(2.0f));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.latest().version, 2u);
  EXPECT_EQ(h.latest().params[0], 2.0f);
}

TEST(ModelHistory, CapacityEvictsOldest) {
  ModelHistory h(3);
  for (std::uint64_t v = 1; v <= 5; ++v) h.push(v, params(v));
  EXPECT_EQ(h.size(), 3u);
  const auto w = h.window(3);
  EXPECT_EQ(w.front().version, 3u);
  EXPECT_EQ(w.back().version, 5u);
}

TEST(ModelHistory, WindowOldestFirst) {
  ModelHistory h(10);
  for (std::uint64_t v = 1; v <= 6; ++v) h.push(v, params(v));
  const auto w = h.window(4);
  ASSERT_EQ(w.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w[i].version, 3 + i);
  }
}

TEST(ModelHistory, WindowShorterWhenHistoryShort) {
  ModelHistory h(10);
  h.push(1, params(1.0f));
  h.push(2, params(2.0f));
  EXPECT_EQ(h.window(5).size(), 2u);
}

TEST(ModelHistory, WindowZeroIsEmpty) {
  ModelHistory h(4);
  h.push(1, params(1.0f));
  EXPECT_TRUE(h.window(0).empty());
}

TEST(ModelHistory, LatestOnEmptyThrows) {
  ModelHistory h(3);
  EXPECT_THROW(h.latest(), std::out_of_range);
}

TEST(ModelHistory, ZeroCapacityRejected) {
  EXPECT_THROW(ModelHistory(0), std::invalid_argument);
}

TEST(ModelHistory, RejectedModelsNeverEnter) {
  // The defense only pushes on commit; this documents the contract that
  // the history is append-only through push().
  ModelHistory h(4);
  h.push(1, params(1.0f));
  const auto w1 = h.window(4);
  // (no push for a rejected round)
  const auto w2 = h.window(4);
  EXPECT_EQ(w1.size(), w2.size());
}

}  // namespace
}  // namespace baffle

#include "core/error_variation.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

ConfusionMatrix cm_from(std::initializer_list<std::pair<int, int>> pairs,
                        std::size_t classes = 3) {
  ConfusionMatrix cm(classes);
  for (const auto& [t, p] : pairs) cm.record(t, p);
  return cm;
}

TEST(ErrorVariation, IdenticalModelsGiveZeroVector) {
  const auto cm = cm_from({{0, 0}, {1, 2}, {2, 2}});
  const VariationPoint v = error_variation(cm, cm);
  ASSERT_EQ(v.size(), 6u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(ErrorVariation, DimensionIsTwiceNumClasses) {
  const auto cm = cm_from({{0, 0}}, 5);
  EXPECT_EQ(error_variation(cm, cm).size(), 10u);
}

TEST(ErrorVariation, ImprovementIsPositive) {
  // Older model misreads class 0; newer fixes it. v^s_0 = err_old -
  // err_new > 0.
  const auto older = cm_from({{0, 1}, {1, 1}, {2, 2}, {0, 0}});
  const auto newer = cm_from({{0, 0}, {1, 1}, {2, 2}, {0, 0}});
  const VariationPoint v = error_variation(older, newer);
  EXPECT_DOUBLE_EQ(v[0], 0.25);   // source-focused, class 0
  EXPECT_DOUBLE_EQ(v[3 + 1], 0.25);  // target-focused, class 1
}

TEST(ErrorVariation, RegressionIsNegative) {
  const auto older = cm_from({{0, 0}, {1, 1}});
  const auto newer = cm_from({{0, 1}, {1, 1}});
  const VariationPoint v = error_variation(older, newer);
  EXPECT_DOUBLE_EQ(v[0], -0.5);
}

TEST(ErrorVariation, BackdooredModelShiftsSourceAndTargetClasses) {
  // Clean model: everything right. Backdoored model: class 1 (source)
  // samples get labelled 2 (target) — the label-flip signature.
  ConfusionMatrix clean(3), poisoned(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      clean.record(c, c);
      poisoned.record(c, c == 1 ? 2 : c);
    }
  }
  const VariationPoint v = error_variation(clean, poisoned);
  EXPECT_LT(v[1], 0.0);       // source class error increased
  EXPECT_LT(v[3 + 2], 0.0);   // target class absorbs wrong predictions
  EXPECT_DOUBLE_EQ(v[0], 0.0);  // untouched classes unchanged
}

TEST(ErrorVariation, MismatchedClassCountsThrow) {
  const ConfusionMatrix a(2), b(3);
  EXPECT_THROW(error_variation(a, b), std::invalid_argument);
}

TEST(VariationDistance, EuclideanBasics) {
  const VariationPoint a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(variation_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(variation_distance(a, a), 0.0);
}

TEST(VariationDistance, Symmetric) {
  const VariationPoint a{1.0, -2.0, 0.5}, b{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(variation_distance(a, b), variation_distance(b, a));
}

TEST(VariationDistance, DimMismatchThrows) {
  EXPECT_THROW(variation_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

#include "core/prediction_cache.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

ConfusionMatrix cm_with(int t, int p) {
  ConfusionMatrix cm(3);
  cm.record(t, p);
  return cm;
}

TEST(PredictionCache, MissThenHit) {
  PredictionCache cache;
  int evals = 0;
  const auto eval = [&] {
    ++evals;
    return cm_with(0, 0);
  };
  cache.get_or_eval(7, eval);
  cache.get_or_eval(7, eval);
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PredictionCache, DistinctVersionsEvaluatedSeparately) {
  PredictionCache cache;
  int evals = 0;
  for (std::uint64_t v : {1u, 2u, 3u}) {
    cache.get_or_eval(v, [&] {
      ++evals;
      return cm_with(0, 0);
    });
  }
  EXPECT_EQ(evals, 3);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PredictionCache, FindReturnsStoredMatrix) {
  PredictionCache cache;
  cache.insert(5, cm_with(1, 2));
  const ConfusionMatrix* found = cache.find(5);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(1, 2), 1u);
  EXPECT_EQ(cache.find(6), nullptr);
}

TEST(PredictionCache, EvictsSmallestVersionWhenFull) {
  PredictionCache cache(3);
  cache.insert(10, cm_with(0, 0));
  cache.insert(11, cm_with(0, 0));
  cache.insert(12, cm_with(0, 0));
  cache.insert(13, cm_with(0, 0));  // evicts 10
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find(10), nullptr);
  EXPECT_NE(cache.find(13), nullptr);
}

TEST(PredictionCache, EvictedVersionCountsAsMissAgain) {
  PredictionCache cache(2);
  int evals = 0;
  const auto eval = [&] {
    ++evals;
    return cm_with(0, 0);
  };
  cache.get_or_eval(1, eval);
  cache.get_or_eval(2, eval);
  cache.get_or_eval(3, eval);  // evicts version 1
  EXPECT_EQ(cache.find(1), nullptr);
  cache.get_or_eval(1, eval);  // must re-evaluate
  EXPECT_EQ(evals, 4);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 4u);
  cache.get_or_eval(1, eval);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PredictionCache, CapacityOneKeepsOnlyNewest) {
  PredictionCache cache(1);
  cache.insert(5, cm_with(0, 0));
  cache.insert(6, cm_with(1, 1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(5), nullptr);
  ASSERT_NE(cache.find(6), nullptr);
  EXPECT_EQ(cache.find(6)->count(1, 1), 1u);
}

TEST(PredictionCache, InsertOverwritesSameVersion) {
  PredictionCache cache;
  cache.insert(1, cm_with(0, 0));
  cache.insert(1, cm_with(2, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(1)->count(2, 2), 1u);
}

TEST(PredictionCache, PromoteBindsMatrixAndCounts) {
  PredictionCache cache;
  cache.promote(4, cm_with(1, 1));
  EXPECT_EQ(cache.promotions(), 1u);
  ASSERT_NE(cache.find(4), nullptr);
  EXPECT_EQ(cache.find(4)->count(1, 1), 1u);
  // A promoted entry is a plain cache entry afterwards: get_or_eval
  // hits it without re-evaluating.
  int evals = 0;
  cache.get_or_eval(4, [&] {
    ++evals;
    return cm_with(0, 0);
  });
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PredictionCache, PromoteEvictsLikeInsertWhenFull) {
  PredictionCache cache(2);
  cache.insert(1, cm_with(0, 0));
  cache.insert(2, cm_with(0, 0));
  cache.promote(3, cm_with(2, 2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(1), nullptr);  // smallest version evicted
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.find(3)->count(2, 2), 1u);
}

TEST(PredictionCache, OverwriteAtCapacityDoesNotEvict) {
  PredictionCache cache(2);
  cache.insert(1, cm_with(0, 0));
  cache.insert(2, cm_with(0, 0));
  cache.insert(2, cm_with(2, 2));  // overwrite, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2)->count(2, 2), 1u);
}

}  // namespace
}  // namespace baffle

// Round-pipelining determinism: the overlapped accuracy tracking
// (ScenarioConfig::pipeline_rounds) evaluates an immutable snapshot of
// the committed parameters on a pool task, so every RoundRecord must be
// bit-identical to the serial path — timings are the only fields
// allowed to differ.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.train_per_class_override = 80;
  cfg.feedback.quorum = 4;
  cfg.feedback.validator.lookback = 8;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.schedule.poison_rounds = {14, 18};
  cfg.rounds = 22;
  cfg.defense_start = 10;
  cfg.track_accuracy = true;
  return cfg;
}

void expect_rounds_identical(const std::vector<RoundRecord>& a,
                             const std::vector<RoundRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].defense_active, b[i].defense_active);
    EXPECT_EQ(a[i].poisoned, b[i].poisoned);
    EXPECT_EQ(a[i].rejected, b[i].rejected);
    EXPECT_EQ(a[i].main_accuracy, b[i].main_accuracy);
    EXPECT_EQ(a[i].backdoor_accuracy, b[i].backdoor_accuracy);
    EXPECT_EQ(a[i].reject_votes, b[i].reject_votes);
    EXPECT_EQ(a[i].num_validators, b[i].num_validators);
  }
}

void expect_results_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  expect_rounds_identical(a.rounds, b.rounds);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.injections[i].round, b.injections[i].round);
    EXPECT_EQ(a.injections[i].rejected, b.injections[i].rejected);
  }
  EXPECT_EQ(a.rates.false_positives, b.rates.false_positives);
  EXPECT_EQ(a.rates.false_negatives, b.rates.false_negatives);
  EXPECT_EQ(a.final_main_accuracy, b.final_main_accuracy);
  EXPECT_EQ(a.final_backdoor_accuracy, b.final_backdoor_accuracy);
  EXPECT_EQ(a.adaptive_skipped, b.adaptive_skipped);
}

TEST(PipelineParity, PipelinedRunMatchesSerialBitExact) {
  ExperimentConfig cfg = small_config();
  cfg.scenario.pipeline_rounds = true;
  const auto pipelined = run_experiment(cfg, 31);
  cfg.scenario.pipeline_rounds = false;
  const auto serial = run_experiment(cfg, 31);
  expect_results_identical(pipelined, serial);
}

TEST(PipelineParity, PipelinedAdaptiveRunMatchesSerialBitExact) {
  // The adaptive attacker pulls the defense window mid-round; the
  // overlapped accuracy task must not perturb any of its decisions.
  ExperimentConfig cfg = small_config();
  cfg.schedule.adaptive = true;
  cfg.scenario.pipeline_rounds = true;
  const auto pipelined = run_experiment(cfg, 33);
  cfg.scenario.pipeline_rounds = false;
  const auto serial = run_experiment(cfg, 33);
  expect_results_identical(pipelined, serial);
}

TEST(PipelineParity, PipelinedRejectionRoundsKeepOldSnapshot) {
  // Force rejections (quorum 1 + strict margin) so rejected rounds'
  // records are produced from the *previous* committed snapshot, and
  // check those against the serial path too.
  ExperimentConfig cfg = small_config();
  cfg.feedback.quorum = 1;
  cfg.feedback.validator.tau_margin = 0.5;
  cfg.scenario.pipeline_rounds = true;
  const auto pipelined = run_experiment(cfg, 35);
  cfg.scenario.pipeline_rounds = false;
  const auto serial = run_experiment(cfg, 35);
  std::size_t rejects = 0;
  for (const auto& r : serial.rounds) rejects += r.rejected ? 1u : 0u;
  EXPECT_GT(rejects, 0u);
  expect_results_identical(pipelined, serial);
}

TEST(PipelineParity, RunRepeatedNestsPipelinedRunsInsidePool) {
  // Each repetition is itself a pool task that submits pipelined
  // accuracy tasks; the help-drain join must not deadlock even on a
  // single-worker pool, and results must equal standalone runs.
  ExperimentConfig cfg = small_config();
  cfg.rounds = 14;
  cfg.scenario.pipeline_rounds = true;
  const auto repeated = run_repeated(cfg, 3, 70);
  ASSERT_EQ(repeated.runs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    const auto standalone = run_experiment(cfg, 70 + i);
    expect_results_identical(repeated.runs[i], standalone);
  }
}

TEST(PipelineParity, TransportModePipelinedMatchesSerialBitExact) {
  // Transport mode routes proposals and votes through the wire-protocol
  // round driver; the graph-scheduled eval nodes must not perturb any
  // of its decisions or byte accounting.
  ExperimentConfig cfg = small_config();
  cfg.rounds = 16;
  cfg.transport = true;
  cfg.scenario.pipeline_rounds = true;
  const auto pipelined = run_experiment(cfg, 37);
  cfg.scenario.pipeline_rounds = false;
  const auto serial = run_experiment(cfg, 37);
  expect_results_identical(pipelined, serial);
  EXPECT_EQ(pipelined.wire_bytes, serial.wire_bytes);
  EXPECT_EQ(pipelined.comm.total_bytes(), serial.comm.total_bytes());
}

}  // namespace
}  // namespace baffle

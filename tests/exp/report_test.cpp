#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace baffle {
namespace {

TEST(Report, FormatMeanStd) {
  EXPECT_EQ(format_mean_std({0.021, 0.017}), "0.021 +/- 0.017");
  EXPECT_EQ(format_mean_std({0.0, 0.0}, 1), "0.0 +/- 0.0");
}

TEST(Report, FormatRate) {
  EXPECT_EQ(format_rate(0.5), "0.500");
  EXPECT_EQ(format_rate(1.0, 1), "1.0");
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.row({"xxxxx", "y"});
  const std::string out = t.render();
  // Header, separator, one row.
  EXPECT_NE(out.find("a      bbbb"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  y"), std::string::npos);
}

TEST(Report, TextTableRejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.row({"only"}), std::invalid_argument);
}

TEST(Report, BenchRepsEnvOverride) {
  setenv("BAFFLE_BENCH_REPS", "7", 1);
  EXPECT_EQ(bench_reps(), 7u);
  setenv("BAFFLE_BENCH_REPS", "bogus", 1);
  EXPECT_EQ(bench_reps(), 3u);  // default on parse failure
  unsetenv("BAFFLE_BENCH_REPS");
  EXPECT_EQ(bench_reps(), 3u);
}

TEST(Report, BenchFastEnv) {
  unsetenv("BAFFLE_BENCH_FAST");
  EXPECT_FALSE(bench_fast());
  setenv("BAFFLE_BENCH_FAST", "1", 1);
  EXPECT_TRUE(bench_fast());
  setenv("BAFFLE_BENCH_FAST", "0", 1);
  EXPECT_FALSE(bench_fast());
  unsetenv("BAFFLE_BENCH_FAST");
}

}  // namespace
}  // namespace baffle

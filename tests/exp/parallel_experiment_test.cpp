// Experiment-level determinism under round parallelism.
//
// The adaptive provider lives inside experiment.cpp, so its concurrency
// safety (atomic submitted_/alpha_, single attacker task per round) is
// exercised through run_experiment: a run with parallel rounds must be
// bit-identical to the serial baseline. run_repeated additionally nests
// whole runs inside the pool, so its results double as a smoke test for
// nested fork-join scheduling.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.train_per_class_override = 80;
  cfg.feedback.quorum = 4;
  cfg.feedback.validator.lookback = 8;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.schedule.poison_rounds = {14, 18};
  cfg.rounds = 22;
  cfg.defense_start = 10;
  cfg.track_accuracy = true;
  return cfg;
}

/// Everything in a RoundRecord except the wall-clock timings, which are
/// the only fields allowed to differ between serial and parallel runs.
void expect_rounds_identical(const std::vector<RoundRecord>& a,
                             const std::vector<RoundRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].defense_active, b[i].defense_active);
    EXPECT_EQ(a[i].poisoned, b[i].poisoned);
    EXPECT_EQ(a[i].rejected, b[i].rejected);
    EXPECT_EQ(a[i].main_accuracy, b[i].main_accuracy);
    EXPECT_EQ(a[i].backdoor_accuracy, b[i].backdoor_accuracy);
    EXPECT_EQ(a[i].reject_votes, b[i].reject_votes);
    EXPECT_EQ(a[i].num_validators, b[i].num_validators);
  }
}

void expect_results_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  expect_rounds_identical(a.rounds, b.rounds);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.injections[i].round, b.injections[i].round);
    EXPECT_EQ(a.injections[i].adaptive, b.injections[i].adaptive);
    EXPECT_EQ(a.injections[i].alpha, b.injections[i].alpha);
    EXPECT_EQ(a.injections[i].rejected, b.injections[i].rejected);
  }
  EXPECT_EQ(a.rates.false_positives, b.rates.false_positives);
  EXPECT_EQ(a.rates.false_negatives, b.rates.false_negatives);
  EXPECT_EQ(a.final_main_accuracy, b.final_main_accuracy);
  EXPECT_EQ(a.final_backdoor_accuracy, b.final_backdoor_accuracy);
  EXPECT_EQ(a.adaptive_skipped, b.adaptive_skipped);
}

TEST(ParallelExperiment, ReplacementRunMatchesSerialBitExact) {
  ExperimentConfig cfg = small_config();
  cfg.scenario.parallel_rounds = true;
  const auto parallel = run_experiment(cfg, 21);
  cfg.scenario.parallel_rounds = false;
  const auto serial = run_experiment(cfg, 21);
  expect_results_identical(parallel, serial);
}

TEST(ParallelExperiment, AdaptiveRunMatchesSerialBitExact) {
  ExperimentConfig cfg = small_config();
  cfg.schedule.adaptive = true;
  cfg.scenario.parallel_rounds = true;
  const auto parallel = run_experiment(cfg, 23);
  cfg.scenario.parallel_rounds = false;
  const auto serial = run_experiment(cfg, 23);
  expect_results_identical(parallel, serial);
}

TEST(ParallelExperiment, ParallelEngineNestsInPipelinedRepeatedRuns) {
  // Deepest nesting the runtime supports: the pool-parallel evaluation
  // engine (DESIGN.md §17) runs inside a validator task of a pipelined
  // task-graph round, itself a repetition task of run_repeated — three
  // levels of fork-join on one pool, safe because validate() never
  // holds its lock across a pool wait and waiters help-drain. The
  // engine's thread placement must not leak into results: runs with
  // parallel_eval on and off are bit-identical.
  ExperimentConfig cfg = small_config();
  cfg.rounds = 14;
  cfg.track_accuracy = false;
  cfg.scenario.parallel_rounds = true;
  cfg.scenario.pipeline_rounds = true;
  cfg.feedback.validator.parallel_eval = true;
  const auto nested = run_repeated(cfg, 2, 131);
  cfg.feedback.validator.parallel_eval = false;
  const auto serial_engine = run_repeated(cfg, 2, 131);
  ASSERT_EQ(nested.runs.size(), 2u);
  ASSERT_EQ(serial_engine.runs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    SCOPED_TRACE(i);
    expect_results_identical(nested.runs[i], serial_engine.runs[i]);
  }
}

TEST(ParallelExperiment, RunRepeatedNestsInsidePool) {
  // Repetitions run as pool tasks; each repetition's rounds then issue
  // their own parallel_for. The help-drain pool makes that safe, and
  // pre-forked Rngs make each repetition's result independent of
  // scheduling — so the nested runs must equal standalone ones.
  ExperimentConfig cfg = small_config();
  cfg.rounds = 14;
  cfg.track_accuracy = false;
  const auto repeated = run_repeated(cfg, 3, 90);
  ASSERT_EQ(repeated.runs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    const auto standalone = run_experiment(cfg, 90 + i);
    expect_results_identical(repeated.runs[i], standalone);
  }
}

}  // namespace
}  // namespace baffle

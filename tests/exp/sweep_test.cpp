// Sweep orchestrator: cross-product enumeration, seed determinism, and
// bit-parity between the serial cell loop and the task-graph fan-out.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/sweep.hpp"

namespace baffle {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 30;
  cfg.scenario.train_per_class_override = 60;
  cfg.feedback.quorum = 3;
  cfg.feedback.validator.lookback = 8;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.schedule.poison_rounds = {11};
  cfg.rounds = 14;
  cfg.defense_start = 8;
  cfg.track_accuracy = true;
  return cfg;
}

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.axes = {
      {"lookback",
       {{"6", [](ExperimentConfig& c) { c.feedback.validator.lookback = 6; }},
        {"8",
         [](ExperimentConfig& c) { c.feedback.validator.lookback = 8; }}}},
      {"q",
       {{"2", [](ExperimentConfig& c) { c.feedback.quorum = 2; }},
        {"3", [](ExperimentConfig& c) { c.feedback.quorum = 3; }}}}};
  spec.reps = 2;
  spec.base_seed = 5;
  return spec;
}

void expect_rows_identical(const SweepRepRow& a, const SweepRepRow& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.rates.false_positives, b.rates.false_positives);
  EXPECT_EQ(a.rates.false_negatives, b.rates.false_negatives);
  EXPECT_EQ(a.rates.clean_rounds, b.rates.clean_rounds);
  EXPECT_EQ(a.rates.poisoned_rounds, b.rates.poisoned_rounds);
  EXPECT_EQ(a.final_main_accuracy, b.final_main_accuracy);
  EXPECT_EQ(a.final_backdoor_accuracy, b.final_backdoor_accuracy);
  EXPECT_EQ(a.adaptive_skipped, b.adaptive_skipped);
}

TEST(Sweep, EnumerateCellsIsRowMajorWithComposedNames) {
  const auto cells = enumerate_cells(tiny_spec());
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].name, "lookback=6,q=2");
  EXPECT_EQ(cells[1].name, "lookback=6,q=3");
  EXPECT_EQ(cells[2].name, "lookback=8,q=2");
  EXPECT_EQ(cells[3].name, "lookback=8,q=3");
  EXPECT_EQ(cells[1].config.feedback.validator.lookback, 6u);
  EXPECT_EQ(cells[1].config.feedback.quorum, 3u);
  EXPECT_EQ(cells[3].config.feedback.validator.lookback, 8u);
  EXPECT_EQ(cells[3].config.feedback.quorum, 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].seed, sweep_cell_seed(5, i));
  }
}

TEST(Sweep, CellSeedsArePureAndDistinct) {
  // Seeds depend on nothing but (base_seed, index): same inputs, same
  // seed — and nearby indices land in unrelated stream regions.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(sweep_cell_seed(5, i), sweep_cell_seed(5, i));
    for (std::size_t j = i + 1; j < 64; ++j) {
      EXPECT_NE(sweep_cell_seed(5, i), sweep_cell_seed(5, j));
    }
  }
  EXPECT_NE(sweep_cell_seed(5, 0), sweep_cell_seed(6, 0));
}

TEST(Sweep, EmptyAxisAndZeroRepsThrow) {
  SweepSpec spec = tiny_spec();
  spec.axes[1].values.clear();
  EXPECT_THROW(enumerate_cells(spec), std::invalid_argument);
  SweepSpec no_reps = tiny_spec();
  no_reps.reps = 0;
  EXPECT_THROW(run_sweep(no_reps), std::invalid_argument);
}

TEST(Sweep, ParallelDriverMatchesSerialBitExact) {
  const SweepSpec spec = tiny_spec();
  const SweepResult parallel = run_sweep(spec, /*parallel=*/true);
  const SweepResult serial = run_sweep(spec, /*parallel=*/false);
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t c = 0; c < parallel.cells.size(); ++c) {
    SCOPED_TRACE(parallel.cells[c].name);
    EXPECT_EQ(parallel.cells[c].name, serial.cells[c].name);
    ASSERT_EQ(parallel.cells[c].reps.size(), serial.cells[c].reps.size());
    for (std::size_t i = 0; i < spec.reps; ++i) {
      SCOPED_TRACE(i);
      expect_rows_identical(parallel.cells[c].reps[i],
                            serial.cells[c].reps[i]);
    }
    EXPECT_EQ(parallel.cells[c].fp.mean, serial.cells[c].fp.mean);
    EXPECT_EQ(parallel.cells[c].fn.mean, serial.cells[c].fn.mean);
  }
}

TEST(Sweep, SingleCellSweepMatchesRunRepeated) {
  // A one-cell sweep is exactly run_repeated seeded with the cell seed:
  // repetition i runs with cell_seed + i in both drivers.
  SweepSpec spec;
  spec.base = tiny_config();
  spec.axes = {{"lookback", {{"8", nullptr}}}};
  spec.reps = 2;
  spec.base_seed = 9;
  const SweepResult swept = run_sweep(spec);
  ASSERT_EQ(swept.cells.size(), 1u);
  const RepeatedResult repeated =
      run_repeated(spec.base, spec.reps, sweep_cell_seed(9, 0));
  for (std::size_t i = 0; i < spec.reps; ++i) {
    SCOPED_TRACE(i);
    const auto& row = swept.cells[0].reps[i];
    const auto& run = repeated.runs[i];
    EXPECT_EQ(row.rates.false_positives, run.rates.false_positives);
    EXPECT_EQ(row.rates.false_negatives, run.rates.false_negatives);
    EXPECT_EQ(row.final_main_accuracy, run.final_main_accuracy);
    EXPECT_EQ(row.final_backdoor_accuracy, run.final_backdoor_accuracy);
  }
  EXPECT_EQ(swept.cells[0].fp.mean, repeated.fp.mean);
  EXPECT_EQ(swept.cells[0].fn.mean, repeated.fn.mean);
}

TEST(Sweep, CsvEmittersWriteDeterministicTables) {
  const SweepSpec spec = tiny_spec();
  const SweepResult result = run_sweep(spec);
  const std::string dir = ::testing::TempDir();
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  write_sweep_csv(spec, result, dir + "/sweep_a.csv");
  write_sweep_csv(spec, result, dir + "/sweep_b.csv");
  const std::string agg = slurp(dir + "/sweep_a.csv");
  EXPECT_EQ(agg, slurp(dir + "/sweep_b.csv"));
  EXPECT_EQ(agg.substr(0, agg.find('\n')),
            "cell,lookback,q,reps,fp_mean,fp_std,fn_mean,fn_std,"
            "main_acc_mean,main_acc_std,backdoor_acc_mean,backdoor_acc_std");
  // One header + one row per cell, no timing columns anywhere.
  EXPECT_EQ(std::count(agg.begin(), agg.end(), '\n'),
            static_cast<std::ptrdiff_t>(1 + result.cells.size()));

  write_cell_csv(result.cells[0], dir + "/cell_a.csv");
  write_cell_csv(result.cells[0], dir + "/cell_b.csv");
  const std::string cell = slurp(dir + "/cell_a.csv");
  EXPECT_EQ(cell, slurp(dir + "/cell_b.csv"));
  EXPECT_EQ(std::count(cell.begin(), cell.end(), '\n'),
            static_cast<std::ptrdiff_t>(1 + spec.reps));
}

}  // namespace
}  // namespace baffle

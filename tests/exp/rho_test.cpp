#include "exp/rho.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

ExperimentResult with_injections(
    std::initializer_list<std::pair<std::size_t, std::size_t>>
        votes_and_voters) {
  ExperimentResult result;
  for (const auto& [votes, voters] : votes_and_voters) {
    InjectionRecord inj;
    inj.reject_votes = votes;
    inj.total_voters = voters;
    result.injections.push_back(inj);
  }
  return result;
}

TEST(RhoEstimate, WorstCaseOverInjections) {
  const auto runs = std::vector<ExperimentResult>{
      with_injections({{8, 10}, {5, 10}, {9, 10}})};
  const RhoEstimate est = estimate_rho(runs);
  EXPECT_DOUBLE_EQ(est.rho, 0.5);  // worst case: 5/10 wrong
  EXPECT_NEAR(est.mean_rho, (0.2 + 0.5 + 0.1) / 3.0, 1e-12);
  EXPECT_EQ(est.injections, 3u);
}

TEST(RhoEstimate, PaperToleranceNumbers) {
  // rho = 0.5, n = 10 -> n_M < 10/3 -> 3 tolerable.
  const auto runs =
      std::vector<ExperimentResult>{with_injections({{5, 10}})};
  EXPECT_EQ(estimate_rho(runs).tolerable_malicious, 3u);
}

TEST(RhoEstimate, AllDetectedGivesZeroRho) {
  const auto runs =
      std::vector<ExperimentResult>{with_injections({{10, 10}, {10, 10}})};
  const RhoEstimate est = estimate_rho(runs);
  EXPECT_DOUBLE_EQ(est.rho, 0.0);
  EXPECT_EQ(est.tolerable_malicious, 4u);  // n_M < n/2
}

TEST(RhoEstimate, EmptyInputsGiveZeroEstimate) {
  const RhoEstimate est = estimate_rho({});
  EXPECT_EQ(est.injections, 0u);
  EXPECT_DOUBLE_EQ(est.rho, 0.0);
  EXPECT_EQ(est.tolerable_malicious, 0u);
}

TEST(RhoEstimate, SkipsVoterlessInjections) {
  const auto runs =
      std::vector<ExperimentResult>{with_injections({{0, 0}, {7, 10}})};
  const RhoEstimate est = estimate_rho(runs);
  EXPECT_EQ(est.injections, 1u);
  EXPECT_DOUBLE_EQ(est.rho, 0.3);
}

TEST(RhoEstimate, PoolsAcrossRuns) {
  const std::vector<ExperimentResult> runs{
      with_injections({{9, 10}}), with_injections({{6, 10}})};
  EXPECT_DOUBLE_EQ(estimate_rho(runs).rho, 0.4);
}

}  // namespace
}  // namespace baffle

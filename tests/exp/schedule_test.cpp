#include "exp/schedule.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(Schedule, StableScenarioRounds) {
  const auto s = AttackSchedule::stable_scenario();
  EXPECT_EQ(s.poison_rounds, (std::vector<std::size_t>{30, 35, 40}));
  EXPECT_FALSE(s.adaptive);
  EXPECT_TRUE(s.is_poison_round(35));
  EXPECT_FALSE(s.is_poison_round(36));
}

TEST(Schedule, EarlyScenarioMatchesPaper) {
  const auto s = AttackSchedule::early_scenario();
  // Injections at 100, 300, then every 15 rounds in [530, 680].
  EXPECT_TRUE(s.is_poison_round(100));
  EXPECT_TRUE(s.is_poison_round(300));
  EXPECT_TRUE(s.is_poison_round(530));
  EXPECT_TRUE(s.is_poison_round(545));
  EXPECT_TRUE(s.is_poison_round(680));
  EXPECT_FALSE(s.is_poison_round(695));
  EXPECT_FALSE(s.is_poison_round(531));
  // 2 early + 11 late.
  EXPECT_EQ(s.poison_rounds.size(), 13u);
}

TEST(Schedule, NoneIsEmpty) {
  const auto s = AttackSchedule::none();
  EXPECT_TRUE(s.poison_rounds.empty());
  EXPECT_FALSE(s.is_poison_round(1));
}

}  // namespace
}  // namespace baffle

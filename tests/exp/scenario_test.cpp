#include "exp/scenario.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(Scenario, VisionPresetFields) {
  const ScenarioConfig cfg = vision_scenario(0.05);
  EXPECT_EQ(cfg.task, TaskKind::kVision10);
  EXPECT_EQ(cfg.clients_per_round, 10u);
  EXPECT_DOUBLE_EQ(cfg.server_fraction, 0.05);
  EXPECT_DOUBLE_EQ(cfg.dirichlet_alpha, 0.9);
}

TEST(Scenario, FemnistPresetFields) {
  const ScenarioConfig cfg = femnist_scenario(0.001);
  EXPECT_EQ(cfg.task, TaskKind::kFemnist62);
  EXPECT_EQ(cfg.num_clients, 355u);
  EXPECT_DOUBLE_EQ(cfg.server_fraction, 0.001);
}

TEST(Scenario, BuildPartitionsAllTrainingData) {
  Rng rng(1);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 200;
  const Scenario s = build_scenario(cfg, rng);
  std::size_t client_total = 0;
  for (const auto& c : s.clients) client_total += c.data().size();
  EXPECT_EQ(client_total + s.server_holdout.size(), s.task.train.size());
  EXPECT_EQ(s.clients.size(), cfg.num_clients);
}

TEST(Scenario, ServerFractionRespected) {
  Rng rng(2);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 200;
  const Scenario s = build_scenario(cfg, rng);
  const double frac = static_cast<double>(s.server_holdout.size()) /
                      static_cast<double>(s.task.train.size());
  EXPECT_NEAR(frac, 0.10, 0.01);
}

TEST(Scenario, AttackerHoldsMostSourceClassData) {
  Rng rng(3);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 300;
  const Scenario s = build_scenario(cfg, rng);
  const auto source = static_cast<std::size_t>(s.backdoor.source_class);
  const std::size_t attacker_count =
      s.clients[s.attacker_id].data().class_counts()[source];
  for (const auto& c : s.clients) {
    EXPECT_LE(c.data().class_counts()[source], attacker_count);
  }
}

TEST(Scenario, GlobalLrAndArchDerived) {
  Rng rng(4);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 100;
  const Scenario s = build_scenario(cfg, rng);
  EXPECT_DOUBLE_EQ(s.fl.global_lr, 1.0);
  EXPECT_EQ(s.arch.layer_dims.front(), s.task.config.dim);
  EXPECT_EQ(s.arch.layer_dims.back(), s.task.config.num_classes);
  EXPECT_EQ(s.fl.local_train.epochs, 2u);  // paper: 2 local epochs
  EXPECT_FLOAT_EQ(s.fl.local_train.sgd.learning_rate, 0.1f);  // paper
}

TEST(Scenario, BackdoorOverrideApplies) {
  Rng rng(5);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 100;
  cfg.backdoor_override = BackdoorKind::kTrigger;
  const Scenario s = build_scenario(cfg, rng);
  EXPECT_EQ(s.backdoor.kind, BackdoorKind::kTrigger);
  EXPECT_EQ(s.task.config.backdoor_kind, BackdoorKind::kTrigger);
}

TEST(Scenario, IidSwitchBalancesClients) {
  Rng rng(6);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.train_per_class_override = 300;
  cfg.iid = true;
  const Scenario s = build_scenario(cfg, rng);
  // IID shards have near-identical sizes.
  std::size_t mn = SIZE_MAX, mx = 0;
  for (const auto& c : s.clients) {
    mn = std::min(mn, c.data().size());
    mx = std::max(mx, c.data().size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(Scenario, RejectsBadClientsPerRound) {
  Rng rng(7);
  ScenarioConfig cfg = vision_scenario(0.10);
  cfg.clients_per_round = cfg.num_clients + 1;
  EXPECT_THROW(build_scenario(cfg, rng), std::invalid_argument);
}

TEST(Scenario, TaskKindNames) {
  EXPECT_STREQ(task_kind_name(TaskKind::kVision10), "vision10");
  EXPECT_STREQ(task_kind_name(TaskKind::kFemnist62), "femnist62");
}

}  // namespace
}  // namespace baffle

// Transport determinism: running the round loop over the wire protocol
// (ExperimentConfig::transport — typed frames, per-client sessions, an
// in-process transport, actor tasks on the thread pool) must produce
// RoundRecords bit-identical to the direct in-process path. Serializing
// a model and voting on a decoded copy is only a refactor if not a
// single bit moves — these tests are the proof.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace baffle {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario = vision_scenario(0.10);
  cfg.scenario.num_clients = 40;
  cfg.scenario.train_per_class_override = 80;
  cfg.feedback.quorum = 4;
  cfg.feedback.validator.lookback = 8;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.schedule.poison_rounds = {14, 18};
  cfg.rounds = 22;
  cfg.defense_start = 10;
  cfg.track_accuracy = true;
  return cfg;
}

void expect_rounds_identical(const std::vector<RoundRecord>& a,
                             const std::vector<RoundRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].defense_active, b[i].defense_active);
    EXPECT_EQ(a[i].poisoned, b[i].poisoned);
    EXPECT_EQ(a[i].rejected, b[i].rejected);
    EXPECT_EQ(a[i].main_accuracy, b[i].main_accuracy);
    EXPECT_EQ(a[i].backdoor_accuracy, b[i].backdoor_accuracy);
    EXPECT_EQ(a[i].reject_votes, b[i].reject_votes);
    EXPECT_EQ(a[i].num_validators, b[i].num_validators);
  }
}

void expect_results_identical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  expect_rounds_identical(a.rounds, b.rounds);
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.injections[i].round, b.injections[i].round);
    EXPECT_EQ(a.injections[i].rejected, b.injections[i].rejected);
  }
  EXPECT_EQ(a.rates.false_positives, b.rates.false_positives);
  EXPECT_EQ(a.rates.false_negatives, b.rates.false_negatives);
  EXPECT_EQ(a.final_main_accuracy, b.final_main_accuracy);
  EXPECT_EQ(a.final_backdoor_accuracy, b.final_backdoor_accuracy);
  EXPECT_EQ(a.adaptive_skipped, b.adaptive_skipped);
}

TEST(TransportParity, TransportRunMatchesInProcessBitExact) {
  ExperimentConfig cfg = small_config();
  cfg.transport = true;
  const auto wired = run_experiment(cfg, 31);
  cfg.transport = false;
  const auto direct = run_experiment(cfg, 31);
  expect_results_identical(wired, direct);

  // Exact accounting: the tracker's per-category totals must equal the
  // raw bytes the channels counted — to the byte, in both directions.
  EXPECT_GT(wired.wire_bytes, 0u);
  EXPECT_EQ(wired.comm.total_bytes(), wired.wire_bytes);
  // The direct path does no wire accounting at all.
  EXPECT_EQ(direct.wire_bytes, 0u);
  EXPECT_EQ(direct.comm.total_bytes(), 0u);
}

TEST(TransportParity, RejectionHeavyRunMatchesBitExact) {
  // Rejected rounds exercise the reject half of the RoundResult
  // protocol (validators roll back the candidate) and the commit-clock
  // in the tracker; force plenty of them.
  ExperimentConfig cfg = small_config();
  cfg.feedback.quorum = 1;
  cfg.feedback.validator.tau_margin = 0.5;
  cfg.transport = true;
  const auto wired = run_experiment(cfg, 35);
  cfg.transport = false;
  const auto direct = run_experiment(cfg, 35);
  std::size_t rejects = 0;
  for (const auto& r : direct.rounds) rejects += r.rejected ? 1u : 0u;
  EXPECT_GT(rejects, 0u);
  expect_results_identical(wired, direct);
  EXPECT_EQ(wired.comm.total_bytes(), wired.wire_bytes);
}

TEST(TransportParity, SeparateValidatorsAndDropoutMatchBitExact) {
  // Independent validator draws change who holds which window state
  // (sessions go stale and re-sync via larger deltas), and dropout
  // exercises footnote 1's accept-by-default on short voter sets.
  ExperimentConfig cfg = small_config();
  cfg.separate_validators = true;
  cfg.validator_dropout = 0.3;
  cfg.transport = true;
  const auto wired = run_experiment(cfg, 37);
  cfg.transport = false;
  const auto direct = run_experiment(cfg, 37);
  expect_results_identical(wired, direct);
  EXPECT_EQ(wired.comm.total_bytes(), wired.wire_bytes);
}

}  // namespace
}  // namespace baffle

#include "metrics/confusion.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(ConfusionMatrix, AccuracyAndError) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  cm.record(1, 1);
  cm.record(2, 0);  // wrong
  cm.record(2, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.error(), 0.25);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, RecordValidatesRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.record(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.record(0, -1), std::invalid_argument);
}

TEST(ConfusionMatrix, ZeroClassesRejected) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, SourceFocusedErrorsNormalizedByTotal) {
  // err^{y->*}: fraction of ALL samples that are class y and misread.
  ConfusionMatrix cm(2);
  cm.record(0, 1);  // class 0 misread
  cm.record(0, 0);
  cm.record(1, 1);
  cm.record(1, 1);
  const auto e = cm.source_focused_errors();
  EXPECT_DOUBLE_EQ(e[0], 0.25);
  EXPECT_DOUBLE_EQ(e[1], 0.0);
}

TEST(ConfusionMatrix, TargetFocusedErrorsNormalizedByTotal) {
  // err^{*->y}: fraction of ALL samples wrongly assigned TO class y.
  ConfusionMatrix cm(2);
  cm.record(0, 1);
  cm.record(1, 1);
  cm.record(1, 1);
  cm.record(0, 0);
  const auto e = cm.target_focused_errors();
  EXPECT_DOUBLE_EQ(e[1], 0.25);
  EXPECT_DOUBLE_EQ(e[0], 0.0);
}

TEST(ConfusionMatrix, SourceErrorsSumEqualsTotalError) {
  ConfusionMatrix cm(3);
  cm.record(0, 1);
  cm.record(1, 2);
  cm.record(2, 2);
  cm.record(0, 0);
  const auto src = cm.source_focused_errors();
  const auto tgt = cm.target_focused_errors();
  double src_total = 0.0, tgt_total = 0.0;
  for (double e : src) src_total += e;
  for (double e : tgt) tgt_total += e;
  EXPECT_NEAR(src_total, cm.error(), 1e-12);
  EXPECT_NEAR(tgt_total, cm.error(), 1e-12);
}

TEST(ConfusionMatrix, PerClassErrorRatesNormalizedPerClass) {
  ConfusionMatrix cm(2);
  cm.record(0, 1);
  cm.record(0, 1);
  cm.record(0, 0);
  cm.record(1, 1);
  const auto rates = cm.per_class_error_rates();
  EXPECT_NEAR(rates[0], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(ConfusionMatrix, PerClassErrorEmptyClassIsZero) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  EXPECT_DOUBLE_EQ(cm.per_class_error_rates()[2], 0.0);
}

TEST(EvaluateConfusion, MatchesModelPredictions) {
  // Linear model biased to always predict class 1.
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  std::vector<float> params(model.num_params(), 0.0f);
  params.back() = 5.0f;  // class-1 bias
  model.set_parameters(params);

  Dataset data(2, 2);
  data.add({{0.0f, 0.0f}, 0});
  data.add({{0.0f, 0.0f}, 1});
  data.add({{0.0f, 0.0f}, 1});
  const ConfusionMatrix cm = evaluate_confusion(model, data);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(EvaluateConfusion, EmptyDatasetGivesEmptyMatrix) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  const Dataset data(2, 2);
  const ConfusionMatrix cm = evaluate_confusion(model, data);
  EXPECT_EQ(cm.total(), 0u);
}

}  // namespace
}  // namespace baffle

#include "metrics/rates.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

RoundRecord make_round(std::size_t r, bool active, bool poisoned,
                       bool rejected) {
  RoundRecord rec;
  rec.round = r;
  rec.defense_active = active;
  rec.poisoned = poisoned;
  rec.rejected = rejected;
  return rec;
}

TEST(DetectionRates, PerfectDetection) {
  std::vector<RoundRecord> rounds;
  for (std::size_t r = 1; r <= 10; ++r) {
    const bool poisoned = (r == 5);
    rounds.push_back(make_round(r, true, poisoned, poisoned));
  }
  const auto rates = compute_detection_rates(rounds);
  EXPECT_DOUBLE_EQ(rates.fp_rate, 0.0);
  EXPECT_DOUBLE_EQ(rates.fn_rate, 0.0);
  EXPECT_EQ(rates.clean_rounds, 9u);
  EXPECT_EQ(rates.poisoned_rounds, 1u);
}

TEST(DetectionRates, MissedInjectionCountsAsFalseNegative) {
  std::vector<RoundRecord> rounds{
      make_round(1, true, true, false),
      make_round(2, true, true, true),
  };
  const auto rates = compute_detection_rates(rounds);
  EXPECT_DOUBLE_EQ(rates.fn_rate, 0.5);
  EXPECT_EQ(rates.false_negatives, 1u);
}

TEST(DetectionRates, RejectedCleanRoundCountsAsFalsePositive) {
  std::vector<RoundRecord> rounds{
      make_round(1, true, false, true),
      make_round(2, true, false, false),
      make_round(3, true, false, false),
      make_round(4, true, false, false),
  };
  const auto rates = compute_detection_rates(rounds);
  EXPECT_DOUBLE_EQ(rates.fp_rate, 0.25);
}

TEST(DetectionRates, InactiveRoundsExcluded) {
  std::vector<RoundRecord> rounds{
      make_round(1, false, true, false),   // undetectable: defense off
      make_round(2, false, false, false),
      make_round(3, true, false, false),
  };
  const auto rates = compute_detection_rates(rounds);
  EXPECT_EQ(rates.clean_rounds, 1u);
  EXPECT_EQ(rates.poisoned_rounds, 0u);
  EXPECT_DOUBLE_EQ(rates.fn_rate, 0.0);
}

TEST(DetectionRates, EmptyInput) {
  const auto rates = compute_detection_rates({});
  EXPECT_DOUBLE_EQ(rates.fp_rate, 0.0);
  EXPECT_DOUBLE_EQ(rates.fn_rate, 0.0);
}

TEST(DetectionRates, AllPoisonedNoClean) {
  std::vector<RoundRecord> rounds{
      make_round(1, true, true, true),
      make_round(2, true, true, false),
      make_round(3, true, true, false),
  };
  const auto rates = compute_detection_rates(rounds);
  EXPECT_EQ(rates.clean_rounds, 0u);
  EXPECT_DOUBLE_EQ(rates.fp_rate, 0.0);  // no clean rounds: rate stays 0
  EXPECT_NEAR(rates.fn_rate, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace baffle

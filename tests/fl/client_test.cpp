#include "fl/client.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace baffle {
namespace {

Dataset blob_data(int label_offset, std::size_t n) {
  Dataset d(2, 2);
  Rng rng(42 + label_offset);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 2);
    d.add({{static_cast<float>(rng.normal(y == 0 ? -2 : 2, 0.4)),
            static_cast<float>(rng.normal())},
           y});
  }
  return d;
}

Mlp fresh_model() {
  Mlp m(MlpConfig{{2, 4, 2}, Activation::kRelu});
  Rng rng(7);
  m.init(rng);
  return m;
}

TEST(FlClient, UpdateHasModelSize) {
  const FlClient client(3, blob_data(0, 40));
  Mlp global = fresh_model();
  Rng rng(1);
  const ParamVec u = client.compute_update(global, TrainConfig{}, rng);
  EXPECT_EQ(u.size(), global.num_params());
  EXPECT_EQ(client.id(), 3u);
}

TEST(FlClient, UpdateIsNonTrivial) {
  const FlClient client(0, blob_data(0, 40));
  Mlp global = fresh_model();
  Rng rng(2);
  const ParamVec u = client.compute_update(global, TrainConfig{}, rng);
  EXPECT_GT(l2_norm(u), 1e-4f);
}

TEST(FlClient, UpdateDoesNotMutateGlobal) {
  const FlClient client(0, blob_data(0, 40));
  Mlp global = fresh_model();
  const auto before = global.parameters();
  Rng rng(3);
  client.compute_update(global, TrainConfig{}, rng);
  EXPECT_EQ(global.parameters(), before);
}

TEST(FlClient, EmptyShardYieldsZeroUpdate) {
  const FlClient client(0, Dataset(2, 2));
  Mlp global = fresh_model();
  Rng rng(4);
  const ParamVec u = client.compute_update(global, TrainConfig{}, rng);
  for (float x : u) EXPECT_EQ(x, 0.0f);
}

TEST(FlClient, ApplyingUpdateReproducesLocalModel) {
  const FlClient client(0, blob_data(0, 60));
  Mlp global = fresh_model();
  Rng rng_a(5), rng_b(5);
  const ParamVec u = client.compute_update(global, TrainConfig{}, rng_a);

  // Re-run the same local training manually.
  Mlp local = global;
  train_sgd(local, client.data().features(), client.data().labels(),
            TrainConfig{}, rng_b);
  const ParamVec expected = subtract(local.parameters(), global.parameters());
  EXPECT_EQ(u, expected);
}

TEST(HonestProvider, DelegatesToClients) {
  std::vector<FlClient> clients;
  clients.emplace_back(0, blob_data(0, 30));
  clients.emplace_back(1, blob_data(1, 30));
  HonestUpdateProvider provider(&clients, TrainConfig{});
  Mlp global = fresh_model();
  Rng rng(6);
  const ParamVec u0 = provider.update_for(0, global, rng);
  const ParamVec u1 = provider.update_for(1, global, rng);
  EXPECT_EQ(u0.size(), global.num_params());
  EXPECT_NE(u0, u1);  // different shards, different updates
}

TEST(HonestProvider, UnknownClientThrows) {
  std::vector<FlClient> clients;
  clients.emplace_back(0, blob_data(0, 10));
  HonestUpdateProvider provider(&clients, TrainConfig{});
  Mlp global = fresh_model();
  Rng rng(7);
  EXPECT_THROW(provider.update_for(5, global, rng), std::out_of_range);
}

}  // namespace
}  // namespace baffle

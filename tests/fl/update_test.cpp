#include "fl/update.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(Update, SumUpdates) {
  const std::vector<ParamVec> updates{{1.0f, 2.0f}, {3.0f, 4.0f}};
  EXPECT_EQ(sum_updates(updates), (ParamVec{4.0f, 6.0f}));
}

TEST(Update, MeanUpdate) {
  const std::vector<ParamVec> updates{{2.0f, 4.0f}, {4.0f, 8.0f}};
  EXPECT_EQ(mean_update(updates), (ParamVec{3.0f, 6.0f}));
}

TEST(Update, SingleUpdateMeanIsIdentity) {
  const std::vector<ParamVec> updates{{1.5f, -2.0f}};
  EXPECT_EQ(mean_update(updates), updates[0]);
}

TEST(Update, EmptyThrows) {
  EXPECT_THROW(sum_updates({}), std::invalid_argument);
  EXPECT_THROW(mean_update({}), std::invalid_argument);
}

TEST(Update, RaggedThrows) {
  const std::vector<ParamVec> updates{{1.0f, 2.0f}, {3.0f}};
  EXPECT_THROW(sum_updates(updates), std::invalid_argument);
}

TEST(Update, CheckUpdateSizes) {
  const std::vector<ParamVec> updates{{1.0f, 2.0f}};
  EXPECT_NO_THROW(check_update_sizes(updates, 2));
  EXPECT_THROW(check_update_sizes(updates, 3), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

#include "fl/aggregator.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(FedAvg, ScalesSumByLambdaOverN) {
  const FedAvgAggregator agg(/*global_lr=*/1.0, /*total_clients=*/100);
  const std::vector<ParamVec> updates{{10.0f, 0.0f}, {10.0f, 20.0f}};
  const ParamVec delta = agg.aggregate(updates);
  EXPECT_FLOAT_EQ(delta[0], 0.2f);   // (10+10)/100
  EXPECT_FLOAT_EQ(delta[1], 0.2f);   // 20/100
}

TEST(FedAvg, FullReplacementRegime) {
  // λ = N/n -> G' = G + mean(U) (full replacement by the mean model).
  const FedAvgAggregator agg(/*global_lr=*/10.0, /*total_clients=*/100);
  const std::vector<ParamVec> updates(10, ParamVec{1.0f});
  const ParamVec delta = agg.aggregate(updates);
  EXPECT_FLOAT_EQ(delta[0], 1.0f);
}

TEST(FedAvg, RejectsBadConfig) {
  EXPECT_THROW(FedAvgAggregator(0.0, 10), std::invalid_argument);
  EXPECT_THROW(FedAvgAggregator(-1.0, 10), std::invalid_argument);
  EXPECT_THROW(FedAvgAggregator(1.0, 0), std::invalid_argument);
}

TEST(FedAvg, EmptyUpdatesThrow) {
  const FedAvgAggregator agg(1.0, 10);
  EXPECT_THROW(agg.aggregate({}), std::invalid_argument);
}

TEST(FedAvg, ReplacementBoostIsNOverLambda) {
  const FedAvgAggregator agg(/*global_lr=*/2.0, /*total_clients=*/100);
  EXPECT_DOUBLE_EQ(agg.replacement_boost(10), 50.0);
}

TEST(FedAvg, BoostedUpdateReplacesModel) {
  // Property behind model replacement: if the attacker submits
  // γ(X - G) with γ = N/λ and everyone else submits zero, the aggregate
  // moves G exactly to X.
  const double lambda = 1.0;
  const std::size_t N = 100;
  const FedAvgAggregator agg(lambda, N);
  const ParamVec g{1.0f, -2.0f};
  const ParamVec x{5.0f, 3.0f};
  const auto gamma = static_cast<float>(agg.replacement_boost(10));
  std::vector<ParamVec> updates(10, ParamVec{0.0f, 0.0f});
  updates[4] = {gamma * (x[0] - g[0]), gamma * (x[1] - g[1])};
  const ParamVec delta = agg.aggregate(updates);
  EXPECT_NEAR(g[0] + delta[0], x[0], 1e-4f);
  EXPECT_NEAR(g[1] + delta[1], x[1], 1e-4f);
}

TEST(FedAvg, NameIsStable) {
  const FedAvgAggregator agg(1.0, 10);
  EXPECT_EQ(agg.name(), "fedavg");
}

}  // namespace
}  // namespace baffle

#include "fl/sampler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace baffle {
namespace {

TEST(Sampler, DrawsRequestedCount) {
  const ClientSampler sampler(100, 10);
  Rng rng(1);
  const auto ids = sampler.sample_round(rng);
  EXPECT_EQ(ids.size(), 10u);
}

TEST(Sampler, IdsDistinctAndInRange) {
  const ClientSampler sampler(50, 20);
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const auto ids = sampler.sample_round(rng);
    std::set<std::size_t> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t id : ids) EXPECT_LT(id, 50u);
  }
}

TEST(Sampler, UniformSelectionFrequency) {
  const ClientSampler sampler(20, 5);
  Rng rng(3);
  std::vector<int> hits(20, 0);
  const int reps = 8000;
  for (int i = 0; i < reps; ++i) {
    for (std::size_t id : sampler.sample_round(rng)) hits[id]++;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / reps, 0.25, 0.03);
  }
}

TEST(Sampler, RejectsBadConfig) {
  EXPECT_THROW(ClientSampler(10, 0), std::invalid_argument);
  EXPECT_THROW(ClientSampler(10, 11), std::invalid_argument);
}

TEST(Sampler, FullPopulationSelection) {
  const ClientSampler sampler(5, 5);
  Rng rng(4);
  const auto ids = sampler.sample_round(rng);
  std::set<std::size_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace baffle

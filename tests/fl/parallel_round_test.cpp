// Serial-vs-parallel parity of the round's client-update phase.
//
// FlConfig::parallel_updates must not change results: per-client Rngs
// are pre-forked serially in contributor order, updates land in
// pre-sized slots, and the aggregation order is unchanged — so the
// parallel round is bit-identical to the serial loop, for honest and
// attacking providers alike, with and without secure aggregation.

#include <gtest/gtest.h>

#include <memory>

#include "attack/dba.hpp"
#include "attack/model_replacement.hpp"
#include "data/synth.hpp"
#include "fl/server.hpp"
#include "nn/train.hpp"

namespace baffle {
namespace {

struct ParityFixture {
  SynthTask task;
  std::vector<FlClient> clients;

  ParityFixture() : task(make_task()) {
    Rng rng(101);
    for (std::size_t i = 0; i < 8; ++i) {
      Rng crng = rng.fork();
      clients.emplace_back(i, task.train.sample(120, crng));
    }
  }

  static SynthTask make_task() {
    Rng rng(100);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.backdoor_kind = BackdoorKind::kTrigger;
    cfg.train_per_class = 80;
    return make_synth_task(cfg, rng);
  }

  MlpConfig arch() const {
    return MlpConfig{{task.config.dim, 16, task.config.num_classes},
                     Activation::kRelu};
  }

  FlConfig fl_config(bool parallel, bool secure = false) const {
    FlConfig cfg;
    cfg.total_clients = clients.size();
    cfg.clients_per_round = 4;
    cfg.secure_aggregation = secure;
    cfg.parallel_updates = parallel;
    return cfg;
  }
};

/// Runs `rounds` committed rounds on two same-seeded servers — one
/// serial, one parallel — with independently constructed but identically
/// seeded providers, and requires bit-identical proposals throughout.
template <typename ProviderFactory>
void expect_bit_exact_rounds(const ParityFixture& f, ProviderFactory make,
                             bool secure, std::size_t rounds = 3) {
  FlServer serial(f.arch(), f.fl_config(false, secure), 55);
  FlServer parallel(f.arch(), f.fl_config(true, secure), 55);
  ASSERT_EQ(serial.global_model().parameters(),
            parallel.global_model().parameters());
  auto p_serial = make();
  auto p_parallel = make();
  Rng rng_serial(77), rng_parallel(77);
  const std::vector<std::size_t> contributors{0, 2, 5, 7};
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto prop_s =
        serial.propose_round_with(contributors, *p_serial, rng_serial);
    const auto prop_p =
        parallel.propose_round_with(contributors, *p_parallel, rng_parallel);
    ASSERT_EQ(prop_s.candidate_params, prop_p.candidate_params)
        << "round " << r << " diverged";
    serial.commit(prop_s);
    parallel.commit(prop_p);
  }
}

TEST(ParallelRound, HonestBitExact) {
  ParityFixture f;
  expect_bit_exact_rounds(
      f,
      [&] {
        return std::make_unique<HonestUpdateProvider>(&f.clients,
                                                      TrainConfig{});
      },
      /*secure=*/false);
}

TEST(ParallelRound, HonestSecureAggregationBitExact) {
  ParityFixture f;
  expect_bit_exact_rounds(
      f,
      [&] {
        return std::make_unique<HonestUpdateProvider>(&f.clients,
                                                      TrainConfig{});
      },
      /*secure=*/true);
}

TEST(ParallelRound, ReplacementAttackBitExact) {
  ParityFixture f;
  ModelReplacementConfig attack;
  attack.task = BackdoorTask{BackdoorKind::kTrigger,
                             f.task.config.backdoor_source,
                             f.task.config.backdoor_target};
  attack.poison_fraction = 0.3;
  attack.boost = 4.0;
  attack.train.epochs = 2;
  expect_bit_exact_rounds(
      f,
      [&] {
        HonestUpdateProvider honest(&f.clients, TrainConfig{});
        auto p = std::make_unique<MaliciousUpdateProvider>(
            honest, /*attacker_id=*/2, f.clients[2].data(),
            f.task.backdoor_train, attack);
        p->arm(true);
        return p;
      },
      /*secure=*/false);
}

TEST(ParallelRound, DbaAttackBitExact) {
  ParityFixture f;
  DbaConfig attack;
  attack.num_parts = 3;
  attack.target_class = f.task.config.backdoor_target;
  attack.train.epochs = 2;
  expect_bit_exact_rounds(
      f,
      [&] {
        HonestUpdateProvider honest(&f.clients, TrainConfig{});
        std::vector<Dataset> colluder_data{f.clients[0].data(),
                                           f.clients[2].data(),
                                           f.clients[5].data()};
        auto p = std::make_unique<DbaUpdateProvider>(
            honest, std::vector<std::size_t>{0, 2, 5},
            std::move(colluder_data), trigger_pattern(f.task.config), attack);
        p->arm(true);
        return p;
      },
      /*secure=*/true);
}

TEST(ParallelRound, SampledContributorsMatchSerial) {
  // propose_round consumes round_rng for sampling before forking the
  // per-client streams, so sampled rounds must also agree bit-for-bit.
  ParityFixture f;
  FlServer serial(f.arch(), f.fl_config(false), 56);
  FlServer parallel(f.arch(), f.fl_config(true), 56);
  HonestUpdateProvider p1(&f.clients, TrainConfig{});
  HonestUpdateProvider p2(&f.clients, TrainConfig{});
  Rng rng1(9), rng2(9);
  for (int r = 0; r < 2; ++r) {
    const auto prop_s = serial.propose_round(p1, rng1);
    const auto prop_p = parallel.propose_round(p2, rng2);
    ASSERT_EQ(prop_s.contributors, prop_p.contributors);
    ASSERT_EQ(prop_s.candidate_params, prop_p.candidate_params);
    serial.commit(prop_s);
    parallel.commit(prop_p);
  }
}

}  // namespace
}  // namespace baffle

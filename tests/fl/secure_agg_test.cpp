#include "fl/secure_agg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

SecureAggConfig config(std::uint64_t key = 99) {
  SecureAggConfig c;
  c.round_key = key;
  return c;
}

std::vector<std::size_t> ids(std::initializer_list<std::size_t> v) {
  return {v};
}

TEST(SecureAgg, QuantizationRoundTrip) {
  const SecureAggregation sa(config());
  for (float x : {0.0f, 1.0f, -1.0f, 0.123f, -17.5f}) {
    EXPECT_NEAR(sa.decode_sum(sa.encode(x)), x, 1e-6f);
  }
}

TEST(SecureAgg, SumOfTwoMaskedVectorsIsExact) {
  const SecureAggregation sa(config());
  const ParamVec a{1.0f, 2.0f, -3.0f};
  const ParamVec b{0.5f, -1.5f, 4.0f};
  const auto participants = ids({3, 7});
  const auto ma = sa.mask_update(a, 3, participants);
  const auto mb = sa.mask_update(b, 7, participants);
  const ParamVec total = sa.unmask_sum({ma, mb}, participants, participants, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(total[i], a[i] + b[i], 1e-5f);
  }
}

TEST(SecureAgg, MasksAreLarge) {
  // A masked vector must look nothing like the plaintext encoding: for a
  // zero update the mask should dominate.
  const SecureAggregation sa(config());
  const ParamVec zero(8, 0.0f);
  const auto masked = sa.mask_update(zero, 0, ids({0, 1}));
  std::size_t nonzero = 0;
  for (auto v : masked) {
    if (v != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 8u);
}

TEST(SecureAgg, TenClientSumMatchesPlainSum) {
  const SecureAggregation sa(config(1234));
  Rng rng(5);
  const std::size_t n = 10, dim = 64;
  std::vector<std::size_t> participants(n);
  for (std::size_t i = 0; i < n; ++i) participants[i] = 10 + i;
  std::vector<ParamVec> updates(n, ParamVec(dim));
  ParamVec expected(dim, 0.0f);
  for (auto& u : updates) {
    for (float& x : u) x = static_cast<float>(rng.normal());
    axpy(1.0f, u, expected);
  }
  std::vector<MaskedVec> masked;
  for (std::size_t i = 0; i < n; ++i) {
    masked.push_back(sa.mask_update(updates[i], participants[i], participants));
  }
  const ParamVec total = sa.unmask_sum(masked, participants, participants, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(total[i], expected[i], 1e-4f);
  }
}

TEST(SecureAgg, DropoutRecovery) {
  // 4 participants mask; one never sends. The sum of the survivors must
  // come out exactly after the server cancels the dropped client's
  // pairwise masks.
  const SecureAggregation sa(config(777));
  const auto participants = ids({0, 1, 2, 3});
  const std::vector<ParamVec> updates{
      {1.0f, 1.0f}, {2.0f, -1.0f}, {3.0f, 0.5f}, {4.0f, 9.0f}};
  std::vector<MaskedVec> masked;
  std::vector<std::size_t> senders;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;  // client 2 drops after key agreement
    masked.push_back(sa.mask_update(updates[i], i, participants));
    senders.push_back(i);
  }
  const ParamVec total = sa.unmask_sum(masked, senders, participants, 2);
  EXPECT_NEAR(total[0], 1.0f + 2.0f + 4.0f, 1e-5f);
  EXPECT_NEAR(total[1], 1.0f - 1.0f + 9.0f, 1e-5f);
}

TEST(SecureAgg, MultipleDropouts) {
  const SecureAggregation sa(config(42));
  const auto participants = ids({0, 1, 2, 3, 4});
  std::vector<MaskedVec> masked;
  std::vector<std::size_t> senders;
  float expected = 0.0f;
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 1 || i == 3) continue;
    const ParamVec u{static_cast<float>(i)};
    masked.push_back(sa.mask_update(u, i, participants));
    senders.push_back(i);
    expected += static_cast<float>(i);
  }
  const ParamVec total = sa.unmask_sum(masked, senders, participants, 1);
  EXPECT_NEAR(total[0], expected, 1e-5f);
}

TEST(SecureAgg, DifferentRoundKeysGiveDifferentMasks) {
  const SecureAggregation sa1(config(1)), sa2(config(2));
  const ParamVec u{1.0f, 2.0f};
  const auto p = ids({0, 1});
  EXPECT_NE(sa1.mask_update(u, 0, p), sa2.mask_update(u, 0, p));
}

TEST(SecureAgg, SelfMustBeParticipant) {
  const SecureAggregation sa(config());
  const ParamVec u{1.0f};
  EXPECT_THROW(sa.mask_update(u, 9, ids({0, 1})), std::invalid_argument);
}

TEST(SecureAgg, UnmaskRejectsMalformedInput) {
  const SecureAggregation sa(config());
  const auto p = ids({0, 1});
  const auto m = sa.mask_update({1.0f}, 0, p);
  EXPECT_THROW(sa.unmask_sum({m}, {0, 1}, p, 1), std::invalid_argument);
  EXPECT_THROW(sa.unmask_sum({}, {}, p, 1), std::invalid_argument);
  EXPECT_THROW(sa.unmask_sum({m}, {0}, p, 2), std::invalid_argument);
}

TEST(SecureAgg, SingleParticipantDegenerate) {
  // With one participant there are no pairwise masks; the "masked"
  // vector is the plain quantization and the sum is the value itself.
  const SecureAggregation sa(config());
  const ParamVec u{2.5f};
  const auto p = ids({4});
  const auto m = sa.mask_update(u, 4, p);
  const ParamVec total = sa.unmask_sum({m}, {4}, p, 1);
  EXPECT_NEAR(total[0], 2.5f, 1e-6f);
}

/// Property sweep: exact cancellation for many (n, dim, key) combos.
class SecureAggProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SecureAggProperty, MaskedSumEqualsPlainSum) {
  const auto [n, dim] = GetParam();
  const SecureAggregation sa(config(n * 1000 + dim));
  Rng rng(n * 31 + dim);
  std::vector<std::size_t> participants(n);
  for (std::size_t i = 0; i < n; ++i) participants[i] = i * 3 + 1;
  std::vector<ParamVec> updates(n, ParamVec(dim));
  ParamVec expected(dim, 0.0f);
  for (auto& u : updates) {
    for (float& x : u) x = static_cast<float>(rng.uniform(-5.0, 5.0));
    axpy(1.0f, u, expected);
  }
  std::vector<MaskedVec> masked;
  for (std::size_t i = 0; i < n; ++i) {
    masked.push_back(
        sa.mask_update(updates[i], participants[i], participants));
  }
  const ParamVec total =
      sa.unmask_sum(masked, participants, participants, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(total[i], expected[i], 1e-4f) << "dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SecureAggProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 10, 17),
                       ::testing::Values<std::size_t>(1, 8, 33)));

}  // namespace
}  // namespace baffle

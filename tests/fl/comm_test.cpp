#include "fl/comm.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(CommTracker, RoundWithoutDefenseCountsModelTraffic) {
  CommTracker tracker(/*num_clients=*/10, /*model_bytes=*/1000,
                      /*history_len=*/21);
  tracker.record_round({0, 1, 2}, /*defense_active=*/false);
  EXPECT_EQ(tracker.stats().model_download_bytes, 3000u);
  EXPECT_EQ(tracker.stats().update_upload_bytes, 3000u);
  EXPECT_EQ(tracker.stats().history_bytes, 0u);
  EXPECT_EQ(tracker.stats().rounds, 1u);
}

TEST(CommTracker, FirstSelectionDownloadsFullHistory) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);
  EXPECT_EQ(tracker.stats().history_bytes, 21u * 1000u);
}

TEST(CommTracker, ConsecutiveValidationShipsNoHistory) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);  // full history: 21 models
  // The candidate the client judged arrived as a model download and was
  // promoted into its window on commit, so validating again in the very
  // next round leaves nothing to ship.
  tracker.record_round({4}, true);
  EXPECT_EQ(tracker.stats().history_bytes, 21u * 1000u);
}

TEST(CommTracker, MissedCommitsShipExactlyTheDelta) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);
  for (int i = 0; i < 3; ++i) tracker.record_round({5}, true);
  tracker.record_round({4}, true);  // client 4 missed 3 commits
  const std::uint64_t for_client4 = 21u * 1000u + 3u * 1000u;
  const std::uint64_t for_client5 = 21u * 1000u;  // consecutive: deltas 0
  EXPECT_EQ(tracker.stats().history_bytes, for_client4 + for_client5);
}

TEST(CommTracker, LongGapCapsAtFullHistory) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);
  for (int i = 0; i < 100; ++i) tracker.record_round({5}, true);
  tracker.record_round({4}, true);  // missed 100 commits: capped at 21
  const std::uint64_t for_client4 = 21u * 1000u + 21u * 1000u;
  const std::uint64_t for_client5 = 21u * 1000u;
  EXPECT_EQ(tracker.stats().history_bytes, for_client4 + for_client5);
}

TEST(CommTracker, RejectedRoundsDoNotAdvanceTheHistoryClock) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true, /*committed=*/true);
  // Rounds rejected while the client sat out moved nothing into the
  // accepted-model window — re-syncing afterwards must be free.
  tracker.record_round({5}, true, /*committed=*/false);
  tracker.record_round({5}, true, /*committed=*/false);
  const std::uint64_t before = tracker.stats().history_bytes;
  tracker.record_round({4}, true, /*committed=*/false);
  EXPECT_EQ(tracker.stats().history_bytes, before);
}

TEST(CommTracker, GapOfExactlyWindowLengthShipsFullWindowOnce) {
  CommTracker tracker(10, 1000, 5);
  tracker.record_round({4}, true);
  // Exactly history_len commits pass the client by, with rejected
  // rounds interleaved; only the commits count toward its gap, and the
  // charge caps at one full window — not a round-counted overshoot.
  for (int i = 0; i < 5; ++i) {
    tracker.record_round({5}, true, /*committed=*/true);
    tracker.record_round({5}, true, /*committed=*/false);
  }
  const std::uint64_t before = tracker.stats().history_bytes;
  tracker.record_round({4}, true);
  EXPECT_EQ(tracker.stats().history_bytes - before, 5u * 1000u);
}

TEST(CommTracker, ExactAccountingAttributesByCategory) {
  CommTracker tracker(4, 1000, 21);
  tracker.add_round();
  tracker.add_bytes(CommCategory::kModelDownload, 10);
  tracker.add_bytes(CommCategory::kUpdateUpload, 20);
  tracker.add_bytes(CommCategory::kHistory, 30);
  tracker.add_bytes(CommCategory::kControl, 40);
  const auto& s = tracker.stats();
  EXPECT_EQ(s.rounds, 1u);
  EXPECT_EQ(s.model_download_bytes, 10u);
  EXPECT_EQ(s.update_upload_bytes, 20u);
  EXPECT_EQ(s.history_bytes, 30u);
  EXPECT_EQ(s.control_bytes, 40u);
  EXPECT_EQ(s.total_bytes(), 100u);
}

TEST(CommTracker, CompressionDividesHistoryBytes) {
  CommTracker plain(10, 1000, 20, 1.0);
  CommTracker compressed(10, 1000, 20, 10.0);
  plain.record_round({0}, true);
  compressed.record_round({0}, true);
  EXPECT_EQ(compressed.stats().history_bytes,
            plain.stats().history_bytes / 10);
}

TEST(CommTracker, RejectsSubUnityCompression) {
  EXPECT_THROW(CommTracker(10, 1000, 20, 0.5), std::invalid_argument);
}

TEST(CommTracker, UnknownClientThrows) {
  CommTracker tracker(3, 100, 5);
  EXPECT_THROW(tracker.record_round({7}, false), std::out_of_range);
}

TEST(CommTracker, HistoryBytesPerClientAverages) {
  CommTracker tracker(4, 100, 10);
  tracker.record_round({0}, true);  // 1000 bytes for client 0
  EXPECT_DOUBLE_EQ(tracker.history_bytes_per_client(), 250.0);
}

TEST(CommTracker, TotalBytesAggregates) {
  CommTracker tracker(4, 100, 10);
  tracker.record_round({0, 1}, true);
  const auto& s = tracker.stats();
  EXPECT_EQ(s.total_bytes(),
            s.model_download_bytes + s.update_upload_bytes + s.history_bytes);
}

}  // namespace
}  // namespace baffle

#include "fl/comm.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(CommTracker, RoundWithoutDefenseCountsModelTraffic) {
  CommTracker tracker(/*num_clients=*/10, /*model_bytes=*/1000,
                      /*history_len=*/21);
  tracker.record_round({0, 1, 2}, /*defense_active=*/false);
  EXPECT_EQ(tracker.stats().model_download_bytes, 3000u);
  EXPECT_EQ(tracker.stats().update_upload_bytes, 3000u);
  EXPECT_EQ(tracker.stats().history_bytes, 0u);
  EXPECT_EQ(tracker.stats().rounds, 1u);
}

TEST(CommTracker, FirstSelectionDownloadsFullHistory) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);
  EXPECT_EQ(tracker.stats().history_bytes, 21u * 1000u);
}

TEST(CommTracker, ReselectionDownloadsOnlyDelta) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);   // full history: 21 models
  tracker.record_round({4}, true);   // 1 round later: 1 model missing
  EXPECT_EQ(tracker.stats().history_bytes, 21u * 1000u + 1u * 1000u);
}

TEST(CommTracker, LongGapCapsAtFullHistory) {
  CommTracker tracker(10, 1000, 21);
  tracker.record_round({4}, true);
  for (int i = 0; i < 100; ++i) tracker.record_round({5}, true);
  tracker.record_round({4}, true);  // 101 rounds later: capped at 21
  const std::uint64_t for_client4 = 21u * 1000u + 21u * 1000u;
  const std::uint64_t for_client5 = 21u * 1000u + 99u * 1000u;
  EXPECT_EQ(tracker.stats().history_bytes, for_client4 + for_client5);
}

TEST(CommTracker, CompressionDividesHistoryBytes) {
  CommTracker plain(10, 1000, 20, 1.0);
  CommTracker compressed(10, 1000, 20, 10.0);
  plain.record_round({0}, true);
  compressed.record_round({0}, true);
  EXPECT_EQ(compressed.stats().history_bytes,
            plain.stats().history_bytes / 10);
}

TEST(CommTracker, RejectsSubUnityCompression) {
  EXPECT_THROW(CommTracker(10, 1000, 20, 0.5), std::invalid_argument);
}

TEST(CommTracker, UnknownClientThrows) {
  CommTracker tracker(3, 100, 5);
  EXPECT_THROW(tracker.record_round({7}, false), std::out_of_range);
}

TEST(CommTracker, HistoryBytesPerClientAverages) {
  CommTracker tracker(4, 100, 10);
  tracker.record_round({0}, true);  // 1000 bytes for client 0
  EXPECT_DOUBLE_EQ(tracker.history_bytes_per_client(), 250.0);
}

TEST(CommTracker, TotalBytesAggregates) {
  CommTracker tracker(4, 100, 10);
  tracker.record_round({0, 1}, true);
  const auto& s = tracker.stats();
  EXPECT_EQ(s.total_bytes(),
            s.model_download_bytes + s.update_upload_bytes + s.history_bytes);
}

}  // namespace
}  // namespace baffle

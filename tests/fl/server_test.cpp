#include "fl/server.hpp"

#include <gtest/gtest.h>

#include "metrics/confusion.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

MlpConfig arch() { return MlpConfig{{2, 4, 2}, Activation::kRelu}; }

FlConfig fl_config(bool secure = false) {
  FlConfig cfg;
  cfg.total_clients = 20;
  cfg.clients_per_round = 4;
  cfg.global_lr = 5.0;  // λ = N/n -> full replacement
  cfg.secure_aggregation = secure;
  return cfg;
}

std::vector<FlClient> make_clients(std::size_t n) {
  std::vector<FlClient> clients;
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    Dataset d(2, 2);
    for (int k = 0; k < 20; ++k) {
      const int y = k % 2;
      d.add({{static_cast<float>(rng.normal(y ? 2 : -2, 0.4)),
              static_cast<float>(rng.normal())},
             y});
    }
    clients.emplace_back(i, std::move(d));
  }
  return clients;
}

/// Provider returning fixed updates, for arithmetic checks.
class FixedProvider final : public UpdateProvider {
 public:
  explicit FixedProvider(ParamVec value) : value_(std::move(value)) {}
  ParamVec update_for(std::size_t, const Mlp&, Rng&) override {
    return value_;
  }

 private:
  ParamVec value_;
};

TEST(FlServer, RejectsBadConfig) {
  FlConfig bad = fl_config();
  bad.clients_per_round = 0;
  EXPECT_THROW(FlServer(arch(), bad, 1), std::invalid_argument);
  bad = fl_config();
  bad.clients_per_round = bad.total_clients + 1;
  EXPECT_THROW(FlServer(arch(), bad, 1), std::invalid_argument);
}

TEST(FlServer, ProposalAppliesFedAvgRule) {
  FlServer server(arch(), fl_config(), 1);
  const ParamVec unit(server.global_model().num_params(), 1.0f);
  FixedProvider provider(unit);
  Rng rng(2);
  const auto proposal =
      server.propose_round_with({0, 1, 2, 3}, provider, rng);
  // delta = (λ/N) Σ U = (5/20)*4*1 = 1 per coordinate.
  const auto g = server.global_model().parameters();
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(proposal.candidate_params[i], g[i] + 1.0f, 1e-5f);
  }
}

TEST(FlServer, SecureAndPlainAggregationAgree) {
  FlServer plain(arch(), fl_config(false), 3);
  FlServer secure(arch(), fl_config(true), 3);
  // Same seed -> same initial model.
  EXPECT_EQ(plain.global_model().parameters(),
            secure.global_model().parameters());
  auto clients = make_clients(20);
  HonestUpdateProvider p1(&clients, TrainConfig{});
  HonestUpdateProvider p2(&clients, TrainConfig{});
  Rng rng1(9), rng2(9);
  const auto prop_plain = plain.propose_round_with({1, 5, 9, 13}, p1, rng1);
  const auto prop_secure = secure.propose_round_with({1, 5, 9, 13}, p2, rng2);
  ASSERT_EQ(prop_plain.candidate_params.size(),
            prop_secure.candidate_params.size());
  for (std::size_t i = 0; i < prop_plain.candidate_params.size(); ++i) {
    EXPECT_NEAR(prop_plain.candidate_params[i],
                prop_secure.candidate_params[i], 1e-4f);
  }
}

TEST(FlServer, CommitInstallsCandidate) {
  FlServer server(arch(), fl_config(), 4);
  FixedProvider provider(ParamVec(server.global_model().num_params(), 0.5f));
  Rng rng(5);
  const auto proposal = server.propose_round_with({0, 1, 2, 3}, provider, rng);
  server.commit(proposal);
  EXPECT_EQ(server.global_model().parameters(), proposal.candidate_params);
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(server.current_round(), 1u);
}

TEST(FlServer, DiscardKeepsModelAdvancesRound) {
  FlServer server(arch(), fl_config(), 6);
  const auto before = server.global_model().parameters();
  FixedProvider provider(ParamVec(server.global_model().num_params(), 0.5f));
  Rng rng(7);
  const auto proposal = server.propose_round_with({0, 1, 2, 3}, provider, rng);
  server.discard(proposal);
  EXPECT_EQ(server.global_model().parameters(), before);
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(server.current_round(), 1u);
}

TEST(FlServer, StaleProposalRejected) {
  FlServer server(arch(), fl_config(), 8);
  FixedProvider provider(ParamVec(server.global_model().num_params(), 0.1f));
  Rng rng(9);
  const auto p1 = server.propose_round_with({0, 1, 2, 3}, provider, rng);
  server.commit(p1);
  EXPECT_THROW(server.commit(p1), std::logic_error);
  EXPECT_THROW(server.discard(p1), std::logic_error);
}

TEST(FlServer, ProposeSamplesRequestedCount) {
  FlServer server(arch(), fl_config(), 10);
  auto clients = make_clients(20);
  HonestUpdateProvider provider(&clients, TrainConfig{});
  Rng rng(11);
  const auto proposal = server.propose_round(provider, rng);
  EXPECT_EQ(proposal.contributors.size(), 4u);
}

TEST(FlServer, EmptyContributorsThrow) {
  FlServer server(arch(), fl_config(), 12);
  FixedProvider provider(ParamVec(server.global_model().num_params(), 0.0f));
  Rng rng(13);
  EXPECT_THROW(server.propose_round_with({}, provider, rng),
               std::invalid_argument);
}

TEST(FlServer, TrainingImprovesAccuracy) {
  FlServer server(arch(), fl_config(), 14);
  auto clients = make_clients(20);
  HonestUpdateProvider provider(&clients, TrainConfig{});
  Rng rng(15);

  // Pool all client data as an eval set.
  Dataset eval(2, 2);
  for (const auto& c : clients) eval.merge(c.data());
  const double before = evaluate_confusion(server.global_model(), eval)
                            .accuracy();
  for (int r = 0; r < 15; ++r) {
    const auto proposal = server.propose_round(provider, rng);
    server.commit(proposal);
  }
  const double after = evaluate_confusion(server.global_model(), eval)
                           .accuracy();
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.9);
}

}  // namespace
}  // namespace baffle

#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (float x : m.flat()) EXPECT_EQ(x, 1.5f);
}

TEST(Matrix, AtIsRowMajor) {
  Matrix m(2, 3);
  m.at(0, 0) = 1.0f;
  m.at(0, 2) = 2.0f;
  m.at(1, 0) = 3.0f;
  const auto flat = m.flat();
  EXPECT_EQ(flat[0], 1.0f);
  EXPECT_EQ(flat[2], 2.0f);
  EXPECT_EQ(flat[3], 3.0f);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(3, 2);
  auto row = m.row(1);
  row[0] = 9.0f;
  EXPECT_EQ(m.at(1, 0), 9.0f);
  ASSERT_EQ(row.size(), 2u);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_NO_THROW(Matrix::from_rows(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix::from_rows(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, FromRowsLayout) {
  const Matrix m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.at(0, 1), 2.0f);
  EXPECT_EQ(m.at(1, 0), 3.0f);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 5.0f);
  m.fill(0.0f);
  for (float x : m.flat()) EXPECT_EQ(x, 0.0f);
}

TEST(Matrix, ReshapePreservesData) {
  Matrix m = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  m.reshape(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.at(1, 1), 4.0f);  // row-major relabeling
}

TEST(Matrix, ReshapeRejectsSizeChange) {
  Matrix m(2, 3);
  EXPECT_THROW(m.reshape(2, 2), std::invalid_argument);
}

TEST(Matrix, CopySemantics) {
  Matrix a(2, 2, 1.0f);
  Matrix b = a;
  b.at(0, 0) = 9.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);  // deep copy
}

}  // namespace
}  // namespace baffle

// Scalar-vs-SIMD parity: every dispatched kernel must agree between the
// two arms, across shapes chosen to hit full vectors, masked tails and
// degenerate operands. The scalar arm is the ground truth (it preserves
// the pre-SIMD arithmetic); the vector arm may differ only by
// FMA/reassociation rounding, bounded by the tolerances here.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/aligned.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/primitives.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// Shapes that cover: single element, sub-vector, exactly one vector,
// vector+1, tails of every panel width, and multi-panel/multi-tile.
const std::size_t kDims[] = {1, 3, 7, 8, 9, 31, 129};
const std::size_t kLens[] = {0, 1, 3, 7, 8, 9, 31, 129, 1000};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<float>(rng.normal());
  return m;
}

void expect_matrices_near(const Matrix& ref, const Matrix& got, float rel) {
  ASSERT_EQ(ref.rows(), got.rows());
  ASSERT_EQ(ref.cols(), got.cols());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float r = ref.flat()[i];
    ASSERT_NEAR(got.flat()[i], r, rel * (std::abs(r) + 1.0f))
        << "flat index " << i;
  }
}

void expect_spans_near(std::span<const float> ref, std::span<const float> got,
                       float rel) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], rel * (std::abs(ref[i]) + 1.0f))
        << "index " << i;
  }
}

// Skips when the vector arm cannot be exercised: either it was not
// compiled in / the CPU lacks AVX2+FMA, or BAFFLE_FORCE_SCALAR pins the
// scalar arm (the forced-scalar CI leg must stay scalar-only, so the
// parity suite does not override the pin via force_isa()).
class SimdParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (simd::scalar_forced_by_env()) {
      GTEST_SKIP() << "BAFFLE_FORCE_SCALAR pins the scalar arm";
    }
    if (!simd::isa_available(simd::Isa::kVector)) {
      GTEST_SKIP() << "vector kernels unavailable on this build/CPU";
    }
  }
  void TearDown() override { simd::reset_isa(); }
};

enum class GemmKind { kAb, kAtb, kAbt };

void run_gemm(GemmKind kind, const Matrix& a, const Matrix& b, Matrix& out) {
  switch (kind) {
    case GemmKind::kAb:
      gemm_ab(a, b, out);
      break;
    case GemmKind::kAtb:
      gemm_atb(a, b, out);
      break;
    case GemmKind::kAbt:
      gemm_abt(a, b, out);
      break;
  }
}

void gemm_parity_over_shapes(GemmKind kind) {
  Rng rng(11);
  for (std::size_t m : kDims) {
    for (std::size_t n : kDims) {
      for (std::size_t k : kDims) {
        SCOPED_TRACE(::testing::Message()
                     << "m=" << m << " n=" << n << " k=" << k);
        const Matrix a = (kind == GemmKind::kAtb) ? random_matrix(k, m, rng)
                                                  : random_matrix(m, k, rng);
        const Matrix b = (kind == GemmKind::kAbt) ? random_matrix(n, k, rng)
                                                  : random_matrix(k, n, rng);
        Matrix ref(m, n), got(m, n);
        ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
        run_gemm(kind, a, b, ref);
        ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
        run_gemm(kind, a, b, got);
        expect_matrices_near(ref, got, 1e-4f);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(SimdParity, GemmAbMatchesScalar) {
  gemm_parity_over_shapes(GemmKind::kAb);
}

TEST_F(SimdParity, GemmAtbMatchesScalar) {
  gemm_parity_over_shapes(GemmKind::kAtb);
}

TEST_F(SimdParity, GemmAbtMatchesScalar) {
  gemm_parity_over_shapes(GemmKind::kAbt);
}

TEST_F(SimdParity, GemmHandlesEmptyOperands) {
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kVector}) {
    SCOPED_TRACE(simd::isa_name(isa));
    ASSERT_TRUE(simd::force_isa(isa));

    // k == 0: the inner dimension is empty, C must be all zeros.
    Matrix out(2, 3, 123.0f);
    gemm_ab(Matrix(2, 0), Matrix(0, 3), out);
    for (float x : out.flat()) EXPECT_EQ(x, 0.0f);

    out.fill(123.0f);
    gemm_atb(Matrix(0, 2), Matrix(0, 3), out);
    for (float x : out.flat()) EXPECT_EQ(x, 0.0f);

    out.fill(123.0f);
    gemm_abt(Matrix(2, 0), Matrix(3, 0), out);
    for (float x : out.flat()) EXPECT_EQ(x, 0.0f);

    // m == 0 / n == 0: empty output, no touching of the operands.
    Matrix empty_rows(0, 3);
    gemm_ab(Matrix(0, 4), Matrix(4, 3), empty_rows);
    EXPECT_EQ(empty_rows.rows(), 0u);
    Matrix empty_cols(2, 0);
    gemm_ab(Matrix(2, 4), Matrix(4, 0), empty_cols);
    EXPECT_EQ(empty_cols.cols(), 0u);
  }
}

TEST_F(SimdParity, GemmPropagatesNanAndInf) {
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kVector}) {
    SCOPED_TRACE(simd::isa_name(isa));
    ASSERT_TRUE(simd::force_isa(isa));

    Matrix a(2, 9, 1.0f);
    a.at(0, 3) = kNan;  // row 0 -> every output NaN
    a.at(1, 5) = kInf;  // row 1 -> every output +inf (B is all ones)
    const Matrix b(9, 5, 1.0f);
    Matrix out(2, 5);
    gemm_ab(a, b, out);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      EXPECT_TRUE(std::isnan(out.at(0, j))) << "col " << j;
      EXPECT_TRUE(std::isinf(out.at(1, j))) << "col " << j;
    }
  }
}

TEST_F(SimdParity, PackedGemmAgreesWithPlainOnBothArms) {
  Rng rng(5);
  const Matrix a = random_matrix(9, 31, rng);
  const Matrix b = random_matrix(31, 17, rng);
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kVector}) {
    SCOPED_TRACE(simd::isa_name(isa));
    ASSERT_TRUE(simd::force_isa(isa));
    Matrix ref(9, 17);
    gemm_ab(a, b, ref);
    PackedB bp;
    pack_b_panels(b, bp, /*version=*/1);
    ASSERT_TRUE(bp.valid_for(31, 17, 1));
    Matrix got(9, 17);
    gemm_ab_packed(a, bp, got);
    expect_matrices_near(ref, got, 1e-4f);
  }
}

TEST_F(SimdParity, PackedPanelsAlignedAndZeroPadded) {
  Rng rng(6);
  const Matrix b = random_matrix(3, 5, rng);
  PackedB bp;
  pack_b_panels(b, bp, /*version=*/7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(bp.data()) % simd::kAlignment,
            0u);
  // One 16-column panel, k rows: live columns match B, the tail is
  // zero so the microkernel's full-width FMAs contribute nothing.
  ASSERT_EQ(bp.k(), 3u);
  ASSERT_EQ(bp.n(), 5u);
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t c = 0; c < kernels::kPanelCols; ++c) {
      const float want = c < 5 ? b.at(p, c) : 0.0f;
      EXPECT_EQ(bp.data()[p * kernels::kPanelCols + c], want)
          << "p=" << p << " c=" << c;
    }
  }
  // Copying a pack drops it (model clones repack lazily).
  PackedB copy(bp);
  EXPECT_TRUE(copy.empty());
  EXPECT_FALSE(copy.valid_for(3, 5, 7));
}

TEST_F(SimdParity, MatrixStorageIsCacheLineAligned) {
  const Matrix m(7, 9, 1.0f);
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(m.flat().data()) % simd::kAlignment,
      0u);
  const AlignedFloatVec v(5, 1.0f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % simd::kAlignment,
            0u);
}

TEST_F(SimdParity, ReductionsMatchScalar) {
  Rng rng(21);
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<float> a = random_vec(n, rng);
    const std::vector<float> b = random_vec(n, rng);

    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    const float dot_ref = dot(a, b);
    const float norm_ref = l2_norm(a);
    const float dist_ref = l2_distance(a, b);
    const float sq_ref = squared_l2_distance(a, b);
    const float cos_ref = cosine_similarity(a, b);

    ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
    // Both arms accumulate in double, so only summation order differs.
    EXPECT_NEAR(dot(a, b), dot_ref, 1e-5f * (std::abs(dot_ref) + 1.0f));
    EXPECT_NEAR(l2_norm(a), norm_ref, 1e-5f * (norm_ref + 1.0f));
    EXPECT_NEAR(l2_distance(a, b), dist_ref, 1e-5f * (dist_ref + 1.0f));
    EXPECT_NEAR(squared_l2_distance(a, b), sq_ref, 1e-5f * (sq_ref + 1.0f));
    EXPECT_NEAR(cosine_similarity(a, b), cos_ref, 1e-5f);
  }
}

TEST_F(SimdParity, ElementwisePrimitivesMatchScalar) {
  Rng rng(22);
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<float> x = random_vec(n, rng);
    const std::vector<float> y0 = random_vec(n, rng);

    std::vector<float> ref_axpy = y0, ref_sadd = y0, ref_scale = x;
    std::vector<float> ref_sinto(n), ref_abs(n);
    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    axpy(0.75f, x, ref_axpy);
    scale_add(ref_sadd, 0.9f, x, 1.0f);
    scale(ref_scale, -1.25f);
    scale_into(ref_sinto, 0.5f, x);
    abs_into(ref_abs, x);

    std::vector<float> got_axpy = y0, got_sadd = y0, got_scale = x;
    std::vector<float> got_sinto(n), got_abs(n);
    ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
    axpy(0.75f, x, got_axpy);
    scale_add(got_sadd, 0.9f, x, 1.0f);
    scale(got_scale, -1.25f);
    scale_into(got_sinto, 0.5f, x);
    abs_into(got_abs, x);

    // FMA contraction may shave one rounding off axpy/scale_add.
    expect_spans_near(ref_axpy, got_axpy, 1e-6f);
    expect_spans_near(ref_sadd, got_sadd, 1e-6f);
    // Pure products round identically: exact.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got_scale[i], ref_scale[i]) << "scale index " << i;
      ASSERT_EQ(got_sinto[i], ref_sinto[i]) << "scale_into index " << i;
      ASSERT_EQ(got_abs[i], ref_abs[i]) << "abs_into index " << i;
    }
  }
}

TEST_F(SimdParity, ReluMatchesScalarIncludingNanAndSignedZero) {
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = (static_cast<float>(i) - static_cast<float>(n) / 2.0f) * 0.5f;
    }
    if (n >= 4) {
      x[0] = kNan;       // `if (x < 0) x = 0` leaves NaN alone
      x[1] = -0.0f;      // -0 < 0 is false: -0 passes through
      x[2] = -kInf;      // clamped to 0
      x[3] = kInf;
    }
    std::vector<float> grad0(n, 2.0f);

    std::vector<float> ref_x = x, ref_g = grad0;
    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    relu_forward(ref_x);
    relu_backward(x, ref_g);

    std::vector<float> got_x = x, got_g = grad0;
    ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
    relu_forward(got_x);
    relu_backward(x, got_g);

    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(ref_x[i])) {
        ASSERT_TRUE(std::isnan(got_x[i])) << "index " << i;
      } else {
        ASSERT_EQ(got_x[i], ref_x[i]) << "index " << i;
        ASSERT_EQ(std::signbit(got_x[i]), std::signbit(ref_x[i]))
            << "index " << i;
      }
      ASSERT_EQ(got_g[i], ref_g[i]) << "grad index " << i;
    }
    if (n >= 4) {
      // NaN activation keeps its gradient on both arms (a <= 0 is false).
      EXPECT_EQ(ref_g[0], 2.0f);
      EXPECT_EQ(got_g[0], 2.0f);
    }
  }
}

TEST_F(SimdParity, AddU64MatchesScalarWithWraparound) {
  Rng rng(23);
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<std::uint64_t> acc0(n), x(n);
    for (std::size_t i = 0; i < n; ++i) {
      acc0[i] = rng.next_u64() | (1ull << 63);  // force some wraparound
      x[i] = rng.next_u64();
    }
    std::vector<std::uint64_t> ref = acc0, got = acc0;
    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    add_u64(ref, x);
    ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
    add_u64(got, x);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], ref[i]) << "index " << i;
    }
  }
}

TEST_F(SimdParity, DoubleSumsMatchScalar) {
  Rng rng(24);
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<double> xs(n);
    for (auto& v : xs) v = rng.normal(3.0, 2.0);

    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    const double sum_ref = sum(xs);
    const double ssd_ref = sum_sq_diff(xs, 3.0);
    ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
    EXPECT_NEAR(sum(xs), sum_ref, 1e-9 * (std::abs(sum_ref) + 1.0));
    EXPECT_NEAR(sum_sq_diff(xs, 3.0), ssd_ref, 1e-9 * (ssd_ref + 1.0));
  }
}

TEST_F(SimdParity, MaxValueMatchesScalar) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(25);
  for (std::size_t n : kLens) {
    if (n == 0) continue;  // max_value requires n > 0
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<float> x = random_vec(n, rng);
    EXPECT_EQ(vec->max_value(x.data(), n),
              kernels::scalar_table().max_value(x.data(), n));
    // All-negative input: catches a zero-initialized accumulator.
    for (auto& v : x) v = -std::abs(v) - 1.0f;
    EXPECT_EQ(vec->max_value(x.data(), n),
              kernels::scalar_table().max_value(x.data(), n));
  }
}

TEST_F(SimdParity, SoftmaxXentRowsMatchesScalar) {
  Rng rng(26);
  const Matrix logits = random_matrix(5, 13, rng);
  const std::vector<int> labels = {0, 12, 7, 3, 9};

  Matrix ref = logits;
  ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
  const double loss_ref = softmax_xent_rows(ref, labels);

  Matrix got = logits;
  ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
  const double loss_got = softmax_xent_rows(got, labels);

  EXPECT_NEAR(loss_got, loss_ref, 1e-9);
  expect_matrices_near(ref, got, 1e-6f);
}

// ---- batched-eval + reduced-precision kernels (DESIGN.md §14) ----
//
// The fused eval kernels are compared table-entry against table-entry:
// the scalar arm is ground truth; the fp32/bf16 vector tiles may differ
// only by FMA contraction, everything else (integer accumulation,
// quantization, conversions, argmax) must match bit-for-bit.

AlignedFloatVec random_panel(std::size_t k, Rng& rng) {
  AlignedFloatVec p(k * kernels::kPanelCols);
  for (auto& x : p) x = static_cast<float>(rng.normal());
  return p;
}

TEST_F(SimdParity, EvalLayerF32MatchesScalarWithinFma) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(31);
  for (std::size_t k : kDims) {
    for (std::size_t n_out : kDims) {
      for (bool relu : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << "k=" << k << " n_out=" << n_out << " relu=" << relu);
        const std::vector<float> w = random_vec(k * n_out, rng);
        const std::vector<float> bias = random_vec(n_out, rng);
        const AlignedFloatVec in = random_panel(k, rng);
        AlignedFloatVec ref(n_out * kernels::kPanelCols);
        AlignedFloatVec got(n_out * kernels::kPanelCols);
        kernels::EvalLayerArgs args{w.data(), 1,  n_out, bias.data(),
                                    in.data(), ref.data(), k, n_out, relu};
        kernels::scalar_table().eval_layer_f32(args);
        args.out = got.data();
        vec->eval_layer_f32(args);
        expect_spans_near(ref, got, 1e-4f);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(SimdParity, ConvertBf16MatchesScalarBitForBit) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(32);
  for (std::size_t n : kLens) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    std::vector<float> x = random_vec(n, rng);
    if (n >= 6) {
      x[0] = kNan;
      x[1] = kInf;
      x[2] = -kInf;
      x[3] = -0.0f;
      x[4] = std::numeric_limits<float>::denorm_min();
      x[5] = 1.0f + std::numeric_limits<float>::epsilon();  // RNE tie
    }
    std::vector<std::uint16_t> ref16(n), got16(n);
    kernels::scalar_table().convert_f32_bf16(x.data(), ref16.data(), n);
    vec->convert_f32_bf16(x.data(), got16.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got16[i], ref16[i]) << "f32->bf16 index " << i;
    }
    std::vector<float> ref32(n), got32(n);
    kernels::scalar_table().convert_bf16_f32(ref16.data(), ref32.data(), n);
    vec->convert_bf16_f32(ref16.data(), got32.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t rb, gb;
      std::memcpy(&rb, &ref32[i], sizeof(rb));
      std::memcpy(&gb, &got32[i], sizeof(gb));
      ASSERT_EQ(gb, rb) << "bf16->f32 index " << i;
    }
  }
}

TEST_F(SimdParity, EvalLayerBf16MatchesScalarWithinFma) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(33);
  for (std::size_t k : kDims) {
    for (std::size_t n_out : kDims) {
      SCOPED_TRACE(::testing::Message() << "k=" << k << " n_out=" << n_out);
      const std::vector<float> w = random_vec(k * n_out, rng);
      const std::vector<float> bias = random_vec(n_out, rng);
      const AlignedFloatVec in = random_panel(k, rng);
      std::vector<std::uint16_t> w16(w.size());
      std::vector<std::uint16_t> in16(in.size());
      kernels::scalar_table().convert_f32_bf16(w.data(), w16.data(),
                                               w.size());
      kernels::scalar_table().convert_f32_bf16(in.data(), in16.data(),
                                               in.size());
      AlignedFloatVec ref(n_out * kernels::kPanelCols);
      AlignedFloatVec got(n_out * kernels::kPanelCols);
      kernels::EvalLayerBf16Args args{w16.data(), 1, n_out, bias.data(),
                                      in16.data(), ref.data(), k, n_out,
                                      true};
      kernels::scalar_table().eval_layer_bf16(args);
      args.out = got.data();
      vec->eval_layer_bf16(args);
      expect_spans_near(ref, got, 1e-4f);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(SimdParity, QuantizePanelU8MatchesScalarExactly) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(34);
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}, std::size_t{8}, std::size_t{31}}) {
    SCOPED_TRACE(::testing::Message() << "k=" << k);
    AlignedFloatVec in = random_panel(k, rng);
    // Constant column (span 0 -> scale 1) exercises the degenerate arm.
    for (std::size_t p = 0; p < k; ++p) in[p * kernels::kPanelCols + 2] = 0.5f;
    const std::size_t k_pad = (k + 3) & ~std::size_t{3};
    std::vector<std::uint8_t> ref_q(k_pad * kernels::kPanelCols, 0xEE);
    std::vector<std::uint8_t> got_q(k_pad * kernels::kPanelCols, 0xEE);
    AlignedFloatVec ref_s(kernels::kPanelCols), got_s(kernels::kPanelCols);
    AlignedFloatVec ref_o(kernels::kPanelCols), got_o(kernels::kPanelCols);
    kernels::QuantizePanelU8Args args{in.data(), ref_q.data(), ref_s.data(),
                                      ref_o.data(), k, k_pad};
    kernels::scalar_table().quantize_panel_u8(args);
    args.out = got_q.data();
    args.scale = got_s.data();
    args.offset = got_o.data();
    vec->quantize_panel_u8(args);
    for (std::size_t i = 0; i < ref_q.size(); ++i) {
      ASSERT_EQ(got_q[i], ref_q[i]) << "u8 byte " << i;
    }
    for (std::size_t c = 0; c < kernels::kPanelCols; ++c) {
      ASSERT_EQ(got_s[c], ref_s[c]) << "scale col " << c;
      ASSERT_EQ(got_o[c], ref_o[c]) << "offset col " << c;
    }
  }
}

TEST_F(SimdParity, EvalLayerU8MatchesScalarExactly) {
  // The integer accumulators are exact on both arms (and on both the
  // maddubs and VNNI vector variants), and the dequantization epilogues
  // execute the same rounding sequence, so the fp32 outputs must be
  // bit-identical — no tolerance.
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(35);
  for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{9},
                        std::size_t{32}, std::size_t{129}}) {
    for (std::size_t n_out : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{13}}) {
      SCOPED_TRACE(::testing::Message() << "k=" << k << " n_out=" << n_out);
      const std::size_t k_pad = (k + 3) & ~std::size_t{3};
      const AlignedFloatVec in = random_panel(k, rng);
      std::vector<std::uint8_t> in_q(k_pad * kernels::kPanelCols);
      AlignedFloatVec in_s(kernels::kPanelCols), in_o(kernels::kPanelCols);
      kernels::QuantizePanelU8Args q{in.data(), in_q.data(), in_s.data(),
                                     in_o.data(), k, k_pad};
      kernels::scalar_table().quantize_panel_u8(q);

      // Per-output-row symmetric weight quantization (the engine's
      // shared encoding).
      const std::vector<float> w = random_vec(k * n_out, rng);
      const std::vector<float> bias = random_vec(n_out, rng);
      std::vector<std::int8_t> wq(n_out * k_pad, 0);
      std::vector<float> ws(n_out);
      std::vector<std::int32_t> wr(n_out, 0);
      for (std::size_t i = 0; i < n_out; ++i) {
        float amax = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          amax = std::max(amax, std::abs(w[p * n_out + i]));
        }
        const float s = amax > 0.0f ? amax / 127.0f : 1.0f;
        ws[i] = s;
        for (std::size_t p = 0; p < k; ++p) {
          const int qv = std::clamp<int>(
              static_cast<int>(std::nearbyint(w[p * n_out + i] / s)), -127,
              127);
          wq[i * k_pad + p] = static_cast<std::int8_t>(qv);
          wr[i] += qv;
        }
      }
      AlignedFloatVec ref(n_out * kernels::kPanelCols);
      AlignedFloatVec got(n_out * kernels::kPanelCols);
      kernels::EvalLayerU8Args args{wq.data(),   ws.data(), wr.data(),
                                    bias.data(), in_q.data(), in_s.data(),
                                    in_o.data(), ref.data(), k_pad, n_out,
                                    true};
      kernels::scalar_table().eval_layer_u8(args);
      args.out = got.data();
      vec->eval_layer_u8(args);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        std::uint32_t rb, gb;
        std::memcpy(&rb, &ref[i], sizeof(rb));
        std::memcpy(&gb, &got[i], sizeof(gb));
        ASSERT_EQ(gb, rb) << "out index " << i;
      }
    }
  }
}

TEST_F(SimdParity, ArgmaxMarginPanelMatchesScalarExactly) {
  const kernels::KernelTable* vec = kernels::vector_table();
  ASSERT_NE(vec, nullptr);
  Rng rng(36);
  for (std::size_t n_rows : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                             std::size_t{10}, std::size_t{13}}) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{7}, std::size_t{16}}) {
      SCOPED_TRACE(::testing::Message()
                   << "n_rows=" << n_rows << " cols=" << cols);
      AlignedFloatVec in = random_panel(n_rows, rng);
      if (n_rows >= 3) {
        // Exact ties: first-max tie-breaking must agree across arms.
        in[0 * kernels::kPanelCols + 0] = 2.5f;
        in[2 * kernels::kPanelCols + 0] = 2.5f;
        in[1 * kernels::kPanelCols + 3] = in[0 * kernels::kPanelCols + 3];
      }
      std::vector<std::size_t> ref_p(cols, 99), got_p(cols, 99);
      std::vector<float> ref_m(cols), got_m(cols);
      kernels::ArgmaxMarginArgs args{in.data(), n_rows, cols, ref_p.data(),
                                     ref_m.data()};
      kernels::scalar_table().argmax_margin_panel(args);
      args.preds = got_p.data();
      args.margins = got_m.data();
      vec->argmax_margin_panel(args);
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(got_p[c], ref_p[c]) << "pred col " << c;
        ASSERT_EQ(got_m[c], ref_m[c]) << "margin col " << c;
        if (n_rows == 1) {
          ASSERT_TRUE(std::isinf(ref_m[c])) << "col " << c;
        }
      }
      // margins are optional: a null pointer only skips the writes.
      args.margins = nullptr;
      args.preds = got_p.data();
      vec->argmax_margin_panel(args);
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(got_p[c], ref_p[c]) << "pred(no margin) col " << c;
      }
    }
  }
}

TEST_F(SimdParity, ForcedIsaIsObservable) {
  ASSERT_TRUE(simd::force_isa(simd::Isa::kVector));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kVector);
  EXPECT_STREQ(simd::isa_name(simd::active_isa()), "avx2");
  ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_STREQ(simd::isa_name(simd::active_isa()), "scalar");
}

}  // namespace
}  // namespace baffle

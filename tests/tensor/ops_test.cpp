#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace baffle {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (float& x : m.flat()) x = static_cast<float>(rng.normal());
  return m;
}

/// Naive reference GEMM for cross-checking the kernels.
Matrix naive_ab(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Gemm, AbMatchesNaive) {
  Rng rng(1);
  const Matrix a = random_matrix(7, 5, rng);
  const Matrix b = random_matrix(5, 9, rng);
  Matrix out(7, 9);
  gemm_ab(a, b, out);
  expect_matrix_near(out, naive_ab(a, b), 1e-4f);
}

TEST(Gemm, AtbMatchesNaive) {
  Rng rng(2);
  const Matrix a = random_matrix(6, 4, rng);  // aᵀ is 4x6
  const Matrix b = random_matrix(6, 3, rng);
  Matrix out(4, 3);
  gemm_atb(a, b, out);
  // Build aᵀ explicitly.
  Matrix at(4, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  expect_matrix_near(out, naive_ab(at, b), 1e-4f);
}

TEST(Gemm, AbtMatchesNaive) {
  Rng rng(3);
  const Matrix a = random_matrix(5, 4, rng);
  const Matrix b = random_matrix(7, 4, rng);  // bᵀ is 4x7
  Matrix out(5, 7);
  gemm_abt(a, b, out);
  Matrix bt(4, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  }
  expect_matrix_near(out, naive_ab(a, bt), 1e-4f);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), out(2, 2);
  EXPECT_THROW(gemm_ab(a, b, out), std::invalid_argument);
  Matrix b2(3, 2), out_bad(3, 2);
  EXPECT_THROW(gemm_ab(a, b2, out_bad), std::invalid_argument);
}

TEST(Gemm, IdentityIsNoop) {
  Rng rng(4);
  const Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Matrix out(4, 4);
  gemm_ab(a, eye, out);
  expect_matrix_near(out, a, 1e-6f);
}

TEST(Gemm, NanInputPropagatesDespiteZeroOperand) {
  // A diverged model produces NaN activations; a sparsity shortcut that
  // skips zero A entries would silently mask 0 * NaN terms. All three
  // kernels must let the NaN through.
  Matrix a = Matrix::from_rows(2, 2, {0.0f, 1.0f, 1.0f, 0.0f});
  Matrix b = Matrix::from_rows(2, 2, {NAN, 1.0f, 1.0f, 1.0f});
  Matrix out(2, 2);
  gemm_ab(a, b, out);
  // Row 0 of A is (0, 1): the 0 * NAN term must still poison out(0, 0).
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
  Matrix a_nan = Matrix::from_rows(2, 2, {NAN, 0.0f, 0.0f, 1.0f});
  Matrix ones = Matrix::from_rows(2, 2, {1.0f, 1.0f, 1.0f, 1.0f});
  gemm_ab(a_nan, ones, out);
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
  EXPECT_TRUE(std::isnan(out.at(0, 1)));
  gemm_atb(a_nan, ones, out);
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
  gemm_abt(a_nan, ones, out);
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
}

TEST(Gemm, LargeMultipliesMatchNaive) {
  // Above the parallel/blocking threshold (>= 2^20 MACs) the kernels
  // take the cache-blocked row-parallel path; verify against the naive
  // reference on every transpose configuration.
  Rng rng(7);
  const std::size_t m = 96, k = 128, n = 112;  // 96*128*112 > 2^20
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix out(m, n);
  gemm_ab(a, b, out);
  expect_matrix_near(out, naive_ab(a, b), 5e-3f);

  const Matrix a2 = random_matrix(k, m, rng);  // a2ᵀ is m x k
  Matrix out2(m, n);
  gemm_atb(a2, b, out2);
  Matrix a2t(m, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) a2t.at(j, i) = a2.at(i, j);
  }
  expect_matrix_near(out2, naive_ab(a2t, b), 5e-3f);

  const Matrix b2 = random_matrix(n, k, rng);  // b2ᵀ is k x n
  Matrix out3(m, n);
  gemm_abt(a, b2, out3);
  Matrix b2t(k, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) b2t.at(j, i) = b2.at(i, j);
  }
  expect_matrix_near(out3, naive_ab(a, b2t), 5e-3f);
}

TEST(Gemm, ViewRowRangeMultipliesChunk) {
  Rng rng(8);
  const Matrix a = random_matrix(10, 6, rng);
  const Matrix b = random_matrix(6, 4, rng);
  const Matrix full = naive_ab(a, b);
  Matrix out(4, 4);
  gemm_ab(ConstMatrixView(a).row_range(3, 4), b, out);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(out.at(i, j), full.at(i + 3, j), 1e-4f);
    }
  }
}

TEST(RowOps, ArgmaxRowsIntoMatchesAllocating) {
  const Matrix m = Matrix::from_rows(3, 3, {1, 5, 2, 9, 0, 1, 2, 2, 7});
  std::vector<std::size_t> out(3);
  argmax_rows_into(m, out);
  EXPECT_EQ(out, argmax_rows(m));
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 0, 2}));
  std::vector<std::size_t> wrong_size(2);
  EXPECT_THROW(argmax_rows_into(m, wrong_size), std::invalid_argument);
}

TEST(RowOps, AddRowBias) {
  Matrix m(2, 3, 1.0f);
  const std::vector<float> bias{1.0f, 2.0f, 3.0f};
  add_row_bias(m, bias);
  EXPECT_EQ(m.at(0, 0), 2.0f);
  EXPECT_EQ(m.at(1, 2), 4.0f);
}

TEST(RowOps, AddRowBiasLengthMismatch) {
  Matrix m(2, 3);
  const std::vector<float> bias{1.0f};
  EXPECT_THROW(add_row_bias(m, bias), std::invalid_argument);
}

TEST(RowOps, ColSum) {
  const Matrix m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  std::vector<float> out(2);
  col_sum(m, out);
  EXPECT_EQ(out[0], 4.0f);
  EXPECT_EQ(out[1], 6.0f);
}

TEST(Softmax, RowsSumToOne) {
  Matrix m = Matrix::from_rows(2, 3, {1, 2, 3, -1, 0, 1});
  softmax_rows(m);
  for (std::size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (float x : m.row(r)) {
      EXPECT_GT(x, 0.0f);
      total += x;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Matrix m = Matrix::from_rows(1, 2, {1000.0f, 1001.0f});
  softmax_rows(m);
  EXPECT_FALSE(std::isnan(m.at(0, 0)));
  EXPECT_NEAR(m.at(0, 1), 1.0f / (1.0f + std::exp(-1.0f)), 1e-4f);
}

TEST(Softmax, PreservesOrdering) {
  Matrix m = Matrix::from_rows(1, 3, {0.5f, 2.0f, -1.0f});
  softmax_rows(m);
  EXPECT_GT(m.at(0, 1), m.at(0, 0));
  EXPECT_GT(m.at(0, 0), m.at(0, 2));
}

TEST(Argmax, PerRow) {
  const Matrix m = Matrix::from_rows(2, 3, {1, 5, 2, 7, 0, 3});
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(VectorOps, Axpy) {
  std::vector<float> x{1, 2}, y{10, 20};
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[1], 24.0f);
}

TEST(VectorOps, AxpyLengthMismatch) {
  std::vector<float> x{1}, y{1, 2};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(VectorOps, Scale) {
  std::vector<float> x{2, -4};
  scale(x, 0.5f);
  EXPECT_EQ(x[0], 1.0f);
  EXPECT_EQ(x[1], -2.0f);
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<float> a{3, 4}, b{1, 0};
  EXPECT_EQ(dot(a, b), 3.0f);
  EXPECT_EQ(l2_norm(a), 5.0f);
  EXPECT_EQ(l2_distance(a, b), std::sqrt(4.0f + 16.0f));
}

TEST(VectorOps, CosineSimilarity) {
  const std::vector<float> a{1, 0}, b{0, 1}, c{2, 0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0f, 1e-6f);
  const std::vector<float> zero{0, 0};
  EXPECT_EQ(cosine_similarity(a, zero), 0.0f);
}

TEST(VectorOps, SubtractAddLerp) {
  const std::vector<float> a{5, 7}, b{2, 3};
  EXPECT_EQ(subtract(a, b), (std::vector<float>{3, 4}));
  EXPECT_EQ(add(a, b), (std::vector<float>{7, 10}));
  EXPECT_EQ(lerp(a, b, 0.0f), a);
  EXPECT_EQ(lerp(a, b, 1.0f), b);
  const auto mid = lerp(a, b, 0.5f);
  EXPECT_EQ(mid[0], 3.5f);
}

TEST(VectorOps, DotAccumulatesInDouble) {
  // Alternating large +/- values that would lose precision in fp32.
  std::vector<float> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 2 == 0 ? 1e7f : -1e7f);
    b.push_back(1.0f);
  }
  a.push_back(1.0f);
  b.push_back(1.0f);
  EXPECT_NEAR(dot(a, b), 1.0f, 1e-3f);
}

}  // namespace
}  // namespace baffle

#include "attack/adaptive.hpp"

#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

struct Fixture {
  SynthTask task;
  Mlp global;
  Dataset attacker_clean;

  Fixture()
      : task(make_task()),
        global(MlpConfig{{task.config.dim, 32, task.config.num_classes},
                         Activation::kRelu}) {
    Rng rng(2);
    global.init(rng);
    TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 64;
    tc.sgd.learning_rate = 0.05f;
    train_sgd(global, task.train.features(), task.train.labels(), tc, rng);
    Rng split_rng(3);
    attacker_clean = task.train.sample(120, split_rng);
  }

  static SynthTask make_task() {
    Rng rng(1);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 120;
    return make_synth_task(cfg, rng);
  }

  AdaptiveAttackConfig config() const {
    AdaptiveAttackConfig cfg;
    cfg.replacement.task =
        BackdoorTask{BackdoorKind::kSemantic, task.config.backdoor_source,
                     task.config.backdoor_target};
    cfg.replacement.poison_fraction = 0.2;
    cfg.replacement.boost = 10.0;
    cfg.replacement.train.epochs = 6;
    cfg.replacement.train.sgd.learning_rate = 0.05f;
    return cfg;
  }
};

TEST(AdaptiveAttack, AcceptAllCheckGivesFullScale) {
  Fixture f;
  Rng rng(4);
  const auto result = craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      [](const ParamVec&) { return true; }, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->alpha, 1.0);
  EXPECT_TRUE(result->self_passed);
}

TEST(AdaptiveAttack, RejectAllCheckSkipsRound) {
  Fixture f;
  Rng rng(5);
  const auto result = craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      [](const ParamVec&) { return false; }, rng);
  EXPECT_FALSE(result.has_value());
}

TEST(AdaptiveAttack, ScaleBackFindsLargestPassingAlpha) {
  Fixture f;
  Rng rng(6);
  // Accept only small perturbations: candidates within distance d of G.
  const ParamVec g = f.global.parameters();
  const auto norm_check = [&](const ParamVec& candidate) {
    return l2_distance(candidate, g) < 2.0f;
  };
  const auto full = craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      [](const ParamVec&) { return true; }, rng);
  ASSERT_TRUE(full.has_value());

  Rng rng2(6);
  const auto constrained = craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      norm_check, rng2);
  if (constrained.has_value()) {
    EXPECT_LE(constrained->alpha, 1.0);
    // The attacker's predicted candidate at the chosen alpha passes the
    // check: update = boost·alpha·(L−G), so alpha·(L−G) = update/boost.
    ParamVec predicted = g;
    ParamVec step = constrained->update;
    scale(step, static_cast<float>(1.0 / f.config().replacement.boost));
    axpy(1.0f, step, predicted);
    EXPECT_TRUE(norm_check(predicted));
  }
}

TEST(AdaptiveAttack, UpdateScalesWithBoostAndAlpha) {
  Fixture f;
  Rng rng(7);
  const auto result = craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      [](const ParamVec&) { return true; }, rng);
  ASSERT_TRUE(result.has_value());
  // With alpha = 1 the submitted update is boost * (L - G); its norm must
  // exceed the boost times a typical benign drift.
  EXPECT_GT(l2_norm(result->update), 1.0f);
}

TEST(AdaptiveAttack, ChecksCalledWithDescendingAlpha) {
  Fixture f;
  Rng rng(8);
  std::vector<double> seen_norms;
  const ParamVec g = f.global.parameters();
  craft_adaptive_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.config(),
      [&](const ParamVec& candidate) {
        seen_norms.push_back(l2_distance(candidate, g));
        return false;
      },
      rng);
  ASSERT_GE(seen_norms.size(), 2u);
  for (std::size_t i = 1; i < seen_norms.size(); ++i) {
    EXPECT_LT(seen_norms[i], seen_norms[i - 1]);
  }
}

TEST(AdaptiveAttack, RequiresSelfCheck) {
  Fixture f;
  Rng rng(9);
  EXPECT_THROW(craft_adaptive_update(f.global, f.attacker_clean,
                                     f.task.backdoor_train, f.config(),
                                     AttackerSideCheck{}, rng),
               std::invalid_argument);
}

TEST(AdaptiveAttack, RejectsBadAlphaGrid) {
  Fixture f;
  Rng rng(10);
  auto cfg = f.config();
  cfg.alpha_step = 0.0;
  EXPECT_THROW(craft_adaptive_update(f.global, f.attacker_clean,
                                     f.task.backdoor_train, cfg,
                                     [](const ParamVec&) { return true; },
                                     rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace baffle

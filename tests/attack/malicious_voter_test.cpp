#include "attack/malicious_voter.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

TEST(VoteStrategy, HonestLeavesVotesUntouched) {
  const std::vector<int> votes{1, 0, 1};
  const std::vector<std::size_t> ids{10, 11, 12};
  EXPECT_EQ(apply_vote_strategy(votes, ids, {10, 12}, VoteStrategy::kHonest),
            votes);
}

TEST(VoteStrategy, AlwaysAcceptFlipsMaliciousToClean) {
  const std::vector<int> votes{1, 1, 1};
  const std::vector<std::size_t> ids{10, 11, 12};
  const auto out =
      apply_vote_strategy(votes, ids, {11}, VoteStrategy::kAlwaysAccept);
  EXPECT_EQ(out, (std::vector<int>{1, 0, 1}));
}

TEST(VoteStrategy, AlwaysRejectFlipsMaliciousToPoisoned) {
  const std::vector<int> votes{0, 0, 0};
  const std::vector<std::size_t> ids{10, 11, 12};
  const auto out =
      apply_vote_strategy(votes, ids, {10, 12}, VoteStrategy::kAlwaysReject);
  EXPECT_EQ(out, (std::vector<int>{1, 0, 1}));
}

TEST(VoteStrategy, HonestVotersUnaffected) {
  const std::vector<int> votes{1, 0};
  const std::vector<std::size_t> ids{1, 2};
  const auto out =
      apply_vote_strategy(votes, ids, {99}, VoteStrategy::kAlwaysReject);
  EXPECT_EQ(out, votes);
}

TEST(VoteStrategy, SizeMismatchThrows) {
  EXPECT_THROW(
      apply_vote_strategy({1}, {1, 2}, {}, VoteStrategy::kHonest),
      std::invalid_argument);
}

TEST(QuorumSafety, PaperExampleBounds) {
  // n = 10, n_M = 1, ρ = 0.2: safe range is (1 + 0.2*9, 0.8*9] =
  // (2.8, 7.2] -> q in {3..7}.
  EXPECT_FALSE(quorum_is_safe(10, 1, 0.2, 2));
  EXPECT_TRUE(quorum_is_safe(10, 1, 0.2, 3));
  EXPECT_TRUE(quorum_is_safe(10, 1, 0.2, 7));
  EXPECT_FALSE(quorum_is_safe(10, 1, 0.2, 8));
}

TEST(QuorumSafety, NoSafeQuorumWhenTooManyMalicious) {
  // n_M = 5 of n = 10 (no honest majority): no q can work.
  for (std::size_t q = 1; q <= 10; ++q) {
    EXPECT_FALSE(quorum_is_safe(10, 5, 0.0, q));
  }
}

TEST(QuorumSafety, AllMaliciousNeverSafe) {
  EXPECT_FALSE(quorum_is_safe(10, 10, 0.0, 5));
}

TEST(QuorumSafety, RhoOutOfRangeThrows) {
  EXPECT_THROW(quorum_is_safe(10, 1, -0.1, 5), std::invalid_argument);
  EXPECT_THROW(quorum_is_safe(10, 1, 1.1, 5), std::invalid_argument);
}

TEST(MaxTolerableMalicious, PaperValues) {
  // ρ = 0.4, n = 10 -> n_M < 3.75 -> 3; ρ = 0.5 -> n_M < 3.33 -> 3.
  EXPECT_EQ(max_tolerable_malicious(10, 0.4), 3u);
  EXPECT_EQ(max_tolerable_malicious(10, 0.5), 3u);
}

TEST(MaxTolerableMalicious, PerfectJudgmentApproachesHalf) {
  // ρ = 0 -> n_M < n/2.
  EXPECT_EQ(max_tolerable_malicious(10, 0.0), 4u);
  EXPECT_EQ(max_tolerable_malicious(11, 0.0), 5u);
}

TEST(MaxTolerableMalicious, StrictBoundAtIntegerBoundary) {
  // (1-ρ)n/(2-ρ) exactly integral: ρ = 0, n = 8 -> bound 4, n_M must be
  // strictly below -> 3.
  EXPECT_EQ(max_tolerable_malicious(8, 0.0), 3u);
}

TEST(MaxTolerableMalicious, BadRhoThrows) {
  EXPECT_THROW(max_tolerable_malicious(10, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

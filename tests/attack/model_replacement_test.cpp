#include "attack/model_replacement.hpp"

#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "metrics/confusion.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

struct Fixture {
  SynthTask task;
  Mlp global;
  Dataset attacker_clean;

  Fixture()
      : task(make_task()),
        global(MlpConfig{{task.config.dim, 32, task.config.num_classes},
                         Activation::kRelu}) {
    Rng rng(2);
    global.init(rng);
    // Pre-train the global model so replacement operates on a stable
    // model, matching the attack's intended regime.
    TrainConfig tc;
    tc.epochs = 15;
    tc.batch_size = 64;
    tc.sgd.learning_rate = 0.05f;
    train_sgd(global, task.train.features(), task.train.labels(), tc, rng);
    Rng split_rng(3);
    attacker_clean = task.train.sample(150, split_rng);
  }

  static SynthTask make_task() {
    Rng rng(1);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 150;
    return make_synth_task(cfg, rng);
  }

  ModelReplacementConfig attack_config(double boost) const {
    ModelReplacementConfig cfg;
    cfg.task = BackdoorTask{BackdoorKind::kSemantic,
                            task.config.backdoor_source,
                            task.config.backdoor_target};
    cfg.poison_fraction = 0.3;
    cfg.boost = boost;
    cfg.train.epochs = 8;
    cfg.train.sgd.learning_rate = 0.05f;
    return cfg;
  }
};

TEST(ModelReplacement, BoostedUpdateImplantsBackdoor) {
  Fixture f;
  Rng rng(4);
  // Boost 1 here because we apply the update directly (no aggregation).
  const ParamVec update = craft_replacement_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.attack_config(1.0),
      rng);
  Mlp poisoned = f.global;
  poisoned.add_to_parameters(update);
  EXPECT_GT(backdoor_accuracy(poisoned, f.task.backdoor_test,
                              f.task.config.backdoor_target),
            0.6);
  // Main task should survive reasonably (multi-task blend).
  EXPECT_GT(evaluate_confusion(poisoned, f.task.test).accuracy(), 0.6);
}

TEST(ModelReplacement, CleanGlobalModelHasNoBackdoor) {
  Fixture f;
  EXPECT_LT(backdoor_accuracy(f.global, f.task.backdoor_test,
                              f.task.config.backdoor_target),
            0.3);
}

TEST(ModelReplacement, BoostScalesUpdateLinearly) {
  Fixture f;
  Rng rng1(5), rng2(5);
  const ParamVec u1 = craft_replacement_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.attack_config(1.0),
      rng1);
  const ParamVec u2 = craft_replacement_update(
      f.global, f.attacker_clean, f.task.backdoor_train, f.attack_config(3.0),
      rng2);
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_NEAR(u2[i], 3.0f * u1[i], 1e-3f + std::abs(u1[i]) * 1e-3f);
  }
}

TEST(ModelReplacement, RejectsBadScaling) {
  Fixture f;
  Rng rng(6);
  auto cfg = f.attack_config(0.0);
  EXPECT_THROW(craft_replacement_update(f.global, f.attacker_clean,
                                        f.task.backdoor_train, cfg, rng),
               std::invalid_argument);
}

TEST(MaliciousProvider, HonestWhenDisarmed) {
  Fixture f;
  std::vector<FlClient> clients;
  clients.emplace_back(0, f.attacker_clean);
  HonestUpdateProvider honest(&clients, TrainConfig{});
  MaliciousUpdateProvider malicious(honest, 0, f.attacker_clean,
                                    f.task.backdoor_train,
                                    f.attack_config(10.0));
  Rng rng_a(7), rng_b(7);
  const ParamVec from_malicious = malicious.update_for(0, f.global, rng_a);
  const ParamVec from_honest = honest.update_for(0, f.global, rng_b);
  EXPECT_EQ(from_malicious, from_honest);
}

TEST(MaliciousProvider, PoisonsOnlyAttackerIdWhenArmed) {
  Fixture f;
  std::vector<FlClient> clients;
  clients.emplace_back(0, f.attacker_clean);
  clients.emplace_back(1, f.attacker_clean);
  HonestUpdateProvider honest(&clients, TrainConfig{});
  MaliciousUpdateProvider malicious(honest, 0, f.attacker_clean,
                                    f.task.backdoor_train,
                                    f.attack_config(10.0));
  malicious.arm(true);
  Rng rng(8);
  const ParamVec attacker_update = malicious.update_for(0, f.global, rng);
  const ParamVec other_update = malicious.update_for(1, f.global, rng);
  // The boosted poisoned update is far larger than an honest one.
  EXPECT_GT(l2_norm(attacker_update), 3.0f * l2_norm(other_update));
}

}  // namespace
}  // namespace baffle

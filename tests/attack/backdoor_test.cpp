#include "attack/backdoor.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

Mlp always_predicts(int cls, std::size_t classes) {
  Mlp model(MlpConfig{{2, classes}, Activation::kRelu});
  std::vector<float> params(model.num_params(), 0.0f);
  // Bias vector is the last `classes` entries.
  params[params.size() - classes + static_cast<std::size_t>(cls)] = 10.0f;
  model.set_parameters(params);
  return model;
}

Dataset backdoor_set(std::size_t n) {
  Dataset d(2, 4);
  for (std::size_t i = 0; i < n; ++i) d.add({{0.0f, 0.0f}, 1});
  return d;
}

TEST(BackdoorAccuracy, FullHitWhenModelPredictsTarget) {
  Mlp model = always_predicts(3, 4);
  EXPECT_DOUBLE_EQ(backdoor_accuracy(model, backdoor_set(10), 3), 1.0);
}

TEST(BackdoorAccuracy, ZeroWhenModelPredictsElsewhere) {
  Mlp model = always_predicts(0, 4);
  EXPECT_DOUBLE_EQ(backdoor_accuracy(model, backdoor_set(10), 3), 0.0);
}

TEST(BackdoorAccuracy, EmptySetThrows) {
  Mlp model = always_predicts(0, 4);
  EXPECT_THROW(backdoor_accuracy(model, Dataset(2, 4), 3),
               std::invalid_argument);
}

TEST(BackdoorAccuracy, BadTargetThrows) {
  Mlp model = always_predicts(0, 4);
  EXPECT_THROW(backdoor_accuracy(model, backdoor_set(5), 9),
               std::invalid_argument);
  EXPECT_THROW(backdoor_accuracy(model, backdoor_set(5), -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace baffle

#include "attack/dba.hpp"

#include <gtest/gtest.h>

#include "attack/backdoor.hpp"
#include "metrics/confusion.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

TEST(SplitTrigger, PartsSumToWhole) {
  const std::vector<float> pattern{2.0f, 0.0f, 2.0f, 2.0f, 0.0f, 2.0f};
  const auto parts = split_trigger(pattern, 2);
  ASSERT_EQ(parts.size(), 2u);
  std::vector<float> total(pattern.size(), 0.0f);
  for (const auto& p : parts) axpy(1.0f, p, total);
  EXPECT_EQ(total, pattern);
}

TEST(SplitTrigger, DisjointSupport) {
  const std::vector<float> pattern{1.0f, 1.0f, 1.0f, 1.0f};
  const auto parts = split_trigger(pattern, 2);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    int owners = 0;
    for (const auto& p : parts) {
      if (p[i] != 0.0f) ++owners;
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(SplitTrigger, MorePartsThanCoordinates) {
  const std::vector<float> pattern{1.0f, 0.0f};
  const auto parts = split_trigger(pattern, 4);
  ASSERT_EQ(parts.size(), 4u);
  // Only one non-zero coordinate: exactly one part carries it.
  int carriers = 0;
  for (const auto& p : parts) {
    if (p[0] != 0.0f) ++carriers;
  }
  EXPECT_EQ(carriers, 1);
}

TEST(SplitTrigger, ZeroPartsThrows) {
  EXPECT_THROW(split_trigger({1.0f}, 0), std::invalid_argument);
}

struct DbaFixture {
  SynthTask task;
  Mlp global;

  DbaFixture()
      : task(make_task()),
        global(MlpConfig{{task.config.dim, 32, task.config.num_classes},
                         Activation::kRelu}) {
    Rng rng(3);
    global.init(rng);
    TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 64;
    tc.sgd.learning_rate = 0.05f;
    train_sgd(global, task.train.features(), task.train.labels(), tc, rng);
  }

  static SynthTask make_task() {
    Rng rng(2);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.backdoor_kind = BackdoorKind::kTrigger;
    cfg.train_per_class = 200;
    return make_synth_task(cfg, rng);
  }

  DbaConfig config() const {
    DbaConfig cfg;
    cfg.num_parts = 4;
    cfg.target_class = task.config.backdoor_target;
    cfg.poison_fraction = 0.3;
    cfg.per_client_boost = 1.0;
    cfg.train.epochs = 6;
    cfg.train.sgd.learning_rate = 0.05f;
    return cfg;
  }
};

TEST(Dba, CombinedSlicesImplantFullTriggerBackdoor) {
  DbaFixture f;
  Rng rng(4);
  const auto pattern = trigger_pattern(f.task.config);
  const auto parts = split_trigger(pattern, 4);
  // Each colluder contributes its slice model; average their updates
  // (full-replacement regime: the mean of the local models).
  std::vector<ParamVec> updates;
  for (std::size_t i = 0; i < 4; ++i) {
    Rng crng = rng.fork();
    updates.push_back(craft_dba_update(
        f.global, f.task.train.sample(300, crng), parts[i], f.config(),
        crng));
  }
  Mlp poisoned = f.global;
  poisoned.add_to_parameters(mean_update(updates));
  const double bd = backdoor_accuracy(poisoned, f.task.backdoor_test,
                                      f.task.config.backdoor_target);
  EXPECT_GT(bd, 0.5);
  // Main task survives (DBA is designed to be stealthy).
  EXPECT_GT(evaluate_confusion(poisoned, f.task.test).accuracy(), 0.6);
}

TEST(Dba, CleanModelNotTriggered) {
  DbaFixture f;
  EXPECT_LT(backdoor_accuracy(f.global, f.task.backdoor_test,
                              f.task.config.backdoor_target),
            0.3);
}

TEST(Dba, CraftRejectsBadInputs) {
  DbaFixture f;
  Rng rng(5);
  EXPECT_THROW(
      craft_dba_update(f.global, Dataset(f.task.config.dim, 10),
                       trigger_pattern(f.task.config), f.config(), rng),
      std::invalid_argument);
  EXPECT_THROW(craft_dba_update(f.global, f.task.train,
                                std::vector<float>{1.0f}, f.config(), rng),
               std::invalid_argument);
}

TEST(DbaProvider, ColludersPoisonOthersHonest) {
  DbaFixture f;
  Rng rng(6);
  std::vector<FlClient> clients;
  for (std::size_t i = 0; i < 6; ++i) {
    Rng crng = rng.fork();
    clients.emplace_back(i, f.task.train.sample(150, crng));
  }
  HonestUpdateProvider honest(&clients, TrainConfig{});
  std::vector<Dataset> colluder_data;
  for (std::size_t i = 0; i < 4; ++i) {
    colluder_data.push_back(clients[i].data());
  }
  DbaUpdateProvider provider(honest, {0, 1, 2, 3},
                             std::move(colluder_data),
                             trigger_pattern(f.task.config), f.config());
  provider.arm(true);
  Rng a(7), b(7);
  // Colluder 0 produces a poisoned update (differs from honest).
  const ParamVec poisoned = provider.update_for(0, f.global, a);
  const ParamVec honest_u = honest.update_for(0, f.global, b);
  EXPECT_NE(poisoned, honest_u);
  // Client 5 (not a colluder) stays honest.
  Rng c(8), d(8);
  EXPECT_EQ(provider.update_for(5, f.global, c),
            honest.update_for(5, f.global, d));
}

TEST(DbaProvider, DisarmedIsFullyHonest) {
  DbaFixture f;
  Rng rng(9);
  std::vector<FlClient> clients;
  clients.emplace_back(0, f.task.train.sample(100, rng));
  HonestUpdateProvider honest(&clients, TrainConfig{});
  DbaUpdateProvider provider(
      honest, {0}, {clients[0].data()}, trigger_pattern(f.task.config),
      [] {
        DbaConfig cfg;
        cfg.num_parts = 1;
        return cfg;
      }());
  Rng a(10), b(10);
  EXPECT_EQ(provider.update_for(0, f.global, a),
            honest.update_for(0, f.global, b));
}

TEST(DbaProvider, MismatchedColluderCountThrows) {
  DbaFixture f;
  std::vector<FlClient> clients;
  HonestUpdateProvider honest(&clients, TrainConfig{});
  DbaConfig cfg = f.config();  // num_parts = 4
  EXPECT_THROW(DbaUpdateProvider(honest, {0, 1}, {Dataset(), Dataset()},
                                 trigger_pattern(f.task.config), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace baffle

// TaskGraph executor: dependency ordering, failure poisoning, nesting
// on the shared pool, and help-drain waiting (no deadlock when graphs
// wait from inside pool tasks).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/contracts.hpp"
#include "util/task_graph.hpp"

namespace baffle {
namespace {

TEST(TaskGraph, ChainRunsInDependencyOrder) {
  TaskGraph graph;
  std::vector<int> order;
  std::mutex m;
  const auto record = [&](int v) {
    std::lock_guard lock(m);
    order.push_back(v);
  };
  const auto a = graph.add(TaskNodeKind::kTrain, [&] { record(1); });
  const auto b = graph.add(TaskNodeKind::kValidate, [&] { record(2); }, {a});
  graph.add(TaskNodeKind::kCheckpoint, [&] { record(3); }, {b});
  graph.wait_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(graph.tasks_run(), 3u);
  EXPECT_EQ(graph.tasks_skipped(), 0u);
}

TEST(TaskGraph, DiamondJoinWaitsForBothBranches) {
  TaskGraph graph;
  std::atomic<int> left{0};
  std::atomic<int> right{0};
  std::atomic<bool> join_saw_both{false};
  const auto root = graph.add(TaskNodeKind::kTrain, [] {});
  const auto l = graph.add(TaskNodeKind::kEval, [&] { left = 1; }, {root});
  const auto r = graph.add(TaskNodeKind::kEval, [&] { right = 1; }, {root});
  graph.add(TaskNodeKind::kCheckpoint,
            [&] { join_saw_both = left == 1 && right == 1; }, {l, r});
  graph.wait_all();
  EXPECT_TRUE(join_saw_both);
  EXPECT_EQ(graph.tasks_run(), 4u);
}

TEST(TaskGraph, NoTaskSentinelDependenciesAreIgnored) {
  TaskGraph graph;
  std::atomic<int> runs{0};
  graph.add(TaskNodeKind::kTrain, [&] { ++runs; },
            {TaskGraph::kNoTask, TaskGraph::kNoTask});
  graph.wait_all();
  EXPECT_EQ(runs, 1);
}

TEST(TaskGraph, FailurePoisonsTransitiveDependentsAndRethrowsOnce) {
  TaskGraph graph;
  std::atomic<int> runs{0};
  const auto bad = graph.add(TaskNodeKind::kTrain,
                             [] { throw std::runtime_error("boom"); });
  const auto child =
      graph.add(TaskNodeKind::kValidate, [&] { ++runs; }, {bad});
  graph.add(TaskNodeKind::kCheckpoint, [&] { ++runs; }, {child});
  graph.add(TaskNodeKind::kEval, [&] { ++runs; });  // independent: runs
  EXPECT_THROW(graph.wait_all(), std::runtime_error);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(graph.tasks_run(), 1u);
  EXPECT_EQ(graph.tasks_skipped(), 2u);
  // The error was consumed; the graph stays usable afterwards.
  graph.add(TaskNodeKind::kTrain, [&] { ++runs; });
  EXPECT_NO_THROW(graph.wait_all());
  EXPECT_EQ(runs, 2);
}

TEST(TaskGraph, DependingOnAFinishedFailedNodeSkipsAtBirth) {
  TaskGraph graph;
  const auto bad = graph.add(TaskNodeKind::kTrain,
                             [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(graph.wait_all(), std::runtime_error);
  std::atomic<int> runs{0};
  graph.add(TaskNodeKind::kValidate, [&] { ++runs; }, {bad});
  graph.wait_all();
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(graph.tasks_skipped(), 1u);
}

TEST(TaskGraph, ForwardDependencyIsAContractViolation) {
  TaskGraph graph;
  const auto a = graph.add(TaskNodeKind::kTrain, [] {});
  EXPECT_THROW(graph.add(TaskNodeKind::kValidate, [] {}, {a + 7}),
               ContractViolation);
  // The violating add left the graph untouched; it stays usable.
  std::atomic<int> runs{0};
  graph.add(TaskNodeKind::kValidate, [&] { ++runs; }, {a});
  graph.wait_all();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(graph.tasks_run(), 2u);
}

TEST(TaskGraph, AddingWhileRunningExtendsTheGraph) {
  TaskGraph graph;
  std::atomic<int> total{0};
  for (int wave = 0; wave < 4; ++wave) {
    TaskGraph::TaskId prev = TaskGraph::kNoTask;
    for (int i = 0; i < 8; ++i) {
      prev = graph.add(TaskNodeKind::kEval, [&] { ++total; }, {prev});
    }
    graph.wait_all();
  }
  EXPECT_EQ(total, 32);
  EXPECT_EQ(graph.tasks_run(), 32u);
}

TEST(TaskGraph, NestedGraphsShareThePoolWithoutDeadlock) {
  // Every outer node builds and waits on an inner graph. With a
  // saturated pool this deadlocks unless waiting help-drains — the
  // run_repeated / sweep-over-experiments shape.
  TaskGraph outer;
  std::atomic<int> inner_runs{0};
  const std::size_t fanout = ThreadPool::global().size() * 2 + 2;
  for (std::size_t i = 0; i < fanout; ++i) {
    outer.add(TaskNodeKind::kExperiment, [&] {
      TaskGraph inner;
      TaskGraph::TaskId prev = TaskGraph::kNoTask;
      for (int j = 0; j < 4; ++j) {
        prev = inner.add(TaskNodeKind::kTrain, [&] { ++inner_runs; }, {prev});
      }
      inner.wait_all();
    });
  }
  outer.wait_all();
  EXPECT_EQ(inner_runs, static_cast<int>(fanout) * 4);
}

TEST(TaskGraph, DestructorQuiescesWithoutWaitAll) {
  std::atomic<int> runs{0};
  {
    TaskGraph graph;
    TaskGraph::TaskId prev = TaskGraph::kNoTask;
    for (int i = 0; i < 16; ++i) {
      prev = graph.add(TaskNodeKind::kEval, [&] { ++runs; }, {prev});
    }
    // No wait_all: the destructor must drain before `runs` goes away.
  }
  EXPECT_EQ(runs, 16);
}

TEST(TaskGraph, KindNamesCoverEveryKind) {
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kTrain), "train");
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kAggregate), "aggregate");
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kValidate), "validate");
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kEval), "eval");
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(task_node_kind_name(TaskNodeKind::kExperiment), "experiment");
}

}  // namespace
}  // namespace baffle

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace baffle {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionFromNestedInnerLoopPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t outer) {
                          pool.parallel_for(4, [&](std::size_t inner) {
                            if (outer == 1 && inner == 2) {
                              throw std::runtime_error("nested boom");
                            }
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> total{0};
  pool.parallel_for(16, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ExceptionDoesNotAbortRemainingIndices) {
  // parallel_for records the first error but keeps draining indices, so
  // every iteration still runs exactly once.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   started.fetch_add(1);
                                   if (i == 0) {
                                     throw std::runtime_error("early");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(started.load(), 32);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Saturate a small pool with outer iterations that each run an inner
  // parallel_for; the helping wait must drain everything.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(6, [&](std::size_t) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(25, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 25);
}

TEST(ThreadPool, TryRunOneEmptyQueue) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace baffle

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace baffle {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("x"), 0u);
  registry.add_counter("x");
  registry.add_counter("x", 4);
  EXPECT_EQ(registry.counter("x"), 5u);
  EXPECT_EQ(registry.counter("y"), 0u);
}

TEST(MetricsRegistry, TimersAccumulateSamplesAndSeconds) {
  MetricsRegistry registry;
  registry.add_timer("t", 0.25);
  registry.add_timer("t", 0.5);
  EXPECT_EQ(registry.timer_count("t"), 2u);
  EXPECT_DOUBLE_EQ(registry.timer_seconds("t"), 0.75);
  EXPECT_EQ(registry.timer_count("missing"), 0u);
  EXPECT_DOUBLE_EQ(registry.timer_seconds("missing"), 0.0);
}

TEST(MetricsRegistry, SnapshotListsEverything) {
  MetricsRegistry registry;
  registry.add_counter("c", 3);
  registry.add_timer("t", 1.5);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  bool saw_counter = false, saw_timer = false;
  for (const auto& s : samples) {
    if (s.name == "c" && s.kind == "counter" && s.count == 3) {
      saw_counter = true;
    }
    if (s.name == "t" && s.kind == "timer" && s.count == 1 &&
        s.total_seconds == 1.5) {
      saw_timer = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_timer);
}

TEST(MetricsRegistry, ResetDropsAllMetrics) {
  MetricsRegistry registry;
  registry.add_counter("c");
  registry.add_timer("t", 1.0);
  registry.reset();
  EXPECT_EQ(registry.counter("c"), 0u);
  EXPECT_EQ(registry.timer_count("t"), 0u);
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(MetricsRegistry, ScopedTimerRecordsOnDestruction) {
  MetricsRegistry registry;
  {
    const ScopedTimer timer("scope", registry);
    EXPECT_EQ(registry.timer_count("scope"), 0u);
  }
  EXPECT_EQ(registry.timer_count("scope"), 1u);
  EXPECT_GE(registry.timer_seconds("scope"), 0.0);
}

TEST(MetricsRegistry, ConcurrentUpdatesDoNotLoseCounts) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        registry.add_counter("shared");
        registry.add_timer("shared_t", 0.001);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("shared"), 4000u);
  EXPECT_EQ(registry.timer_count("shared_t"), 4000u);
}

TEST(MetricsRegistry, DumpCsvWritesEveryMetric) {
  MetricsRegistry registry;
  registry.add_counter("cache.hits", 12);
  registry.add_timer("round", 0.5);
  const std::string path = ::testing::TempDir() + "metrics_test_dump.csv";
  registry.dump_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  EXPECT_NE(text.find("kind,name,count,total_seconds"), std::string::npos);
  EXPECT_NE(text.find("counter,cache.hits,12"), std::string::npos);
  EXPECT_NE(text.find("timer,round,1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace baffle

#include "util/serialization.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace baffle {
namespace {

TEST(Serialization, RoundTripPrimitives) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f32(3.5f);
  w.f64(-2.25);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_TRUE(r.done());
}

TEST(Serialization, RoundTripFloatVector) {
  ByteWriter w;
  const std::vector<float> v{1.0f, -2.5f, 0.0f,
                             std::numeric_limits<float>::max()};
  w.f32_span(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.f32_vec(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialization, RoundTripEmptyVector) {
  ByteWriter w;
  w.f32_span({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.f32_vec().empty());
}

TEST(Serialization, RoundTripString) {
  ByteWriter w;
  w.str("hello, world");
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello, world");
  EXPECT_EQ(r.str(), "");
}

TEST(Serialization, PreservesFloatBitPatterns) {
  ByteWriter w;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  w.f32(nan);
  w.f32(inf);
  w.f32(-0.0f);
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f32()));
  EXPECT_EQ(r.f32(), inf);
  const float neg_zero = r.f32();
  EXPECT_EQ(neg_zero, 0.0f);
  EXPECT_TRUE(std::signbit(neg_zero));
}

TEST(Serialization, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(7);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Serialization, ImplausibleVectorLengthThrows) {
  ByteWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());  // absurd length
  ByteReader r(w.bytes());
  EXPECT_THROW(r.f32_vec(), std::runtime_error);
}

TEST(Serialization, ImplausibleStringLengthThrows) {
  ByteWriter w;
  w.u64(1u << 20);  // claims 1MiB follows; nothing does
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Serialization, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.done());
}

/// Randomized round-trip property: arbitrary interleavings of writes
/// decode back exactly.
class SerializationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationFuzz, RandomRoundTrip) {
  baffle::Rng rng(GetParam());
  ByteWriter w;
  struct Op {
    int kind;
    std::uint64_t u;
    float f;
    std::vector<float> vec;
    std::string s;
  };
  std::vector<Op> ops;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.uniform_int(0, 3));
    switch (op.kind) {
      case 0:
        op.u = rng.next_u64();
        w.u64(op.u);
        break;
      case 1:
        op.f = static_cast<float>(rng.normal(0.0, 1e6));
        w.f32(op.f);
        break;
      case 2: {
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 16));
        op.vec.resize(len);
        for (auto& x : op.vec) x = static_cast<float>(rng.normal());
        w.f32_span(op.vec);
        break;
      }
      case 3: {
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
        op.s.resize(len);
        for (auto& c : op.s) {
          c = static_cast<char>(rng.uniform_int(0, 255));
        }
        w.str(op.s);
        break;
      }
    }
    ops.push_back(std::move(op));
  }
  ByteReader r(w.bytes());
  for (const auto& op : ops) {
    switch (op.kind) {
      case 0: EXPECT_EQ(r.u64(), op.u); break;
      case 1: EXPECT_EQ(r.f32(), op.f); break;
      case 2: EXPECT_EQ(r.f32_vec(), op.vec); break;
      case 3: EXPECT_EQ(r.str(), op.s); break;
    }
  }
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Serialization, RoundTripU16) {
  ByteWriter w;
  w.u16(0xBEEF);
  w.u16(0);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 0xBEEFu);
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_TRUE(r.done());
}

TEST(Serialization, RawRoundTripsAndAliasesInput) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload{9, 8, 7};
  w.raw(payload);
  const auto& bytes = w.bytes();
  ByteReader r(bytes);
  const auto view = r.raw(3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 8);
  EXPECT_EQ(view.data(), bytes.data());  // zero-copy: aliases the input
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.position(), 3u);
}

TEST(Serialization, RawPastEndThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.raw(2), std::out_of_range);
  EXPECT_EQ(r.position(), 0u);  // nothing consumed on failure
}

TEST(Serialization, F32VecIntoReplacesPriorContents) {
  ByteWriter w;
  w.f32_span(std::vector<float>{1.0f, 2.0f});
  ByteReader r(w.bytes());
  std::vector<float> out{9.0f, 9.0f, 9.0f, 9.0f, 9.0f};
  r.f32_vec_into(out);
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f}));
}

TEST(Serialization, DenormalsSurviveRoundTrip) {
  ByteWriter w;
  const float denorm = std::numeric_limits<float>::denorm_min();
  w.f32_span(std::vector<float>{denorm, -denorm});
  ByteReader r(w.bytes());
  const auto v = r.f32_vec();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(v[0]),
            std::bit_cast<std::uint32_t>(denorm));
  EXPECT_EQ(std::bit_cast<std::uint32_t>(v[1]),
            std::bit_cast<std::uint32_t>(-denorm));
}

// Truncation sweep: a buffer that exercises EVERY reader method, cut at
// every possible length. Decoding must fail with the documented
// exceptions at or before the cut — never read past the end, never
// crash. (ASan turns any over-read into a hard failure.)
TEST(Serialization, TruncationSweepCoversEveryReaderMethod) {
  ByteWriter w;
  w.u8(1);
  w.u16(2);
  w.u32(3);
  w.u64(4);
  w.i64(-5);
  w.f32(1.5f);
  w.f64(-2.5);
  w.f32_span(std::vector<float>{1.0f, 2.0f, 3.0f});
  w.str("abc");
  w.raw(std::vector<std::uint8_t>{0xAA, 0xBB});
  const std::vector<std::uint8_t> full = w.take();

  const auto decode_all = [](std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    r.u8();
    r.u16();
    r.u32();
    r.u64();
    r.i64();
    r.f32();
    r.f64();
    std::vector<float> vec;
    r.f32_vec_into(vec);
    r.str();
    r.raw(2);
    return r.done();
  };
  ASSERT_TRUE(decode_all(full));

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    SCOPED_TRACE(cut);
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    bool threw = false;
    try {
      decode_all(prefix);
    } catch (const std::out_of_range&) {
      threw = true;
    } catch (const std::runtime_error&) {
      threw = true;  // a cut inside a length prefix reads as implausible
    }
    EXPECT_TRUE(threw);
  }
}

// Hostile length prefixes chosen so that n * sizeof(float) or pos_ + n
// wraps 64-bit arithmetic if computed before validation; the guard must
// compare against remaining() first and throw instead.
TEST(Serialization, OverflowingLengthPrefixCannotWrap) {
  const std::uint64_t hostile[] = {
      std::uint64_t{1} << 62,
      (std::uint64_t{1} << 62) + 1,
      std::numeric_limits<std::uint64_t>::max() / 4,
      std::numeric_limits<std::uint64_t>::max() - 3,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t n : hostile) {
    SCOPED_TRACE(n);
    ByteWriter w;
    w.u64(n);
    w.u32(0);  // a few real bytes after the prefix
    {
      ByteReader r(w.bytes());
      EXPECT_THROW(r.f32_vec(), std::runtime_error);
    }
    {
      ByteReader r(w.bytes());
      std::vector<float> out;
      EXPECT_THROW(r.f32_vec_into(out), std::runtime_error);
    }
    {
      ByteReader r(w.bytes());
      EXPECT_THROW(r.str(), std::runtime_error);
    }
  }
}

TEST(Serialization, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

}  // namespace
}  // namespace baffle

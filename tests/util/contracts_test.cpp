// Tests for the contract layer (util/contracts.hpp) and its adoption
// at the library's configuration and shape boundaries. ContractViolation
// derives from std::invalid_argument, so these tests also pin down that
// existing catch sites keep working.

#include "util/contracts.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/feedback_loop.hpp"
#include "fl/server.hpp"
#include "metrics/confusion.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

TEST(Contracts, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(BAFFLE_CHECK(1 + 1 == 2, "arithmetic holds"));
}

TEST(Contracts, CheckThrowsContractViolationWithContext) {
  try {
    BAFFLE_CHECK(2 + 2 == 5, "arithmetic must hold");
    FAIL() << "BAFFLE_CHECK did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("arithmetic must hold"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, ViolationIsAnInvalidArgument) {
  // Existing call sites catch std::invalid_argument; the contract layer
  // must stay compatible with them.
  EXPECT_THROW(BAFFLE_CHECK(false, "always fires"), std::invalid_argument);
}

TEST(Contracts, DcheckIsInertWhenChecksAreOff) {
#if defined(BAFFLE_CHECKS) && BAFFLE_CHECKS
  EXPECT_THROW(BAFFLE_DCHECK(false, "live in checked builds"),
               ContractViolation);
  EXPECT_THROW(BAFFLE_DCHECK_BOUNDS(3, 3), ContractViolation);
#else
  // In default builds the macros compile to nothing — the condition
  // must not even be evaluated.
  bool evaluated = false;
  BAFFLE_DCHECK(
      [&] {
        evaluated = true;
        return false;
      }(),
      "must not be evaluated");
  EXPECT_FALSE(evaluated);
#endif
}

// -- configuration-time contracts ------------------------------------

FlConfig small_fl_config() {
  FlConfig config;
  config.total_clients = 10;
  config.clients_per_round = 4;
  return config;
}

TEST(Contracts, FlConfigAcceptsSaneValues) {
  EXPECT_NO_THROW(validate_fl_config(small_fl_config()));
}

TEST(Contracts, FlConfigRejectsRoundLargerThanPopulation) {
  FlConfig config = small_fl_config();
  config.clients_per_round = 11;  // n > N
  EXPECT_THROW(validate_fl_config(config), ContractViolation);
}

TEST(Contracts, FlConfigRejectsEmptyRound) {
  FlConfig config = small_fl_config();
  config.clients_per_round = 0;
  EXPECT_THROW(validate_fl_config(config), ContractViolation);
}

TEST(Contracts, FlConfigRejectsNonPositiveGlobalLr) {
  FlConfig config = small_fl_config();
  config.global_lr = 0.0;
  EXPECT_THROW(validate_fl_config(config), ContractViolation);
}

TEST(Contracts, FlConfigRejectsDegenerateFixedPoint) {
  FlConfig config = small_fl_config();
  config.secure_agg_frac_bits = 64;
  EXPECT_THROW(validate_fl_config(config), ContractViolation);
}

FeedbackConfig small_feedback_config() {
  FeedbackConfig config;
  config.quorum = 3;
  return config;
}

TEST(Contracts, FeedbackConfigAcceptsReachableQuorum) {
  // q = n: a full round of client validators can reject on its own.
  FeedbackConfig config = small_feedback_config();
  config.mode = DefenseMode::kClientsOnly;
  config.quorum = 4;
  EXPECT_NO_THROW(validate_feedback_config(config, /*clients_per_round=*/4));
}

TEST(Contracts, FeedbackConfigRejectsUnreachableQuorum) {
  // q > n (+ server): no round could ever gather enough votes, so every
  // backdoored model would be accepted by default (paper footnote 1
  // treats short rounds as accepts). This must fail loudly up front.
  FeedbackConfig config = small_feedback_config();
  config.mode = DefenseMode::kClientsOnly;
  config.quorum = 5;
  EXPECT_THROW(validate_feedback_config(config, /*clients_per_round=*/4),
               ContractViolation);
  config.mode = DefenseMode::kClientsAndServer;  // one extra voter
  EXPECT_NO_THROW(validate_feedback_config(config, /*clients_per_round=*/4));
}

TEST(Contracts, FeedbackConfigRejectsZeroQuorum) {
  FeedbackConfig config = small_feedback_config();
  config.quorum = 0;
  EXPECT_THROW(validate_feedback_config(config, /*clients_per_round=*/4),
               ContractViolation);
}

TEST(Contracts, FeedbackConfigRejectsDegenerateLookback) {
  // ℓ < 2 cannot produce the ℓ variation points + LOF neighbourhood the
  // validator needs (k = ⌈ℓ/2⌉ with at least one reference neighbour).
  FeedbackConfig config = small_feedback_config();
  config.validator.lookback = 0;
  EXPECT_THROW(validate_feedback_config(config, /*clients_per_round=*/4),
               ContractViolation);
  config.validator.lookback = 1;
  EXPECT_THROW(validate_feedback_config(config, /*clients_per_round=*/4),
               ContractViolation);
}

TEST(Contracts, FeedbackConfigRejectsNonPositiveTauMargin) {
  FeedbackConfig config = small_feedback_config();
  config.validator.tau_margin = 0.0;
  EXPECT_THROW(validate_feedback_config(config, /*clients_per_round=*/4),
               ContractViolation);
}

// -- shape contracts --------------------------------------------------

TEST(Contracts, GemmRejectsMismatchedInnerDimension) {
  Matrix a(2, 3), b(4, 2), out(2, 2);  // k mismatch: 3 vs 4
  EXPECT_THROW(gemm_ab(a, b, out), ContractViolation);
}

TEST(Contracts, GemmRejectsMismatchedOutputShape) {
  Matrix a(2, 3), b(3, 2), out(2, 5);
  EXPECT_THROW(gemm_ab(a, b, out), ContractViolation);
}

TEST(Contracts, ConfusionMatrixRejectsOutOfRangeLabels) {
  ConfusionMatrix cm(3);
  EXPECT_NO_THROW(cm.record(0, 2));
  EXPECT_THROW(cm.record(3, 0), ContractViolation);
  EXPECT_THROW(cm.record(-1, 0), ContractViolation);
  EXPECT_THROW(cm.record(0, 3), ContractViolation);
}

}  // namespace
}  // namespace baffle

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace baffle {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(Stats, StddevSample) {
  // Squared deviations sum to 32 over 8 samples: ddof=1 gives
  // sqrt(32 / 7), not the population value 2.
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevConstant) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevSingleSampleIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, QuantileEndpointsAndMiddle) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 3.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(stddev(empty), std::invalid_argument);
  EXPECT_THROW(median({}), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(min_of(empty), std::invalid_argument);
}

TEST(Stats, QuantileRejectsOutOfRangeQ) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Stats, MeanStdCombined) {
  const std::vector<double> xs{1.0, 3.0};
  const MeanStd ms = mean_std(xs);
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.std, std::sqrt(2.0));
}

}  // namespace
}  // namespace baffle

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace baffle {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(7);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 500 draws
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(9);
  const std::vector<double> w{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.categorical(w), 1u);
  }
}

TEST(Rng, CategoricalEmpiricalFrequencies) {
  Rng rng(13);
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.categorical(w) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.03);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(17);
  for (double alpha : {0.1, 0.9, 10.0}) {
    const auto p = rng.dirichlet(8, alpha);
    ASSERT_EQ(p.size(), 8u);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(Rng, DirichletSmallAlphaIsSkewed) {
  Rng rng(19);
  // With alpha = 0.05, most mass should concentrate on few categories.
  double max_total = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    const auto p = rng.dirichlet(10, 0.05);
    max_total += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_total / reps, 0.6);
}

TEST(Rng, DirichletLargeAlphaIsBalanced) {
  Rng rng(23);
  double max_total = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    const auto p = rng.dirichlet(10, 100.0);
    max_total += *std::max_element(p.begin(), p.end());
  }
  EXPECT_LT(max_total / reps, 0.2);
}

TEST(Rng, DirichletRejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(rng.dirichlet(0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.dirichlet(3, 0.0), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (int rep = 0; rep < 50; ++rep) {
    const auto idx = rng.sample_without_replacement(30, 10);
    ASSERT_EQ(idx.size(), 10u);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 10u);
    for (std::size_t i : idx) EXPECT_LT(i, 30u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const auto idx = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(37);
  std::vector<int> hits(10, 0);
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    for (std::size_t j : rng.sample_without_replacement(10, 3)) {
      hits[j]++;
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / reps, 0.3, 0.02);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 2, 3, 4, 5};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependentOfParentAdvance) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  // Advancing parent after forking must not change the child stream.
  parent1.next_u64();
  parent1.next_u64();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkedChildrenDiffer) {
  Rng parent(99);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = Rng::split_mix(0x1234);
  const std::uint64_t b = Rng::split_mix(0x1235);
  const int bits = std::popcount(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

}  // namespace
}  // namespace baffle

// Runtime behavior of the annotated synchronization wrappers
// (util/sync.hpp). The capability annotations themselves are checked at
// compile time by the clang gate (BAFFLE_THREAD_SAFETY=ON and the
// tools/thread_safety_fixtures.sh compile-fail tests); these tests pin
// the wrappers' semantics on every compiler: mutual exclusion, the
// adopt/release handshake inside CondVar waits, shared-reader
// concurrency, and writer exclusion.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace baffle {
namespace {

using namespace std::chrono_literals;

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;  // unsynchronized increments would lose updates
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  bool acquired_while_held = true;
  {
    MutexLock lock(mu);
    std::thread contender([&] {
      acquired_while_held = mu.try_lock();
      if (acquired_while_held) mu.unlock();
    });
    contender.join();
  }
  EXPECT_FALSE(acquired_while_held);
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, CondVarWaitReacquiresTheMutexAroundTheHandoff) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // The mutex is held again here: this read is ordered after the
    // producer's writes under the same lock.
    observed = ready ? 42 : 0;
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  }
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncTest, CondVarWaitForTimesOutWithoutANotifier) {
  Mutex mu;
  CondVar cv;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  MutexLock lock(mu);
  // Spurious wakeups may return no_timeout; keep waiting until the
  // status itself reports the timeout (bounded by the outer deadline).
  std::cv_status status = std::cv_status::no_timeout;
  while (status != std::cv_status::timeout &&
         std::chrono::steady_clock::now() < deadline) {
    status = cv.wait_for(mu, 10ms);
  }
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  auto reader = [&] {
    ReaderLock lock(mu);
    inside.fetch_add(1);
    // Hold the shared lock until both readers are inside (bounded):
    // with an exclusive lock the second reader could never enter while
    // the first waits, and the flag would stay false.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!overlapped.load() &&
           std::chrono::steady_clock::now() < deadline) {
      if (inside.load() >= 2) overlapped.store(true);
      std::this_thread::yield();
    }
    inside.fetch_sub(1);
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(overlapped.load());
}

TEST(SyncTest, WriterLockExcludesReaders) {
  SharedMutex mu;
  std::atomic<bool> reader_entered{false};
  std::thread reader;
  {
    WriterLock lock(mu);
    reader = std::thread([&] {
      ReaderLock rlock(mu);
      reader_entered.store(true);
    });
    std::this_thread::sleep_for(50ms);
    EXPECT_FALSE(reader_entered.load());
  }
  reader.join();
  EXPECT_TRUE(reader_entered.load());
}

}  // namespace
}  // namespace baffle

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace baffle {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("baffle_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({"1", "2"});
    w.row({"x", "y"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvTest, RejectsRaggedRow) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"v"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
  }
  EXPECT_EQ(read_file(path_), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvEscape, PlainStringsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterNum, FormatsNumbers) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(0.0), "0");
}

TEST(CsvWriterOpen, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace baffle

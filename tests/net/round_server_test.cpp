#include "net/round_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

namespace baffle {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kParams = 3;

RoundServerConfig fast_config() {
  RoundServerConfig config;
  config.update_timeout = 50ms;
  config.vote_timeout = 50ms;
  return config;
}

/// Server under test plus the client-side channel ends, hand-driven by
/// the test body (no actors involved).
struct Rig {
  InProcTransport transport;
  RoundServer server{fast_config(), kParams};
  std::vector<std::shared_ptr<Channel>> clients;

  explicit Rig(std::size_t n) {
    for (std::size_t id = 0; id < n; ++id) {
      auto pair = transport.connect();
      server.add_session(id, pair.server);
      clients.push_back(pair.client);
    }
  }

  void send(std::size_t id, const WireMessage& msg) {
    clients[id]->send(encode_frame(msg));
  }

  ClientUpdate update_from(std::size_t id, std::uint64_t round,
                           float fill = 1.0f) {
    ClientUpdate u;
    u.round = round;
    u.client_id = id;
    u.update = ParamVec(kParams, fill);
    return u;
  }

  Vote vote_from(std::size_t id, std::uint64_t round, std::uint8_t v) {
    Vote vote;
    vote.round = round;
    vote.client_id = id;
    vote.vote = v;
    return vote;
  }
};

ModelWindow window_of(std::initializer_list<std::uint64_t> versions) {
  ModelWindow window;
  for (std::uint64_t v : versions) {
    window.push_back(std::make_shared<const GlobalModel>(
        GlobalModel{v, ParamVec(kParams, static_cast<float>(v))}));
  }
  return window;
}

TEST(RoundServer, BroadcastsTrainingModelToContributors) {
  Rig rig(3);
  rig.server.broadcast_training(1, 0, ParamVec(kParams, 0.5f), {0, 2});
  for (std::size_t id : {0u, 2u}) {
    auto frame = rig.clients[id]->try_recv();
    ASSERT_TRUE(frame) << "client " << id;
    const auto m = std::get<ModelBroadcast>(decode_frame(*frame));
    EXPECT_EQ(m.round, 1u);
    EXPECT_EQ(m.purpose, ModelPurpose::kTraining);
    EXPECT_EQ(m.params, ParamVec(kParams, 0.5f));
  }
  EXPECT_FALSE(rig.clients[1]->try_recv().has_value());
}

TEST(RoundServer, CollectsUpdatesInExpectedOrder) {
  Rig rig(3);
  // Arrival order 2, 0, 1 — collection reports expected order 0, 1, 2.
  rig.send(2, rig.update_from(2, 1, 3.0f));
  rig.send(0, rig.update_from(0, 1, 1.0f));
  rig.send(1, rig.update_from(1, 1, 2.0f));
  const auto got = rig.server.collect_updates(1, {0, 1, 2});
  EXPECT_TRUE(got.dropped.empty());
  ASSERT_EQ(got.responders, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(got.updates[0], ParamVec(kParams, 1.0f));
  EXPECT_EQ(got.updates[2], ParamVec(kParams, 3.0f));
  EXPECT_EQ(rig.server.protocol_stats().total_rejected(), 0u);
}

TEST(RoundServer, StragglerIsDroppedAtDeadline) {
  Rig rig(2);
  rig.send(0, rig.update_from(0, 1));
  // Client 1 never answers.
  const auto got = rig.server.collect_updates(1, {0, 1});
  EXPECT_EQ(got.responders, (std::vector<std::size_t>{0}));
  EXPECT_EQ(got.dropped, (std::vector<std::size_t>{1}));
  EXPECT_EQ(rig.server.protocol_stats().timeouts, 1u);
}

TEST(RoundServer, AdmissionRejectsByReason) {
  Rig rig(2);
  rig.send(0, rig.update_from(0, /*round=*/9));  // wrong round
  {
    ClientUpdate u = rig.update_from(1, 1);
    u.client_id = 0;  // claims another session's identity
    rig.send(1, u);
  }
  {
    ClientUpdate u = rig.update_from(0, 1);
    u.update = ParamVec(kParams + 2, 0.0f);  // wrong length
    rig.send(0, u);
  }
  rig.send(1, rig.vote_from(1, 1, 0));        // vote during update phase
  rig.clients[0]->send(WireBytes{0xDE, 0xAD});  // garbage frame
  const auto got = rig.server.collect_updates(1, {0, 1});
  EXPECT_TRUE(got.responders.empty());
  const auto& stats = rig.server.protocol_stats();
  EXPECT_EQ(stats.wrong_round, 1u);
  EXPECT_EQ(stats.wrong_client, 1u);
  EXPECT_EQ(stats.bad_update_size, 1u);
  EXPECT_EQ(stats.unexpected_type, 1u);
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.total_rejected(), 5u);
  EXPECT_EQ(stats.timeouts, 2u);  // neither produced an admissible update
}

TEST(RoundServer, DuplicateUpdateInSameBurstRejected) {
  Rig rig(1);
  rig.send(0, rig.update_from(0, 1, 1.0f));
  rig.send(0, rig.update_from(0, 1, 9.0f));
  const auto got = rig.server.collect_updates(1, {0});
  ASSERT_EQ(got.updates.size(), 1u);
  EXPECT_EQ(got.updates[0], ParamVec(kParams, 1.0f));  // first one wins
  EXPECT_EQ(rig.server.protocol_stats().duplicates, 1u);
}

TEST(RoundServer, CollectsVotesAndRejectsDuplicates) {
  Rig rig(2);
  rig.send(0, rig.vote_from(0, 2, 1));
  rig.send(0, rig.vote_from(0, 2, 0));  // replay: dropped
  rig.send(1, rig.vote_from(1, 2, 0));
  const auto got = rig.server.collect_votes(2, {0, 1});
  ASSERT_EQ(got.responders, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(got.votes[0].vote, 1);
  EXPECT_EQ(got.votes[1].vote, 0);
  EXPECT_EQ(rig.server.protocol_stats().duplicates, 1u);
}

TEST(RoundServer, FirstValidationShipsFullWindowThenOnlyDeltas) {
  Rig rig(1);
  const ParamVec candidate(kParams, 9.0f);

  EXPECT_EQ(rig.server.synced_version(0), RoundServer::kNeverSynced);
  rig.server.send_validation(3, 4, candidate, window_of({1, 2, 3}), {0});
  {
    const auto delta =
        std::get<HistoryDelta>(decode_frame(*rig.clients[0]->try_recv()));
    ASSERT_EQ(delta.entries.size(), 3u);  // never synced → full window
    EXPECT_EQ(delta.entries[0].version, 1u);
    const auto m =
        std::get<ModelBroadcast>(decode_frame(*rig.clients[0]->try_recv()));
    EXPECT_EQ(m.purpose, ModelPurpose::kCandidate);
    EXPECT_EQ(m.version, 4u);
  }
  EXPECT_EQ(rig.server.synced_version(0), 3u);

  // Window advanced by one commit; only the new entry ships.
  rig.server.send_validation(4, 5, candidate, window_of({2, 3, 4}), {0});
  {
    const auto delta =
        std::get<HistoryDelta>(decode_frame(*rig.clients[0]->try_recv()));
    ASSERT_EQ(delta.entries.size(), 1u);
    EXPECT_EQ(delta.entries[0].version, 4u);
  }
  EXPECT_EQ(rig.server.synced_version(0), 4u);
}

TEST(RoundServer, CommitAdvancesValidatorSyncAndRejectDoesNot) {
  Rig rig(2);
  rig.server.send_validation(3, 4, ParamVec(kParams, 9.0f),
                             window_of({1, 2, 3}), {0, 1});
  RoundResult commit;
  commit.round = 3;
  commit.committed = 1;
  commit.version = 4;
  rig.server.finish_round(commit, {0, 1}, {0});
  // Client 0 promoted the candidate it already holds; client 1 was not a
  // validator this time (it stays at the shipped window head).
  EXPECT_EQ(rig.server.synced_version(0), 4u);
  EXPECT_EQ(rig.server.synced_version(1), 3u);

  RoundResult reject;
  reject.round = 4;
  reject.committed = 0;
  reject.version = 4;
  rig.server.finish_round(reject, {0, 1}, {0, 1});
  EXPECT_EQ(rig.server.synced_version(0), 4u);  // unchanged
  EXPECT_EQ(rig.server.synced_version(1), 3u);

  // Every participant got both results.
  for (std::size_t id : {0u, 1u}) {
    rig.clients[id]->try_recv();  // delta
    rig.clients[id]->try_recv();  // candidate broadcast
    const auto first =
        std::get<RoundResult>(decode_frame(*rig.clients[id]->try_recv()));
    EXPECT_EQ(first.committed, 1);
    const auto second =
        std::get<RoundResult>(decode_frame(*rig.clients[id]->try_recv()));
    EXPECT_EQ(second.committed, 0);
  }
}

TEST(RoundServer, TrackerTotalsMatchChannelByteCountsExactly) {
  Rig rig(2);
  CommTracker tracker(2, kParams * sizeof(float), 4);
  rig.server.set_tracker(&tracker);
  tracker.add_round();

  rig.server.broadcast_training(1, 0, ParamVec(kParams, 0.5f), {0, 1});
  rig.send(0, rig.update_from(0, 1));
  rig.send(1, rig.update_from(1, 1));
  rig.clients[1]->send(WireBytes{1, 2, 3});  // even junk bytes count
  (void)rig.server.collect_updates(1, {0, 1});
  rig.server.send_validation(1, 1, ParamVec(kParams, 1.0f),
                             window_of({0}), {0, 1});
  rig.send(0, rig.vote_from(0, 1, 0));
  rig.send(1, rig.vote_from(1, 1, 1));
  (void)rig.server.collect_votes(1, {0, 1});
  RoundResult result;
  result.round = 1;
  result.committed = 1;
  result.version = 1;
  rig.server.finish_round(result, {0, 1}, {0, 1});

  const auto& s = tracker.stats();
  EXPECT_GT(s.model_download_bytes, 0u);
  EXPECT_GT(s.update_upload_bytes, 0u);
  EXPECT_GT(s.history_bytes, 0u);
  EXPECT_GT(s.control_bytes, 0u);
  EXPECT_EQ(s.total_bytes(), rig.server.wire_bytes());
}

TEST(RoundServer, ConcurrentAccountingReadsDuringCollection) {
  // Clients answer from their own threads while the server runs its
  // collection loop and a monitor thread polls the accounting surface —
  // the access pattern that used to assume a single driving thread.
  // Correctness here is ordering-free (the lock serializes the counter
  // snapshots); the TSan leg (test_net at BAFFLE_THREADS=4) turns any
  // unguarded access back into a hard failure.
  Rig rig(3);
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    while (!done.load()) {
      (void)rig.server.protocol_stats().total_rejected();
      (void)rig.server.wire_bytes();
      (void)rig.server.has_session(0);
      (void)rig.server.synced_version(1);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> senders;
  for (std::size_t id = 0; id < 3; ++id) {
    senders.emplace_back(
        [&rig, id] { rig.send(id, rig.update_from(id, 1, 1.0f)); });
  }
  const auto got = rig.server.collect_updates(1, {0, 1, 2});
  done.store(true);
  monitor.join();
  for (auto& t : senders) t.join();
  EXPECT_EQ(got.responders.size() + got.dropped.size(), 3u);
  const auto stats = rig.server.protocol_stats();
  EXPECT_EQ(stats.total_rejected(), 0u);
  EXPECT_EQ(stats.timeouts, got.dropped.size());
}

TEST(RoundServer, RejectsDegenerateConstruction) {
  EXPECT_THROW(RoundServer(fast_config(), 0), std::invalid_argument);
  Rig rig(1);
  EXPECT_THROW(rig.server.add_session(5, nullptr), std::invalid_argument);
  EXPECT_THROW(rig.server.synced_version(42), std::out_of_range);
  EXPECT_FALSE(rig.server.has_session(42));
  EXPECT_TRUE(rig.server.has_session(0));
}

}  // namespace
}  // namespace baffle

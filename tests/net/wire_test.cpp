#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace baffle {
namespace {

ModelBroadcast sample_broadcast() {
  ModelBroadcast m;
  m.round = 7;
  m.version = 6;
  m.purpose = ModelPurpose::kCandidate;
  m.params = {1.0f, -2.5f, 0.0f};
  return m;
}

ClientUpdate sample_update() {
  ClientUpdate m;
  m.round = 7;
  m.client_id = 13;
  m.update = {0.25f, -0.5f};
  return m;
}

Vote sample_vote() {
  Vote m;
  m.round = 7;
  m.client_id = 13;
  m.vote = 1;
  m.abstained = 0;
  m.phi = 2.75;
  m.tau = 1.5;
  return m;
}

HistoryDelta sample_delta() {
  HistoryDelta m;
  m.round = 7;
  m.entries.push_back({4, {1.0f}});
  m.entries.push_back({5, {2.0f}});
  m.entries.push_back({6, {3.0f}});
  return m;
}

RoundResult sample_result() {
  RoundResult m;
  m.round = 7;
  m.committed = 1;
  m.version = 7;
  m.reject_votes = 2;
  m.total_voters = 9;
  return m;
}

TEST(Wire, ModelBroadcastRoundTrips) {
  const auto frame = encode_frame(sample_broadcast());
  EXPECT_EQ(peek_type(frame), MsgType::kModelBroadcast);
  const auto msg = decode_frame(frame);
  const auto& m = std::get<ModelBroadcast>(msg);
  EXPECT_EQ(m.round, 7u);
  EXPECT_EQ(m.version, 6u);
  EXPECT_EQ(m.purpose, ModelPurpose::kCandidate);
  EXPECT_EQ(m.params, (ParamVec{1.0f, -2.5f, 0.0f}));
}

TEST(Wire, ClientUpdateRoundTrips) {
  const auto msg = decode_frame(encode_frame(sample_update()));
  const auto& m = std::get<ClientUpdate>(msg);
  EXPECT_EQ(m.round, 7u);
  EXPECT_EQ(m.client_id, 13u);
  EXPECT_EQ(m.update, (ParamVec{0.25f, -0.5f}));
}

TEST(Wire, VoteRoundTrips) {
  const auto msg = decode_frame(encode_frame(sample_vote()));
  const auto& m = std::get<Vote>(msg);
  EXPECT_EQ(m.round, 7u);
  EXPECT_EQ(m.client_id, 13u);
  EXPECT_EQ(m.vote, 1);
  EXPECT_EQ(m.abstained, 0);
  EXPECT_DOUBLE_EQ(m.phi, 2.75);
  EXPECT_DOUBLE_EQ(m.tau, 1.5);
}

TEST(Wire, HistoryDeltaRoundTrips) {
  const auto msg = decode_frame(encode_frame(sample_delta()));
  const auto& m = std::get<HistoryDelta>(msg);
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries[0].version, 4u);
  EXPECT_EQ(m.entries[2].version, 6u);
  EXPECT_EQ(m.entries[1].params, (ParamVec{2.0f}));
}

TEST(Wire, RoundResultRoundTrips) {
  const auto msg = decode_frame(encode_frame(sample_result()));
  const auto& m = std::get<RoundResult>(msg);
  EXPECT_EQ(m.round, 7u);
  EXPECT_EQ(m.committed, 1);
  EXPECT_EQ(m.version, 7u);
  EXPECT_EQ(m.reject_votes, 2u);
  EXPECT_EQ(m.total_voters, 9u);
}

TEST(Wire, EmptyParamVectorsRoundTrip) {
  ModelBroadcast m;
  m.params = {};
  const auto out =
      std::get<ModelBroadcast>(decode_frame(encode_frame(WireMessage{m})));
  EXPECT_TRUE(out.params.empty());
  HistoryDelta d;  // no entries at all: a fully synced validator
  const auto dout =
      std::get<HistoryDelta>(decode_frame(encode_frame(WireMessage{d})));
  EXPECT_TRUE(dout.entries.empty());
}

TEST(Wire, UnsupportedVersionRejected) {
  const auto newer =
      encode_frame(sample_vote(), kProtocolVersion + 1);
  EXPECT_THROW(decode_frame(newer), WireError);
  if (kProtocolVersionMin > 0) {
    const auto older = encode_frame(sample_vote(), kProtocolVersionMin - 1);
    EXPECT_THROW(decode_frame(older), WireError);
  }
}

TEST(Wire, UnknownMessageTypeRejected) {
  auto frame = encode_frame(sample_vote());
  // Type byte sits after u32 length + u16 version.
  frame[6] = 99;
  EXPECT_THROW(decode_frame(frame), WireError);
  EXPECT_THROW(peek_type(frame), WireError);
  frame[6] = 0;  // zero is reserved, not a message
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, TrailingBytesRejected) {
  auto frame = encode_frame(sample_update());
  frame.push_back(0xAB);
  // The appended byte disagrees with the length prefix…
  EXPECT_THROW(decode_frame(frame), WireError);
  // …and even a "fixed-up" length prefix leaves the body over-long.
  const std::uint32_t fixed =
      static_cast<std::uint32_t>(frame.size() - 4);
  frame[0] = static_cast<std::uint8_t>(fixed);
  frame[1] = static_cast<std::uint8_t>(fixed >> 8);
  frame[2] = static_cast<std::uint8_t>(fixed >> 16);
  frame[3] = static_cast<std::uint8_t>(fixed >> 24);
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, LengthFieldMismatchRejected) {
  auto frame = encode_frame(sample_vote());
  frame[0] ^= 0x01;  // length no longer matches the buffer
  EXPECT_THROW(decode_frame(frame), WireError);
}

// Every prefix of every message type must fail loudly — std::exception,
// never a crash or over-read (locked in under ASan by the fuzz stage).
TEST(Wire, TruncationSweepAllMessageTypes) {
  const WireMessage msgs[] = {
      WireMessage{sample_broadcast()}, WireMessage{sample_update()},
      WireMessage{sample_vote()},      WireMessage{sample_delta()},
      WireMessage{sample_result()},
  };
  for (const auto& msg : msgs) {
    const auto full = encode_frame(msg);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      SCOPED_TRACE(testing::Message()
                   << msg_type_name(static_cast<MsgType>(msg.index() + 1))
                   << " cut at " << cut);
      const std::span<const std::uint8_t> prefix(full.data(), cut);
      EXPECT_THROW(decode_frame(prefix), std::exception);
    }
    EXPECT_NO_THROW(decode_frame(full));
  }
}

TEST(Wire, OutOfRangeVoteFieldRejected) {
  Vote v = sample_vote();
  v.vote = 2;
  EXPECT_THROW(decode_frame(encode_frame(WireMessage{v})), WireError);
  v = sample_vote();
  v.abstained = 7;
  EXPECT_THROW(decode_frame(encode_frame(WireMessage{v})), WireError);
}

TEST(Wire, OutOfRangePurposeRejected) {
  ModelBroadcast m = sample_broadcast();
  m.purpose = static_cast<ModelPurpose>(3);
  EXPECT_THROW(decode_frame(encode_frame(WireMessage{m})), WireError);
}

TEST(Wire, NonIncreasingDeltaVersionsRejected) {
  HistoryDelta d;
  d.entries.push_back({5, {1.0f}});
  d.entries.push_back({5, {2.0f}});  // duplicate version
  EXPECT_THROW(decode_frame(encode_frame(WireMessage{d})), WireError);
  d.entries.clear();
  d.entries.push_back({5, {1.0f}});
  d.entries.push_back({4, {2.0f}});  // regressing version
  EXPECT_THROW(decode_frame(encode_frame(WireMessage{d})), WireError);
}

TEST(Wire, OversizedHistoryEntryCountRejected) {
  // Forge a delta frame claiming an absurd entry count. Build the body
  // by hand so we don't have to materialize 2^20 entries.
  ByteWriter body;
  body.u16(kProtocolVersion);
  body.u8(static_cast<std::uint8_t>(MsgType::kHistoryDelta));
  body.u64(1);           // round
  body.u64(1u << 20);    // entry count far above the cap
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.bytes().size()));
  w.raw(body.bytes());
  EXPECT_THROW(decode_frame(w.bytes()), std::exception);
}

TEST(Wire, PeekTypeDoesNotDecodeBody) {
  auto frame = encode_frame(sample_delta());
  // Corrupt the body; the header stays intact.
  frame.back() ^= 0xFF;
  EXPECT_EQ(peek_type(frame), MsgType::kHistoryDelta);
}

TEST(Wire, MsgTypeNamesAreStable) {
  EXPECT_STREQ(msg_type_name(MsgType::kModelBroadcast), "ModelBroadcast");
  EXPECT_STREQ(msg_type_name(MsgType::kClientUpdate), "ClientUpdate");
  EXPECT_STREQ(msg_type_name(MsgType::kVote), "Vote");
  EXPECT_STREQ(msg_type_name(MsgType::kHistoryDelta), "HistoryDelta");
  EXPECT_STREQ(msg_type_name(MsgType::kRoundResult), "RoundResult");
}

TEST(Wire, VariantOrderMatchesMsgTypeNumbering) {
  // decode/recv_expect rely on MsgType == variant index + 1.
  EXPECT_EQ(WireMessage{ModelBroadcast{}}.index() + 1,
            static_cast<std::size_t>(MsgType::kModelBroadcast));
  EXPECT_EQ(WireMessage{RoundResult{}}.index() + 1,
            static_cast<std::size_t>(MsgType::kRoundResult));
}

}  // namespace
}  // namespace baffle

#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace baffle {
namespace {

using namespace std::chrono_literals;

WireBytes frame(std::uint8_t fill, std::size_t n) {
  return WireBytes(n, fill);
}

TEST(InProcTransport, DeliversFramesInOrder) {
  InProcTransport transport;
  auto pair = transport.connect();
  pair.client->send(frame(1, 3));
  pair.client->send(frame(2, 5));
  auto first = pair.server->try_recv();
  auto second = pair.server->try_recv();
  ASSERT_TRUE(first && second);
  EXPECT_EQ((*first)[0], 1);
  EXPECT_EQ((*second)[0], 2);
  EXPECT_FALSE(pair.server->try_recv().has_value());
}

TEST(InProcTransport, DirectionsAreIndependent) {
  InProcTransport transport;
  auto pair = transport.connect();
  pair.server->send(frame(9, 2));
  // The server's own inbound queue stays empty.
  EXPECT_FALSE(pair.server->try_recv().has_value());
  auto got = pair.client->try_recv();
  ASSERT_TRUE(got);
  EXPECT_EQ((*got)[0], 9);
}

TEST(InProcTransport, ConnectMintsIndependentPairs) {
  InProcTransport transport;
  auto a = transport.connect();
  auto b = transport.connect();
  a.client->send(frame(1, 1));
  EXPECT_FALSE(b.server->try_recv().has_value());
  EXPECT_TRUE(a.server->try_recv().has_value());
}

TEST(InProcTransport, RecvForTimesOutOnEmptyQueue) {
  InProcTransport transport;
  auto pair = transport.connect();
  EXPECT_FALSE(pair.server->recv_for(5ms).has_value());
}

TEST(InProcTransport, RecvForWakesOnCrossThreadSend) {
  InProcTransport transport;
  auto pair = transport.connect();
  std::thread producer([client = pair.client] {
    std::this_thread::sleep_for(10ms);
    client->send(frame(7, 4));
  });
  const auto got = pair.server->recv_for(5s);
  producer.join();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->size(), 4u);
}

TEST(InProcTransport, SendAfterPeerCloseThrows) {
  InProcTransport transport;
  auto pair = transport.connect();
  pair.server->close();
  EXPECT_TRUE(pair.server->closed());
  EXPECT_THROW(pair.client->send(frame(1, 1)), std::runtime_error);
}

TEST(InProcTransport, CloseWakesBlockedReceiver) {
  InProcTransport transport;
  auto pair = transport.connect();
  std::thread closer([client = pair.client] {
    std::this_thread::sleep_for(10ms);
    client->close();
  });
  // Must return (empty) promptly instead of sleeping out the full 5s.
  const auto got = pair.server->recv_for(5s);
  closer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(InProcTransport, QueuedFramesSurviveClose) {
  InProcTransport transport;
  auto pair = transport.connect();
  pair.client->send(frame(3, 2));
  pair.client->close();
  // A frame that made it into the queue before the close still drains.
  const auto got = pair.server->try_recv();
  ASSERT_TRUE(got);
  EXPECT_EQ((*got)[0], 3);
}

TEST(InProcTransport, ByteCountersTrackEachDirection) {
  InProcTransport transport;
  auto pair = transport.connect();
  pair.client->send(frame(0, 10));
  pair.server->send(frame(0, 4));
  EXPECT_EQ(pair.client->bytes_sent(), 10u);
  EXPECT_EQ(pair.server->bytes_sent(), 4u);
  // Received counts at delivery (pop), not enqueue: an unread frame has
  // not yet been "received" by the endpoint.
  EXPECT_EQ(pair.server->bytes_received(), 0u);
  pair.server->try_recv();
  EXPECT_EQ(pair.server->bytes_received(), 10u);
  pair.client->try_recv();
  EXPECT_EQ(pair.client->bytes_received(), 4u);
}

TEST(SocketTransport, IsAnHonestStub) {
  EXPECT_THROW(SocketTransport(""), std::exception);
  SocketTransport transport("127.0.0.1:9999");
  EXPECT_EQ(transport.address(), "127.0.0.1:9999");
  EXPECT_STREQ(transport.name(), "socket");
  EXPECT_THROW(transport.connect(), std::runtime_error);
}

}  // namespace
}  // namespace baffle

#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace baffle {
namespace {

MlpConfig small_config() {
  return MlpConfig{{4, 6, 3}, Activation::kRelu};
}

TEST(Mlp, ParamCountMatchesLayers) {
  Mlp model(small_config());
  EXPECT_EQ(model.num_params(), (4u * 6 + 6) + (6u * 3 + 3));
  EXPECT_EQ(model.input_dim(), 4u);
  EXPECT_EQ(model.output_dim(), 3u);
}

TEST(Mlp, RejectsTooFewDims) {
  EXPECT_THROW(Mlp(MlpConfig{{4}, Activation::kRelu}), std::invalid_argument);
}

TEST(Mlp, LastLayerIsLinear) {
  Mlp model(small_config());
  EXPECT_EQ(model.layers().back().activation(), Activation::kIdentity);
  EXPECT_EQ(model.layers().front().activation(), Activation::kRelu);
}

TEST(Mlp, ParameterRoundTrip) {
  Mlp model(small_config());
  Rng rng(1);
  model.init(rng);
  const auto params = model.parameters();
  ASSERT_EQ(params.size(), model.num_params());

  Mlp other(small_config());
  other.set_parameters(params);
  EXPECT_EQ(other.parameters(), params);
}

TEST(Mlp, SetParametersSizeMismatchThrows) {
  Mlp model(small_config());
  EXPECT_THROW(model.set_parameters(std::vector<float>(3)),
               std::invalid_argument);
}

TEST(Mlp, ChunkedPredictMatchesWholeBatch) {
  Mlp model(small_config());
  Rng rng(5);
  model.init(rng);
  Matrix x(37, 4);  // deliberately not a multiple of any chunk size
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const auto whole = model.predict(x);

  MlpEvalWorkspace ws;
  std::vector<std::size_t> chunked(x.rows());
  for (std::size_t chunk : {1u, 3u, 36u, 37u, 1000u}) {
    model.predict_into(x, chunked, ws, chunk);
    EXPECT_EQ(chunked, whole) << "chunk=" << chunk;
  }
}

TEST(Mlp, PredictIntoReusesWorkspaceAcrossModels) {
  Mlp a(small_config()), b(small_config());
  Rng rng(6);
  a.init(rng);
  b.init(rng);
  Matrix x(8, 4);
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());

  MlpEvalWorkspace ws;
  std::vector<std::size_t> out_a(x.rows()), out_b(x.rows());
  a.predict_into(x, out_a, ws);
  b.predict_into(x, out_b, ws);  // same workspace, different model
  EXPECT_EQ(out_a, a.predict(x));
  EXPECT_EQ(out_b, b.predict(x));
}

TEST(Mlp, PredictIntoValidatesShapes) {
  Mlp model(small_config());
  Rng rng(7);
  model.init(rng);
  MlpEvalWorkspace ws;
  Matrix wrong_dim(3, 5);
  std::vector<std::size_t> out(3);
  EXPECT_THROW(model.predict_into(wrong_dim, out, ws),
               std::invalid_argument);
  Matrix x(3, 4);
  std::vector<std::size_t> short_out(2);
  EXPECT_THROW(model.predict_into(x, short_out, ws), std::invalid_argument);
}

TEST(Mlp, IdenticalParamsGiveIdenticalOutputs) {
  Mlp a(small_config()), b(small_config());
  Rng rng(2);
  a.init(rng);
  b.set_parameters(a.parameters());
  Rng data_rng(3);
  Matrix x(5, 4);
  for (float& v : x.flat()) v = static_cast<float>(data_rng.normal());
  const Matrix ya = a.forward(x);
  const Matrix yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya.flat()[i], yb.flat()[i]);
  }
}

TEST(Mlp, AddToParametersShiftsFlatVector) {
  Mlp model(small_config());
  Rng rng(4);
  model.init(rng);
  const auto before = model.parameters();
  std::vector<float> delta(model.num_params(), 0.25f);
  model.add_to_parameters(delta);
  const auto after = model.parameters();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i] + 0.25f);
  }
}

TEST(Mlp, AddToParametersSizeMismatchThrows) {
  Mlp model(small_config());
  EXPECT_THROW(model.add_to_parameters(std::vector<float>(2)),
               std::invalid_argument);
}

TEST(Mlp, PredictReturnsArgmaxClass) {
  // Construct a linear model that always prefers class 2.
  Mlp model(MlpConfig{{2, 3}, Activation::kRelu});
  std::vector<float> params(model.num_params(), 0.0f);
  params[model.num_params() - 1] = 10.0f;  // bias of class 2
  model.set_parameters(params);
  Matrix x(4, 2, 1.0f);
  for (std::size_t p : model.predict(x)) EXPECT_EQ(p, 2u);
}

TEST(Mlp, GradientsSizeMatchesParams) {
  Mlp model(small_config());
  Rng rng(5);
  model.init(rng);
  Matrix x(3, 4, 0.5f);
  Matrix logits = model.forward(x);
  model.zero_grad();
  model.backward(Matrix(3, 3, 1.0f));
  EXPECT_EQ(model.gradients().size(), model.num_params());
}

TEST(Mlp, ZeroGradClearsAllLayers) {
  Mlp model(small_config());
  Rng rng(6);
  model.init(rng);
  Matrix x(2, 4, 1.0f);
  model.forward(x);
  model.backward(Matrix(2, 3, 1.0f));
  model.zero_grad();
  for (float g : model.gradients()) EXPECT_EQ(g, 0.0f);
}

TEST(Mlp, DeepNetworkForwardShape) {
  Mlp model(MlpConfig{{8, 16, 16, 8, 5}, Activation::kTanh});
  Rng rng(7);
  model.init(rng);
  Matrix x(10, 8, 0.1f);
  const Matrix y = model.forward(x);
  EXPECT_EQ(y.rows(), 10u);
  EXPECT_EQ(y.cols(), 5u);
}

}  // namespace
}  // namespace baffle

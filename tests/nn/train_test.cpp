#include "nn/train.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

/// Two well-separated Gaussian blobs — trivially learnable.
void make_blobs(Matrix& x, std::vector<int>& y, std::size_t n, Rng& rng) {
  x = Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 2;
    const double cx = label == 0 ? -3.0 : 3.0;
    x.at(i, 0) = static_cast<float>(rng.normal(cx, 0.5));
    x.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
    y[i] = label;
  }
}

TEST(Train, LearnsSeparableBlobs) {
  Rng rng(1);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 200, rng);
  Mlp model(MlpConfig{{2, 8, 2}, Activation::kRelu});
  model.init(rng);
  TrainConfig cfg;
  cfg.epochs = 20;
  cfg.batch_size = 16;
  cfg.sgd.learning_rate = 0.1f;
  const TrainStats stats = train_sgd(model, x, y, cfg, rng);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(evaluate_accuracy(model, x, y), 0.97);
}

TEST(Train, LossDecreases) {
  Rng rng(2);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 100, rng);
  Mlp model(MlpConfig{{2, 4, 2}, Activation::kRelu});
  model.init(rng);
  TrainConfig one_epoch;
  one_epoch.epochs = 1;
  one_epoch.sgd.learning_rate = 0.05f;
  const double loss1 = train_sgd(model, x, y, one_epoch, rng).final_loss;
  double loss10 = loss1;
  for (int i = 0; i < 10; ++i) {
    loss10 = train_sgd(model, x, y, one_epoch, rng).final_loss;
  }
  EXPECT_LT(loss10, loss1);
}

TEST(Train, DeterministicGivenSeed) {
  Rng data_rng(3);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 60, data_rng);
  TrainConfig cfg;
  cfg.epochs = 3;

  Mlp a(MlpConfig{{2, 4, 2}, Activation::kRelu});
  Mlp b(MlpConfig{{2, 4, 2}, Activation::kRelu});
  Rng init_a(7), init_b(7);
  a.init(init_a);
  b.init(init_b);
  Rng train_a(9), train_b(9);
  train_sgd(a, x, y, cfg, train_a);
  train_sgd(b, x, y, cfg, train_b);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(Train, EmptyDatasetIsNoop) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  Rng rng(4);
  model.init(rng);
  const auto before = model.parameters();
  Matrix x(0, 2);
  const TrainStats stats = train_sgd(model, x, {}, TrainConfig{}, rng);
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(model.parameters(), before);
}

TEST(Train, MismatchedLabelsThrow) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  Rng rng(5);
  Matrix x(3, 2);
  const std::vector<int> y{0, 1};
  EXPECT_THROW(train_sgd(model, x, y, TrainConfig{}, rng),
               std::invalid_argument);
}

TEST(Train, ZeroBatchSizeThrows) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  Rng rng(6);
  Matrix x(3, 2);
  const std::vector<int> y{0, 1, 0};
  TrainConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(train_sgd(model, x, y, cfg, rng), std::invalid_argument);
}

TEST(Train, PartialFinalBatchHandled) {
  Rng rng(7);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 33, rng);  // 33 % 16 != 0
  Mlp model(MlpConfig{{2, 4, 2}, Activation::kRelu});
  model.init(rng);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  const TrainStats stats = train_sgd(model, x, y, cfg, rng);
  EXPECT_EQ(stats.steps, 3u);  // 16 + 16 + 1
}

TEST(EvaluateAccuracy, PerfectAndZero) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  std::vector<float> params(model.num_params(), 0.0f);
  params[model.num_params() - 2] = 1.0f;  // bias class 0 = 1 -> always 0
  model.set_parameters(params);
  Matrix x(4, 2, 0.0f);
  EXPECT_EQ(evaluate_accuracy(model, x, std::vector<int>{0, 0, 0, 0}), 1.0);
  EXPECT_EQ(evaluate_accuracy(model, x, std::vector<int>{1, 1, 1, 1}), 0.0);
}

TEST(EvaluateAccuracy, EmptyReturnsZero) {
  Mlp model(MlpConfig{{2, 2}, Activation::kRelu});
  Matrix x(0, 2);
  EXPECT_EQ(evaluate_accuracy(model, x, {}), 0.0);
}

}  // namespace
}  // namespace baffle

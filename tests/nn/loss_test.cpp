#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace baffle {
namespace {

TEST(Loss, UniformLogitsGiveLogK) {
  const Matrix logits(4, 10, 0.0f);
  const std::vector<int> labels{0, 3, 5, 9};
  const double loss = softmax_cross_entropy_loss(logits, labels);
  EXPECT_NEAR(loss, std::log(10.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionLowLoss) {
  Matrix logits(1, 3, 0.0f);
  logits.at(0, 1) = 20.0f;
  const std::vector<int> labels{1};
  EXPECT_LT(softmax_cross_entropy_loss(logits, labels), 1e-6);
}

TEST(Loss, ConfidentWrongPredictionHighLoss) {
  Matrix logits(1, 3, 0.0f);
  logits.at(0, 0) = 20.0f;
  const std::vector<int> labels{1};
  EXPECT_GT(softmax_cross_entropy_loss(logits, labels), 10.0);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Matrix logits = Matrix::from_rows(2, 3, {1, 2, 3, -1, 0, 1});
  const std::vector<int> labels{0, 2};
  const LossResult result = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (float g : result.dlogits.row(r)) total += g;
    EXPECT_NEAR(total, 0.0f, 1e-6f);
  }
}

TEST(Loss, GradientIsSoftmaxMinusOneHotOverBatch) {
  Matrix logits(1, 2, 0.0f);  // softmax = (0.5, 0.5)
  const std::vector<int> labels{0};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.dlogits.at(0, 0), -0.5f, 1e-6f);
  EXPECT_NEAR(result.dlogits.at(0, 1), 0.5f, 1e-6f);
}

TEST(Loss, GradientScalesWithBatch) {
  Matrix logits(2, 2, 0.0f);
  const std::vector<int> labels{0, 0};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.dlogits.at(0, 0), -0.25f, 1e-6f);  // (0.5-1)/2
}

TEST(Loss, LossMatchesGradVariant) {
  Matrix logits = Matrix::from_rows(3, 4, {1, 2, 3, 4, 0, 0, 0, 0, -2, 5, 1, 1});
  const std::vector<int> labels{3, 1, 2};
  EXPECT_NEAR(softmax_cross_entropy(logits, labels).loss,
              softmax_cross_entropy_loss(logits, labels), 1e-9);
}

TEST(Loss, LabelCountMismatchThrows) {
  Matrix logits(2, 3);
  const std::vector<int> labels{0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy_loss(logits, labels),
               std::invalid_argument);
}

TEST(Loss, LabelOutOfRangeThrows) {
  Matrix logits(1, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{3}),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{-1}),
               std::invalid_argument);
}

TEST(Loss, NumericallyStableForExtremeLogits) {
  Matrix logits = Matrix::from_rows(1, 2, {1000.0f, -1000.0f});
  const std::vector<int> labels{1};
  const LossResult result = softmax_cross_entropy(logits, labels);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_TRUE(std::isfinite(result.dlogits.at(0, 0)));
}

}  // namespace
}  // namespace baffle

#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace baffle {
namespace {

TEST(Dense, ShapesAndParamCount) {
  Dense layer(4, 3, Activation::kRelu);
  EXPECT_EQ(layer.in_dim(), 4u);
  EXPECT_EQ(layer.out_dim(), 3u);
  EXPECT_EQ(layer.num_params(), 4u * 3u + 3u);
}

TEST(Dense, RejectsZeroDims) {
  EXPECT_THROW(Dense(0, 3, Activation::kRelu), std::invalid_argument);
  EXPECT_THROW(Dense(3, 0, Activation::kRelu), std::invalid_argument);
}

TEST(Dense, InitWeightsNonZeroBiasZero) {
  Dense layer(8, 8, Activation::kRelu);
  Rng rng(1);
  layer.init_weights(rng);
  float norm = l2_norm(layer.weights().flat());
  EXPECT_GT(norm, 0.1f);
  for (float b : layer.bias()) EXPECT_EQ(b, 0.0f);
}

TEST(Dense, ForwardLinearIdentity) {
  Dense layer(2, 2, Activation::kIdentity);
  layer.weights().at(0, 0) = 1.0f;
  layer.weights().at(1, 1) = 1.0f;
  layer.bias() = {0.5f, -0.5f};
  Matrix x = Matrix::from_rows(1, 2, {2.0f, 3.0f});
  Matrix out;
  layer.forward(x, out);
  EXPECT_EQ(out.at(0, 0), 2.5f);
  EXPECT_EQ(out.at(0, 1), 2.5f);
}

TEST(Dense, ForwardReluClampsNegatives) {
  Dense layer(1, 1, Activation::kRelu);
  layer.weights().at(0, 0) = 1.0f;
  layer.bias() = {-5.0f};
  Matrix x = Matrix::from_rows(1, 1, {2.0f});
  Matrix out;
  layer.forward(x, out);
  EXPECT_EQ(out.at(0, 0), 0.0f);
}

TEST(Dense, ForwardRejectsWrongInputDim) {
  Dense layer(3, 2, Activation::kRelu);
  Matrix x(1, 4);
  Matrix out;
  EXPECT_THROW(layer.forward(x, out), std::invalid_argument);
}

TEST(Dense, BackwardAccumulatesGradients) {
  Dense layer(2, 1, Activation::kIdentity);
  layer.weights().at(0, 0) = 1.0f;
  layer.weights().at(1, 0) = 1.0f;
  Matrix x = Matrix::from_rows(1, 2, {3.0f, 4.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout, nullptr);
  // dW = xᵀ dout
  EXPECT_EQ(layer.weight_grad().at(0, 0), 3.0f);
  EXPECT_EQ(layer.weight_grad().at(1, 0), 4.0f);
  EXPECT_EQ(layer.bias_grad()[0], 1.0f);

  // Accumulation: a second backward adds.
  layer.forward(x, out);
  Matrix dout2 = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout2, nullptr);
  EXPECT_EQ(layer.weight_grad().at(0, 0), 6.0f);
}

TEST(Dense, BackwardComputesInputGradient) {
  Dense layer(2, 2, Activation::kIdentity);
  layer.weights().at(0, 0) = 2.0f;
  layer.weights().at(1, 1) = 3.0f;
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix dx;
  layer.backward(dout, &dx);
  // dx = dout Wᵀ
  EXPECT_EQ(dx.at(0, 0), 2.0f);
  EXPECT_EQ(dx.at(0, 1), 3.0f);
}

TEST(Dense, ZeroGradResets) {
  Dense layer(2, 1, Activation::kIdentity);
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout, nullptr);
  layer.zero_grad();
  for (float g : layer.weight_grad().flat()) EXPECT_EQ(g, 0.0f);
  for (float g : layer.bias_grad()) EXPECT_EQ(g, 0.0f);
}

TEST(Dense, BackwardShapeMismatchThrows) {
  Dense layer(2, 2, Activation::kIdentity);
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix bad = Matrix::from_rows(1, 3, {1, 1, 1});
  EXPECT_THROW(layer.backward(bad, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

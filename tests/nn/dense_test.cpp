#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace baffle {
namespace {

TEST(Dense, ShapesAndParamCount) {
  Dense layer(4, 3, Activation::kRelu);
  EXPECT_EQ(layer.in_dim(), 4u);
  EXPECT_EQ(layer.out_dim(), 3u);
  EXPECT_EQ(layer.num_params(), 4u * 3u + 3u);
}

TEST(Dense, RejectsZeroDims) {
  EXPECT_THROW(Dense(0, 3, Activation::kRelu), std::invalid_argument);
  EXPECT_THROW(Dense(3, 0, Activation::kRelu), std::invalid_argument);
}

TEST(Dense, InitWeightsNonZeroBiasZero) {
  Dense layer(8, 8, Activation::kRelu);
  Rng rng(1);
  layer.init_weights(rng);
  float norm = l2_norm(layer.weights().flat());
  EXPECT_GT(norm, 0.1f);
  for (float b : layer.bias()) EXPECT_EQ(b, 0.0f);
}

TEST(Dense, ForwardLinearIdentity) {
  Dense layer(2, 2, Activation::kIdentity);
  layer.weights().at(0, 0) = 1.0f;
  layer.weights().at(1, 1) = 1.0f;
  layer.bias() = {0.5f, -0.5f};
  Matrix x = Matrix::from_rows(1, 2, {2.0f, 3.0f});
  Matrix out;
  layer.forward(x, out);
  EXPECT_EQ(out.at(0, 0), 2.5f);
  EXPECT_EQ(out.at(0, 1), 2.5f);
}

TEST(Dense, ForwardReluClampsNegatives) {
  Dense layer(1, 1, Activation::kRelu);
  layer.weights().at(0, 0) = 1.0f;
  layer.bias() = {-5.0f};
  Matrix x = Matrix::from_rows(1, 1, {2.0f});
  Matrix out;
  layer.forward(x, out);
  EXPECT_EQ(out.at(0, 0), 0.0f);
}

TEST(Dense, ForwardRejectsWrongInputDim) {
  Dense layer(3, 2, Activation::kRelu);
  Matrix x(1, 4);
  Matrix out;
  EXPECT_THROW(layer.forward(x, out), std::invalid_argument);
}

TEST(Dense, BackwardAccumulatesGradients) {
  Dense layer(2, 1, Activation::kIdentity);
  layer.weights().at(0, 0) = 1.0f;
  layer.weights().at(1, 0) = 1.0f;
  Matrix x = Matrix::from_rows(1, 2, {3.0f, 4.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout, nullptr);
  // dW = xᵀ dout
  EXPECT_EQ(layer.weight_grad().at(0, 0), 3.0f);
  EXPECT_EQ(layer.weight_grad().at(1, 0), 4.0f);
  EXPECT_EQ(layer.bias_grad()[0], 1.0f);

  // Accumulation: a second backward adds.
  layer.forward(x, out);
  Matrix dout2 = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout2, nullptr);
  EXPECT_EQ(layer.weight_grad().at(0, 0), 6.0f);
}

TEST(Dense, BackwardComputesInputGradient) {
  Dense layer(2, 2, Activation::kIdentity);
  layer.weights().at(0, 0) = 2.0f;
  layer.weights().at(1, 1) = 3.0f;
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix dx;
  layer.backward(dout, &dx);
  // dx = dout Wᵀ
  EXPECT_EQ(dx.at(0, 0), 2.0f);
  EXPECT_EQ(dx.at(0, 1), 3.0f);
}

TEST(Dense, ZeroGradResets) {
  Dense layer(2, 1, Activation::kIdentity);
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix dout = Matrix::from_rows(1, 1, {1.0f});
  layer.backward(dout, nullptr);
  layer.zero_grad();
  for (float g : layer.weight_grad().flat()) EXPECT_EQ(g, 0.0f);
  for (float g : layer.bias_grad()) EXPECT_EQ(g, 0.0f);
}

TEST(Dense, WeightMutationBumpsParamVersion) {
  Dense layer(4, 3, Activation::kIdentity);
  const auto v0 = layer.param_version();
  layer.weights().at(0, 0) = 1.0f;  // non-const accessor bumps
  EXPECT_GT(layer.param_version(), v0);
  const Dense& cl = layer;
  (void)cl.weights();  // const accessor must not
  EXPECT_EQ(layer.param_version(), v0 + 1);
  Rng rng(9);
  layer.init_weights(rng);
  EXPECT_GT(layer.param_version(), v0 + 1);
}

TEST(Dense, PackedCacheInvalidatedByWeightMutation) {
  Dense layer(8, 6, Activation::kIdentity);
  Rng rng(9);
  layer.init_weights(rng);
  EXPECT_FALSE(layer.packed_cache_valid());  // nothing packed yet

  layer.ensure_packed();
  // On the SIMD arm the pack now matches the weights; on the scalar arm
  // ensure_packed() is a no-op and the cache stays invalid.
  EXPECT_EQ(layer.packed_cache_valid(), gemm_uses_packed());

  Matrix x = Matrix::from_rows(2, 8, std::vector<float>(16, 0.5f));
  Matrix out1;
  layer.forward(x, out1);
  EXPECT_EQ(layer.packed_cache_valid(), gemm_uses_packed());

  // Mutating weights through the accessor invalidates the pack...
  layer.weights().at(0, 0) += 2.0f;
  EXPECT_FALSE(layer.packed_cache_valid());

  // ...and the next forward repacks and sees the new weights.
  Matrix out2;
  layer.forward(x, out2);
  EXPECT_EQ(layer.packed_cache_valid(), gemm_uses_packed());
  EXPECT_NEAR(out2.at(0, 0), out1.at(0, 0) + 0.5f * 2.0f, 1e-5f);

  // forward_eval on a const layer reuses a valid pack but never packs.
  const Dense& cl = layer;
  Matrix out3;
  cl.forward_eval(x, out3);
  for (std::size_t j = 0; j < out2.cols(); ++j) {
    EXPECT_NEAR(out3.at(0, j), out2.at(0, j), 1e-6f) << "col " << j;
  }
}

TEST(Dense, BackwardShapeMismatchThrows) {
  Dense layer(2, 2, Activation::kIdentity);
  Matrix x = Matrix::from_rows(1, 2, {1.0f, 1.0f});
  Matrix out;
  layer.forward(x, out);
  Matrix bad = Matrix::from_rows(1, 3, {1, 1, 1});
  EXPECT_THROW(layer.backward(bad, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

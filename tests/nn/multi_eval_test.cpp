#include "nn/multi_eval.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "data/synth.hpp"
#include "nn/mlp.hpp"
#include "util/metrics.hpp"

namespace baffle {
namespace {

// Random-walk chain of ℓ models from one seeded init, mimicking the
// validator's history window.
std::vector<std::vector<float>> model_chain(const MlpConfig& arch, Rng& rng,
                                            std::size_t count) {
  Mlp model(arch);
  model.init(rng);
  std::vector<float> params = model.parameters();
  std::vector<std::vector<float>> chain;
  for (std::size_t v = 0; v < count; ++v) {
    for (float& p : params) p += static_cast<float>(rng.normal(0.0, 0.05));
    chain.push_back(params);
  }
  return chain;
}

Matrix features_matrix(std::size_t test_per_class, std::size_t dim,
                       std::uint64_t seed) {
  Rng rng(seed);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 1;
  cfg.test_per_class = test_per_class;
  cfg.dim = dim;
  SynthTask task = make_synth_task(cfg, rng);
  return task.test.features();
}

std::vector<std::size_t> sequential_preds(const MlpConfig& arch,
                                          const std::vector<float>& params,
                                          const Matrix& x) {
  Mlp model(arch);
  model.set_parameters(params);
  MlpEvalWorkspace ws;
  std::vector<std::size_t> preds(x.rows());
  model.predict_into(x, preds, ws);
  return preds;
}

TEST(MultiModelEval, Fp32BitParityWithSequentialPath) {
  const MlpConfig arch{{32, 24, 10}, Activation::kRelu};
  Rng rng(7);
  const auto chain = model_chain(arch, rng, 5);
  // 330 samples: 20 full panels plus a 10-column tail panel.
  const Matrix x = features_matrix(33, 32, 11);
  MultiModelEval engine(arch);
  engine.bind(x);
  ASSERT_EQ(engine.bound_samples(), x.rows());

  MlpEvalWorkspace ws;
  std::vector<std::size_t> batched(x.rows());
  for (const auto& params : chain) {
    engine.predict_into(params, batched, ws);
    EXPECT_EQ(batched, sequential_preds(arch, params, x));
  }
}

TEST(MultiModelEval, Fp32ParityMultiLayerTanh) {
  const MlpConfig arch{{16, 12, 14, 6}, Activation::kTanh};
  Rng rng(9);
  const auto chain = model_chain(arch, rng, 3);
  const Matrix x = features_matrix(20, 16, 13);
  MultiModelEval engine(arch);
  engine.bind(x);

  MlpEvalWorkspace ws;
  std::vector<std::size_t> batched(x.rows());
  for (const auto& params : chain) {
    engine.predict_into(params, batched, ws);
    EXPECT_EQ(batched, sequential_preds(arch, params, x));
  }
}

TEST(MultiModelEval, SingleSampleAndSingleRowPanels) {
  const MlpConfig arch{{8, 6, 4}, Activation::kRelu};
  Rng rng(21);
  const auto chain = model_chain(arch, rng, 2);
  Rng data_rng(22);
  Matrix x(1, 8);
  for (float& v : x.flat()) v = static_cast<float>(data_rng.normal(0.0, 1.0));

  MultiModelEval engine(arch);
  engine.bind(x);
  MlpEvalWorkspace ws;
  std::vector<std::size_t> batched(1);
  for (const auto& params : chain) {
    engine.predict_into(params, batched, ws);
    EXPECT_EQ(batched, sequential_preds(arch, params, x));
  }
}

TEST(MultiModelEval, PredictManySpansModelChunks) {
  const MlpConfig arch{{12, 10, 5}, Activation::kRelu};
  Rng rng(31);
  // More models than kModelChunk, so the chunked panel-outer loop runs
  // at least twice.
  const std::size_t count = MultiModelEval::kModelChunk + 5;
  const auto chain = model_chain(arch, rng, count);
  Rng data_rng(32);
  Matrix x(50, 12);
  for (float& v : x.flat()) v = static_cast<float>(data_rng.normal(0.0, 1.0));

  MultiModelEval engine(arch);
  engine.bind(x);
  std::vector<std::vector<std::size_t>> preds(
      count, std::vector<std::size_t>(x.rows()));
  std::vector<MultiEvalModel> models;
  for (std::size_t v = 0; v < count; ++v) {
    models.push_back({chain[v], preds[v]});
  }
  MlpEvalWorkspace ws;
  engine.predict_many(models, ws);
  for (std::size_t v = 0; v < count; ++v) {
    EXPECT_EQ(preds[v], sequential_preds(arch, chain[v], x));
  }
}

TEST(MultiModelEval, RebindReplacesDataset) {
  const MlpConfig arch{{10, 8, 3}, Activation::kRelu};
  Rng rng(41);
  const auto chain = model_chain(arch, rng, 1);
  Rng data_rng(42);
  Matrix x1(30, 10), x2(17, 10);
  for (float& v : x1.flat()) v = static_cast<float>(data_rng.normal(0.0, 1.0));
  for (float& v : x2.flat()) v = static_cast<float>(data_rng.normal(0.0, 1.0));

  MultiModelEval engine(arch);
  MlpEvalWorkspace ws;
  engine.bind(x1);
  std::vector<std::size_t> preds1(x1.rows());
  engine.predict_into(chain[0], preds1, ws);
  EXPECT_EQ(preds1, sequential_preds(arch, chain[0], x1));

  engine.bind(x2);
  EXPECT_EQ(engine.bound_samples(), 17u);
  std::vector<std::size_t> preds2(x2.rows());
  engine.predict_into(chain[0], preds2, ws);
  EXPECT_EQ(preds2, sequential_preds(arch, chain[0], x2));
}

// The reduced-precision arms must keep the argmaxes (and therefore
// confusion matrices and votes) identical to fp32 on the bench-style
// scenarios: any sample whose reduced-precision margin is below the
// guard threshold is re-decided by the fp32 path, and the guard margins
// are calibrated with >2x headroom over the worst observed flip.
class MultiModelEvalReducedPrecision
    : public ::testing::TestWithParam<EvalPrecision> {};

TEST_P(MultiModelEvalReducedPrecision, ArgmaxStableOnSeededScenario) {
  const MlpConfig arch{{32, 64, 10}, Activation::kRelu};
  Rng rng(404);
  const auto chain = model_chain(arch, rng, 8);
  const Matrix x = features_matrix(60, 32, 404);

  MultiModelEval engine(arch);
  engine.bind(x);
  MlpEvalWorkspace ws;
  std::vector<std::size_t> fp32(x.rows()), reduced(x.rows());
  for (const auto& params : chain) {
    ws.precision = EvalPrecision::kFp32;
    engine.predict_into(params, fp32, ws);
    ws.precision = GetParam();
    engine.predict_into(params, reduced, ws);
    EXPECT_EQ(reduced, fp32);
  }
}

TEST_P(MultiModelEvalReducedPrecision, ArgmaxStableMultiLayerTanh) {
  const MlpConfig arch{{16, 24, 20, 8}, Activation::kTanh};
  Rng rng(77);
  const auto chain = model_chain(arch, rng, 4);
  const Matrix x = features_matrix(40, 16, 78);

  MultiModelEval engine(arch);
  engine.bind(x);
  MlpEvalWorkspace ws;
  std::vector<std::size_t> fp32(x.rows()), reduced(x.rows());
  for (const auto& params : chain) {
    ws.precision = EvalPrecision::kFp32;
    engine.predict_into(params, fp32, ws);
    ws.precision = GetParam();
    engine.predict_into(params, reduced, ws);
    EXPECT_EQ(reduced, fp32);
  }
}

INSTANTIATE_TEST_SUITE_P(Arms, MultiModelEvalReducedPrecision,
                         ::testing::Values(EvalPrecision::kBf16,
                                           EvalPrecision::kInt8),
                         [](const auto& info) {
                           return info.param == EvalPrecision::kBf16
                                      ? "bf16"
                                      : "int8";
                         });

// Thread-count invariance (DESIGN.md §17): the pool-parallel tile sweep
// must produce BYTE-identical predictions and margins to the serial
// tile loop — same tile function, disjoint output slices, no reordered
// reductions — at whatever pool size this process runs with. The ctest
// entries multi_eval_parallel_parity_t{1,4} re-run this suite with
// BAFFLE_THREADS pinned to 1 and 4, so the identity is checked across
// pool sizes, not just within one.
struct ParallelRun {
  std::vector<std::size_t> preds;    // model-major, models × samples
  std::vector<float> margins;        // model-major, models × samples
  std::uint64_t guard_samples = 0;   // flagged re-evals this run
};

ParallelRun run_engine(MultiModelEval& engine,
                       const std::vector<std::vector<float>>& chain,
                       std::size_t samples, EvalPrecision prec,
                       bool parallel) {
  ParallelRun run;
  run.preds.assign(chain.size() * samples, 0);
  run.margins.assign(chain.size() * samples, 0.0f);
  std::vector<MultiEvalModel> models;
  for (std::size_t v = 0; v < chain.size(); ++v) {
    models.push_back(
        {chain[v],
         std::span<std::size_t>(run.preds).subspan(v * samples, samples),
         std::span<float>(run.margins).subspan(v * samples, samples)});
  }
  MlpEvalWorkspace ws;
  ws.precision = prec;
  ws.parallel = parallel;
  const std::uint64_t before =
      MetricsRegistry::global().counter("multi_eval.guard_samples");
  engine.predict_many(models, ws);
  run.guard_samples =
      MetricsRegistry::global().counter("multi_eval.guard_samples") - before;
  return run;
}

TEST(MultiModelEvalParallelParity, Fp32BytesEqualSerialAndSequential) {
  const MlpConfig arch{{32, 24, 10}, Activation::kRelu};
  Rng rng(55);
  // Two model chunks × three panel blocks, so the parallel sweep has
  // genuinely independent tiles in both dimensions.
  const std::size_t count = MultiModelEval::kModelChunk + 5;
  const auto chain = model_chain(arch, rng, count);
  const Matrix x = features_matrix(60, 32, 56);  // 600 samples, 38 panels
  MultiModelEval engine(arch);
  engine.bind(x);

  const ParallelRun serial =
      run_engine(engine, chain, x.rows(), EvalPrecision::kFp32, false);
  const ParallelRun parallel =
      run_engine(engine, chain, x.rows(), EvalPrecision::kFp32, true);
  EXPECT_EQ(parallel.preds, serial.preds);
  // Margins are floats: require bit equality, not approximate equality.
  ASSERT_EQ(parallel.margins.size(), serial.margins.size());
  EXPECT_EQ(std::memcmp(parallel.margins.data(), serial.margins.data(),
                        serial.margins.size() * sizeof(float)),
            0);
  for (std::size_t v = 0; v < count; ++v) {
    EXPECT_EQ(std::vector<std::size_t>(
                  serial.preds.begin() + static_cast<std::ptrdiff_t>(
                                             v * x.rows()),
                  serial.preds.begin() + static_cast<std::ptrdiff_t>(
                                             (v + 1) * x.rows())),
              sequential_preds(arch, chain[v], x));
  }
}

TEST(MultiModelEvalParallelParity, ReducedArmsMatchSerialIncludingGuard) {
  const MlpConfig arch{{32, 64, 10}, Activation::kRelu};
  Rng rng(404);
  const auto chain = model_chain(arch, rng, MultiModelEval::kModelChunk + 3);
  const Matrix x = features_matrix(60, 32, 404);
  MultiModelEval engine(arch);
  engine.bind(x);

  for (const EvalPrecision prec :
       {EvalPrecision::kBf16, EvalPrecision::kInt8}) {
    SCOPED_TRACE(prec == EvalPrecision::kBf16 ? "bf16" : "int8");
    const ParallelRun serial =
        run_engine(engine, chain, x.rows(), prec, false);
    const ParallelRun parallel =
        run_engine(engine, chain, x.rows(), prec, true);
    // The flagged set is derived from bit-identical margins, so the
    // guard must re-evaluate exactly the same samples either way.
    EXPECT_EQ(parallel.preds, serial.preds);
    EXPECT_EQ(parallel.guard_samples, serial.guard_samples);
  }
}

}  // namespace
}  // namespace baffle

#include "nn/model_codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace baffle {
namespace {

MlpConfig config() { return MlpConfig{{6, 10, 4}, Activation::kTanh}; }

TEST(ModelCodec, RoundTripPreservesEverything) {
  Mlp model(config());
  Rng rng(1);
  model.init(rng);
  const auto bytes = encode_model(model);
  const Mlp decoded = decode_model(bytes);
  EXPECT_EQ(decoded.config().layer_dims, model.config().layer_dims);
  EXPECT_EQ(decoded.config().hidden_activation,
            model.config().hidden_activation);
  EXPECT_EQ(decoded.parameters(), model.parameters());
}

TEST(ModelCodec, EncodedSizeMatchesPrediction) {
  Mlp model(config());
  EXPECT_EQ(encode_model(model).size(), encoded_size(model));
}

TEST(ModelCodec, SizeScalesWithParameters) {
  Mlp small(MlpConfig{{4, 2}, Activation::kRelu});
  Mlp big(MlpConfig{{64, 128, 10}, Activation::kRelu});
  EXPECT_GT(encoded_size(big), 10 * encoded_size(small));
}

TEST(ModelCodec, BadMagicRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, TruncationRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_model(bytes), std::exception);
}

TEST(ModelCodec, TrailingGarbageRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes.push_back(0);
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, ImplausibleLayerCountRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  // Layer count lives right after the 4-byte magic.
  bytes[4] = 0xFF;
  bytes[5] = 0xFF;
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, DeterministicEncoding) {
  Mlp model(config());
  Rng rng(2);
  model.init(rng);
  EXPECT_EQ(encode_model(model), encode_model(model));
}

}  // namespace
}  // namespace baffle

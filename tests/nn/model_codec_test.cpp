#include "nn/model_codec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <limits>

#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace baffle {
namespace {

MlpConfig config() { return MlpConfig{{6, 10, 4}, Activation::kTanh}; }

TEST(ModelCodec, RoundTripPreservesEverything) {
  Mlp model(config());
  Rng rng(1);
  model.init(rng);
  const auto bytes = encode_model(model);
  const Mlp decoded = decode_model(bytes);
  EXPECT_EQ(decoded.config().layer_dims, model.config().layer_dims);
  EXPECT_EQ(decoded.config().hidden_activation,
            model.config().hidden_activation);
  EXPECT_EQ(decoded.parameters(), model.parameters());
}

TEST(ModelCodec, EncodedSizeMatchesPrediction) {
  Mlp model(config());
  EXPECT_EQ(encode_model(model).size(), encoded_size(model));
}

TEST(ModelCodec, SizeScalesWithParameters) {
  Mlp small(MlpConfig{{4, 2}, Activation::kRelu});
  Mlp big(MlpConfig{{64, 128, 10}, Activation::kRelu});
  EXPECT_GT(encoded_size(big), 10 * encoded_size(small));
}

TEST(ModelCodec, BadMagicRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, TruncationRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_model(bytes), std::exception);
}

TEST(ModelCodec, TrailingGarbageRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  bytes.push_back(0);
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, ImplausibleLayerCountRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  // Layer count lives right after the 4-byte magic.
  bytes[4] = 0xFF;
  bytes[5] = 0xFF;
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, DeterministicEncoding) {
  Mlp model(config());
  Rng rng(2);
  model.init(rng);
  EXPECT_EQ(encode_model(model), encode_model(model));
}

// The defense ships real trained weights, and a poisoned or diverged
// model can legitimately carry NaN/Inf — the codec must move them
// bit-exactly, not "clean them up".
TEST(ModelCodec, NonFiniteWeightsRoundTripBitExact) {
  Mlp model(config());
  Rng rng(3);
  model.init(rng);
  auto params = model.parameters();
  ASSERT_GE(params.size(), 5u);
  params[0] = std::numeric_limits<float>::quiet_NaN();
  params[1] = std::numeric_limits<float>::infinity();
  params[2] = -std::numeric_limits<float>::infinity();
  params[3] = std::numeric_limits<float>::denorm_min();
  params[4] = -0.0f;
  model.set_parameters(params);

  const Mlp decoded = decode_model(encode_model(model));
  const auto out = decoded.parameters();
  ASSERT_EQ(out.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]),
              std::bit_cast<std::uint32_t>(params[i]))
        << "param " << i;
  }
}

TEST(ModelCodec, MinimalArchitectureRoundTrips) {
  // Smallest legal MLP: one weight matrix, one bias vector.
  Mlp model(MlpConfig{{1, 1}, Activation::kRelu});
  Rng rng(4);
  model.init(rng);
  const Mlp decoded = decode_model(encode_model(model));
  EXPECT_EQ(decoded.config().layer_dims, model.config().layer_dims);
  EXPECT_EQ(decoded.parameters(), model.parameters());
}

TEST(ModelCodec, ZeroLayerDimRejected) {
  Mlp model(config());
  auto bytes = encode_model(model);
  // First layer dim is the u64 right after magic (4) + dim count (8).
  std::uint64_t zero = 0;
  std::memcpy(bytes.data() + 12, &zero, sizeof(zero));
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

TEST(ModelCodec, ParamCountMismatchRejected) {
  // A valid frame for one architecture whose payload length disagrees
  // with the declared dims: forge by re-declaring the hidden dim.
  Mlp model(config());
  auto bytes = encode_model(model);
  std::uint64_t bigger = 11;  // real hidden dim is 10
  std::memcpy(bytes.data() + 20, &bigger, sizeof(bigger));
  EXPECT_THROW(decode_model(bytes), std::runtime_error);
}

// Every possible truncation of a well-formed encoding must throw — and
// under ASan must provably never read past the buffer end.
TEST(ModelCodec, TruncationSweepNeverOverReads) {
  Mlp model(MlpConfig{{3, 2}, Activation::kRelu});
  Rng rng(5);
  model.init(rng);
  const auto full = encode_model(model);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    SCOPED_TRACE(cut);
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    EXPECT_THROW(decode_model(prefix), std::exception);
  }
}

}  // namespace
}  // namespace baffle

// TrainWorkspace behavior: reuse across differently-shaped trainings is
// bit-exact, and the steady-state step loop performs zero heap
// allocations once the workspace is warm.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "nn/train.hpp"

namespace {
// Global allocation counter. Replacing the scalar operator new makes the
// default array/nothrow forms route through it as well, so every
// (non-over-aligned) heap allocation in this binary is counted.
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace baffle {
namespace {

void make_blobs(Matrix& x, std::vector<int>& y, std::size_t n,
                std::size_t dim, Rng& rng) {
  x = Matrix(n, dim);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    for (std::size_t d = 0; d < dim; ++d) {
      const double center = d == 0 ? (label == 0 ? -3.0 : 3.0) : 0.0;
      x.at(i, d) = static_cast<float>(rng.normal(center, 0.5));
    }
    y[i] = label;
  }
}

TEST(TrainWorkspace, ReuseAcrossShapesBitExact) {
  // Warm the shared workspace on a wide task, then train a smaller model
  // with it: shrunken-then-regrown buffers must not change results.
  Rng data_rng(1);
  Matrix wide_x, small_x;
  std::vector<int> wide_y, small_y;
  make_blobs(wide_x, wide_y, 70, 6, data_rng);
  make_blobs(small_x, small_y, 33, 2, data_rng);

  TrainWorkspace shared;
  Mlp warm(MlpConfig{{6, 12, 2}, Activation::kRelu});
  Rng warm_init(2), warm_train(3);
  warm.init(warm_init);
  train_sgd(warm, wide_x, wide_y, TrainConfig{}, warm_train, shared);

  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 16;  // 33 % 16 != 0 -> partial final batch
  Mlp with_shared(MlpConfig{{2, 4, 2}, Activation::kRelu});
  Mlp with_fresh(MlpConfig{{2, 4, 2}, Activation::kRelu});
  Rng init_a(7), init_b(7);
  with_shared.init(init_a);
  with_fresh.init(init_b);

  Rng train_a(9), train_b(9);
  TrainWorkspace fresh;
  const TrainStats sa =
      train_sgd(with_shared, small_x, small_y, cfg, train_a, shared);
  const TrainStats sb =
      train_sgd(with_fresh, small_x, small_y, cfg, train_b, fresh);
  EXPECT_EQ(sa.steps, sb.steps);
  EXPECT_EQ(sa.final_loss, sb.final_loss);
  EXPECT_EQ(with_shared.parameters(), with_fresh.parameters());
}

TEST(TrainWorkspace, WorkspaceOverloadMatchesAllocatingOverload) {
  Rng data_rng(4);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 60, 3, data_rng);
  TrainConfig cfg;
  cfg.epochs = 2;
  Mlp a(MlpConfig{{3, 6, 2}, Activation::kRelu});
  Mlp b(MlpConfig{{3, 6, 2}, Activation::kRelu});
  Rng init_a(5), init_b(5);
  a.init(init_a);
  b.init(init_b);
  Rng train_a(6), train_b(6);
  TrainWorkspace ws;
  train_sgd(a, x, y, cfg, train_a, ws);
  train_sgd(b, x, y, cfg, train_b);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(TrainWorkspace, SteadyStateStepLoopDoesNotAllocate) {
  Rng data_rng(8);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 64, 4, data_rng);
  Mlp model(MlpConfig{{4, 8, 2}, Activation::kRelu});
  Rng rng(10);
  model.init(rng);

  TrainWorkspace ws;
  TrainConfig cfg;
  cfg.batch_size = 16;
  cfg.epochs = 1;
  train_sgd(model, x, y, cfg, rng, ws);  // warm-up sizes every buffer

  // Allocation count of a warmed call must be independent of the number
  // of steps: tripling the epochs triples the step count but must not
  // add a single allocation beyond the fixed per-call overhead (the
  // optimizer's velocity vector).
  const std::size_t before_short = g_allocs.load();
  train_sgd(model, x, y, cfg, rng, ws);
  const std::size_t short_allocs = g_allocs.load() - before_short;

  cfg.epochs = 3;
  const std::size_t before_long = g_allocs.load();
  train_sgd(model, x, y, cfg, rng, ws);
  const std::size_t long_allocs = g_allocs.load() - before_long;

  EXPECT_EQ(short_allocs, long_allocs)
      << "per-step loop allocated: " << short_allocs << " allocs for "
      << "1 epoch vs " << long_allocs << " for 3 epochs";
  // The fixed overhead itself stays tiny (velocity vector only).
  EXPECT_LE(short_allocs, 2u);
}

}  // namespace
}  // namespace baffle

// Numerical gradient check: the single most load-bearing property of the
// NN substrate. Backprop gradients must match central finite differences
// of the loss for every parameter, across architectures and activations.

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

struct GradCheckCase {
  MlpConfig config;
  const char* name;
};

class GradCheck : public ::testing::TestWithParam<GradCheckCase> {};

double loss_at(Mlp& model, const std::vector<float>& params, const Matrix& x,
               const std::vector<int>& labels) {
  model.set_parameters(params);
  return softmax_cross_entropy_loss(model.forward(x), labels);
}

TEST_P(GradCheck, BackpropMatchesFiniteDifferences) {
  const auto& param = GetParam();
  Mlp model(param.config);
  Rng rng(1234);
  model.init(rng);

  const std::size_t batch = 5;
  Matrix x(batch, model.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  std::vector<int> labels(batch);
  for (auto& y : labels) {
    y = static_cast<int>(rng.uniform_int(
        0, static_cast<std::int64_t>(model.output_dim()) - 1));
  }

  // Analytic gradient.
  model.zero_grad();
  const Matrix logits = model.forward(x);
  LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(std::move(loss.dlogits));
  const std::vector<float> analytic = model.gradients();
  std::vector<float> params = model.parameters();

  // Central differences on a random subset of parameters (full sweep on
  // small nets, subsampled on bigger ones to keep the test fast).
  const double eps = 1e-3;
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 120);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float orig = params[i];
    params[i] = orig + static_cast<float>(eps);
    const double up = loss_at(model, params, x, labels);
    params[i] = orig - static_cast<float>(eps);
    const double down = loss_at(model, params, x, labels);
    params[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, 5e-3)
        << param.name << " param " << i;
    ++checked;
  }
  EXPECT_GE(checked, std::min<std::size_t>(params.size(), 20));
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, GradCheck,
    ::testing::Values(
        GradCheckCase{{{3, 2}, Activation::kRelu}, "linear"},
        GradCheckCase{{{4, 8, 3}, Activation::kRelu}, "relu_1hidden"},
        GradCheckCase{{{4, 8, 3}, Activation::kTanh}, "tanh_1hidden"},
        GradCheckCase{{{5, 8, 6, 4}, Activation::kRelu}, "relu_2hidden"},
        GradCheckCase{{{5, 8, 6, 4}, Activation::kTanh}, "tanh_2hidden"},
        GradCheckCase{{{2, 16, 16, 2}, Activation::kTanh}, "wide_tanh"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace baffle

#include "nn/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace baffle {
namespace {

ParamVec random_params(std::size_t n, Rng& rng) {
  ParamVec out(n);
  for (auto& x : out) x = static_cast<float>(rng.normal());
  return out;
}

TEST(Compression, FullKeepRoundTripsWithinQuantization) {
  Rng rng(1);
  const ParamVec params = random_params(500, rng);
  const auto compressed = compress_topk(params, 1.0);
  const ParamVec restored = decompress_topk(compressed);
  ASSERT_EQ(restored.size(), params.size());
  // 8-bit quantization over the value range.
  float range = 0.0f;
  for (float x : params) range = std::max(range, std::abs(x));
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(restored[i], params[i], 2.0f * range / 255.0f + 1e-6f);
  }
}

TEST(Compression, KeepsLargestMagnitudeEntries) {
  ParamVec params(100, 0.01f);
  params[7] = 5.0f;
  params[42] = -4.0f;
  const ParamVec restored =
      decompress_topk(compress_topk(params, 0.02));  // keep 2 entries
  EXPECT_NEAR(restored[7], 5.0f, 0.1f);
  EXPECT_NEAR(restored[42], -4.0f, 0.1f);
  EXPECT_EQ(restored[0], 0.0f);  // dropped
}

TEST(Compression, AchievesTargetRatio) {
  Rng rng(2);
  const ParamVec params = random_params(10000, rng);
  const auto compressed = compress_topk(params, 0.05);
  // 5% kept as (4-byte delta + 1-byte code) vs 4 bytes each: ~16x.
  EXPECT_GT(compressed.compression_ratio(), 10.0);
}

TEST(Compression, TenPercentKeepsCosineDirection) {
  // The paper's 10x claim: a heavily compressed model must still point
  // in the same direction (validation uses predictions, which are
  // dominated by large weights).
  Rng rng(3);
  // Heavy-tailed weights (realistic for trained nets).
  ParamVec params(5000);
  for (auto& x : params) {
    const double u = rng.normal();
    x = static_cast<float>(u * u * u);
  }
  const ParamVec restored =
      decompress_topk(compress_topk(params, 0.10));
  EXPECT_GT(cosine_similarity(params, restored), 0.9f);
}

TEST(Compression, RejectsBadArguments) {
  const ParamVec params(10, 1.0f);
  EXPECT_THROW(compress_topk(params, 0.0), std::invalid_argument);
  EXPECT_THROW(compress_topk(params, 1.5), std::invalid_argument);
  EXPECT_THROW(compress_topk({}, 0.5), std::invalid_argument);
}

TEST(Compression, CorruptedBytesRejected) {
  Rng rng(4);
  auto compressed = compress_topk(random_params(100, rng), 0.2);
  compressed.bytes[0] ^= 0xFF;
  EXPECT_THROW(decompress_topk(compressed), std::runtime_error);
}

TEST(Compression, TruncationRejected) {
  Rng rng(5);
  auto compressed = compress_topk(random_params(100, rng), 0.2);
  compressed.bytes.resize(compressed.bytes.size() - 3);
  EXPECT_THROW(decompress_topk(compressed), std::exception);
}

TEST(Compression, ConstantVectorHandled) {
  const ParamVec params(50, 2.5f);  // zero range
  const ParamVec restored = decompress_topk(compress_topk(params, 1.0));
  for (float x : restored) EXPECT_FLOAT_EQ(x, 2.5f);
}

TEST(Compression, TinyVectorsRoundTrip) {
  // Fewer parameters than one SIMD lane: the abs_into magnitude pass
  // and the codec must handle sub-vector tails.
  for (std::size_t n : {1u, 2u, 7u}) {
    Rng rng(10 + n);
    const ParamVec params = random_params(n, rng);
    const ParamVec restored = decompress_topk(compress_topk(params, 1.0));
    ASSERT_EQ(restored.size(), n);
    float range = 0.0f;
    for (float x : params) range = std::max(range, std::abs(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(restored[i], params[i], 2.0f * range / 255.0f + 1e-6f)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Compression, DenormalValuesHandled) {
  // Denormal magnitudes must neither crash the quantizer nor win the
  // top-k ranking over normal-range entries.
  ParamVec params(20, std::numeric_limits<float>::denorm_min());
  params[3] = 1.0f;
  params[11] = -2.0f;
  const ParamVec restored =
      decompress_topk(compress_topk(params, 0.1));  // keep 2
  EXPECT_NEAR(restored[3], 1.0f, 0.05f);
  EXPECT_NEAR(restored[11], -2.0f, 0.05f);
  EXPECT_EQ(restored[0], 0.0f);

  // All-denormal input: range collapses toward zero, round trip must
  // still produce finite values.
  ParamVec tiny(16, std::numeric_limits<float>::denorm_min());
  tiny[1] = -std::numeric_limits<float>::denorm_min();
  const ParamVec tiny_restored = decompress_topk(compress_topk(tiny, 1.0));
  ASSERT_EQ(tiny_restored.size(), tiny.size());
  for (float x : tiny_restored) EXPECT_TRUE(std::isfinite(x));
}

TEST(Compression, ErrorBoundIsSmall) {
  Rng rng(6);
  const ParamVec params = random_params(1000, rng);
  EXPECT_LT(quantization_error_bound(params, 0.5), 0.1f);
}

}  // namespace
}  // namespace baffle

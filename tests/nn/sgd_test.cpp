#include "nn/sgd.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

MlpConfig tiny() { return MlpConfig{{2, 2}, Activation::kRelu}; }

/// Puts a known gradient into the model by running a forward/backward.
void set_unit_gradient(Mlp& model) {
  model.zero_grad();
  Matrix x(1, 2, 1.0f);
  model.forward(x);
  model.backward(Matrix(1, 2, 1.0f));
}

TEST(Sgd, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(4, SgdConfig{.learning_rate = 0.0f}),
               std::invalid_argument);
  EXPECT_THROW(Sgd(4, SgdConfig{.learning_rate = 0.1f, .momentum = 1.0f}),
               std::invalid_argument);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Mlp model(tiny());
  std::vector<float> zero(model.num_params(), 0.0f);
  model.set_parameters(zero);
  set_unit_gradient(model);
  const auto grad = model.gradients();

  Sgd opt(model.num_params(), SgdConfig{.learning_rate = 0.5f});
  opt.step(model);
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_FLOAT_EQ(params[i], -0.5f * grad[i]);
  }
}

TEST(Sgd, MomentumAcceleratesRepeatedSteps) {
  Mlp plain_model(tiny()), mom_model(tiny());
  std::vector<float> zero(plain_model.num_params(), 0.0f);
  plain_model.set_parameters(zero);
  mom_model.set_parameters(zero);

  Sgd plain(plain_model.num_params(), SgdConfig{.learning_rate = 0.1f});
  Sgd mom(mom_model.num_params(),
          SgdConfig{.learning_rate = 0.1f, .momentum = 0.9f});
  for (int i = 0; i < 3; ++i) {
    set_unit_gradient(plain_model);
    plain.step(plain_model);
    set_unit_gradient(mom_model);
    mom.step(mom_model);
  }
  // With a persistent gradient direction, momentum must travel farther.
  EXPECT_GT(l2_norm(mom_model.parameters()),
            l2_norm(plain_model.parameters()));
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Mlp model(tiny());
  std::vector<float> ones(model.num_params(), 1.0f);
  model.set_parameters(ones);
  model.zero_grad();  // zero gradient: only decay acts
  Sgd opt(model.num_params(),
          SgdConfig{.learning_rate = 0.1f, .weight_decay = 0.5f});
  opt.step(model);
  for (float p : model.parameters()) EXPECT_NEAR(p, 1.0f - 0.05f, 1e-6f);
}

TEST(Sgd, GradClipBoundsStepSize) {
  Mlp model(tiny());
  std::vector<float> zero(model.num_params(), 0.0f);
  model.set_parameters(zero);
  set_unit_gradient(model);
  Sgd opt(model.num_params(),
          SgdConfig{.learning_rate = 1.0f, .grad_clip = 0.01f});
  opt.step(model);
  EXPECT_LE(l2_norm(model.parameters()), 0.01f + 1e-6f);
}

TEST(Sgd, ModelSizeMismatchThrows) {
  Mlp model(tiny());
  Sgd opt(model.num_params() + 1, SgdConfig{});
  set_unit_gradient(model);
  EXPECT_THROW(opt.step(model), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

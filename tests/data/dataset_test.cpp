#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace baffle {
namespace {

Dataset make_small() {
  Dataset d(2, 3);
  d.add({{1.0f, 2.0f}, 0});
  d.add({{3.0f, 4.0f}, 1});
  d.add({{5.0f, 6.0f}, 2});
  d.add({{7.0f, 8.0f}, 1});
  return d;
}

TEST(Dataset, AddValidatesDimAndLabel) {
  Dataset d(2, 3);
  EXPECT_THROW(d.add({{1.0f}, 0}), std::invalid_argument);
  EXPECT_THROW(d.add({{1.0f, 2.0f}, 3}), std::invalid_argument);
  EXPECT_THROW(d.add({{1.0f, 2.0f}, -1}), std::invalid_argument);
  EXPECT_NO_THROW(d.add({{1.0f, 2.0f}, 2}));
}

TEST(Dataset, FeaturesAndLabelsAligned) {
  const Dataset d = make_small();
  const Matrix& x = d.features();
  const auto& y = d.labels();
  ASSERT_EQ(x.rows(), 4u);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(x.at(1, 0), 3.0f);
  EXPECT_EQ(y[1], 1);
}

TEST(Dataset, FeaturesAreCachedAcrossCalls) {
  const Dataset d = make_small();
  // Same materialized buffers on repeated calls: no per-evaluation copy.
  EXPECT_EQ(&d.features(), &d.features());
  EXPECT_EQ(&d.labels(), &d.labels());
  EXPECT_EQ(d.features().flat().data(), d.features().flat().data());
}

TEST(Dataset, ConcurrentColdReadersShareOneCacheFill) {
  // Many validators hit the same shard's features()/labels() in
  // parallel (TSan covers the interleaving via test_data in the
  // sanitizer leg). From a cold cache, exactly one reader wins the
  // writer-side fill and everyone observes the same materialization.
  Dataset d(2, 3);
  for (int i = 0; i < 64; ++i) {
    d.add({{static_cast<float>(i), static_cast<float>(2 * i)}, i % 3});
  }
  std::atomic<int> consistent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      const Matrix& x = d.features();
      const auto& y = d.labels();
      if (x.rows() == 64 && y.size() == 64 && x.at(5, 0) == 5.0f &&
          x.at(7, 1) == 14.0f && y[8] == 2) {
        consistent.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(consistent.load(), 4);
  // One shared materialization: repeat calls return the same buffers.
  EXPECT_EQ(&d.features(), &d.features());
  EXPECT_EQ(&d.labels(), &d.labels());
}

TEST(Dataset, AddInvalidatesCache) {
  Dataset d = make_small();
  EXPECT_EQ(d.features().rows(), 4u);
  d.add({{9.0f, 10.0f}, 0});
  EXPECT_EQ(d.features().rows(), 5u);
  EXPECT_EQ(d.features().at(4, 0), 9.0f);
  EXPECT_EQ(d.labels().size(), 5u);
}

TEST(Dataset, MergeInvalidatesCache) {
  Dataset d = make_small();
  EXPECT_EQ(d.features().rows(), 4u);
  d.merge(make_small());
  EXPECT_EQ(d.features().rows(), 8u);
  EXPECT_EQ(d.features().at(4, 0), 1.0f);
}

TEST(Dataset, ShuffleInvalidatesCache) {
  Dataset d(2, 2);
  for (int i = 0; i < 32; ++i) {
    d.add({{static_cast<float>(i), 0.0f}, i % 2});
  }
  const Matrix before = d.features();  // deliberate copy of the cache
  Rng rng(3);
  d.shuffle(rng);
  const Matrix& after = d.features();
  ASSERT_EQ(after.rows(), before.rows());
  bool moved = false;
  for (std::size_t r = 0; r < after.rows() && !moved; ++r) {
    moved = after.at(r, 0) != before.at(r, 0);
  }
  EXPECT_TRUE(moved);
  // Rows still pair with their labels after the reshuffle.
  for (std::size_t r = 0; r < after.rows(); ++r) {
    EXPECT_EQ(d.labels()[r], static_cast<int>(after.at(r, 0)) % 2);
  }
}

TEST(Dataset, CopyIsIndependentOfOriginalCache) {
  Dataset d = make_small();
  (void)d.features();  // warm the original's cache
  Dataset copy = d;
  copy.add({{9.0f, 9.0f}, 0});
  EXPECT_EQ(copy.features().rows(), 5u);
  EXPECT_EQ(d.features().rows(), 4u);
  EXPECT_NE(copy.features().flat().data(), d.features().flat().data());
}

TEST(Dataset, ClassCounts) {
  const Dataset d = make_small();
  const auto counts = d.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Dataset, SubsetSelectsByIndex) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx{3, 0};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].y, 1);
  EXPECT_EQ(s[1].y, 0);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx{99};
  EXPECT_THROW(d.subset(idx), std::out_of_range);
}

TEST(Dataset, FilterClass) {
  const Dataset d = make_small();
  const Dataset ones = d.filter_class(1);
  EXPECT_EQ(ones.size(), 2u);
  for (const auto& ex : ones.examples()) EXPECT_EQ(ex.y, 1);
}

TEST(Dataset, MergeRequiresCompatibleShape) {
  Dataset d = make_small();
  Dataset incompatible(3, 3);
  EXPECT_THROW(d.merge(incompatible), std::invalid_argument);
  Dataset other(2, 3);
  other.add({{0.0f, 0.0f}, 0});
  d.merge(other);
  EXPECT_EQ(d.size(), 5u);
}

TEST(Dataset, SplitPartitionsAll) {
  Dataset d(1, 2);
  for (int i = 0; i < 100; ++i) d.add({{static_cast<float>(i)}, i % 2});
  Rng rng(1);
  const auto [a, b] = d.split(0.3, rng);
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(b.size(), 70u);
}

TEST(Dataset, SplitRejectsBadFraction) {
  const Dataset d = make_small();
  Rng rng(1);
  EXPECT_THROW(d.split(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(d.split(1.1, rng), std::invalid_argument);
}

TEST(Dataset, SplitIsDisjointCover) {
  Dataset d(1, 2);
  for (int i = 0; i < 50; ++i) d.add({{static_cast<float>(i)}, 0});
  Rng rng(2);
  const auto [a, b] = d.split(0.5, rng);
  std::vector<float> seen;
  for (const auto& ex : a.examples()) seen.push_back(ex.x[0]);
  for (const auto& ex : b.examples()) seen.push_back(ex.x[0]);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seen[i], static_cast<float>(i));
}

TEST(Dataset, SampleDrawsDistinct) {
  Dataset d(1, 2);
  for (int i = 0; i < 20; ++i) d.add({{static_cast<float>(i)}, 0});
  Rng rng(3);
  const Dataset s = d.sample(5, rng);
  EXPECT_EQ(s.size(), 5u);
  std::set<float> unique;
  for (const auto& ex : s.examples()) unique.insert(ex.x[0]);
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Dataset, ShufflePreservesContent) {
  Dataset d = make_small();
  Rng rng(4);
  auto counts_before = d.class_counts();
  d.shuffle(rng);
  EXPECT_EQ(d.class_counts(), counts_before);
  EXPECT_EQ(d.size(), 4u);
}

}  // namespace
}  // namespace baffle

#include "data/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synth.hpp"

namespace baffle {
namespace {

Dataset labeled_pool(std::size_t per_class, std::size_t classes) {
  Dataset d(1, classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      d.add({{static_cast<float>(c * 1000 + i)}, static_cast<int>(c)});
    }
  }
  return d;
}

std::size_t total_size(const std::vector<Dataset>& shards) {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.size();
  return n;
}

TEST(DirichletPartition, CoversAllSamples) {
  const Dataset pool = labeled_pool(100, 5);
  Rng rng(1);
  const auto shards = dirichlet_partition(pool, 10, 0.9, rng);
  EXPECT_EQ(shards.size(), 10u);
  EXPECT_EQ(total_size(shards), pool.size());
}

TEST(DirichletPartition, PerClassTotalsPreserved) {
  const Dataset pool = labeled_pool(50, 4);
  Rng rng(2);
  const auto shards = dirichlet_partition(pool, 7, 0.9, rng);
  std::vector<std::size_t> per_class(4, 0);
  for (const auto& s : shards) {
    const auto counts = s.class_counts();
    for (std::size_t c = 0; c < 4; ++c) per_class[c] += counts[c];
  }
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(per_class[c], 50u);
}

TEST(DirichletPartition, SmallAlphaIsMoreSkewedThanLargeAlpha) {
  const Dataset pool = labeled_pool(200, 5);
  Rng rng1(3), rng2(3);
  const auto skewed = dirichlet_partition(pool, 10, 0.05, rng1);
  const auto balanced = dirichlet_partition(pool, 10, 100.0, rng2);

  // Measure skew as the mean (over clients) of max class share.
  auto skew = [](const std::vector<Dataset>& shards) {
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& s : shards) {
      if (s.empty()) continue;
      const auto counts = s.class_counts();
      const auto mx = *std::max_element(counts.begin(), counts.end());
      total += static_cast<double>(mx) / static_cast<double>(s.size());
      ++counted;
    }
    return total / static_cast<double>(counted);
  };
  EXPECT_GT(skew(skewed), skew(balanced) + 0.1);
}

TEST(DirichletPartition, RejectsZeroClients) {
  const Dataset pool = labeled_pool(10, 2);
  Rng rng(4);
  EXPECT_THROW(dirichlet_partition(pool, 0, 0.9, rng),
               std::invalid_argument);
}

TEST(DirichletPartition, Deterministic) {
  const Dataset pool = labeled_pool(30, 3);
  Rng a(5), b(5);
  const auto sa = dirichlet_partition(pool, 5, 0.9, a);
  const auto sb = dirichlet_partition(pool, 5, 0.9, b);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sa[i].size(), sb[i].size());
  }
}

TEST(IidPartition, NearEqualSizes) {
  const Dataset pool = labeled_pool(20, 5);  // 100 samples
  Rng rng(6);
  const auto shards = iid_partition(pool, 8, rng);
  EXPECT_EQ(total_size(shards), 100u);
  for (const auto& s : shards) {
    EXPECT_GE(s.size(), 12u);
    EXPECT_LE(s.size(), 13u);
  }
}

TEST(IidPartition, ClassBalancePerShard) {
  const Dataset pool = labeled_pool(400, 2);
  Rng rng(7);
  const auto shards = iid_partition(pool, 4, rng);
  for (const auto& s : shards) {
    const auto counts = s.class_counts();
    const double share =
        static_cast<double>(counts[0]) / static_cast<double>(s.size());
    EXPECT_NEAR(share, 0.5, 0.1);
  }
}

TEST(SplitClientServer, FractionRespected) {
  const Dataset pool = labeled_pool(100, 2);
  Rng rng(8);
  const auto split = split_client_server(pool, 0.1, rng);
  EXPECT_EQ(split.server_holdout.size(), 20u);
  EXPECT_EQ(split.client_pool.size(), 180u);
}

TEST(SplitClientServer, RejectsBadFraction) {
  const Dataset pool = labeled_pool(10, 2);
  Rng rng(9);
  EXPECT_THROW(split_client_server(pool, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(split_client_server(pool, -0.01, rng), std::invalid_argument);
}

TEST(SplitClientServer, ZeroFractionGivesEmptyHoldout) {
  const Dataset pool = labeled_pool(10, 2);
  Rng rng(10);
  const auto split = split_client_server(pool, 0.0, rng);
  EXPECT_TRUE(split.server_holdout.empty());
  EXPECT_EQ(split.client_pool.size(), 20u);
}

}  // namespace
}  // namespace baffle

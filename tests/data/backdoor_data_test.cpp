#include "data/backdoor_data.hpp"

#include <gtest/gtest.h>

namespace baffle {
namespace {

Dataset pool_of_class(int y, std::size_t n, std::size_t classes = 10) {
  Dataset d(2, classes);
  for (std::size_t i = 0; i < n; ++i) {
    d.add({{static_cast<float>(i), 0.0f}, y});
  }
  return d;
}

TEST(RelabelToTarget, FlipsEveryLabel) {
  const Dataset pool = pool_of_class(1, 20);
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 7};
  const Dataset flipped = relabel_to_target(pool, task);
  ASSERT_EQ(flipped.size(), 20u);
  for (const auto& ex : flipped.examples()) EXPECT_EQ(ex.y, 7);
}

TEST(RelabelToTarget, PreservesFeatures) {
  const Dataset pool = pool_of_class(1, 5);
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 2};
  const Dataset flipped = relabel_to_target(pool, task);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(flipped[i].x, pool[i].x);
  }
}

TEST(PoisonedTrainingSet, FractionApproximatelyRespected) {
  const Dataset clean = pool_of_class(0, 70);
  const Dataset pool = pool_of_class(1, 30);
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 2};
  Rng rng(1);
  const Dataset blended =
      make_poisoned_training_set(clean, pool, task, 0.3, rng);
  std::size_t poisoned = 0;
  for (const auto& ex : blended.examples()) {
    if (ex.y == 2) ++poisoned;
  }
  const double frac =
      static_cast<double>(poisoned) / static_cast<double>(blended.size());
  EXPECT_NEAR(frac, 0.3, 0.03);
}

TEST(PoisonedTrainingSet, KeepsAllCleanSamples) {
  const Dataset clean = pool_of_class(0, 40);
  const Dataset pool = pool_of_class(1, 10);
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 3};
  Rng rng(2);
  const Dataset blended =
      make_poisoned_training_set(clean, pool, task, 0.2, rng);
  std::size_t clean_count = 0;
  for (const auto& ex : blended.examples()) {
    if (ex.y == 0) ++clean_count;
  }
  EXPECT_EQ(clean_count, 40u);
}

TEST(PoisonedTrainingSet, ResamplesSmallPoolWithReplacement) {
  const Dataset clean = pool_of_class(0, 100);
  const Dataset pool = pool_of_class(1, 2);  // tiny pool
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 3};
  Rng rng(3);
  const Dataset blended =
      make_poisoned_training_set(clean, pool, task, 0.3, rng);
  std::size_t poisoned = 0;
  for (const auto& ex : blended.examples()) {
    if (ex.y == 3) ++poisoned;
  }
  EXPECT_GT(poisoned, 30u);  // far more than the pool size
}

TEST(PoisonedTrainingSet, RejectsBadInputs) {
  const Dataset clean = pool_of_class(0, 10);
  const Dataset pool = pool_of_class(1, 10);
  const Dataset empty(2, 10);
  const BackdoorTask task{BackdoorKind::kSemantic, 1, 2};
  Rng rng(4);
  EXPECT_THROW(make_poisoned_training_set(clean, pool, task, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_poisoned_training_set(clean, pool, task, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_poisoned_training_set(clean, empty, task, 0.3, rng),
               std::invalid_argument);
}

TEST(PickLabelFlipTask, SourceIsModalClass) {
  Dataset d(1, 5);
  for (int i = 0; i < 3; ++i) d.add({{0.0f}, 1});
  for (int i = 0; i < 10; ++i) d.add({{0.0f}, 3});
  for (int i = 0; i < 2; ++i) d.add({{0.0f}, 4});
  Rng rng(5);
  const BackdoorTask task = pick_label_flip_task(d, rng);
  EXPECT_EQ(task.source_class, 3);
  EXPECT_NE(task.target_class, 3);
  EXPECT_GE(task.target_class, 0);
  EXPECT_LT(task.target_class, 5);
  EXPECT_EQ(task.kind, BackdoorKind::kLabelFlip);
}

TEST(PickLabelFlipTask, TargetNeverEqualsSourceOverManyDraws) {
  Dataset d(1, 4);
  for (int i = 0; i < 5; ++i) d.add({{0.0f}, 2});
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const BackdoorTask task = pick_label_flip_task(d, rng);
    EXPECT_NE(task.target_class, task.source_class);
  }
}

TEST(PickLabelFlipTask, EmptyDataThrows) {
  const Dataset d(1, 3);
  Rng rng(6);
  EXPECT_THROW(pick_label_flip_task(d, rng), std::invalid_argument);
}

}  // namespace
}  // namespace baffle

#include "data/synth.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/train.hpp"

namespace baffle {
namespace {

TEST(Synth, VisionPresetShapes) {
  Rng rng(1);
  const SynthTask task = make_synth_task(synth_vision10_config(), rng);
  EXPECT_EQ(task.train.num_classes(), 10u);
  EXPECT_EQ(task.train.size(), 10u * task.config.train_per_class);
  EXPECT_EQ(task.test.size(), 10u * task.config.test_per_class);
  EXPECT_EQ(task.backdoor_train.size(), task.config.backdoor_train_size);
  EXPECT_EQ(task.backdoor_test.size(), task.config.backdoor_test_size);
  EXPECT_EQ(task.train.dim(), task.config.dim);
}

TEST(Synth, FemnistPresetShapes) {
  Rng rng(2);
  const SynthTask task = make_synth_task(synth_femnist62_config(), rng);
  EXPECT_EQ(task.train.num_classes(), 62u);
  EXPECT_EQ(task.train.size(), 62u * task.config.train_per_class);
}

TEST(Synth, BackdoorInstancesCarryTrueSourceLabel) {
  Rng rng(3);
  const SynthTask task = make_synth_task(synth_vision10_config(), rng);
  for (const auto& ex : task.backdoor_train.examples()) {
    EXPECT_EQ(ex.y, task.config.backdoor_source);
  }
  for (const auto& ex : task.backdoor_test.examples()) {
    EXPECT_EQ(ex.y, task.config.backdoor_source);
  }
}

TEST(Synth, TrainHasAllClasses) {
  Rng rng(4);
  const SynthTask task = make_synth_task(synth_vision10_config(), rng);
  for (std::size_t count : task.train.class_counts()) {
    EXPECT_GT(count, 0u);
  }
}

TEST(Synth, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const SynthTask ta = make_synth_task(synth_vision10_config(), a);
  const SynthTask tb = make_synth_task(synth_vision10_config(), b);
  ASSERT_EQ(ta.train.size(), tb.train.size());
  for (std::size_t i = 0; i < ta.train.size(); ++i) {
    EXPECT_EQ(ta.train[i].x, tb.train[i].x);
    EXPECT_EQ(ta.train[i].y, tb.train[i].y);
  }
}

TEST(Synth, TaskIsLearnable) {
  Rng rng(6);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 200;
  const SynthTask task = make_synth_task(cfg, rng);
  Mlp model(MlpConfig{{cfg.dim, 64, cfg.num_classes}, Activation::kRelu});
  model.init(rng);
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 64;
  tc.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), tc, rng);
  EXPECT_GT(evaluate_accuracy(model, task.test.features(),
                              task.test.labels()),
            0.8);
}

TEST(Synth, SemanticBackdoorIsDistinctSubpopulation) {
  // A model trained only on clean data should mostly classify backdoor
  // instances as their true source class (they are source-class samples
  // with an extra feature) — that is what makes the backdoor *semantic*.
  Rng rng(7);
  const SynthTask task = make_synth_task(synth_vision10_config(), rng);
  Mlp model(
      MlpConfig{{task.config.dim, 64, task.config.num_classes},
                Activation::kRelu});
  model.init(rng);
  TrainConfig tc;
  tc.epochs = 25;
  tc.batch_size = 64;
  tc.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), tc, rng);
  const double acc_on_backdoor = evaluate_accuracy(
      model, task.backdoor_test.features(), task.backdoor_test.labels());
  EXPECT_GT(acc_on_backdoor, 0.4);
}

TEST(Synth, LabelFlipBackdoorSamplesComeFromSourceClassDistribution) {
  Rng rng(8);
  SynthTaskConfig cfg = synth_femnist62_config();
  cfg.backdoor_source = 5;
  cfg.backdoor_target = 11;
  const SynthTask task = make_synth_task(cfg, rng);
  for (const auto& ex : task.backdoor_train.examples()) {
    EXPECT_EQ(ex.y, 5);
  }
}

TEST(Synth, TriggerPatternShape) {
  const SynthTaskConfig cfg = synth_vision10_config();
  const auto pattern = trigger_pattern(cfg);
  ASSERT_EQ(pattern.size(), cfg.dim);
  for (std::size_t i = 0; i < cfg.dim; ++i) {
    if (i < kTriggerPatchDims) {
      EXPECT_EQ(pattern[i], static_cast<float>(cfg.trigger_strength));
    } else {
      EXPECT_EQ(pattern[i], 0.0f);
    }
  }
}

TEST(Synth, ApplyTriggerAddsPattern) {
  const SynthTaskConfig cfg = synth_vision10_config();
  const auto pattern = trigger_pattern(cfg);
  Example ex;
  ex.x.assign(cfg.dim, 1.0f);
  apply_trigger(ex, pattern);
  EXPECT_EQ(ex.x[0], 1.0f + static_cast<float>(cfg.trigger_strength));
  EXPECT_EQ(ex.x[cfg.dim - 1], 1.0f);
}

TEST(Synth, ApplyTriggerRejectsDimMismatch) {
  Example ex;
  ex.x.assign(4, 0.0f);
  EXPECT_THROW(apply_trigger(ex, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Synth, TriggerBackdoorSetIsStampedMultiClass) {
  Rng rng(21);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.backdoor_kind = BackdoorKind::kTrigger;
  cfg.backdoor_test_size = 200;
  const SynthTask task = make_synth_task(cfg, rng);
  // True classes of trigger instances span more than one class.
  std::set<int> classes;
  for (const auto& ex : task.backdoor_test.examples()) classes.insert(ex.y);
  EXPECT_GT(classes.size(), 3u);
}

TEST(Synth, RejectsBadBackdoorClasses) {
  Rng rng(9);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.backdoor_source = cfg.backdoor_target;
  EXPECT_THROW(make_synth_task(cfg, rng), std::invalid_argument);
  cfg = synth_vision10_config();
  cfg.backdoor_target = 99;
  EXPECT_THROW(make_synth_task(cfg, rng), std::invalid_argument);
}

TEST(Synth, LabelNoiseProducesMislabeledExamples) {
  Rng rng(10);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.label_noise = 0.5;
  cfg.train_per_class = 100;
  const SynthTask task = make_synth_task(cfg, rng);
  // With 50% label noise the per-class counts must deviate widely from a
  // clean generator; just check the test set (no noise) differs from
  // train in label-conditional structure via a weak proxy: train cannot
  // be 100% learnable.
  Mlp model(MlpConfig{{cfg.dim, 32, cfg.num_classes}, Activation::kRelu});
  model.init(rng);
  TrainConfig tc;
  tc.epochs = 30;
  train_sgd(model, task.train.features(), task.train.labels(), tc, rng);
  EXPECT_LT(evaluate_accuracy(model, task.train.features(),
                              task.train.labels()),
            0.95);
}

}  // namespace
}  // namespace baffle

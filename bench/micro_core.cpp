// Micro-benchmarks (google-benchmark) for the computational kernels the
// defense leans on: LOF scoring, per-class error-variation extraction,
// secure-aggregation masking, GEMM, local training, and a full VALIDATE
// call — the per-round client-side cost of BaFFLe.
//
// Before the google-benchmark suite runs, main() times every dispatched
// kernel on both arms (scalar vs SIMD) and writes BENCH_simd.json with
// GFLOP/s, speedup and a parity check per kernel. Run with
// --benchmark_filter='^$' to emit just the JSON.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/defense.hpp"
#include "core/validate.hpp"
#include "data/synth.hpp"
#include "fl/secure_agg.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"

namespace baffle {
namespace {

void BM_GemmForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, 64), b(64, 10), out(n, 10);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_ab(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GemmForward)->Arg(32)->Arg(256);

/// Square GEMM throughput (the acceptance target is 256x256x256). The
/// GFLOP/s counter counts 2*n^3 flops per multiply.
void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_ab(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_GemmAtbSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_atb(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmAtbSquare)->Arg(256)->UseRealTime();

void BM_GemmAbtSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_abt(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmAbtSquare)->Arg(256)->UseRealTime();

void BM_LofScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<VariationPoint> reference;
  for (std::size_t i = 0; i < n; ++i) {
    VariationPoint p(20);
    for (auto& x : p) x = rng.normal(0.0, 0.01);
    reference.push_back(std::move(p));
  }
  const VariationPoint query(20, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lof_score(query, reference, (n + 1) / 2));
  }
}
BENCHMARK(BM_LofScore)->Arg(10)->Arg(20)->Arg(30);

void BM_ErrorVariation(benchmark::State& state) {
  ConfusionMatrix a(62), b(62);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const int t = static_cast<int>(rng.uniform_int(0, 61));
    a.record(t, static_cast<int>(rng.uniform_int(0, 61)));
    b.record(t, t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(error_variation(a, b));
  }
}
BENCHMARK(BM_ErrorVariation);

void BM_SecureAggMask(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  SecureAggConfig cfg;
  cfg.round_key = 7;
  const SecureAggregation sa(cfg);
  ParamVec update(dim, 0.5f);
  std::vector<std::size_t> participants(10);
  for (std::size_t i = 0; i < 10; ++i) participants[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.mask_update(update, 3, participants));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(dim) * 4);
}
BENCHMARK(BM_SecureAggMask)->Arg(2762)->Arg(10718);

void BM_LocalTraining(benchmark::State& state) {
  Rng rng(4);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 10;
  const SynthTask task = make_synth_task(cfg, rng);
  Mlp model(MlpConfig{{cfg.dim, 64, cfg.num_classes}, Activation::kRelu});
  model.init(rng);
  const Matrix& x = task.train.features();
  const auto& labels = task.train.labels();
  TrainConfig tc;  // 2 epochs: one client's per-round work
  for (auto _ : state) {
    Mlp local = model;
    Rng train_rng = rng.fork();
    train_sgd(local, x, labels, tc, train_rng);
    benchmark::DoNotOptimize(local.parameters());
  }
}
BENCHMARK(BM_LocalTraining);

void BM_ValidateCall(benchmark::State& state) {
  // Full Algorithm 2 on a 21-model history with a warm cache — the
  // steady-state per-round cost of one validating client.
  Rng rng(5);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 60;
  const SynthTask task = make_synth_task(cfg, rng);
  const MlpConfig arch{{cfg.dim, 32, cfg.num_classes}, Activation::kRelu};
  Mlp model(arch);
  model.init(rng);
  TrainConfig warm;
  warm.epochs = 8;
  warm.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), warm, rng);
  std::vector<GlobalModel> history;
  TrainConfig slice;
  slice.epochs = 1;
  slice.sgd.learning_rate = 0.01f;
  for (std::uint64_t v = 0; v <= 20; ++v) {
    history.push_back({v, model.parameters()});
    train_sgd(model, task.train.features(), task.train.labels(), slice, rng);
  }
  ValidatorConfig vcfg;
  vcfg.lookback = 20;
  Validator validator(task.test.sample(100, rng), arch, vcfg);
  const ParamVec candidate = model.parameters();
  validator.validate(candidate, history);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.validate(candidate, history));
  }
}
BENCHMARK(BM_ValidateCall);

void BM_ValidationRound(benchmark::State& state) {
  // End-to-end per-round validation cost at l = 10, n = 10: the server
  // runs the feedback loop over ten client validators plus its own
  // holdout. History caches are warm (steady state), so each iteration
  // pays exactly what one round pays — n+1 candidate evaluations plus
  // the LOF scoring — on the global thread pool.
  Rng rng(9);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 60;
  const SynthTask task = make_synth_task(cfg, rng);
  const MlpConfig arch{{cfg.dim, 32, cfg.num_classes}, Activation::kRelu};
  std::vector<FlClient> clients;
  for (std::size_t i = 0; i < 10; ++i) {
    clients.emplace_back(i, task.train.sample(200, rng));
  }
  Mlp model(arch);
  model.init(rng);
  TrainConfig warm;
  warm.epochs = 8;
  warm.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), warm, rng);

  FeedbackConfig fcfg;
  fcfg.mode = DefenseMode::kClientsAndServer;
  fcfg.quorum = 5;
  fcfg.validator.lookback = 10;
  BaffleDefense defense(arch, fcfg, task.test.sample(150, rng));
  TrainConfig slice;
  slice.epochs = 1;
  slice.sgd.learning_rate = 0.01f;
  for (std::uint64_t v = 0; v <= 10; ++v) {
    defense.on_commit(v, model.parameters());
    train_sgd(model, task.train.features(), task.train.labels(), slice, rng);
  }
  const ParamVec candidate = model.parameters();
  const std::vector<std::size_t> ids{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  defense.evaluate(candidate, ids, clients, {}, VoteStrategy::kHonest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        defense.evaluate(candidate, ids, clients, {}, VoteStrategy::kHonest));
  }
}
BENCHMARK(BM_ValidationRound)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------
// BENCH_simd.json: scalar-vs-dispatched throughput + parity per kernel.

struct SimdBenchEntry {
  std::string kernel;
  std::string shape;
  double gflops_scalar = 0.0;
  double gflops_dispatched = 0.0;
  double speedup = 0.0;
  bool parity_ok = false;
};

/// Best-effort GFLOP/s: grow the iteration count until a timed block
/// spans >= 50 ms, then convert. One warmup call first (packs panels,
/// faults pages).
template <typename Fn>
double measure_gflops(double flops_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  for (std::size_t iters = 1;; iters *= 4) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double sec =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (sec >= 0.05 || iters >= (1u << 24)) {
      return flops_per_call * static_cast<double>(iters) / sec / 1e9;
    }
  }
}

double max_rel_err(std::span<const float> ref, std::span<const float> got) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double r = ref[i];
    worst = std::max(worst, std::abs(got[i] - r) / (std::abs(r) + 1.0));
  }
  return worst;
}

template <typename GemmFn>
SimdBenchEntry bench_gemm_kernel(const char* name, GemmFn gemm,
                                 std::size_t n) {
  Rng rng(42);
  Matrix a(n, n), b(n, n), out(n, n), ref(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  const double flops = 2.0 * static_cast<double>(n * n * n);

  SimdBenchEntry e;
  e.kernel = name;
  e.shape = std::to_string(n) + "x" + std::to_string(n) + "x" +
            std::to_string(n);
  simd::force_isa(simd::Isa::kScalar);
  gemm(a, b, ref);
  e.gflops_scalar = measure_gflops(flops, [&] {
    gemm(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  });
  simd::reset_isa();
  gemm(a, b, out);
  e.parity_ok = max_rel_err(ref.flat(), out.flat()) < 1e-3;
  e.gflops_dispatched = measure_gflops(flops, [&] {
    gemm(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  });
  e.speedup = e.gflops_scalar > 0.0 ? e.gflops_dispatched / e.gflops_scalar
                                    : 0.0;
  return e;
}

/// Reduction returning a float (dot/distance/cosine family).
template <typename Fn>
SimdBenchEntry bench_reduction(const char* name, double flops_per_elem,
                               std::size_t n, Fn fn) {
  SimdBenchEntry e;
  e.kernel = name;
  e.shape = std::to_string(n);
  const double flops = flops_per_elem * static_cast<double>(n);
  simd::force_isa(simd::Isa::kScalar);
  const float ref = fn();
  e.gflops_scalar =
      measure_gflops(flops, [&] { benchmark::DoNotOptimize(fn()); });
  simd::reset_isa();
  const float got = fn();
  e.parity_ok =
      std::abs(got - ref) <= 1e-4f * (std::abs(ref) + 1.0f);
  e.gflops_dispatched =
      measure_gflops(flops, [&] { benchmark::DoNotOptimize(fn()); });
  e.speedup = e.gflops_scalar > 0.0 ? e.gflops_dispatched / e.gflops_scalar
                                    : 0.0;
  return e;
}

/// In-place primitive: parity from one application on a fresh copy per
/// arm, throughput measured on a scratch buffer.
template <typename Fn>
SimdBenchEntry bench_inplace(const char* name, double flops_per_elem,
                             const std::vector<float>& start, Fn fn) {
  SimdBenchEntry e;
  e.kernel = name;
  e.shape = std::to_string(start.size());
  const double flops = flops_per_elem * static_cast<double>(start.size());
  std::vector<float> buf = start;
  simd::force_isa(simd::Isa::kScalar);
  fn(buf);
  const std::vector<float> ref = buf;
  buf = start;
  e.gflops_scalar = measure_gflops(flops, [&] {
    fn(buf);
    benchmark::DoNotOptimize(buf.data());
  });
  simd::reset_isa();
  buf = start;
  fn(buf);
  e.parity_ok = max_rel_err(ref, buf) < 1e-4;
  e.gflops_dispatched = measure_gflops(flops, [&] {
    fn(buf);
    benchmark::DoNotOptimize(buf.data());
  });
  e.speedup = e.gflops_scalar > 0.0 ? e.gflops_dispatched / e.gflops_scalar
                                    : 0.0;
  return e;
}

int write_simd_bench_json() {
  constexpr std::size_t kGemmDim = 256;
  constexpr std::size_t kVecLen = 1 << 16;
  Rng rng(43);
  std::vector<float> va(kVecLen), vb(kVecLen);
  for (auto& x : va) x = static_cast<float>(rng.normal());
  for (auto& x : vb) x = static_cast<float>(rng.normal());

  std::vector<SimdBenchEntry> entries;
  entries.push_back(bench_gemm_kernel(
      "gemm_ab",
      [](const Matrix& a, const Matrix& b, Matrix& o) { gemm_ab(a, b, o); },
      kGemmDim));
  entries.push_back(bench_gemm_kernel(
      "gemm_atb",
      [](const Matrix& a, const Matrix& b, Matrix& o) { gemm_atb(a, b, o); },
      kGemmDim));
  entries.push_back(bench_gemm_kernel(
      "gemm_abt",
      [](const Matrix& a, const Matrix& b, Matrix& o) { gemm_abt(a, b, o); },
      kGemmDim));
  entries.push_back(
      bench_reduction("dot", 2.0, kVecLen, [&] { return dot(va, vb); }));
  entries.push_back(bench_reduction("squared_l2_distance", 3.0, kVecLen, [&] {
    return squared_l2_distance(va, vb);
  }));
  entries.push_back(bench_reduction("cosine_similarity", 6.0, kVecLen, [&] {
    return cosine_similarity(va, vb);
  }));
  entries.push_back(bench_inplace("axpy", 2.0, vb, [&](std::vector<float>& y) {
    axpy(0.25f, va, y);
  }));
  entries.push_back(
      bench_inplace("scale_add", 3.0, vb, [&](std::vector<float>& y) {
        scale_add(y, 0.9f, va, 1.0f);
      }));
  entries.push_back(
      bench_inplace("relu_forward", 1.0, va, [&](std::vector<float>& x) {
        relu_forward(x);
      }));
  simd::reset_isa();

  bool all_parity = true;
  for (const auto& e : entries) all_parity = all_parity && e.parity_ok;

  FILE* f = std::fopen("BENCH_simd.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_core: cannot write BENCH_simd.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"BENCH_simd\",\n"
               "  \"dispatched_isa\": \"%s\",\n"
               "  \"vector_arm_available\": %s,\n"
               "  \"entries\": [\n",
               simd::isa_name(simd::active_isa()),
               simd::isa_available(simd::Isa::kVector) ? "true" : "false");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"shape\": \"%s\", "
                 "\"gflops_scalar\": %.3f, \"gflops_dispatched\": %.3f, "
                 "\"speedup\": %.3f, \"parity_ok\": %s}%s\n",
                 e.kernel.c_str(), e.shape.c_str(), e.gflops_scalar,
                 e.gflops_dispatched, e.speedup,
                 e.parity_ok ? "true" : "false",
                 i + 1 < entries.size() ? "," : "");
    std::printf("%-20s %-14s scalar %8.3f GFLOP/s  dispatched %8.3f "
                "GFLOP/s  speedup %5.2fx  parity %s\n",
                e.kernel.c_str(), e.shape.c_str(), e.gflops_scalar,
                e.gflops_dispatched, e.speedup, e.parity_ok ? "ok" : "FAIL");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"all_parity_ok\": %s\n"
               "}\n",
               all_parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_simd.json\n");
  return all_parity ? 0 : 1;
}

}  // namespace
}  // namespace baffle

int main(int argc, char** argv) {
  const int simd_rc = baffle::write_simd_bench_json();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return simd_rc;
}

// Micro-benchmarks (google-benchmark) for the computational kernels the
// defense leans on: LOF scoring, per-class error-variation extraction,
// secure-aggregation masking, GEMM, local training, and a full VALIDATE
// call — the per-round client-side cost of BaFFLe.

#include <benchmark/benchmark.h>

#include "core/defense.hpp"
#include "core/validate.hpp"
#include "data/synth.hpp"
#include "fl/secure_agg.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"

namespace baffle {
namespace {

void BM_GemmForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, 64), b(64, 10), out(n, 10);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_ab(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GemmForward)->Arg(32)->Arg(256);

/// Square GEMM throughput (the acceptance target is 256x256x256). The
/// GFLOP/s counter counts 2*n^3 flops per multiply.
void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_ab(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_GemmAtbSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_atb(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmAtbSquare)->Arg(256)->UseRealTime();

void BM_GemmAbtSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Matrix a(n, n), b(n, n), out(n, n);
  for (float& x : a.flat()) x = static_cast<float>(rng.normal());
  for (float& x : b.flat()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm_abt(a, b, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n * n * n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmAbtSquare)->Arg(256)->UseRealTime();

void BM_LofScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<VariationPoint> reference;
  for (std::size_t i = 0; i < n; ++i) {
    VariationPoint p(20);
    for (auto& x : p) x = rng.normal(0.0, 0.01);
    reference.push_back(std::move(p));
  }
  const VariationPoint query(20, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lof_score(query, reference, (n + 1) / 2));
  }
}
BENCHMARK(BM_LofScore)->Arg(10)->Arg(20)->Arg(30);

void BM_ErrorVariation(benchmark::State& state) {
  ConfusionMatrix a(62), b(62);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const int t = static_cast<int>(rng.uniform_int(0, 61));
    a.record(t, static_cast<int>(rng.uniform_int(0, 61)));
    b.record(t, t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(error_variation(a, b));
  }
}
BENCHMARK(BM_ErrorVariation);

void BM_SecureAggMask(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  SecureAggConfig cfg;
  cfg.round_key = 7;
  const SecureAggregation sa(cfg);
  ParamVec update(dim, 0.5f);
  std::vector<std::size_t> participants(10);
  for (std::size_t i = 0; i < 10; ++i) participants[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.mask_update(update, 3, participants));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(dim) * 4);
}
BENCHMARK(BM_SecureAggMask)->Arg(2762)->Arg(10718);

void BM_LocalTraining(benchmark::State& state) {
  Rng rng(4);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 10;
  const SynthTask task = make_synth_task(cfg, rng);
  Mlp model(MlpConfig{{cfg.dim, 64, cfg.num_classes}, Activation::kRelu});
  model.init(rng);
  const Matrix& x = task.train.features();
  const auto& labels = task.train.labels();
  TrainConfig tc;  // 2 epochs: one client's per-round work
  for (auto _ : state) {
    Mlp local = model;
    Rng train_rng = rng.fork();
    train_sgd(local, x, labels, tc, train_rng);
    benchmark::DoNotOptimize(local.parameters());
  }
}
BENCHMARK(BM_LocalTraining);

void BM_ValidateCall(benchmark::State& state) {
  // Full Algorithm 2 on a 21-model history with a warm cache — the
  // steady-state per-round cost of one validating client.
  Rng rng(5);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 60;
  const SynthTask task = make_synth_task(cfg, rng);
  const MlpConfig arch{{cfg.dim, 32, cfg.num_classes}, Activation::kRelu};
  Mlp model(arch);
  model.init(rng);
  TrainConfig warm;
  warm.epochs = 8;
  warm.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), warm, rng);
  std::vector<GlobalModel> history;
  TrainConfig slice;
  slice.epochs = 1;
  slice.sgd.learning_rate = 0.01f;
  for (std::uint64_t v = 0; v <= 20; ++v) {
    history.push_back({v, model.parameters()});
    train_sgd(model, task.train.features(), task.train.labels(), slice, rng);
  }
  ValidatorConfig vcfg;
  vcfg.lookback = 20;
  Validator validator(task.test.sample(100, rng), arch, vcfg);
  const ParamVec candidate = model.parameters();
  validator.validate(candidate, history);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.validate(candidate, history));
  }
}
BENCHMARK(BM_ValidateCall);

void BM_ValidationRound(benchmark::State& state) {
  // End-to-end per-round validation cost at l = 10, n = 10: the server
  // runs the feedback loop over ten client validators plus its own
  // holdout. History caches are warm (steady state), so each iteration
  // pays exactly what one round pays — n+1 candidate evaluations plus
  // the LOF scoring — on the global thread pool.
  Rng rng(9);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 60;
  const SynthTask task = make_synth_task(cfg, rng);
  const MlpConfig arch{{cfg.dim, 32, cfg.num_classes}, Activation::kRelu};
  std::vector<FlClient> clients;
  for (std::size_t i = 0; i < 10; ++i) {
    clients.emplace_back(i, task.train.sample(200, rng));
  }
  Mlp model(arch);
  model.init(rng);
  TrainConfig warm;
  warm.epochs = 8;
  warm.sgd.learning_rate = 0.05f;
  train_sgd(model, task.train.features(), task.train.labels(), warm, rng);

  FeedbackConfig fcfg;
  fcfg.mode = DefenseMode::kClientsAndServer;
  fcfg.quorum = 5;
  fcfg.validator.lookback = 10;
  BaffleDefense defense(arch, fcfg, task.test.sample(150, rng));
  TrainConfig slice;
  slice.epochs = 1;
  slice.sgd.learning_rate = 0.01f;
  for (std::uint64_t v = 0; v <= 10; ++v) {
    defense.on_commit(v, model.parameters());
    train_sgd(model, task.train.features(), task.train.labels(), slice, rng);
  }
  const ParamVec candidate = model.parameters();
  const std::vector<std::size_t> ids{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  defense.evaluate(candidate, ids, clients, {}, VoteStrategy::kHonest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        defense.evaluate(candidate, ids, clients, {}, VoteStrategy::kHonest));
  }
}
BENCHMARK(BM_ValidationRound)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace baffle

BENCHMARK_MAIN();

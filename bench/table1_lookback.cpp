// Table I: FP/FN rates of BAFFLE-C / BAFFLE-S / BAFFLE for look-back
// window ℓ ∈ {10, 20, 30} across the paper's client/server data splits,
// on both datasets. Mean ± std over BAFFLE_BENCH_REPS seeded runs
// (paper: 5).

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

int main() {
  print_banner("Table I — detection rates vs look-back window ℓ",
               "BaFFLe (ICDCS'21), Table I");

  const std::size_t reps = bench_reps();
  const std::vector<std::size_t> lookbacks =
      bench_fast() ? std::vector<std::size_t>{10, 20}
                   : std::vector<std::size_t>{10, 20, 30};
  const std::vector<std::pair<DefenseMode, const char*>> modes{
      {DefenseMode::kClientsOnly, "C"},
      {DefenseMode::kServerOnly, "S"},
      {DefenseMode::kClientsAndServer, "C+S"}};

  CsvWriter csv(bench::csv_path("table1"),
                {"dataset", "split", "lookback", "mode", "fp_mean", "fp_std",
                 "fn_mean", "fn_std"});

  for (TaskKind task : {TaskKind::kVision10, TaskKind::kFemnist62}) {
    std::printf("\n=== dataset: %s ===\n", task_kind_name(task));
    TextTable table({"split", "l", "mode", "FP rate", "FN rate"});
    for (double sfrac : bench::server_fractions(task)) {
      for (std::size_t ell : lookbacks) {
        for (const auto& [mode, mode_name] : modes) {
          const ExperimentConfig cfg =
              bench::stable_config(task, sfrac, mode, ell, /*quorum=*/5);
          const RepeatedResult rep = run_repeated(cfg, reps, 1000);
          table.row({bench::split_name(task, sfrac), std::to_string(ell),
                     mode_name, format_mean_std(rep.fp),
                     format_mean_std(rep.fn)});
          csv.row({task_kind_name(task), bench::split_name(task, sfrac),
                   std::to_string(ell), mode_name,
                   CsvWriter::num(rep.fp.mean), CsvWriter::num(rep.fp.std),
                   CsvWriter::num(rep.fn.mean), CsvWriter::num(rep.fn.std)});
        }
      }
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf(
      "\npaper shape: feedback-loop configurations (C, C+S) keep FP in\n"
      "0-0.05 and FN near 0 for l>=20; server-only shows markedly higher\n"
      "FP (~0.1-0.2). CSV: %s\n",
      bench::csv_path("table1").c_str());
  return 0;
}

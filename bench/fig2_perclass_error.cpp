// Figure 2: prediction behavior of clean vs poisoned models — per-class
// error rates on a held-out set. A genuine update barely moves any
// class; a model-replacement update visibly shifts the backdoor source
// and target classes, which is the signal Algorithm 2 keys on.

#include <cstdio>

#include "attack/model_replacement.hpp"
#include "bench_common.hpp"
#include "metrics/confusion.hpp"
#include "nn/train.hpp"

using namespace baffle;

int main() {
  print_banner("Figure 2 — per-class error rate, clean vs poisoned",
               "BaFFLe (ICDCS'21), Fig. 2");

  Rng rng(2026);
  SynthTaskConfig task_cfg = synth_vision10_config();
  const SynthTask task = make_synth_task(task_cfg, rng);
  const MlpConfig arch{{task_cfg.dim, 64, task_cfg.num_classes},
                       Activation::kRelu};

  // Stable global model.
  Mlp global(arch);
  global.init(rng);
  TrainConfig pre;
  pre.epochs = 30;
  pre.batch_size = 64;
  pre.sgd.learning_rate = 0.05f;
  train_sgd(global, task.train.features(), task.train.labels(), pre, rng);

  // A genuine next model: one more light training pass.
  Mlp clean_next = global;
  TrainConfig slice;
  slice.epochs = 1;
  slice.batch_size = 64;
  slice.sgd.learning_rate = 0.01f;
  train_sgd(clean_next, task.train.features(), task.train.labels(), slice,
            rng);

  // A poisoned next model: the attacker's replacement local model.
  ModelReplacementConfig attack;
  attack.task = BackdoorTask{BackdoorKind::kSemantic,
                             task_cfg.backdoor_source,
                             task_cfg.backdoor_target};
  attack.poison_fraction = 0.3;
  attack.boost = 1.0;  // applied directly, no aggregation to defeat
  attack.train.epochs = 8;
  attack.train.sgd.learning_rate = 0.05f;
  const ParamVec update = craft_replacement_update(
      global, task.train.sample(400, rng), task.backdoor_train, attack, rng);
  Mlp poisoned = global;
  poisoned.add_to_parameters(update);

  const auto cm_prev = evaluate_confusion(global, task.test);
  const auto cm_clean = evaluate_confusion(clean_next, task.test);
  const auto cm_poisoned = evaluate_confusion(poisoned, task.test);

  const auto prev = cm_prev.per_class_error_rates();
  const auto clean = cm_clean.per_class_error_rates();
  const auto bad = cm_poisoned.per_class_error_rates();

  std::printf("backdoor: source class %d ('cars w/ stripes') -> target %d"
              " ('birds')\n\n",
              task_cfg.backdoor_source, task_cfg.backdoor_target);
  TextTable table({"class", "err prev G", "err clean G'", "err poisoned G'",
                   "|clean-prev|", "|poisoned-prev|"});
  CsvWriter csv(bench::csv_path("fig2"),
                {"class", "err_prev", "err_clean", "err_poisoned"});
  for (std::size_t y = 0; y < task_cfg.num_classes; ++y) {
    table.row({std::to_string(y), format_rate(prev[y]),
               format_rate(clean[y]), format_rate(bad[y]),
               format_rate(std::abs(clean[y] - prev[y])),
               format_rate(std::abs(bad[y] - prev[y]))});
    csv.row({std::to_string(y), CsvWriter::num(prev[y]),
             CsvWriter::num(clean[y]), CsvWriter::num(bad[y])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("overall accuracy: prev %.3f | clean %.3f | poisoned %.3f\n",
              cm_prev.accuracy(), cm_clean.accuracy(),
              cm_poisoned.accuracy());
  std::printf("backdoor accuracy of poisoned model: %.3f\n",
              backdoor_accuracy(poisoned, task.backdoor_test,
                                task_cfg.backdoor_target));
  std::printf("\npaper shape: clean updates leave per-class errors nearly\n"
              "unchanged; the poisoned model shifts the source/target\n"
              "classes by an order of magnitude more. CSV: %s\n",
              bench::csv_path("fig2").c_str());
  return 0;
}

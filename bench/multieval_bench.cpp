// BM_MultiModelEval — cold-window evaluation cost: all ℓ+1 history
// models of a VALIDATE round scored on the validator's dataset, swept
// over the paper's look-back sizes ℓ (DESIGN.md §14, §17).
//
// Arms:
//   sequential   per-model Mlp::predict_into (the pre-engine path);
//   fp32         MultiModelEval::predict_many, serial tile loop — one
//                shared packed input, fused layer-1 GEMMs per model
//                chunk (bit-identical predictions to sequential, by
//                construction);
//   bf16/int8    the guarded reduced-precision arms, serial (evaluation
//                only; low-margin argmaxes re-run in fp32);
//   *_par        the same three engine arms with the tile sweep fanned
//                out across the global thread pool.
//
// Parity is the gate: fp32 predictions must equal sequential ones
// exactly, the reduced arms' confusion matrices must match fp32 —
// identical CMs mean identical error-variation points, hence identical
// votes/φ/τ — and every parallel arm's predictions must be BYTE-EQUAL
// to its serial arm's (thread-count invariance, DESIGN.md §17). Prints
// the sweep table and writes BENCH_multieval.json; exit is nonzero
// whenever parity or bit-identity fails, and — on full (non-smoke)
// runs at ℓ ≥ 10, following the sweep_bench precedent — when the int8
// arm misses 2x over sequential or the parallel fp32 arm misses 2x over
// serial fp32. The speed gates are enforced only with ≥ 4 hardware
// cores AND a ≥ 4-thread pool: threading cannot pay on a starved
// container, and the reduced-precision margins also thin when every arm
// shares one core, so a 1-core CI box must still report
// bit_identical=true without a spurious gate failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "core/history.hpp"
#include "data/synth.hpp"
#include "metrics/confusion.hpp"
#include "nn/multi_eval.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace baffle;

constexpr std::size_t kLookbacks[] = {2, 10, 20, 40};
constexpr std::size_t kMaxLookback = 40;

struct BenchSetup {
  Dataset holdout;
  MlpConfig arch;
  std::vector<ParamVec> chain;  // chain[v] = parameters of version v
  std::size_t warmup = 1;
  std::size_t timed = 7;
};

BenchSetup make_setup(bool smoke) {
  Rng rng(404);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 1;  // only the test split is used
  cfg.test_per_class = smoke ? 50 : 1000;
  const SynthTask task = make_synth_task(cfg, rng);

  BenchSetup s;
  s.arch = MlpConfig{{cfg.dim, 128, cfg.num_classes}, Activation::kRelu};
  s.holdout = task.test;
  if (smoke) s.timed = 1;

  Mlp model(s.arch);
  model.init(rng);
  ParamVec params = model.parameters();
  s.chain.push_back(params);
  for (std::size_t v = 1; v <= kMaxLookback; ++v) {
    for (float& p : params) p += static_cast<float>(rng.normal(0.0, 0.05));
    s.chain.push_back(params);
  }
  return s;
}

using PredTable = std::vector<std::vector<std::size_t>>;  // model × sample

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct SweepRow {
  std::size_t lookback = 0;
  double sequential_ms = 0.0;
  double fp32_ms = 0.0;
  double bf16_ms = 0.0;
  double int8_ms = 0.0;
  double fp32_par_ms = 0.0;
  double bf16_par_ms = 0.0;
  double int8_par_ms = 0.0;
  // Medians of the PER-REPETITION baseline/arm ratios — on a host with
  // bursty steal time this pairs each arm sample with the baseline
  // sample measured microseconds before it, so load spikes cancel
  // instead of landing on one arm's median. The serial speedups are
  // over the sequential arm; the _par speedups are over the SAME arm's
  // serial tile loop (pure threading gain).
  double fp32_speedup = 0.0;
  double bf16_speedup = 0.0;
  double int8_speedup = 0.0;
  double fp32_par_speedup = 0.0;
  double int8_par_speedup = 0.0;
  bool parity_ok = false;
  bool bit_identical = false;
};

/// One INTERLEAVED measurement of all seven arms: every repetition
/// times sequential, the three serial engine arms and the three
/// parallel engine arms back to back, and each arm's median is taken
/// across repetitions. This host's clock drifts on the scale of a whole
/// arm's repetition loop (shared core, frequency scaling), so measuring
/// the arms in separate phases systematically biases whichever arm
/// lands on the slow stretch; interleaving exposes every arm to the
/// same drift.
void run_row(const BenchSetup& s, std::size_t models, PredTable& seq,
             PredTable& fp32, PredTable& bf16, PredTable& int8,
             PredTable& fp32p, PredTable& bf16p, PredTable& int8p,
             SweepRow& row) {
  Mlp model(s.arch);
  MlpEvalWorkspace seq_ws;
  MultiModelEval engine(s.arch);
  engine.bind(s.holdout.features());
  MlpEvalWorkspace ser_ws;
  ser_ws.parallel = false;
  MlpEvalWorkspace par_ws;
  par_ws.parallel = true;
  std::vector<MultiEvalModel> bfp(models), bbf(models), bi8(models);
  std::vector<MultiEvalModel> pfp(models), pbf(models), pi8(models);
  for (std::size_t v = 0; v < models; ++v) {
    bfp[v] = MultiEvalModel{s.chain[v], fp32[v]};
    bbf[v] = MultiEvalModel{s.chain[v], bf16[v]};
    bi8[v] = MultiEvalModel{s.chain[v], int8[v]};
    pfp[v] = MultiEvalModel{s.chain[v], fp32p[v]};
    pbf[v] = MultiEvalModel{s.chain[v], bf16p[v]};
    pi8[v] = MultiEvalModel{s.chain[v], int8p[v]};
  }
  // Inner iterations stretch every timed sample to tens of
  // milliseconds: this host steals CPU in ~10 ms chunks, and a chunk
  // landing inside a short sample inflates it far more (relatively)
  // than a long one, which systematically compresses the short arms'
  // ratios. All arms of one repetition share the same iteration count.
  const std::size_t iters = models <= 10 ? 4 : (models <= 21 ? 2 : 1);
  std::vector<double> ms_seq, ms_fp32, ms_bf16, ms_int8;
  std::vector<double> ms_fp32p, ms_bf16p, ms_int8p;
  using clock = std::chrono::steady_clock;
  const auto lap = [&](clock::time_point& t) {
    const auto t1 = clock::now();
    const double d = std::chrono::duration<double, std::milli>(t1 - t).count();
    t = t1;
    return d / static_cast<double>(iters);
  };
  const auto engine_arm = [&](std::vector<MultiEvalModel>& batch,
                              MlpEvalWorkspace& ws, EvalPrecision prec,
                              clock::time_point& t) {
    ws.precision = prec;
    for (std::size_t it = 0; it < iters; ++it) engine.predict_many(batch, ws);
    return lap(t);
  };
  for (std::size_t rep = 0; rep < s.warmup + s.timed; ++rep) {
    auto t = clock::now();
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::size_t v = 0; v < models; ++v) {
        model.set_parameters(s.chain[v]);
        model.predict_into(s.holdout.features(), seq[v], seq_ws);
      }
    }
    const double d_seq = lap(t);
    const double d_fp32 = engine_arm(bfp, ser_ws, EvalPrecision::kFp32, t);
    const double d_fp32p = engine_arm(pfp, par_ws, EvalPrecision::kFp32, t);
    const double d_bf16 = engine_arm(bbf, ser_ws, EvalPrecision::kBf16, t);
    const double d_bf16p = engine_arm(pbf, par_ws, EvalPrecision::kBf16, t);
    const double d_int8 = engine_arm(bi8, ser_ws, EvalPrecision::kInt8, t);
    const double d_int8p = engine_arm(pi8, par_ws, EvalPrecision::kInt8, t);
    if (rep >= s.warmup) {
      ms_seq.push_back(d_seq);
      ms_fp32.push_back(d_fp32);
      ms_bf16.push_back(d_bf16);
      ms_int8.push_back(d_int8);
      ms_fp32p.push_back(d_fp32p);
      ms_bf16p.push_back(d_bf16p);
      ms_int8p.push_back(d_int8p);
    }
  }
  row.sequential_ms = median(ms_seq);
  row.fp32_ms = median(ms_fp32);
  row.bf16_ms = median(ms_bf16);
  row.int8_ms = median(ms_int8);
  row.fp32_par_ms = median(ms_fp32p);
  row.bf16_par_ms = median(ms_bf16p);
  row.int8_par_ms = median(ms_int8p);
  std::vector<double> ratio(ms_seq.size());
  const auto ratio_median = [&](const std::vector<double>& base,
                                const std::vector<double>& arm) {
    for (std::size_t i = 0; i < arm.size(); ++i) {
      ratio[i] = arm[i] > 0.0 ? base[i] / arm[i] : 0.0;
    }
    return median(ratio);
  };
  row.fp32_speedup = ratio_median(ms_seq, ms_fp32);
  row.bf16_speedup = ratio_median(ms_seq, ms_bf16);
  row.int8_speedup = ratio_median(ms_seq, ms_int8);
  row.fp32_par_speedup = ratio_median(ms_fp32, ms_fp32p);
  row.int8_par_speedup = ratio_median(ms_int8, ms_int8p);
}

ConfusionMatrix tally(const BenchSetup& s,
                      const std::vector<std::size_t>& preds) {
  ConfusionMatrix cm(s.holdout.num_classes());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    cm.record(s.holdout.labels()[i], static_cast<int>(preds[i]));
  }
  return cm;
}

bool same_cm(const ConfusionMatrix& a, const ConfusionMatrix& b) {
  const int n = static_cast<int>(a.num_classes());
  for (int t = 0; t < n; ++t) {
    for (int p = 0; p < n; ++p) {
      if (a.count(t, p) != b.count(t, p)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const BenchSetup setup = make_setup(smoke);
  const std::size_t m = setup.holdout.size();
  const std::size_t threads = ThreadPool::global().size();
  const std::size_t cores = std::thread::hardware_concurrency();
  // sweep_bench precedent: threading (and the SIMD margins it shares a
  // machine with) cannot be expected to pay on a starved container.
  const bool multi_core = cores >= 4 && threads >= 4;
  std::printf("BM_MultiModelEval: %zu samples, arch {%zu,%zu,%zu}, %zu "
              "timed reps/cell, %zu pool threads / %zu cores%s%s\n",
              m, setup.arch.layer_dims[0], setup.arch.layer_dims[1],
              setup.arch.layer_dims[2], setup.timed, threads, cores,
              smoke ? " (smoke)" : "",
              multi_core ? "" : " [speed gates waived]");
  std::printf("%8s %12s %10s %10s %10s %10s %8s %8s %7s %6s\n", "lookback",
              "seq ms", "fp32 ms", "int8 ms", "fp32p ms", "int8p ms",
              "int8 spd", "par spd", "parity", "bitid");

  std::vector<SweepRow> rows;
  bool all_parity = true;
  bool all_bitid = true;
  bool speedup_ok = true;
  for (const std::size_t ell : kLookbacks) {
    const std::size_t models = ell + 1;
    PredTable seq(models, std::vector<std::size_t>(m));
    PredTable fp32(models, std::vector<std::size_t>(m));
    PredTable bf16(models, std::vector<std::size_t>(m));
    PredTable int8(models, std::vector<std::size_t>(m));
    PredTable fp32p(models, std::vector<std::size_t>(m));
    PredTable bf16p(models, std::vector<std::size_t>(m));
    PredTable int8p(models, std::vector<std::size_t>(m));

    SweepRow row;
    row.lookback = ell;
    run_row(setup, models, seq, fp32, bf16, int8, fp32p, bf16p, int8p, row);

    // fp32 engine arm: bit-identical predictions. Reduced arms:
    // identical confusion matrices (⇒ identical votes/φ/τ downstream).
    // Parallel arms: byte-equal to their serial arm, per precision —
    // the tile decomposition writes disjoint slices and reorders no
    // reduction, so thread count must not change a single prediction.
    row.parity_ok = true;
    row.bit_identical = true;
    for (std::size_t v = 0; v < models; ++v) {
      if (fp32[v] != seq[v]) row.parity_ok = false;
      const ConfusionMatrix ref = tally(setup, seq[v]);
      if (!same_cm(ref, tally(setup, bf16[v]))) row.parity_ok = false;
      if (!same_cm(ref, tally(setup, int8[v]))) row.parity_ok = false;
      if (fp32p[v] != fp32[v]) row.bit_identical = false;
      if (bf16p[v] != bf16[v]) row.bit_identical = false;
      if (int8p[v] != int8[v]) row.bit_identical = false;
    }
    all_parity = all_parity && row.parity_ok;
    all_bitid = all_bitid && row.bit_identical;
    if (!smoke && multi_core && ell >= 10) {
      if (row.int8_speedup < 2.0) speedup_ok = false;
      if (row.fp32_par_speedup < 2.0) speedup_ok = false;
    }
    rows.push_back(row);
    std::printf(
        "%8zu %9.3f ms %7.3f ms %7.3f ms %7.3f ms %7.3f ms %7.2fx %7.2fx "
        "%7s %6s\n",
        row.lookback, row.sequential_ms, row.fp32_ms, row.int8_ms,
        row.fp32_par_ms, row.int8_par_ms, row.int8_speedup,
        row.fp32_par_speedup, row.parity_ok ? "ok" : "FAIL",
        row.bit_identical ? "ok" : "FAIL");
  }

  FILE* f = std::fopen("BENCH_multieval.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "multieval_bench: cannot write BENCH_multieval.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"BM_MultiModelEval\",\n"
               "  \"samples\": %zu,\n"
               "  \"hidden\": %zu,\n"
               "  \"timed_reps\": %zu,\n"
               "  \"smoke\": %s,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_cores\": %zu,\n"
               "  \"speedup_gate_enforced\": %s,\n"
               "  \"sweeps\": [\n",
               m, setup.arch.layer_dims[1], setup.timed,
               smoke ? "true" : "false", threads, cores,
               (!smoke && multi_core) ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"lookback\": %zu, \"sequential_ms\": %.3f, "
        "\"fp32_ms\": %.3f, \"bf16_ms\": %.3f, \"int8_ms\": %.3f, "
        "\"fp32_par_ms\": %.3f, \"bf16_par_ms\": %.3f, "
        "\"int8_par_ms\": %.3f, "
        "\"fp32_speedup\": %.3f, \"bf16_speedup\": %.3f, "
        "\"int8_speedup\": %.3f, \"fp32_par_speedup\": %.3f, "
        "\"int8_par_speedup\": %.3f, \"parity_ok\": %s, "
        "\"bit_identical\": %s}%s\n",
        row.lookback, row.sequential_ms, row.fp32_ms, row.bf16_ms,
        row.int8_ms, row.fp32_par_ms, row.bf16_par_ms, row.int8_par_ms,
        row.fp32_speedup, row.bf16_speedup, row.int8_speedup,
        row.fp32_par_speedup, row.int8_par_speedup,
        row.parity_ok ? "true" : "false",
        row.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"parity_ok\": %s,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               all_parity ? "true" : "false", all_bitid ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_multieval.json\n");
  if (!all_parity) return 1;
  if (!all_bitid) {
    std::fprintf(stderr,
                 "multieval_bench: parallel arm not bit-identical to serial\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "multieval_bench: speed gate missed (int8 vs sequential or "
                 "parallel fp32 vs serial fp32 below 2x at some lookback)\n");
    return 1;
  }
  return 0;
}

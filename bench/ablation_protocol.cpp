// Ablation A6: feedback-loop protocol variants.
//   (a) validating set = contributors (§VI-D's communication
//       optimization, the default) vs an independently sampled set
//       (Algorithm 1's original form);
//   (b) validator non-response (footnote 1: the server accepts unless q
//       rejections arrive), swept over dropout probabilities.

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

int main() {
  print_banner("Ablation — protocol variants (validator set, dropout)",
               "BaFFLe (ICDCS'21), §VI-D + Algorithm 1 footnote");

  const std::size_t reps = bench_reps();
  CsvWriter csv(bench::csv_path("ablation_protocol"),
                {"variant", "dropout", "fp_mean", "fn_mean"});
  TextTable table({"validating set", "dropout", "FP rate", "FN rate"});

  for (bool separate : {false, true}) {
    for (double dropout : {0.0, 0.2, 0.5}) {
      ExperimentConfig cfg = bench::stable_config(
          TaskKind::kVision10, 0.10, DefenseMode::kClientsAndServer, 20, 5);
      cfg.separate_validators = separate;
      cfg.validator_dropout = dropout;
      const auto rep = run_repeated(cfg, reps, 23000);
      const char* variant =
          separate ? "independent (Alg. 1)" : "contributors (SVI-D)";
      table.row({variant, format_rate(dropout, 1), format_mean_std(rep.fp),
                 format_mean_std(rep.fn)});
      csv.row({variant, CsvWriter::num(dropout),
               CsvWriter::num(rep.fp.mean), CsvWriter::num(rep.fn.mean)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: merging validators with contributors (the paper's\n"
      "communication optimization) does not change detection; moderate\n"
      "dropout degrades gracefully because q of the responding validators\n"
      "still suffices, while heavy dropout starts costing detections —\n"
      "the accept-by-default rule trades availability for safety.\n"
      "CSV: %s\n",
      bench::csv_path("ablation_protocol").c_str());
  return 0;
}

// Ablation A3: how the severity of the non-IID split (Dirichlet α)
// affects detection and the client vote split. The paper argues the
// defense must NOT rely on simple majority precisely because non-IID
// clients judge imperfectly (ρ > 0); this sweep quantifies that.

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

int main() {
  print_banner("Ablation — non-IID severity (Dirichlet alpha sweep)",
               "BaFFLe (ICDCS'21), §IV-B rho discussion");

  const std::size_t reps = bench_reps();
  CsvWriter csv(bench::csv_path("ablation_noniid"),
                {"alpha", "fp_mean", "fn_mean", "mean_reject_votes_poisoned",
                 "mean_reject_votes_clean"});
  TextTable table({"alpha", "FP rate", "FN rate", "votes|poisoned",
                   "votes|clean"});

  const std::vector<double> alphas =
      bench_fast() ? std::vector<double>{0.9, 10.0}
                   : std::vector<double>{0.1, 0.5, 0.9, 10.0};
  for (double alpha : alphas) {
    ExperimentConfig cfg = bench::stable_config(
        TaskKind::kVision10, 0.10, DefenseMode::kClientsAndServer, 20, 5);
    cfg.scenario.dirichlet_alpha = alpha;
    const auto rep = run_repeated(cfg, reps, 13000);

    double votes_poisoned = 0.0, votes_clean = 0.0;
    std::size_t n_poisoned = 0, n_clean = 0;
    for (const auto& run : rep.runs) {
      for (const auto& r : run.rounds) {
        if (!r.defense_active) continue;
        if (r.poisoned) {
          votes_poisoned += static_cast<double>(r.reject_votes);
          ++n_poisoned;
        } else {
          votes_clean += static_cast<double>(r.reject_votes);
          ++n_clean;
        }
      }
    }
    if (n_poisoned > 0) votes_poisoned /= static_cast<double>(n_poisoned);
    if (n_clean > 0) votes_clean /= static_cast<double>(n_clean);

    table.row({format_rate(alpha, 1), format_mean_std(rep.fp),
               format_mean_std(rep.fn), format_rate(votes_poisoned, 2),
               format_rate(votes_clean, 2)});
    csv.row({CsvWriter::num(alpha), CsvWriter::num(rep.fp.mean),
             CsvWriter::num(rep.fn.mean), CsvWriter::num(votes_poisoned),
             CsvWriter::num(votes_clean)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: harsher skew (small alpha) lowers the reject-vote count\n"
      "on poisoned rounds (more honest-but-wrong validators, higher rho)\n"
      "while detection survives because the quorum only needs q of n\n"
      "votes, not unanimity. CSV: %s\n",
      bench::csv_path("ablation_noniid").c_str());
  return 0;
}

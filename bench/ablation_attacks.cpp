// Ablation A5: detection across backdoor types and attack topologies.
// The paper evaluates semantic (CIFAR-10) and label-flip (FEMNIST)
// backdoors and conjectures (§V) that the misclassification-analysis
// instantiation extends to other backdoor types; this bench adds
// trigger-patch (BadNets-style) backdoors and the multi-client DBA
// attack (Xie et al.) on top of the paper's two.

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

int main() {
  print_banner("Ablation — backdoor types and attack topologies",
               "BaFFLe (ICDCS'21), §V conjecture + §VII DBA");

  const std::size_t reps = bench_reps();
  CsvWriter csv(bench::csv_path("ablation_attacks"),
                {"attack", "fp_mean", "fn_mean", "final_backdoor_acc"});
  TextTable table({"attack", "FP rate", "FN rate", "final backdoor acc"});

  struct Arm {
    const char* name;
    TaskKind task;
    std::optional<BackdoorKind> kind;
    bool dba;
  };
  const std::vector<Arm> arms{
      {"semantic, single-client (paper)", TaskKind::kVision10, std::nullopt,
       false},
      {"label-flip, single-client (paper)", TaskKind::kFemnist62,
       std::nullopt, false},
      {"trigger-patch, single-client", TaskKind::kVision10,
       BackdoorKind::kTrigger, false},
      {"trigger-patch, DBA x4 colluders", TaskKind::kVision10,
       BackdoorKind::kTrigger, true},
  };

  for (const auto& arm : arms) {
    ExperimentConfig cfg = bench::stable_config(
        arm.task, arm.task == TaskKind::kVision10 ? 0.10 : 0.01,
        DefenseMode::kClientsAndServer, 20, 5);
    cfg.scenario.backdoor_override = arm.kind;
    cfg.use_dba = arm.dba;
    cfg.track_accuracy = true;
    const auto rep = run_repeated(cfg, reps, 19000);
    double bd = 0.0;
    for (const auto& run : rep.runs) {
      bd += run.final_backdoor_accuracy / static_cast<double>(reps);
    }
    table.row({arm.name, format_mean_std(rep.fp), format_mean_std(rep.fn),
               format_rate(bd)});
    csv.row({arm.name, CsvWriter::num(rep.fp.mean),
             CsvWriter::num(rep.fn.mean), CsvWriter::num(bd)});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: the per-class misclassification analysis detects all\n"
      "four — trigger backdoors shift the target class's error rates the\n"
      "same way semantic ones do, and DBA's distributed delivery is\n"
      "irrelevant to a defense that judges only the aggregated model.\n"
      "CSV: %s\n",
      bench::csv_path("ablation_attacks").c_str());
  return 0;
}

// Figure 4: from-scratch training with early poisoning — main-task and
// backdoor accuracy over the first 800 rounds, without the defense
// (4a/4c) and with BaFFLe enabled at round 530 (4b/4d). Injections land
// at rounds 100 and 300 (before the defense starts) and then every 15
// rounds in [530, 680].

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

namespace {

ExperimentConfig early_config(TaskKind task, bool defended) {
  ExperimentConfig cfg;
  cfg.scenario = task == TaskKind::kVision10 ? vision_scenario(0.10)
                                             : femnist_scenario(0.01);
  cfg.feedback.mode = DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = 5;
  cfg.feedback.validator.lookback = 20;
  cfg.schedule = AttackSchedule::early_scenario();
  cfg.rounds = 800;
  cfg.defense_start = 530;
  cfg.defense_enabled = defended;
  cfg.stable_start = false;  // from-scratch FL training
  cfg.track_accuracy = true;
  if (bench_fast()) {
    // Same shape at 1/4 scale.
    cfg.rounds = 200;
    cfg.defense_start = 130;
    cfg.schedule.poison_rounds = {25, 75};
    for (std::size_t r = 130; r <= 170; r += 5) {
      cfg.schedule.poison_rounds.push_back(r);
    }
  }
  return cfg;
}

void print_series(const char* label, const ExperimentResult& result,
                  CsvWriter& csv, const char* dataset, const char* arm) {
  std::printf("\n-- %s --\n", label);
  std::printf("%-7s %-8s %-9s %-9s %s\n", "round", "poison", "verdict",
              "main", "backdoor");
  for (const auto& r : result.rounds) {
    csv.row({dataset, arm, std::to_string(r.round),
             r.poisoned ? "1" : "0", r.rejected ? "1" : "0",
             CsvWriter::num(r.main_accuracy),
             CsvWriter::num(r.backdoor_accuracy)});
    const bool interesting = r.poisoned || r.round % 50 == 0 ||
                             (r.round > 95 && r.round < 110) ||
                             (r.round > 295 && r.round < 310);
    if (!interesting) continue;
    std::printf("%-7zu %-8s %-9s %-9.3f %.3f\n", r.round,
                r.poisoned ? "YES" : "-",
                !r.defense_active ? "(off)"
                                  : (r.rejected ? "REJECT" : "accept"),
                r.main_accuracy, r.backdoor_accuracy);
  }
  std::printf("detected %zu/%zu defended injections\n",
              result.rates.poisoned_rounds - result.rates.false_negatives,
              result.rates.poisoned_rounds);
}

}  // namespace

int main() {
  print_banner("Figure 4 — early poisoning, with and without BaFFLe",
               "BaFFLe (ICDCS'21), Fig. 4a-4d");

  CsvWriter csv(bench::csv_path("fig4"),
                {"dataset", "arm", "round", "poisoned", "rejected",
                 "main_acc", "backdoor_acc"});

  for (TaskKind task : {TaskKind::kVision10, TaskKind::kFemnist62}) {
    std::printf("\n=== dataset: %s ===\n", task_kind_name(task));
    const auto undefended =
        run_experiment(early_config(task, false), 4242);
    print_series("no defense (Fig. 4a/4c)", undefended, csv,
                 task_kind_name(task), "undefended");
    const auto defended = run_experiment(early_config(task, true), 4242);
    print_series("BaFFLe enabled at round 530 (Fig. 4b/4d)", defended, csv,
                 task_kind_name(task), "defended");
  }

  std::printf(
      "\npaper shape: early injections (rounds 100/300) are short-lived —\n"
      "the immature model forgets the backdoor within a few rounds. Late\n"
      "injections persist when undefended, while BaFFLe rejects (nearly)\n"
      "all of them and the backdoor accuracy stays low. CSV: %s\n",
      bench::csv_path("fig4").c_str());
  return 0;
}

// Figure 5: distribution of reject votes cast on adaptively poisoned
// models, per data split. Shows how many validating clients recognize an
// adaptive injection — the empirical basis for the ρ (erroneous-honest-
// vote fraction) estimate in §IV-B / §VI-C.

#include <cstdio>

#include "bench_common.hpp"
#include "exp/rho.hpp"

using namespace baffle;

int main() {
  print_banner("Figure 5 — votes to reject adaptively poisoned models",
               "BaFFLe (ICDCS'21), Fig. 5");

  const std::size_t reps = bench_reps();
  const TaskKind task = TaskKind::kVision10;
  CsvWriter csv(bench::csv_path("fig5"),
                {"split", "reject_votes", "count"});

  for (double sfrac : bench::server_fractions(task)) {
    ExperimentConfig cfg = bench::stable_config(
        task, sfrac, DefenseMode::kClientsAndServer, 20, 5);
    cfg.schedule.adaptive = true;
    const auto rep = run_repeated(cfg, reps, 9000);

    std::vector<std::size_t> histogram(12, 0);  // 10 clients + server
    std::size_t total_voters = 0;
    for (const auto& run : rep.runs) {
      for (const auto& inj : run.injections) {
        histogram[std::min<std::size_t>(inj.reject_votes,
                                        histogram.size() - 1)]++;
        total_voters = inj.total_voters;
      }
    }

    std::printf("\n-- split %s (voters per round: %zu) --\n",
                bench::split_name(task, sfrac).c_str(), total_voters);
    std::printf("%-13s %-6s\n", "reject votes", "count");
    for (std::size_t v = 0; v < histogram.size(); ++v) {
      if (histogram[v] == 0) continue;
      std::printf("%-13zu %-6zu %s\n", v, histogram[v],
                  std::string(histogram[v], '#').c_str());
      csv.row({bench::split_name(task, sfrac), std::to_string(v),
               std::to_string(histogram[v])});
    }
    // The paper's closing analysis: empirical rho and the implied
    // tolerance on malicious validators.
    const RhoEstimate rho = estimate_rho(rep.runs);
    if (rho.injections > 0) {
      std::printf("empirical rho: worst %.2f, mean %.2f -> tolerates up to "
                  "%zu malicious validators (n_M < (1-rho)n/(2-rho))\n",
                  rho.rho, rho.mean_rho, rho.tolerable_malicious);
    }
  }

  std::printf(
      "\npaper shape: most adaptive injections draw 5+ reject votes (out\n"
      "of 10 clients + server), i.e. at most ~half the validators are\n"
      "fooled in the worst case -> rho <= 0.5 and, via\n"
      "n_M < (1-rho)n/(2-rho), up to 3 malicious validators are tolerable\n"
      "per round. CSV: %s\n",
      bench::csv_path("fig5").c_str());
  return 0;
}

// BM_ProposeRound — serial vs parallel client-update phase of one FL
// round (10 clients/round, 2 local epochs, the paper's setup), plus the
// bit-identity check that makes the speedup admissible: the parallel
// round must reproduce the serial candidate parameters exactly.
//
// Prints both timings and writes BENCH_round.json to the working
// directory. Thread count follows BAFFLE_THREADS (default: hardware
// concurrency); run with BAFFLE_THREADS=8 for the acceptance number.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "fl/server.hpp"
#include "nn/train.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace baffle;

constexpr std::size_t kClientsPerRound = 10;
constexpr std::size_t kLocalEpochs = 2;
constexpr std::size_t kWarmupRounds = 1;
constexpr std::size_t kTimedRounds = 6;

struct Setup {
  SynthTask task;
  std::vector<FlClient> clients;
  MlpConfig arch;
  FlConfig fl;

  explicit Setup(bool parallel) : task(make_task()) {
    Rng rng(42);
    for (std::size_t i = 0; i < 30; ++i) {
      Rng crng = rng.fork();
      clients.emplace_back(i, task.train.sample(200, crng));
    }
    arch = MlpConfig{{task.config.dim, 64, task.config.num_classes},
                     Activation::kRelu};
    fl.total_clients = clients.size();
    fl.clients_per_round = kClientsPerRound;
    fl.local_train.epochs = kLocalEpochs;
    fl.secure_aggregation = true;
    fl.parallel_updates = parallel;
  }

  static SynthTask make_task() {
    Rng rng(41);
    SynthTaskConfig cfg = synth_vision10_config();
    cfg.train_per_class = 120;
    return make_synth_task(cfg, rng);
  }
};

/// Runs warm-up + timed proposals and returns {ms per round, per-round
/// candidates} for the bit-identity check.
struct RunResult {
  double ms_per_round = 0.0;
  std::vector<ParamVec> candidates;
};

RunResult run_rounds(bool parallel) {
  Setup s(parallel);
  FlServer server(s.arch, s.fl, 7);
  HonestUpdateProvider provider(&s.clients, s.fl.local_train);
  Rng round_rng(13);
  RunResult out;
  double total_ms = 0.0;
  for (std::size_t r = 0; r < kWarmupRounds + kTimedRounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto proposal = server.propose_round(provider, round_rng);
    const auto t1 = std::chrono::steady_clock::now();
    if (r >= kWarmupRounds) {
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      out.candidates.push_back(proposal.candidate_params);
    }
    server.commit(proposal);
  }
  out.ms_per_round = total_ms / static_cast<double>(kTimedRounds);
  return out;
}

}  // namespace

int main() {
  const std::size_t threads = ThreadPool::global().size();
  const std::size_t cores = std::thread::hardware_concurrency();
  std::printf("BM_ProposeRound: %zu clients/round, %zu local epochs, "
              "%zu threads (%zu hardware cores)\n",
              kClientsPerRound, kLocalEpochs, threads, cores);

  const RunResult serial = run_rounds(false);
  const RunResult parallel = run_rounds(true);

  bool bit_identical = serial.candidates.size() == parallel.candidates.size();
  for (std::size_t r = 0; bit_identical && r < serial.candidates.size(); ++r) {
    bit_identical = serial.candidates[r] == parallel.candidates[r];
  }
  const double speedup =
      parallel.ms_per_round > 0.0 ? serial.ms_per_round / parallel.ms_per_round
                                  : 0.0;

  std::printf("serial:   %8.2f ms/round\n", serial.ms_per_round);
  std::printf("parallel: %8.2f ms/round\n", parallel.ms_per_round);
  std::printf("speedup:  %8.2fx   bit-identical: %s\n", speedup,
              bit_identical ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_round.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "round_bench: cannot write BENCH_round.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"BM_ProposeRound\",\n"
               "  \"clients_per_round\": %zu,\n"
               "  \"local_epochs\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_cores\": %zu,\n"
               "  \"timed_rounds\": %zu,\n"
               "  \"serial_ms_per_round\": %.3f,\n"
               "  \"parallel_ms_per_round\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               kClientsPerRound, kLocalEpochs, threads, cores, kTimedRounds,
               serial.ms_per_round, parallel.ms_per_round, speedup,
               bit_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_round.json\n");
  return bit_identical ? 0 : 1;
}

// BM_Sweep — serial cell loop vs task-graph fan-out over a scenario
// grid (DESIGN.md §15), plus the bit-identity check that makes the
// speedup admissible: every per-cell repetition row from the parallel
// driver must match the serial driver exactly.
//
// The grid is lookback{8,12} x quorum{3,5} x alpha{0.3,0.9} = 8 cells,
// 2 repetitions each — 16 independent experiments whose per-round
// graphs all nest on the shared pool. Prints both timings and writes
// BENCH_sweep.json. Thread count follows BAFFLE_THREADS (default:
// hardware concurrency); run with BAFFLE_THREADS=8 for the acceptance
// number. The >=2x speedup gate applies only on a multi-core box
// (>=4 hardware cores and >=4 pool threads) — a single-core container
// cannot overlap independent cells, so there only bit-identity gates.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace baffle;

SweepSpec bench_spec(bool smoke) {
  SweepSpec spec;
  spec.base.scenario = vision_scenario(0.10);
  spec.base.scenario.num_clients = 40;
  spec.base.scenario.train_per_class_override = smoke ? 50 : 80;
  spec.base.rounds = smoke ? 10 : 14;
  spec.base.defense_start = smoke ? 6 : 8;
  spec.base.schedule = AttackSchedule::stable_scenario();
  spec.base.schedule.poison_rounds = smoke ? std::vector<std::size_t>{8}
                                           : std::vector<std::size_t>{11, 13};
  spec.reps = 2;
  spec.base_seed = 7;

  const auto lookback = [](std::size_t v) {
    return SweepValue{std::to_string(v), [v](ExperimentConfig& c) {
                        c.feedback.validator.lookback = v;
                      }};
  };
  const auto quorum = [](std::size_t v) {
    return SweepValue{std::to_string(v),
                      [v](ExperimentConfig& c) { c.feedback.quorum = v; }};
  };
  const auto alpha = [](double v, const char* label) {
    return SweepValue{label, [v](ExperimentConfig& c) {
                        c.scenario.dirichlet_alpha = v;
                      }};
  };
  if (smoke) {
    spec.axes = {{"lookback", {lookback(8)}}, {"q", {quorum(2), quorum(3)}}};
  } else {
    spec.axes = {{"lookback", {lookback(8), lookback(12)}},
                 {"q", {quorum(3), quorum(5)}},
                 {"alpha", {alpha(0.3, "0.3"), alpha(0.9, "0.9")}}};
  }
  return spec;
}

bool rows_identical(const SweepRepRow& a, const SweepRepRow& b) {
  return a.seed == b.seed &&
         std::memcmp(&a.rates, &b.rates, sizeof(a.rates)) == 0 &&
         std::memcmp(&a.final_main_accuracy, &b.final_main_accuracy,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.final_backdoor_accuracy, &b.final_backdoor_accuracy,
                     sizeof(double)) == 0 &&
         a.adaptive_skipped == b.adaptive_skipped;
}

double run_once(const SweepSpec& spec, bool parallel, SweepResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = run_sweep(spec, parallel);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const SweepSpec spec = bench_spec(smoke);
  std::size_t cells = 1;
  for (const auto& axis : spec.axes) cells *= axis.values.size();
  const std::size_t threads = ThreadPool::global().size();
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t trials = smoke ? 1 : 3;
  std::printf("BM_Sweep%s: %zu cells x %zu reps, %zu trials, "
              "%zu threads (%zu hardware cores)\n",
              smoke ? " (smoke)" : "", cells, spec.reps, trials, threads,
              cores);

  std::vector<double> serial_ms, parallel_ms, speedups;
  bool bit_identical = true;
  for (std::size_t t = 0; t < trials; ++t) {
    SweepResult serial, parallel;
    serial_ms.push_back(run_once(spec, /*parallel=*/false, &serial));
    parallel_ms.push_back(run_once(spec, /*parallel=*/true, &parallel));
    speedups.push_back(parallel_ms.back() > 0.0
                           ? serial_ms.back() / parallel_ms.back()
                           : 0.0);
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
      for (std::size_t i = 0; i < spec.reps; ++i) {
        if (!rows_identical(serial.cells[c].reps[i],
                            parallel.cells[c].reps[i])) {
          bit_identical = false;
          std::printf("MISMATCH: cell %zu (%s) rep %zu\n", c,
                      serial.cells[c].name.c_str(), i);
        }
      }
    }
    std::printf("  trial %zu: serial %8.1f ms, task-graph %8.1f ms "
                "(%.2fx)\n",
                t, serial_ms.back(), parallel_ms.back(), speedups.back());
  }

  std::sort(speedups.begin(), speedups.end());
  std::sort(serial_ms.begin(), serial_ms.end());
  std::sort(parallel_ms.begin(), parallel_ms.end());
  const double median_speedup = speedups[speedups.size() / 2];
  const bool multi_core = cores >= 4 && threads >= 4;
  const bool speedup_ok = !multi_core || median_speedup >= 2.0;
  std::printf("median speedup: %.2fx   bit-identical: %s%s\n", median_speedup,
              bit_identical ? "yes" : "NO",
              multi_core ? "" : "   (single-core box: speedup gate waived)");

  FILE* f = std::fopen("BENCH_sweep.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "sweep_bench: cannot write BENCH_sweep.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"BM_Sweep\",\n"
               "  \"smoke\": %s,\n"
               "  \"cells\": %zu,\n"
               "  \"reps_per_cell\": %zu,\n"
               "  \"trials\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_cores\": %zu,\n"
               "  \"serial_ms\": %.1f,\n"
               "  \"parallel_ms\": %.1f,\n"
               "  \"median_speedup\": %.3f,\n"
               "  \"speedup_gate_enforced\": %s,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               smoke ? "true" : "false", cells, spec.reps, trials, threads,
               cores, serial_ms[serial_ms.size() / 2],
               parallel_ms[parallel_ms.size() / 2], median_speedup,
               multi_core ? "true" : "false", bit_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_sweep.json\n");
  return bit_identical && speedup_ok ? 0 : 1;
}

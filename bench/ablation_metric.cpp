// Ablation A1+A2: the paper's per-class error-variation + LOF statistic
// vs (a) a plain global-accuracy z-score detector and (b) the same
// variation points thresholded by a norm z-score instead of LOF.
// Run against both the standard and the adaptive attacker: the
// global-accuracy strawman is exactly what an accuracy-preserving
// backdoor evades (§IV-A "Data unpredictability").

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

int main() {
  print_banner("Ablation — validation statistic (LOF vs z-score vs accuracy)",
               "BaFFLe (ICDCS'21), §V design choice");

  const std::size_t reps = bench_reps();
  const std::vector<std::pair<ValidationMethod, const char*>> methods{
      {ValidationMethod::kErrorVariationLof, "error-variation+LOF (paper)"},
      {ValidationMethod::kVariationNormZScore, "variation-norm z-score"},
      {ValidationMethod::kGlobalAccuracyZScore, "global-accuracy z-score"}};

  CsvWriter csv(bench::csv_path("ablation_metric"),
                {"method", "attack", "fp_mean", "fp_std", "fn_mean",
                 "fn_std"});
  TextTable table({"method", "attack", "FP rate", "FN rate"});

  for (const auto& [method, name] : methods) {
    for (bool adaptive : {false, true}) {
      ExperimentConfig cfg = bench::stable_config(
          TaskKind::kVision10, 0.10, DefenseMode::kClientsAndServer, 20, 5);
      cfg.feedback.validator.method = method;
      cfg.schedule.adaptive = adaptive;
      const auto rep = run_repeated(cfg, reps, 11000);
      table.row({name, adaptive ? "adaptive" : "standard",
                 format_mean_std(rep.fp), format_mean_std(rep.fn)});
      csv.row({validation_method_name(method),
               adaptive ? "adaptive" : "standard",
               CsvWriter::num(rep.fp.mean), CsvWriter::num(rep.fp.std),
               CsvWriter::num(rep.fn.mean), CsvWriter::num(rep.fn.std)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: all three catch the blatant boosted replacement. The\n"
      "adaptive attacker self-checks against the PAPER'S statistic\n"
      "(error-variation+LOF), so its surviving injections are tuned to\n"
      "that detector specifically — and the statistics the attacker does\n"
      "NOT model (z-score variants here) catch them. The defense's power\n"
      "against adaptation comes from what the attacker cannot see — the\n"
      "validators' data, and equally their exact detector. CSV: %s\n",
      bench::csv_path("ablation_metric").c_str());
  return 0;
}

#pragma once
// Shared configuration helpers for the reproduction benches. Each bench
// binary regenerates one table or figure of the paper; the knobs here
// pin the common experimental setup of §VI-A/§VI-B so benches differ
// only in the parameter being swept.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"

namespace baffle {

/// Bench-run header. Lives with the benches (not exp/report) because
/// library code keeps no console I/O; every bench owns its stdout.
inline void print_banner(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "==============================================\n"
            << title << '\n'
            << "reproduces: " << paper_ref << '\n'
            << "reps=" << bench_reps() << (bench_fast() ? " (fast mode)" : "")
            << '\n'
            << "==============================================\n";
}

}  // namespace baffle

namespace baffle::bench {

/// The paper's data splits per dataset (client share - server share).
inline std::vector<double> server_fractions(TaskKind task) {
  if (task == TaskKind::kVision10) {
    return {0.10, 0.05, 0.01};  // 90-10%, 95-5%, 99-1%
  }
  return {0.01, 0.005, 0.001};  // 99-1%, 99.5-0.5%, 99.9-0.1%
}

inline std::string split_name(TaskKind task, double server_fraction) {
  const double client = (1.0 - server_fraction) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g-%g%%", client,
                server_fraction * 100.0);
  (void)task;
  return buf;
}

/// Stable-model scenario (§VI-B case 1): pre-trained global model, 50
/// rounds, defense verdicts enforced from round 20, injections at
/// 30/35/40.
inline ExperimentConfig stable_config(TaskKind task, double server_fraction,
                                      DefenseMode mode, std::size_t lookback,
                                      std::size_t quorum) {
  ExperimentConfig cfg;
  cfg.scenario = task == TaskKind::kVision10
                     ? vision_scenario(server_fraction)
                     : femnist_scenario(server_fraction);
  cfg.feedback.mode = mode;
  cfg.feedback.quorum = quorum;
  cfg.feedback.validator.lookback = lookback;
  cfg.schedule = AttackSchedule::stable_scenario();
  cfg.rounds = 50;
  cfg.defense_start = 20;
  cfg.track_accuracy = false;
  if (task == TaskKind::kFemnist62) {
    cfg.pretrain_epochs = 15;  // reaches the stable regime; see DESIGN.md
  }
  if (bench_fast()) {
    cfg.rounds = 40;
    cfg.defense_start = 15;
    cfg.schedule.poison_rounds = {25, 32, 38};
    cfg.pretrain_epochs = std::min<std::size_t>(cfg.pretrain_epochs, 10);
  }
  return cfg;
}

inline const char* mode_short(DefenseMode mode) {
  switch (mode) {
    case DefenseMode::kClientsOnly: return "C";
    case DefenseMode::kServerOnly: return "S";
    case DefenseMode::kClientsAndServer: return "C+S";
  }
  return "?";
}

/// Output directory for the CSV twins of the printed tables.
inline std::string csv_path(const std::string& name) {
  return "bench_" + name + ".csv";
}

}  // namespace baffle::bench

// §VI-D: communication overhead of shipping the model history to
// validating clients. Reports (a) byte-accurate numbers for this repo's
// simulation models and (b) the paper's own arithmetic re-derived for a
// ResNet18-sized (~10 MB) model: ~200 MB/validator uncompressed, ~20 MB
// with 10x compression, amortizing to ~40 MB per client per 20 rounds
// thanks to history deltas.

#include <cstdio>

#include "bench_common.hpp"
#include "fl/comm.hpp"
#include "nn/compression.hpp"
#include "nn/model_codec.hpp"

using namespace baffle;

namespace {

void simulate(const char* label, std::size_t model_bytes,
              double compression, CsvWriter& csv) {
  const std::size_t num_clients = 100, per_round = 10, rounds = 200;
  const std::size_t history_len = 21;  // ℓ = 20 -> ℓ+1 models
  CommTracker tracker(num_clients, model_bytes, history_len, compression);
  Rng rng(1);
  const ClientSampler sampler(num_clients, per_round);
  for (std::size_t r = 0; r < rounds; ++r) {
    tracker.record_round(sampler.sample_round(rng), /*defense_active=*/true);
  }
  const auto& s = tracker.stats();
  const double mb = 1024.0 * 1024.0;
  const double per_client_20rounds =
      tracker.history_bytes_per_client() / (static_cast<double>(rounds) / 20.0);
  std::printf(
      "%-28s first-selection history: %8.2f MB | total history/client: "
      "%8.2f MB | per client per 20 rounds: %6.2f MB\n",
      label,
      static_cast<double>(history_len) * model_bytes / compression / mb,
      tracker.history_bytes_per_client() / mb, per_client_20rounds / mb);
  csv.row({label, CsvWriter::num(static_cast<double>(model_bytes)),
           CsvWriter::num(compression),
           CsvWriter::num(per_client_20rounds / mb)});
  (void)s;
}

}  // namespace

int main() {
  print_banner("Communication overhead of the feedback loop",
               "BaFFLe (ICDCS'21), §VI-D");

  // Byte-accurate sizes of this repo's models.
  Rng rng(7);
  Mlp vision(MlpConfig{{32, 64, 10}, Activation::kRelu});
  Mlp femnist(MlpConfig{{48, 96, 62}, Activation::kRelu});
  vision.init(rng);
  femnist.init(rng);
  std::printf("simulation model sizes (exact wire bytes):\n");
  std::printf("  vision10  model: %zu params, %zu bytes\n",
              vision.num_params(), encoded_size(vision));
  std::printf("  femnist62 model: %zu params, %zu bytes\n\n",
              femnist.num_params(), encoded_size(femnist));

  CsvWriter csv(bench::csv_path("comm"),
                {"config", "model_bytes", "compression",
                 "mb_per_client_per_20_rounds"});

  // Measured compression: top-k sparsification + 8-bit quantization on
  // the actual model parameters (stands in for Caldas et al.'s ~10x).
  const auto compressed = compress_topk(vision.parameters(), 0.07);
  const double measured_ratio = compressed.compression_ratio();
  std::printf("top-k(7%%)+8-bit codec on vision10 params: %.1fx measured\n\n",
              measured_ratio);

  std::printf("history transfer, l=20, 10 of 100 clients/round, 200 rounds:\n");
  simulate("vision10 (exact)", encoded_size(vision), 1.0, csv);
  simulate("femnist62 (exact)", encoded_size(femnist), 1.0, csv);
  simulate("vision10, top-k compressed", encoded_size(vision),
           measured_ratio, csv);
  const std::size_t resnet18 = 10u * 1024 * 1024;  // paper: ~10 MB/model
  simulate("ResNet18-sized, raw", resnet18, 1.0, csv);
  simulate("ResNet18-sized, 10x compressed", resnet18,
           kModelCompressionFactor, csv);

  std::printf(
      "\npaper shape: ~200 MB/validator raw (21 x ~10 MB), ~20 MB with\n"
      "model compression; selection probability 1/10 and history deltas\n"
      "amortize this to <= ~40 MB per client per 20 rounds. CSV: %s\n",
      bench::csv_path("comm").c_str());
  return 0;
}

// BM_DefenseValidate — steady-state cost of one VALIDATE round for the
// incremental cross-round engine (DESIGN.md §12) vs the fresh-recompute
// baseline (`ValidatorConfig::incremental = false`, the pre-engine
// code path), swept over the paper's look-back sizes ℓ.
//
// Each arm drives the same pre-generated model chain through a rolling
// (ℓ+1)-window: validate the candidate, commit it, rotate. The baseline
// re-evaluates the committed model as next round's history.back() and
// rebuilds the O(ℓ²) distance work behind φ and τ every round; the
// incremental arm promotes the candidate's confusion matrix and shifts
// its distance matrix by one row/column. The speedup is only admissible
// because the per-round (vote, φ, τ) triples are bit-identical —
// checked here and reported as parity_ok.
//
// Prints the sweep table and writes BENCH_defense.json. `--smoke` runs
// a single timed round per cell on a smaller validation set (CI gate:
// exit is nonzero whenever parity fails).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "core/validate.hpp"
#include "data/synth.hpp"

namespace {

using namespace baffle;

constexpr std::size_t kLookbacks[] = {10, 20, 40, 80};
constexpr std::size_t kMaxLookback = 80;

struct BenchSetup {
  Dataset holdout;       // validator's private labelled data D
  MlpConfig arch;
  std::vector<ParamVec> chain;  // model chain: chain[v] is version v
  std::size_t warmup = 2;
  std::size_t timed = 6;
};

BenchSetup make_setup(bool smoke) {
  Rng rng(404);
  SynthTaskConfig cfg = synth_vision10_config();
  cfg.train_per_class = 1;  // only the test split is used
  cfg.test_per_class = 100;
  const SynthTask task = make_synth_task(cfg, rng);

  BenchSetup s;
  s.arch = MlpConfig{{cfg.dim, 64, cfg.num_classes}, Activation::kRelu};
  Rng sample_rng(9);
  s.holdout = smoke ? task.test.sample(250, sample_rng) : task.test;
  if (smoke) {
    s.warmup = 1;
    s.timed = 1;
  }

  // Random-walk parameter chain: validation cost does not depend on
  // model quality, only on distinct confusion matrices per version.
  Mlp model(s.arch);
  model.init(rng);
  ParamVec params = model.parameters();
  const std::size_t total = kMaxLookback + 1 + s.warmup + s.timed;
  s.chain.reserve(total);
  s.chain.push_back(params);
  for (std::size_t v = 1; v < total; ++v) {
    for (float& p : params) p += static_cast<float>(rng.normal(0.0, 0.05));
    s.chain.push_back(params);
  }
  return s;
}

struct ArmResult {
  double ms_per_round = 0.0;
  std::vector<ValidationOutcome> outcomes;
  std::uint64_t promotions = 0;
  std::uint64_t misses = 0;
};

ArmResult run_arm(const BenchSetup& s, std::size_t lookback,
                  bool incremental) {
  ValidatorConfig cfg;
  cfg.lookback = lookback;
  cfg.incremental = incremental;
  Validator validator(s.holdout, s.arch, cfg);

  std::deque<GlobalModel> window;
  std::uint64_t version = 0;
  for (; version <= lookback; ++version) {
    window.push_back({version, s.chain[version]});
  }

  ArmResult out;
  double total_ms = 0.0;
  for (std::size_t r = 0; r < s.warmup + s.timed; ++r, ++version) {
    const std::vector<GlobalModel> history(window.begin(), window.end());
    const ParamVec& candidate = s.chain[version];
    const auto t0 = std::chrono::steady_clock::now();
    const ValidationOutcome outcome = validator.validate(candidate, history);
    validator.notify_commit(version, candidate);
    const auto t1 = std::chrono::steady_clock::now();
    if (r >= s.warmup) {
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      out.outcomes.push_back(outcome);
    }
    window.push_back({version, candidate});
    while (window.size() > lookback + 1) window.pop_front();
  }
  out.ms_per_round = total_ms / static_cast<double>(s.timed);
  out.promotions = validator.cache().promotions();
  out.misses = validator.cache().misses();
  return out;
}

bool outcomes_identical(const ArmResult& a, const ArmResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const ValidationOutcome& x = a.outcomes[i];
    const ValidationOutcome& y = b.outcomes[i];
    if (x.vote != y.vote || x.phi != y.phi || x.tau != y.tau ||
        x.abstained != y.abstained) {
      return false;
    }
  }
  return true;
}

struct SweepRow {
  std::size_t lookback = 0;
  double baseline_ms = 0.0;
  double incremental_ms = 0.0;
  double speedup = 0.0;
  bool parity_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const BenchSetup setup = make_setup(smoke);
  std::printf("BM_DefenseValidate: %zu validation samples, %zu timed "
              "rounds/cell%s\n",
              setup.holdout.size(), setup.timed, smoke ? " (smoke)" : "");
  std::printf("%8s %14s %16s %9s %8s\n", "lookback", "baseline ms",
              "incremental ms", "speedup", "parity");

  std::vector<SweepRow> rows;
  bool all_parity = true;
  for (const std::size_t ell : kLookbacks) {
    const ArmResult baseline = run_arm(setup, ell, false);
    const ArmResult incremental = run_arm(setup, ell, true);
    SweepRow row;
    row.lookback = ell;
    row.baseline_ms = baseline.ms_per_round;
    row.incremental_ms = incremental.ms_per_round;
    row.speedup = incremental.ms_per_round > 0.0
                      ? baseline.ms_per_round / incremental.ms_per_round
                      : 0.0;
    row.parity_ok = outcomes_identical(baseline, incremental) &&
                    incremental.promotions > 0 &&
                    incremental.misses < baseline.misses;
    all_parity = all_parity && row.parity_ok;
    rows.push_back(row);
    std::printf("%8zu %11.3f ms %13.3f ms %8.2fx %8s\n", row.lookback,
                row.baseline_ms, row.incremental_ms, row.speedup,
                row.parity_ok ? "ok" : "FAIL");
  }

  FILE* f = std::fopen("BENCH_defense.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "defense_bench: cannot write BENCH_defense.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"BM_DefenseValidate\",\n"
               "  \"validator_samples\": %zu,\n"
               "  \"timed_rounds\": %zu,\n"
               "  \"smoke\": %s,\n"
               "  \"sweeps\": [\n",
               setup.holdout.size(), setup.timed, smoke ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(f,
                 "    {\"lookback\": %zu, \"baseline_ms\": %.3f, "
                 "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                 "\"parity_ok\": %s}%s\n",
                 row.lookback, row.baseline_ms, row.incremental_ms,
                 row.speedup, row.parity_ok ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"parity_ok\": %s\n"
               "}\n",
               all_parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_defense.json\n");
  return all_parity ? 0 : 1;
}

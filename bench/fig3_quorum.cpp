// Figure 3: FP/FN rates vs quorum threshold q ∈ [3..9] for BAFFLE-C and
// BAFFLE (BAFFLE-S is constant in q), per data split and dataset.
//
// Methodology note: the paper reruns the full experiment per q. Here the
// trajectory is generated once per (dataset, split, mode) at the
// reference q = 5, and the per-round reject-vote counts are re-thresholded
// for every q — identical counting, minus the second-order effect of a
// different q changing which rounds got rolled back. The reference-q
// trajectory is the paper's recommended operating point, so the curves'
// shape is preserved (and EXPERIMENTS.md records the approximation).

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

namespace {

struct Rates {
  double fp = 0.0, fn = 0.0;
};

/// Re-thresholds recorded vote counts at quorum q.
Rates rates_at_quorum(const std::vector<ExperimentResult>& runs,
                      std::size_t q) {
  std::size_t clean = 0, fp = 0, pois = 0, fn = 0;
  for (const auto& run : runs) {
    for (const auto& r : run.rounds) {
      if (!r.defense_active) continue;
      const bool reject = r.reject_votes >= q;
      if (r.poisoned) {
        ++pois;
        if (!reject) ++fn;
      } else {
        ++clean;
        if (reject) ++fp;
      }
    }
  }
  Rates out;
  if (clean > 0) out.fp = static_cast<double>(fp) / clean;
  if (pois > 0) out.fn = static_cast<double>(fn) / pois;
  return out;
}

}  // namespace

int main() {
  print_banner("Figure 3 — detection rates vs quorum threshold q",
               "BaFFLe (ICDCS'21), Fig. 3");

  const std::size_t reps = bench_reps();
  CsvWriter csv(bench::csv_path("fig3"),
                {"dataset", "split", "mode", "q", "fp", "fn"});

  for (TaskKind task : {TaskKind::kVision10, TaskKind::kFemnist62}) {
    std::printf("\n=== dataset: %s ===\n", task_kind_name(task));
    for (double sfrac : bench::server_fractions(task)) {
      std::printf("\n-- split %s --\n",
                  bench::split_name(task, sfrac).c_str());
      TextTable table({"q", "BAFFLE-C FP", "BAFFLE-C FN", "BAFFLE FP",
                       "BAFFLE FN", "BAFFLE-S FP", "BAFFLE-S FN"});

      const auto run_mode = [&](DefenseMode mode) {
        const ExperimentConfig cfg =
            bench::stable_config(task, sfrac, mode, /*lookback=*/20,
                                 /*quorum=*/5);
        return run_repeated(cfg, reps, 3000).runs;
      };
      const auto c_runs = run_mode(DefenseMode::kClientsOnly);
      const auto cs_runs = run_mode(DefenseMode::kClientsAndServer);
      const auto s_runs = run_mode(DefenseMode::kServerOnly);
      const Rates s = rates_at_quorum(s_runs, 1);  // server vote decides

      for (std::size_t q = 3; q <= 9; ++q) {
        const Rates c = rates_at_quorum(c_runs, q);
        const Rates cs = rates_at_quorum(cs_runs, q);
        table.row({std::to_string(q), format_rate(c.fp), format_rate(c.fn),
                   format_rate(cs.fp), format_rate(cs.fn), format_rate(s.fp),
                   format_rate(s.fn)});
        csv.row({task_kind_name(task), bench::split_name(task, sfrac), "C",
                 std::to_string(q), CsvWriter::num(c.fp),
                 CsvWriter::num(c.fn)});
        csv.row({task_kind_name(task), bench::split_name(task, sfrac), "C+S",
                 std::to_string(q), CsvWriter::num(cs.fp),
                 CsvWriter::num(cs.fn)});
        csv.row({task_kind_name(task), bench::split_name(task, sfrac), "S",
                 std::to_string(q), CsvWriter::num(s.fp),
                 CsvWriter::num(s.fn)});
      }
      std::printf("%s", table.render().c_str());
    }
  }

  std::printf(
      "\npaper shape: FN approaches 0 for q <= 7 and FP grows slightly as\n"
      "q decreases; 5 <= q <= 7 is the safe band; the feedback loop beats\n"
      "BAFFLE-S's ~0.2 FP throughout; FEMNIST is insensitive to q (all\n"
      "honest validators detect the label flip). CSV: %s\n",
      bench::csv_path("fig3").c_str());
  return 0;
}

// Table II: FN rates against adaptive vs non-adaptive injections for
// BAFFLE-C / BAFFLE-S / BAFFLE across the CIFAR-10-like data splits.
// The adaptive attacker runs the defense's own validation function on
// its local data and scales the injection back until it self-passes;
// only self-passed injections count (the paper's "adaptive injections").

#include <cstdio>

#include "bench_common.hpp"

using namespace baffle;

namespace {

/// FN over recorded injections, pooled across repetitions.
double injection_fn_rate(const std::vector<ExperimentResult>& runs) {
  std::size_t injections = 0, missed = 0;
  for (const auto& run : runs) {
    for (const auto& inj : run.injections) {
      ++injections;
      if (!inj.rejected) ++missed;
    }
  }
  return injections == 0 ? 0.0
                         : static_cast<double>(missed) /
                               static_cast<double>(injections);
}

std::size_t total_skipped(const std::vector<ExperimentResult>& runs) {
  std::size_t n = 0;
  for (const auto& run : runs) n += run.adaptive_skipped;
  return n;
}

}  // namespace

int main() {
  print_banner("Table II — FN rates against adaptive injections",
               "BaFFLe (ICDCS'21), Table II");

  const std::size_t reps = bench_reps();
  const TaskKind task = TaskKind::kVision10;
  const std::vector<std::pair<DefenseMode, const char*>> modes{
      {DefenseMode::kClientsOnly, "C"},
      {DefenseMode::kServerOnly, "S"},
      {DefenseMode::kClientsAndServer, "C+S"}};

  CsvWriter csv(bench::csv_path("table2"),
                {"split", "attack", "mode", "fn", "adaptive_skipped"});
  TextTable table({"split", "attack", "mode", "FN rate", "skipped"});

  for (double sfrac : bench::server_fractions(task)) {
    for (bool adaptive : {false, true}) {
      for (const auto& [mode, mode_name] : modes) {
        ExperimentConfig cfg =
            bench::stable_config(task, sfrac, mode, 20, 5);
        cfg.schedule.adaptive = adaptive;
        const auto rep = run_repeated(cfg, reps, 7000);
        const double fn = injection_fn_rate(rep.runs);
        const std::size_t skipped = adaptive ? total_skipped(rep.runs) : 0;
        table.row({bench::split_name(task, sfrac),
                   adaptive ? "Adaptive" : "Non-Adaptive", mode_name,
                   format_rate(fn), std::to_string(skipped)});
        csv.row({bench::split_name(task, sfrac),
                 adaptive ? "adaptive" : "non-adaptive", mode_name,
                 CsvWriter::num(fn), std::to_string(skipped)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper shape: the feedback loop (C, C+S) keeps FN at/near 0 even\n"
      "for adaptive injections; server-only misses a sizeable fraction\n"
      "(paper: 33%% FN on two splits) because a single validation view is\n"
      "easier to fool. 'skipped' counts rounds the adaptive attacker sat\n"
      "out after failing its own check. CSV: %s\n",
      bench::csv_path("table2").c_str());
  return 0;
}

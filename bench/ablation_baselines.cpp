// Ablation A4: BaFFLe vs Byzantine-robust aggregation baselines under
// the single-client boosted model-replacement attack (stable-model
// scenario). Besides effectiveness, the table records each rule's
// secure-aggregation compatibility — the paper's structural argument:
// every update-inspection rule needs the individual updates.

#include <cstdio>

#include "baselines/flguard_lite.hpp"
#include "baselines/foolsgold.hpp"
#include "baselines/krum.hpp"
#include "baselines/median.hpp"
#include "baselines/norm_clip.hpp"
#include "baselines/rfa.hpp"
#include "baselines/trimmed_mean.hpp"
#include "bench_common.hpp"
#include "attack/backdoor.hpp"
#include "tensor/ops.hpp"

using namespace baffle;

namespace {

struct ArmResult {
  double main_acc = 0.0;
  double backdoor_acc = 0.0;
};

/// Drives the stable-model attack scenario with a caller-supplied
/// aggregation of the raw updates (robust baselines must see them
/// individually — which is exactly their secure-aggregation problem).
template <typename AggregateFn>
ArmResult run_with_aggregation(std::uint64_t seed, AggregateFn&& aggregate) {
  Rng rng(seed);
  ScenarioConfig scfg = vision_scenario(0.10);
  Scenario scenario = build_scenario(scfg, rng);
  Mlp global(scenario.arch);
  global.init(rng);
  TrainConfig pre;
  pre.epochs = 30;
  pre.batch_size = 64;
  pre.sgd.learning_rate = 0.05f;
  Rng pre_rng = rng.fork();
  train_sgd(global, scenario.task.train.features(),
            scenario.task.train.labels(), pre, pre_rng);

  HonestUpdateProvider honest(&scenario.clients, scenario.fl.local_train);
  ModelReplacementConfig attack;
  attack.task = scenario.backdoor;
  attack.poison_fraction = 0.3;
  attack.boost = static_cast<double>(scenario.fl.total_clients) /
                 scenario.fl.global_lr;
  attack.train = scenario.fl.local_train;
  attack.train.epochs = 8;
  attack.train.sgd.learning_rate = 0.05f;
  MaliciousUpdateProvider provider(honest, scenario.attacker_id,
                                   scenario.clients[scenario.attacker_id]
                                       .data(),
                                   scenario.task.backdoor_train, attack);

  const AttackSchedule schedule = AttackSchedule::stable_scenario();
  const ClientSampler sampler(scenario.fl.total_clients,
                              scenario.fl.clients_per_round);
  const float step_scale = static_cast<float>(
      scenario.fl.global_lr * scenario.fl.clients_per_round /
      scenario.fl.total_clients);

  const std::size_t rounds = bench_fast() ? 42 : 50;
  for (std::size_t r = 1; r <= rounds; ++r) {
    const bool poison = schedule.is_poison_round(r);
    auto contributors = sampler.sample_round(rng);
    if (poison) contributors[0] = scenario.attacker_id;
    provider.arm(poison);
    std::vector<ParamVec> updates;
    for (std::size_t id : contributors) {
      Rng crng = rng.fork();
      updates.push_back(provider.update_for(id, global, crng));
    }
    ParamVec delta = aggregate(updates, contributors);
    scale(delta, step_scale);  // same effective step as FedAvg's λn/N
    global.add_to_parameters(delta);
  }

  ArmResult out;
  out.main_acc = evaluate_confusion(global, scenario.task.test).accuracy();
  out.backdoor_acc = backdoor_accuracy(global, scenario.task.backdoor_test,
                                       scenario.backdoor.target_class);
  return out;
}

}  // namespace

int main() {
  print_banner("Ablation — BaFFLe vs robust-aggregation baselines",
               "BaFFLe (ICDCS'21), §I/§VII motivation");

  const std::size_t reps = bench_fast() ? 1 : 2;
  CsvWriter csv(bench::csv_path("ablation_baselines"),
                {"rule", "secure_agg_compatible", "main_acc",
                 "backdoor_acc"});
  TextTable table({"aggregation rule", "secure-agg?", "main acc",
                   "backdoor acc"});

  const auto report = [&](const char* name, const char* compat,
                          auto&& aggregate) {
    double main = 0.0, bd = 0.0;
    for (std::size_t i = 0; i < reps; ++i) {
      const ArmResult r = run_with_aggregation(17000 + i, aggregate);
      main += r.main_acc / static_cast<double>(reps);
      bd += r.backdoor_acc / static_cast<double>(reps);
    }
    table.row({name, compat, format_rate(main), format_rate(bd)});
    csv.row({name, compat, CsvWriter::num(main), CsvWriter::num(bd)});
  };

  report("fedavg (no defense)", "yes",
         [](const std::vector<ParamVec>& u, const auto&) {
           return mean_update(u);
         });
  report("krum (f=1)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return KrumAggregator(1).aggregate(u);
         });
  report("multi-krum (f=1)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return KrumAggregator(1, true).aggregate(u);
         });
  report("coordinate median", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return CoordinateMedianAggregator().aggregate(u);
         });
  report("trimmed mean (b=2)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return TrimmedMeanAggregator(2).aggregate(u);
         });
  report("rfa (geometric median)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return RfaAggregator(16).aggregate(u);
         });
  report("norm clipping (median)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return NormClipAggregator().aggregate(u);
         });
  report("flguard-lite (filter+clip+noise)", "NO",
         [](const std::vector<ParamVec>& u, const auto&) {
           return FlGuardLiteAggregator().aggregate(u);
         });
  {
    FoolsGold fg;
    report("foolsgold", "NO",
           [&fg](const std::vector<ParamVec>& u,
                 const std::vector<std::size_t>& ids) {
             return fg.aggregate(u, ids);
           });
  }

  // BaFFLe arm: the full defended pipeline (secure aggregation on).
  {
    ExperimentConfig cfg = bench::stable_config(
        TaskKind::kVision10, 0.10, DefenseMode::kClientsAndServer, 20, 5);
    cfg.track_accuracy = true;
    double main = 0.0, bd = 0.0;
    for (std::size_t i = 0; i < reps; ++i) {
      const auto r = run_experiment(cfg, 17000 + i);
      main += r.final_main_accuracy / static_cast<double>(reps);
      bd += r.final_backdoor_accuracy / static_cast<double>(reps);
    }
    table.row({"fedavg + BaFFLe", "yes", format_rate(main),
               format_rate(bd)});
    csv.row({"fedavg + BaFFLe", "yes", CsvWriter::num(main),
             CsvWriter::num(bd)});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: plain FedAvg ends fully backdoored; robust rules blunt\n"
      "the boosted update to varying degrees (and several still leak the\n"
      "backdoor under non-IID data) while requiring individual updates —\n"
      "incompatible with secure aggregation. BaFFLe keeps the backdoor\n"
      "out while staying compatible. CSV: %s\n",
      bench::csv_path("ablation_baselines").c_str());
  return 0;
}

// Quickstart: defend a federated-learning run against a single-shot
// model-replacement backdoor with BaFFLe.
//
// Builds the CIFAR-10-like scenario, trains to a stable model, lets an
// attacker inject poisoned updates at rounds 30/35/40, and shows the
// feedback loop rejecting them while clean rounds pass.

#include <cstdio>

#include "exp/experiment.hpp"

int main() {
  using namespace baffle;

  ExperimentConfig config;
  config.scenario = vision_scenario(/*server_fraction=*/0.10);
  config.feedback.mode = DefenseMode::kClientsAndServer;
  config.feedback.quorum = 5;                 // q
  config.feedback.validator.lookback = 20;    // ℓ
  config.schedule = AttackSchedule::stable_scenario();
  config.rounds = 50;
  config.defense_start = 20;

  std::printf("running 50 FL rounds (poison at 30, 35, 40)...\n");
  const ExperimentResult result = run_experiment(config, /*seed=*/42);

  std::printf("\n%-6s %-8s %-9s %-9s %-8s %s\n", "round", "poison",
              "verdict", "votes", "mainacc", "backdooracc");
  for (const auto& r : result.rounds) {
    if (!r.poisoned && r.round % 10 != 0) continue;  // keep output short
    std::printf("%-6zu %-8s %-9s %zu/%-7zu %-8.3f %.3f\n", r.round,
                r.poisoned ? "YES" : "-",
                !r.defense_active ? "(off)" : (r.rejected ? "REJECT" : "accept"),
                r.reject_votes, r.num_validators, r.main_accuracy,
                r.backdoor_accuracy);
  }
  std::printf("\nfalse-positive rate: %.3f   false-negative rate: %.3f\n",
              result.rates.fp_rate, result.rates.fn_rate);
  std::printf("final main accuracy: %.3f   final backdoor accuracy: %.3f\n",
              result.final_main_accuracy, result.final_backdoor_accuracy);
  return 0;
}

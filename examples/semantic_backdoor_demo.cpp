// Semantic-backdoor anatomy: shows the attacker's view of a model-
// replacement injection — how the poisoned blend is built, what the
// boosted update does to the global model, and why per-class error
// rates betray it even though the trigger sub-population never appears
// in any defender's data.

#include <cstdio>

#include "attack/model_replacement.hpp"
#include "metrics/confusion.hpp"
#include "nn/train.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace baffle;
  Rng rng(99);

  // 1. The task: 10 classes; class 1 ('cars') has a sub-population with
  //    a distinctive feature ('striped background') that the attacker
  //    wants classified as class 2 ('birds').
  const SynthTaskConfig cfg = synth_vision10_config();
  const SynthTask task = make_synth_task(cfg, rng);
  std::printf("task: %zu classes, %zu train / %zu test samples\n",
              cfg.num_classes, task.train.size(), task.test.size());
  std::printf("backdoor pool: %zu instances of class %d carrying the "
              "semantic trigger\n\n",
              task.backdoor_train.size(), cfg.backdoor_source);

  // 2. A stable global model (as after many FL rounds).
  Mlp global(MlpConfig{{cfg.dim, 64, cfg.num_classes}, Activation::kRelu});
  global.init(rng);
  TrainConfig pre;
  pre.epochs = 30;
  pre.batch_size = 64;
  pre.sgd.learning_rate = 0.05f;
  train_sgd(global, task.train.features(), task.train.labels(), pre, rng);
  std::printf("stable global model: main accuracy %.3f, backdoor accuracy "
              "%.3f\n",
              evaluate_confusion(global, task.test).accuracy(),
              backdoor_accuracy(global, task.backdoor_test,
                                cfg.backdoor_target));

  // 3. The attacker's poisoned blend: clean shard + relabelled backdoor
  //    instances (multi-task learning).
  const BackdoorTask bd{BackdoorKind::kSemantic, cfg.backdoor_source,
                        cfg.backdoor_target};
  const Dataset attacker_shard = task.train.sample(400, rng);
  const Dataset blend =
      make_poisoned_training_set(attacker_shard, task.backdoor_train, bd,
                                 /*poison_fraction=*/0.3, rng);
  std::printf("attacker blend: %zu samples (%zu clean + ~30%% poisoned)\n",
              blend.size(), attacker_shard.size());

  // 4. Craft the replacement update with the FedAvg boost γ = N/λ.
  ModelReplacementConfig attack;
  attack.task = bd;
  attack.poison_fraction = 0.3;
  attack.boost = 100.0;  // N = 100, λ = 1
  attack.train.epochs = 8;
  attack.train.sgd.learning_rate = 0.05f;
  const ParamVec update = craft_replacement_update(
      global, attacker_shard, task.backdoor_train, attack, rng);
  std::printf("boosted update norm: %.1f (honest updates are ~100x "
              "smaller)\n\n",
              l2_norm(update));

  // 5. What aggregation does: delta = (λ/N) * U_adv ≈ L_adv - G.
  Mlp poisoned = global;
  ParamVec delta = update;
  scale(delta, 1.0f / 100.0f);
  poisoned.add_to_parameters(delta);
  std::printf("after aggregation, the global model is replaced:\n");
  std::printf("  main accuracy:     %.3f\n",
              evaluate_confusion(poisoned, task.test).accuracy());
  std::printf("  backdoor accuracy: %.3f  <- 'striped cars' now 'birds'\n\n",
              backdoor_accuracy(poisoned, task.backdoor_test,
                                cfg.backdoor_target));

  // 6. The defender's signal: per-class error rates on clean data,
  //    which contain NO backdoor instances.
  const auto before = evaluate_confusion(global, task.test)
                          .per_class_error_rates();
  const auto after = evaluate_confusion(poisoned, task.test)
                         .per_class_error_rates();
  std::printf("per-class error rate shift on clean validation data:\n");
  for (std::size_t y = 0; y < cfg.num_classes; ++y) {
    std::printf("  class %zu: %.3f -> %.3f%s\n", y, before[y], after[y],
                static_cast<int>(y) == cfg.backdoor_source
                    ? "   <- source-class side effect"
                    : "");
  }
  std::printf("\nthe backdoor was optimized on the attacker's data only;\n"
              "its side effects on everyone else's data are what BaFFLe's\n"
              "validation function detects.\n");
  return 0;
}

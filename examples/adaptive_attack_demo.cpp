// Adaptive attacker demo: the attacker knows the defense, runs BaFFLe's
// own VALIDATE on its local data, scales its injection back until it
// self-passes — and still gets caught by validators holding data it has
// never seen. Reproduces the intuition behind Table II / Figure 5.

#include <cstdio>

#include "exp/experiment.hpp"

int main() {
  using namespace baffle;

  ExperimentConfig config;
  config.scenario = vision_scenario(/*server_fraction=*/0.10);
  config.feedback.mode = DefenseMode::kClientsAndServer;
  config.feedback.quorum = 5;
  config.feedback.validator.lookback = 20;
  config.schedule = AttackSchedule::stable_scenario();
  config.schedule.adaptive = true;  // defense-aware attacker
  config.rounds = 50;
  config.defense_start = 20;

  std::printf("adaptive attacker: knows l=20, q=5; self-validates every\n"
              "injection with the defense's own algorithm on its local "
              "data\n\n");
  const ExperimentResult result = run_experiment(config, 2027);

  std::printf("%-6s %-14s %-8s %-10s\n", "round", "injection", "alpha",
              "verdict");
  for (const auto& inj : result.injections) {
    std::printf("%-6zu self-passed    %-8.2f %s (%zu/%zu votes)\n",
                inj.round, inj.alpha,
                inj.rejected ? "REJECTED" : "missed", inj.reject_votes,
                inj.total_voters);
  }
  if (result.adaptive_skipped > 0) {
    std::printf("(+ %zu scheduled injections the attacker aborted after\n"
                "   failing its own check at every scale)\n",
                result.adaptive_skipped);
  }

  std::printf("\nfp rate on clean rounds: %.3f\n", result.rates.fp_rate);
  std::printf("final main accuracy: %.3f, final backdoor accuracy: %.3f\n",
              result.final_main_accuracy, result.final_backdoor_accuracy);
  std::printf(
      "\nwhy it fails: the attacker can make the poisoned model behave on\n"
      "ITS data, but each validating client checks on a private non-IID\n"
      "shard the attacker cannot simulate — decentralized data is itself\n"
      "the defense (paper, SVI-C).\n");
  return 0;
}

// Secure aggregation walk-through: pairwise masking, exact cancellation
// in Z_2^64 fixed-point arithmetic, dropout recovery, and the property
// BaFFLe is built around — the server learns the SUM of the updates and
// nothing about any individual one.

#include <cstdio>

#include "fl/secure_agg.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

int main() {
  using namespace baffle;

  SecureAggConfig cfg;
  cfg.round_key = 0xC0FFEE;  // per-round key (DH agreement in the real protocol)
  const SecureAggregation secure(cfg);

  // Five clients, tiny 4-dimensional "updates" for readability.
  const std::vector<std::size_t> participants{10, 11, 12, 13, 14};
  Rng rng(5);
  std::vector<ParamVec> updates;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    ParamVec u(4);
    for (float& x : u) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    updates.push_back(std::move(u));
  }

  std::printf("client updates (private, never sent in the clear):\n");
  for (std::size_t i = 0; i < updates.size(); ++i) {
    std::printf("  client %zu: [% .4f % .4f % .4f % .4f]\n",
                participants[i], updates[i][0], updates[i][1],
                updates[i][2], updates[i][3]);
  }

  // Client side: each masks its quantized update with pairwise PRG masks.
  std::vector<MaskedVec> masked;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    masked.push_back(
        secure.mask_update(updates[i], participants[i], participants));
  }
  std::printf("\nwhat the server receives (masked, looks uniform):\n");
  for (std::size_t i = 0; i < masked.size(); ++i) {
    std::printf("  client %zu: [%016llx %016llx ...]\n", participants[i],
                static_cast<unsigned long long>(masked[i][0]),
                static_cast<unsigned long long>(masked[i][1]));
  }

  // Server side: sum the masked vectors; all pairwise masks cancel.
  const ParamVec total =
      secure.unmask_sum(masked, participants, participants, 4);
  const ParamVec expected = sum_updates(updates);
  std::printf("\nunmasked sum vs true sum:\n");
  for (std::size_t j = 0; j < 4; ++j) {
    std::printf("  [% .6f] vs [% .6f]  (|diff| = %.2e)\n", total[j],
                expected[j], std::abs(total[j] - expected[j]));
  }

  // Dropout: client 12 sends nothing; the server reconstructs its
  // pairwise masks (Shamir-share recovery in the real protocol) and the
  // surviving four updates still sum exactly.
  std::printf("\n--- dropout: client 12 never responds ---\n");
  std::vector<MaskedVec> survived;
  std::vector<std::size_t> senders;
  ParamVec expected_survivors(4, 0.0f);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i] == 12) continue;
    survived.push_back(masked[i]);
    senders.push_back(participants[i]);
    axpy(1.0f, updates[i], expected_survivors);
  }
  const ParamVec recovered =
      secure.unmask_sum(survived, senders, participants, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    std::printf("  [% .6f] vs [% .6f]\n", recovered[j],
                expected_survivors[j]);
  }

  std::printf("\nBaFFLe's compatibility claim rests on this: the defense\n"
              "only ever inspects the aggregated global model, so masking\n"
              "individual updates costs it nothing — unlike Krum, median,\n"
              "FoolsGold, and the other update-inspection defenses.\n");
  return 0;
}

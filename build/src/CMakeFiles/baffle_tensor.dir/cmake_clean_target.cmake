file(REMOVE_RECURSE
  "libbaffle_tensor.a"
)

# Empty dependencies file for baffle_tensor.
# This may be replaced when dependencies are built.

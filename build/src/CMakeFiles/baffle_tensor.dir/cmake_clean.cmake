file(REMOVE_RECURSE
  "CMakeFiles/baffle_tensor.dir/tensor/matrix.cpp.o"
  "CMakeFiles/baffle_tensor.dir/tensor/matrix.cpp.o.d"
  "CMakeFiles/baffle_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/baffle_tensor.dir/tensor/ops.cpp.o.d"
  "libbaffle_tensor.a"
  "libbaffle_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbaffle_attack.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/adaptive.cpp" "src/CMakeFiles/baffle_attack.dir/attack/adaptive.cpp.o" "gcc" "src/CMakeFiles/baffle_attack.dir/attack/adaptive.cpp.o.d"
  "/root/repo/src/attack/backdoor.cpp" "src/CMakeFiles/baffle_attack.dir/attack/backdoor.cpp.o" "gcc" "src/CMakeFiles/baffle_attack.dir/attack/backdoor.cpp.o.d"
  "/root/repo/src/attack/dba.cpp" "src/CMakeFiles/baffle_attack.dir/attack/dba.cpp.o" "gcc" "src/CMakeFiles/baffle_attack.dir/attack/dba.cpp.o.d"
  "/root/repo/src/attack/malicious_voter.cpp" "src/CMakeFiles/baffle_attack.dir/attack/malicious_voter.cpp.o" "gcc" "src/CMakeFiles/baffle_attack.dir/attack/malicious_voter.cpp.o.d"
  "/root/repo/src/attack/model_replacement.cpp" "src/CMakeFiles/baffle_attack.dir/attack/model_replacement.cpp.o" "gcc" "src/CMakeFiles/baffle_attack.dir/attack/model_replacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

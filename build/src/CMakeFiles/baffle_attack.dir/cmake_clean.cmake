file(REMOVE_RECURSE
  "CMakeFiles/baffle_attack.dir/attack/adaptive.cpp.o"
  "CMakeFiles/baffle_attack.dir/attack/adaptive.cpp.o.d"
  "CMakeFiles/baffle_attack.dir/attack/backdoor.cpp.o"
  "CMakeFiles/baffle_attack.dir/attack/backdoor.cpp.o.d"
  "CMakeFiles/baffle_attack.dir/attack/dba.cpp.o"
  "CMakeFiles/baffle_attack.dir/attack/dba.cpp.o.d"
  "CMakeFiles/baffle_attack.dir/attack/malicious_voter.cpp.o"
  "CMakeFiles/baffle_attack.dir/attack/malicious_voter.cpp.o.d"
  "CMakeFiles/baffle_attack.dir/attack/model_replacement.cpp.o"
  "CMakeFiles/baffle_attack.dir/attack/model_replacement.cpp.o.d"
  "libbaffle_attack.a"
  "libbaffle_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for baffle_attack.
# This may be replaced when dependencies are built.

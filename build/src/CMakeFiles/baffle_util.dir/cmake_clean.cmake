file(REMOVE_RECURSE
  "CMakeFiles/baffle_util.dir/util/csv.cpp.o"
  "CMakeFiles/baffle_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/baffle_util.dir/util/logging.cpp.o"
  "CMakeFiles/baffle_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/baffle_util.dir/util/rng.cpp.o"
  "CMakeFiles/baffle_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/baffle_util.dir/util/serialization.cpp.o"
  "CMakeFiles/baffle_util.dir/util/serialization.cpp.o.d"
  "CMakeFiles/baffle_util.dir/util/stats.cpp.o"
  "CMakeFiles/baffle_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/baffle_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/baffle_util.dir/util/thread_pool.cpp.o.d"
  "libbaffle_util.a"
  "libbaffle_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

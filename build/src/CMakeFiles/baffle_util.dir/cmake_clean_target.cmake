file(REMOVE_RECURSE
  "libbaffle_util.a"
)

# Empty compiler generated dependencies file for baffle_util.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for baffle_exp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/baffle_exp.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/baffle_exp.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/baffle_exp.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/baffle_exp.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/rho.cpp" "src/CMakeFiles/baffle_exp.dir/exp/rho.cpp.o" "gcc" "src/CMakeFiles/baffle_exp.dir/exp/rho.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/baffle_exp.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/baffle_exp.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/schedule.cpp" "src/CMakeFiles/baffle_exp.dir/exp/schedule.cpp.o" "gcc" "src/CMakeFiles/baffle_exp.dir/exp/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

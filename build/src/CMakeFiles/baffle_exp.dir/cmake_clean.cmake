file(REMOVE_RECURSE
  "CMakeFiles/baffle_exp.dir/exp/experiment.cpp.o"
  "CMakeFiles/baffle_exp.dir/exp/experiment.cpp.o.d"
  "CMakeFiles/baffle_exp.dir/exp/report.cpp.o"
  "CMakeFiles/baffle_exp.dir/exp/report.cpp.o.d"
  "CMakeFiles/baffle_exp.dir/exp/rho.cpp.o"
  "CMakeFiles/baffle_exp.dir/exp/rho.cpp.o.d"
  "CMakeFiles/baffle_exp.dir/exp/scenario.cpp.o"
  "CMakeFiles/baffle_exp.dir/exp/scenario.cpp.o.d"
  "CMakeFiles/baffle_exp.dir/exp/schedule.cpp.o"
  "CMakeFiles/baffle_exp.dir/exp/schedule.cpp.o.d"
  "libbaffle_exp.a"
  "libbaffle_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbaffle_exp.a"
)

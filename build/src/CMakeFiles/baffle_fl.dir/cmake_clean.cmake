file(REMOVE_RECURSE
  "CMakeFiles/baffle_fl.dir/fl/aggregator.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/aggregator.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/client.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/client.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/comm.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/comm.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/sampler.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/sampler.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/secure_agg.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/secure_agg.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/server.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/server.cpp.o.d"
  "CMakeFiles/baffle_fl.dir/fl/update.cpp.o"
  "CMakeFiles/baffle_fl.dir/fl/update.cpp.o.d"
  "libbaffle_fl.a"
  "libbaffle_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregator.cpp" "src/CMakeFiles/baffle_fl.dir/fl/aggregator.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/aggregator.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/CMakeFiles/baffle_fl.dir/fl/client.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/client.cpp.o.d"
  "/root/repo/src/fl/comm.cpp" "src/CMakeFiles/baffle_fl.dir/fl/comm.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/comm.cpp.o.d"
  "/root/repo/src/fl/sampler.cpp" "src/CMakeFiles/baffle_fl.dir/fl/sampler.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/sampler.cpp.o.d"
  "/root/repo/src/fl/secure_agg.cpp" "src/CMakeFiles/baffle_fl.dir/fl/secure_agg.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/secure_agg.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/CMakeFiles/baffle_fl.dir/fl/server.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/server.cpp.o.d"
  "/root/repo/src/fl/update.cpp" "src/CMakeFiles/baffle_fl.dir/fl/update.cpp.o" "gcc" "src/CMakeFiles/baffle_fl.dir/fl/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

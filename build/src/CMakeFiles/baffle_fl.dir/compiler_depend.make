# Empty compiler generated dependencies file for baffle_fl.
# This may be replaced when dependencies are built.

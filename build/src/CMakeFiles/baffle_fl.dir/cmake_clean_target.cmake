file(REMOVE_RECURSE
  "libbaffle_fl.a"
)

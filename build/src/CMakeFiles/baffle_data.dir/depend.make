# Empty dependencies file for baffle_data.
# This may be replaced when dependencies are built.

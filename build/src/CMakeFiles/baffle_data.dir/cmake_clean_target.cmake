file(REMOVE_RECURSE
  "libbaffle_data.a"
)

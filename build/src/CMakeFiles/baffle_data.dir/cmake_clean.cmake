file(REMOVE_RECURSE
  "CMakeFiles/baffle_data.dir/data/backdoor_data.cpp.o"
  "CMakeFiles/baffle_data.dir/data/backdoor_data.cpp.o.d"
  "CMakeFiles/baffle_data.dir/data/dataset.cpp.o"
  "CMakeFiles/baffle_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/baffle_data.dir/data/partition.cpp.o"
  "CMakeFiles/baffle_data.dir/data/partition.cpp.o.d"
  "CMakeFiles/baffle_data.dir/data/synth.cpp.o"
  "CMakeFiles/baffle_data.dir/data/synth.cpp.o.d"
  "libbaffle_data.a"
  "libbaffle_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbaffle_core.a"
)

# Empty compiler generated dependencies file for baffle_core.
# This may be replaced when dependencies are built.

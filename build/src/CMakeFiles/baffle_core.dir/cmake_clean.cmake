file(REMOVE_RECURSE
  "CMakeFiles/baffle_core.dir/core/defense.cpp.o"
  "CMakeFiles/baffle_core.dir/core/defense.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/error_variation.cpp.o"
  "CMakeFiles/baffle_core.dir/core/error_variation.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/feedback_loop.cpp.o"
  "CMakeFiles/baffle_core.dir/core/feedback_loop.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/history.cpp.o"
  "CMakeFiles/baffle_core.dir/core/history.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/lof.cpp.o"
  "CMakeFiles/baffle_core.dir/core/lof.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/prediction_cache.cpp.o"
  "CMakeFiles/baffle_core.dir/core/prediction_cache.cpp.o.d"
  "CMakeFiles/baffle_core.dir/core/validate.cpp.o"
  "CMakeFiles/baffle_core.dir/core/validate.cpp.o.d"
  "libbaffle_core.a"
  "libbaffle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/defense.cpp" "src/CMakeFiles/baffle_core.dir/core/defense.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/defense.cpp.o.d"
  "/root/repo/src/core/error_variation.cpp" "src/CMakeFiles/baffle_core.dir/core/error_variation.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/error_variation.cpp.o.d"
  "/root/repo/src/core/feedback_loop.cpp" "src/CMakeFiles/baffle_core.dir/core/feedback_loop.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/feedback_loop.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/CMakeFiles/baffle_core.dir/core/history.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/history.cpp.o.d"
  "/root/repo/src/core/lof.cpp" "src/CMakeFiles/baffle_core.dir/core/lof.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/lof.cpp.o.d"
  "/root/repo/src/core/prediction_cache.cpp" "src/CMakeFiles/baffle_core.dir/core/prediction_cache.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/prediction_cache.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/baffle_core.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/baffle_core.dir/core/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/baffle_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/compression.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/compression.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/dense.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/dense.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/model_codec.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/model_codec.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/sgd.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/sgd.cpp.o.d"
  "CMakeFiles/baffle_nn.dir/nn/train.cpp.o"
  "CMakeFiles/baffle_nn.dir/nn/train.cpp.o.d"
  "libbaffle_nn.a"
  "libbaffle_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for baffle_nn.
# This may be replaced when dependencies are built.

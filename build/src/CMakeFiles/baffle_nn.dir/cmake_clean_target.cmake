file(REMOVE_RECURSE
  "libbaffle_nn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/baffle_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/compression.cpp" "src/CMakeFiles/baffle_nn.dir/nn/compression.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/compression.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/baffle_nn.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/baffle_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/baffle_nn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/model_codec.cpp" "src/CMakeFiles/baffle_nn.dir/nn/model_codec.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/model_codec.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/CMakeFiles/baffle_nn.dir/nn/sgd.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/sgd.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/CMakeFiles/baffle_nn.dir/nn/train.cpp.o" "gcc" "src/CMakeFiles/baffle_nn.dir/nn/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

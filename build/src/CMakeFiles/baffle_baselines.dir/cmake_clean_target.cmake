file(REMOVE_RECURSE
  "libbaffle_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/baffle_baselines.dir/baselines/flguard_lite.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/flguard_lite.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/foolsgold.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/foolsgold.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/krum.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/krum.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/median.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/median.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/norm_clip.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/norm_clip.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/rfa.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/rfa.cpp.o.d"
  "CMakeFiles/baffle_baselines.dir/baselines/trimmed_mean.cpp.o"
  "CMakeFiles/baffle_baselines.dir/baselines/trimmed_mean.cpp.o.d"
  "libbaffle_baselines.a"
  "libbaffle_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/flguard_lite.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/flguard_lite.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/flguard_lite.cpp.o.d"
  "/root/repo/src/baselines/foolsgold.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/foolsgold.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/foolsgold.cpp.o.d"
  "/root/repo/src/baselines/krum.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/krum.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/krum.cpp.o.d"
  "/root/repo/src/baselines/median.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/median.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/median.cpp.o.d"
  "/root/repo/src/baselines/norm_clip.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/norm_clip.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/norm_clip.cpp.o.d"
  "/root/repo/src/baselines/rfa.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/rfa.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/rfa.cpp.o.d"
  "/root/repo/src/baselines/trimmed_mean.cpp" "src/CMakeFiles/baffle_baselines.dir/baselines/trimmed_mean.cpp.o" "gcc" "src/CMakeFiles/baffle_baselines.dir/baselines/trimmed_mean.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

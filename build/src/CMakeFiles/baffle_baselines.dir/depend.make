# Empty dependencies file for baffle_baselines.
# This may be replaced when dependencies are built.

# Empty dependencies file for baffle_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbaffle_metrics.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/confusion.cpp" "src/CMakeFiles/baffle_metrics.dir/metrics/confusion.cpp.o" "gcc" "src/CMakeFiles/baffle_metrics.dir/metrics/confusion.cpp.o.d"
  "/root/repo/src/metrics/rates.cpp" "src/CMakeFiles/baffle_metrics.dir/metrics/rates.cpp.o" "gcc" "src/CMakeFiles/baffle_metrics.dir/metrics/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

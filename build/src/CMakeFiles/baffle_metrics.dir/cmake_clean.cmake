file(REMOVE_RECURSE
  "CMakeFiles/baffle_metrics.dir/metrics/confusion.cpp.o"
  "CMakeFiles/baffle_metrics.dir/metrics/confusion.cpp.o.d"
  "CMakeFiles/baffle_metrics.dir/metrics/rates.cpp.o"
  "CMakeFiles/baffle_metrics.dir/metrics/rates.cpp.o.d"
  "libbaffle_metrics.a"
  "libbaffle_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

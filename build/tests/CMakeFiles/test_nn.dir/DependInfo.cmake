
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/compression_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/compression_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/compression_test.cpp.o.d"
  "/root/repo/tests/nn/dense_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/dense_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/dense_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/mlp_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o.d"
  "/root/repo/tests/nn/model_codec_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/model_codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/model_codec_test.cpp.o.d"
  "/root/repo/tests/nn/sgd_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/sgd_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/sgd_test.cpp.o.d"
  "/root/repo/tests/nn/train_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/train_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/train_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/adaptive_pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/adaptive_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/adaptive_pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/defense_pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/defense_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/defense_pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/early_scenario_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/early_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/early_scenario_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/experiment_features_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/experiment_features_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/experiment_features_test.cpp.o.d"
  "/root/repo/tests/integration/secure_agg_pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/secure_agg_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/secure_agg_pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_fl.dir/fl/aggregator_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/aggregator_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/client_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/client_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/comm_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/comm_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/sampler_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/sampler_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/secure_agg_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/secure_agg_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/server_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/server_test.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/update_test.cpp.o"
  "CMakeFiles/test_fl.dir/fl/update_test.cpp.o.d"
  "test_fl"
  "test_fl.pdb"
  "test_fl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/flguard_lite_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/flguard_lite_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/foolsgold_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/foolsgold_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/krum_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/krum_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/median_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/median_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/norm_clip_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/norm_clip_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/rfa_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/rfa_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/trimmed_mean_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/trimmed_mean_test.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

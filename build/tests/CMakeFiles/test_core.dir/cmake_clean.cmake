file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/defense_test.cpp.o"
  "CMakeFiles/test_core.dir/core/defense_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/error_variation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/error_variation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/feedback_loop_test.cpp.o"
  "CMakeFiles/test_core.dir/core/feedback_loop_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/history_test.cpp.o"
  "CMakeFiles/test_core.dir/core/history_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/lof_test.cpp.o"
  "CMakeFiles/test_core.dir/core/lof_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/prediction_cache_test.cpp.o"
  "CMakeFiles/test_core.dir/core/prediction_cache_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/validate_test.cpp.o"
  "CMakeFiles/test_core.dir/core/validate_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

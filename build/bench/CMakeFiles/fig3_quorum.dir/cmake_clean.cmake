file(REMOVE_RECURSE
  "CMakeFiles/fig3_quorum.dir/fig3_quorum.cpp.o"
  "CMakeFiles/fig3_quorum.dir/fig3_quorum.cpp.o.d"
  "fig3_quorum"
  "fig3_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_quorum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_adaptive.dir/table2_adaptive.cpp.o"
  "CMakeFiles/table2_adaptive.dir/table2_adaptive.cpp.o.d"
  "table2_adaptive"
  "table2_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_noniid.dir/ablation_noniid.cpp.o"
  "CMakeFiles/ablation_noniid.dir/ablation_noniid.cpp.o.d"
  "ablation_noniid"
  "ablation_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_noniid.
# This may be replaced when dependencies are built.

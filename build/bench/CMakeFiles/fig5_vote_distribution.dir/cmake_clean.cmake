file(REMOVE_RECURSE
  "CMakeFiles/fig5_vote_distribution.dir/fig5_vote_distribution.cpp.o"
  "CMakeFiles/fig5_vote_distribution.dir/fig5_vote_distribution.cpp.o.d"
  "fig5_vote_distribution"
  "fig5_vote_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vote_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

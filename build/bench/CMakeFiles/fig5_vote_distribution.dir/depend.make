# Empty dependencies file for fig5_vote_distribution.
# This may be replaced when dependencies are built.

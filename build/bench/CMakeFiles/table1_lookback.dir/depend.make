# Empty dependencies file for table1_lookback.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_lookback.dir/table1_lookback.cpp.o"
  "CMakeFiles/table1_lookback.dir/table1_lookback.cpp.o.d"
  "table1_lookback"
  "table1_lookback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lookback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_perclass_error.
# This may be replaced when dependencies are built.

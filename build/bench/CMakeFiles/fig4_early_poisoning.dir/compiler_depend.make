# Empty compiler generated dependencies file for fig4_early_poisoning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_early_poisoning.dir/fig4_early_poisoning.cpp.o"
  "CMakeFiles/fig4_early_poisoning.dir/fig4_early_poisoning.cpp.o.d"
  "fig4_early_poisoning"
  "fig4_early_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_early_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for adaptive_attack_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/adaptive_attack_demo.dir/adaptive_attack_demo.cpp.o"
  "CMakeFiles/adaptive_attack_demo.dir/adaptive_attack_demo.cpp.o.d"
  "adaptive_attack_demo"
  "adaptive_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_aggregation_demo.cpp" "examples/CMakeFiles/secure_aggregation_demo.dir/secure_aggregation_demo.cpp.o" "gcc" "examples/CMakeFiles/secure_aggregation_demo.dir/secure_aggregation_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/baffle_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baffle_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

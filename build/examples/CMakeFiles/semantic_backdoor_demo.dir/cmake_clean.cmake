file(REMOVE_RECURSE
  "CMakeFiles/semantic_backdoor_demo.dir/semantic_backdoor_demo.cpp.o"
  "CMakeFiles/semantic_backdoor_demo.dir/semantic_backdoor_demo.cpp.o.d"
  "semantic_backdoor_demo"
  "semantic_backdoor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_backdoor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

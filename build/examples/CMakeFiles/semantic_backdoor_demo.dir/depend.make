# Empty dependencies file for semantic_backdoor_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/baffle_sim.dir/baffle_sim.cpp.o"
  "CMakeFiles/baffle_sim.dir/baffle_sim.cpp.o.d"
  "baffle_sim"
  "baffle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baffle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for baffle_sim.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baffle_sim_help "/root/repo/build/tools/baffle_sim" "--help")
set_tests_properties(baffle_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(baffle_sim_defended_run "/root/repo/build/tools/baffle_sim" "--quiet=1" "--rounds=35" "--clients=30" "--defense-start=12" "--lookback=10" "--poison-rounds=25,30")
set_tests_properties(baffle_sim_defended_run PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(baffle_sim_rejects_unknown_arg "/root/repo/build/tools/baffle_sim" "bogus")
set_tests_properties(baffle_sim_rejects_unknown_arg PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")

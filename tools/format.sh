#!/usr/bin/env bash
# clang-format wrapper. Default mode rewrites files in place; --check
# only reports (used by CI). Exits 0 with a SKIP notice when
# clang-format is not installed so local gates keep working on boxes
# without LLVM tooling.
#
#   tools/format.sh           # format src/ tests/ bench/ tools/ in place
#   tools/format.sh --check   # fail if anything would be reformatted
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

FMT="$(command -v clang-format || true)"
if [[ -z "${FMT}" ]]; then
  echo "format: SKIP (clang-format not installed)"
  exit 0
fi

mapfile -t FILES < <(find src tests bench tools \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

if [[ "${CHECK}" -eq 1 ]]; then
  if "${FMT}" --dry-run --Werror "${FILES[@]}"; then
    echo "format: clean (${#FILES[@]} files)"
  else
    echo "format: run tools/format.sh to fix"
    exit 1
  fi
else
  "${FMT}" -i "${FILES[@]}"
  echo "format: formatted ${#FILES[@]} files"
fi

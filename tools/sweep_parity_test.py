#!/usr/bin/env python3
"""Cross-thread-count sweep determinism check.

Runs the same tiny grid through baffle_sweep twice — once with
BAFFLE_THREADS=1 (serial pool) and once with BAFFLE_THREADS=4 — and
asserts every emitted CSV is byte-identical. The global thread pool is
sized once per process, so this has to be an out-of-process test; it is
the direct check that per-cell seeds are a pure function of cell
coordinates and never of scheduling.

Usage: sweep_parity_test.py /path/to/baffle_sweep
"""

import os
import subprocess
import sys
import tempfile

FLAGS = [
    "--lookback=8",
    "--q=2,3",
    "--reps=2",
    "--rounds=14",
    "--clients=30",
    "--defense-start=8",
    "--train-per-class=60",
    "--poison-rounds=11",
    "--quiet=1",
]


def run_sweep(binary, out_dir, threads, extra=()):
    env = dict(os.environ, BAFFLE_THREADS=str(threads))
    cmd = [binary, *FLAGS, *extra, f"--out-dir={out_dir}"]
    subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
    csvs = {}
    for name in sorted(os.listdir(out_dir)):
        if name.endswith(".csv"):
            with open(os.path.join(out_dir, name), "rb") as f:
                csvs[name] = f.read()
    return csvs


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} /path/to/baffle_sweep", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        dirs = [os.path.join(tmp, d) for d in ("t1", "t4", "serial")]
        for d in dirs:
            os.mkdir(d)
        t1 = run_sweep(binary, dirs[0], threads=1)
        t4 = run_sweep(binary, dirs[1], threads=4)
        serial = run_sweep(binary, dirs[2], threads=4, extra=["--serial=1"])

    if not t1 or "sweep_results.csv" not in t1:
        print("FAIL: sweep produced no sweep_results.csv", file=sys.stderr)
        return 1
    failures = 0
    for name in sorted(set(t1) | set(t4) | set(serial)):
        a, b, c = t1.get(name), t4.get(name), serial.get(name)
        if a == b == c:
            continue
        failures += 1
        print(f"FAIL: {name} differs across runs "
              f"(threads=1: {len(a or b'')}B, threads=4: {len(b or b'')}B, "
              f"serial: {len(c or b'')}B)", file=sys.stderr)
    if failures:
        return 1
    print(f"OK: {len(t1)} CSVs byte-identical across "
          "BAFFLE_THREADS=1, BAFFLE_THREADS=4, and --serial=1")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate freshly produced BENCH_*.json files against committed baselines.

Two layers of checking, applied per file:

  1. Correctness flags are UNCONDITIONAL: every ``parity_ok`` and
     ``bit_identical`` anywhere in the FRESH file must be true. These
     record bit-exactness properties (incremental == fresh recompute,
     batched == sequential, parallel == serial), which hold on any host
     at any load — a false value is a bug, never noise.

  2. Speedup fields are compared against the committed baseline with a
     relative tolerance: each numeric field named ``speedup`` or ending
     in ``_speedup`` must satisfy ``fresh >= baseline * (1 - tol)``.
     Timing only means something when both runs enforced their speed
     gates (``speedup_gate_enforced`` true on BOTH files — absent counts
     as false, e.g. a starved or single-core host) and both ran the same
     mode (``smoke`` flags equal); otherwise the numeric layer is
     skipped and reported as such. Matching is structural: top-level
     fields pair with top-level fields and row i of a ``sweeps`` array
     pairs with the baseline's row i (the sweeps are fixed lists of
     lookbacks, so index identity is stable).

Exit status is nonzero on any flag failure, any tolerance miss, or an
unreadable/missing fresh file. Baselines are trusted as committed.

Usage:
  bench_gate.py --fresh build-strict [--baseline .] [--tol 0.35] \\
      --file BENCH_defense.json --file BENCH_multieval.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

FLAG_KEYS = ("parity_ok", "bit_identical")
SPEEDUP_SUFFIX = "_speedup"


def walk(node, path=""):
    """Yields (path, key, value) for every key in nested dicts/lists."""
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            yield path, key, value
            yield from walk(value, here)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, f"{path}[{i}]")


def flag_failures(doc):
    fails = []
    for path, key, value in walk(doc):
        if key in FLAG_KEYS and value is not True:
            where = f"{path}.{key}" if path else key
            fails.append(where)
    return fails


def speedup_fields(doc):
    """Maps a structural label -> value for every speedup field."""
    out = {}
    for path, key, value in walk(doc):
        if key != "speedup" and not key.endswith(SPEEDUP_SUFFIX):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        out[f"{path}.{key}" if path else key] = float(value)
    return out


def gate_file(name, fresh_dir, baseline_dir, tol):
    """Returns a list of failure strings for one bench file."""
    fresh_path = os.path.join(fresh_dir, name)
    try:
        with open(fresh_path, encoding="utf-8") as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{name}: cannot read fresh results ({e})"]

    fails = [f"{name}: {w} is not true" for w in flag_failures(fresh)]

    baseline_path = os.path.join(baseline_dir, name)
    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, ValueError):
        print(f"bench_gate: {name}: no readable baseline, "
              "flags-only check")
        return fails

    fresh_gated = fresh.get("speedup_gate_enforced", False) is True
    base_gated = baseline.get("speedup_gate_enforced", False) is True
    same_mode = fresh.get("smoke") == baseline.get("smoke")
    if not (fresh_gated and base_gated and same_mode):
        why = ("mode mismatch (smoke vs full)" if not same_mode
               else "speed gates not enforced on both runs")
        print(f"bench_gate: {name}: speedups not compared — {why}")
        return fails

    base_vals = speedup_fields(baseline)
    for label, fresh_val in speedup_fields(fresh).items():
        base_val = base_vals.get(label)
        if base_val is None or base_val <= 0.0:
            continue
        floor = base_val * (1.0 - tol)
        if fresh_val < floor:
            fails.append(
                f"{name}: {label} regressed: {fresh_val:.3f} < "
                f"{floor:.3f} (baseline {base_val:.3f}, tol {tol:.0%})")
    return fails


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly produced BENCH JSON")
    parser.add_argument("--baseline", default=".",
                        help="directory holding committed baselines")
    parser.add_argument("--tol", type=float, default=0.35,
                        help="relative speedup tolerance (default 0.35)")
    parser.add_argument("--file", action="append", required=True,
                        dest="files", metavar="BENCH_x.json")
    args = parser.parse_args(argv)

    failures = []
    for name in args.files:
        failures.extend(
            gate_file(name, args.fresh, args.baseline, args.tol))

    for failure in failures:
        print(f"bench_gate: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"bench_gate: ok ({len(args.files)} file(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// baffle_sweep — scenario×seed grid sweep driver (DESIGN.md §15).
//
// Expands the cross-product of the requested axes, runs every cell for
// --reps repetitions on the task-graph executor, and writes one CSV per
// cell plus an aggregate sweep_results.csv. Per-cell results are
// bit-identical across thread counts and between --serial=1 and the
// default parallel driver (seeds are a pure function of cell index).
//
//   baffle_sweep                                     # default tiny grid
//   baffle_sweep --lookback=8,12,20 --q=3,5 --reps=5
//   baffle_sweep --alpha=0.3,0.9 --dropout=0,0.2 --out-dir=sweep_out
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace baffle;

struct Flags {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(),
                                                       nullptr);
  }
  long integer(const std::string& key, long fallback) const {
    const auto it = values.find(key);
    return it == values.end()
               ? fallback
               : std::strtol(it->second.c_str(), nullptr, 10);
  }
  bool flag(const std::string& key, bool fallback) const {
    const auto it = values.find(key);
    if (it == values.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }
};

void print_help() {
  std::puts(
      "baffle_sweep — scenario grid sweep on the task-graph executor\n"
      "\n"
      "axes (comma-separated value lists; each flag adds one axis):\n"
      "  --lookback=a,b,...         history window l values\n"
      "  --q=a,b,...                quorum threshold values\n"
      "  --alpha=a,b,...            Dirichlet non-IID parameter values\n"
      "  --dropout=a,b,...          validator non-response probabilities\n"
      "  (no axis flags: default grid lookback=12,20 x q=3,5)\n"
      "base config:\n"
      "  --task=vision|femnist      dataset surrogate (vision)\n"
      "  --clients=N                population size (preset)\n"
      "  --rounds=N                 total rounds (50)\n"
      "  --defense-start=N          first enforced round (20)\n"
      "  --train-per-class=N        shrink the train split (speed knob)\n"
      "  --poison-rounds=a,b,c      injection rounds (preset)\n"
      "run:\n"
      "  --reps=N                   repetitions per cell (5)\n"
      "  --seed=N                   sweep base seed (1)\n"
      "  --serial=1                 serial cell loop (parallel default)\n"
      "  --out-dir=PATH             CSV output directory (.)\n"
      "  --quiet=1                  suppress the per-cell table\n");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

SweepAxis size_axis(const std::string& name, const std::string& csv,
                    void (*set)(ExperimentConfig&, std::size_t)) {
  SweepAxis axis{name, {}};
  for (const auto& token : split_csv(csv)) {
    const auto v =
        static_cast<std::size_t>(std::strtoul(token.c_str(), nullptr, 10));
    axis.values.push_back({token, [set, v](ExperimentConfig& c) { set(c, v); }});
  }
  return axis;
}

SweepAxis real_axis(const std::string& name, const std::string& csv,
                    void (*set)(ExperimentConfig&, double)) {
  SweepAxis axis{name, {}};
  for (const auto& token : split_csv(csv)) {
    const double v = std::strtod(token.c_str(), nullptr);
    axis.values.push_back({token, [set, v](ExperimentConfig& c) { set(c, v); }});
  }
  return axis;
}

}  // namespace

// GCC 12 emits a spurious -Wrestrict from the inlined std::string copy of
// the "1" literal below (GCC PR105329); suppress it for the parse loop.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags.values.insert_or_assign(body, "1");
    } else {
      flags.values.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
    }
  }

  SweepSpec spec;
  const std::string task = flags.str("task", "vision");
  const double sfrac = task == "femnist" ? 0.01 : 0.10;
  spec.base.scenario =
      task == "femnist" ? femnist_scenario(sfrac) : vision_scenario(sfrac);
  if (flags.has("clients")) {
    spec.base.scenario.num_clients =
        static_cast<std::size_t>(flags.integer("clients", 50));
  }
  if (flags.has("train-per-class")) {
    spec.base.scenario.train_per_class_override =
        static_cast<std::size_t>(flags.integer("train-per-class", 0));
  }
  spec.base.rounds = static_cast<std::size_t>(flags.integer("rounds", 50));
  spec.base.defense_start =
      static_cast<std::size_t>(flags.integer("defense-start", 20));
  spec.base.schedule = AttackSchedule::stable_scenario();
  if (flags.has("poison-rounds")) {
    spec.base.schedule.poison_rounds.clear();
    for (const auto& token : split_csv(flags.str("poison-rounds", ""))) {
      spec.base.schedule.poison_rounds.push_back(
          static_cast<std::size_t>(std::strtoul(token.c_str(), nullptr, 10)));
    }
  }
  spec.reps = static_cast<std::size_t>(flags.integer("reps", 5));
  spec.base_seed = static_cast<std::uint64_t>(flags.integer("seed", 1));

  const bool default_grid = !flags.has("lookback") && !flags.has("q") &&
                            !flags.has("alpha") && !flags.has("dropout");
  if (flags.has("lookback") || default_grid) {
    spec.axes.push_back(size_axis(
        "lookback", flags.str("lookback", "12,20"),
        [](ExperimentConfig& c, std::size_t v) {
          c.feedback.validator.lookback = v;
        }));
  }
  if (flags.has("q") || default_grid) {
    spec.axes.push_back(size_axis(
        "q", flags.str("q", "3,5"),
        [](ExperimentConfig& c, std::size_t v) { c.feedback.quorum = v; }));
  }
  if (flags.has("alpha")) {
    spec.axes.push_back(real_axis(
        "alpha", flags.str("alpha", ""), [](ExperimentConfig& c, double v) {
          c.scenario.dirichlet_alpha = v;
        }));
  }
  if (flags.has("dropout")) {
    spec.axes.push_back(real_axis(
        "dropout", flags.str("dropout", ""),
        [](ExperimentConfig& c, double v) { c.validator_dropout = v; }));
  }

  const bool serial = flags.flag("serial", false);
  const bool quiet = flags.flag("quiet", false);
  const std::string out_dir = flags.str("out-dir", ".");

  std::size_t grid = 1;
  for (const auto& axis : spec.axes) grid *= axis.values.size();
  std::printf("baffle_sweep: task=%s grid=%zu cells x %zu reps, seed=%llu, "
              "%s driver, %zu threads\n",
              task.c_str(), grid, spec.reps,
              static_cast<unsigned long long>(spec.base_seed),
              serial ? "serial" : "task-graph",
              ThreadPool::global().size());

  try {
    std::filesystem::create_directories(out_dir);
    const SweepResult result = run_sweep(spec, !serial);

    for (const auto& cell : result.cells) {
      if (!quiet) {
        std::printf("  [%2zu] %-40s fp %.3f±%.3f  fn %.3f±%.3f  "
                    "acc %.3f  bd %.3f\n",
                    cell.index, cell.name.c_str(), cell.fp.mean, cell.fp.std,
                    cell.fn.mean, cell.fn.std, cell.main_accuracy.mean,
                    cell.backdoor_accuracy.mean);
      }
      write_cell_csv(cell, out_dir + "/cell_" + std::to_string(cell.index) +
                               ".csv");
    }
    write_sweep_csv(spec, result, out_dir + "/sweep_results.csv");
    std::printf("results: %s/sweep_results.csv (+%zu per-cell files)\n",
                out_dir.c_str(), result.cells.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baffle_sweep: %s\n", e.what());
    return 1;
  }

  const auto& registry = MetricsRegistry::global();
  std::printf("executor: %llu graph tasks (%llu help-drained) — "
              "train %.2f ms, validate %.2f, checkpoint %.2f, eval %.2f, "
              "experiment %.2f\n",
              static_cast<unsigned long long>(
                  registry.counter("task_graph.tasks")),
              static_cast<unsigned long long>(
                  registry.counter("thread_pool.help_drained")),
              registry.timer_mean_ms("task_graph.node.train"),
              registry.timer_mean_ms("task_graph.node.validate"),
              registry.timer_mean_ms("task_graph.node.checkpoint"),
              registry.timer_mean_ms("task_graph.node.eval"),
              registry.timer_mean_ms("task_graph.node.experiment"));
  if (flags.has("metrics")) {
    const std::string path = flags.str("metrics", "metrics.csv");
    try {
      registry.dump_csv(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "baffle_sweep: --metrics failed: %s\n", e.what());
      return 1;
    }
    std::printf("metrics written to %s\n", path.c_str());
  }
  return 0;
}

#pragma GCC diagnostic pop

#!/usr/bin/env bash
# Runs clang-tidy over every library translation unit using the
# compile_commands.json exported by CMake. Config lives in .clang-tidy.
#
#   tools/tidy.sh [build-dir]
#
# Exits 0 when clean, 1 on findings, and 0 with a SKIP notice when
# clang-tidy is not installed (CI installs it; local dev boxes may not
# have it — the repo lint gate still runs via tools/baffle_lint.py).
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "tidy: SKIP (clang-tidy not installed)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "tidy: ${BUILD_DIR}/compile_commands.json missing — configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ."
  exit 1
fi

# Library TUs only: tests depend on gtest headers that trip third-party
# checks, and the benches are allowed console I/O anyway.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

RUNNER="$(command -v run-clang-tidy || true)"
if [[ -n "${RUNNER}" ]]; then
  "${RUNNER}" -p "${BUILD_DIR}" -quiet "${SOURCES[@]}"
  status=$?
else
  status=0
  for tu in "${SOURCES[@]}"; do
    "${TIDY}" -p "${BUILD_DIR}" --quiet "${tu}" || status=1
  done
fi

if [[ ${status} -eq 0 ]]; then
  echo "tidy: clean (${#SOURCES[@]} translation units)"
else
  echo "tidy: findings above — fix them or suppress with"
  echo "      '// NOLINT(<check>) — reason'"
fi
exit ${status}

// baffle_sim — command-line driver for the defended-FL simulation.
//
// Runs one experiment with every knob exposed as a flag and prints the
// per-round log plus the detection summary. Examples:
//
//   baffle_sim                                  # paper defaults
//   baffle_sim --task=femnist --mode=C --q=7
//   baffle_sim --adaptive=1 --seed=7 --rounds=80
//   baffle_sim --attack=dba --colluders=4
//   baffle_sim --separate-validators=1 --validator-dropout=0.2
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "exp/experiment.hpp"
#include "util/metrics.hpp"

namespace {

using namespace baffle;

struct Flags {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(),
                                                       nullptr);
  }
  long integer(const std::string& key, long fallback) const {
    const auto it = values.find(key);
    return it == values.end()
               ? fallback
               : std::strtol(it->second.c_str(), nullptr, 10);
  }
  bool flag(const std::string& key, bool fallback) const {
    const auto it = values.find(key);
    if (it == values.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }
};

void print_help() {
  std::puts(
      "baffle_sim — defended federated-learning simulation\n"
      "\n"
      "scenario:\n"
      "  --task=vision|femnist      dataset surrogate (default vision)\n"
      "  --clients=N                population size (default: preset)\n"
      "  --server-frac=F            server holdout share (default 0.10/0.01)\n"
      "  --alpha=A                  Dirichlet non-IID parameter (0.9)\n"
      "  --iid=0|1                  IID split instead of Dirichlet\n"
      "  --secure-agg=0|1           pairwise-masked aggregation (1)\n"
      "defense:\n"
      "  --mode=C|S|C+S             validating entities (C+S)\n"
      "  --q=N                      quorum threshold (5)\n"
      "  --lookback=N               history window l (20)\n"
      "  --defense-start=N          first enforced round (20)\n"
      "  --no-defense=1             disable the feedback loop\n"
      "  --separate-validators=0|1  independent validating set (0)\n"
      "  --validator-dropout=F      non-response probability (0)\n"
      "  --eval-precision=fp32|bf16|int8  validator evaluation arm\n"
      "                             (fp32; reduced arms are guarded,\n"
      "                             CM-identical — DESIGN.md \u00a714)\n"
      "attack:\n"
      "  --attack=replacement|dba|none   (replacement)\n"
      "  --adaptive=0|1             defense-aware attacker (0)\n"
      "  --colluders=N              DBA colluder count (4)\n"
      "  --poison-rounds=a,b,c      injection rounds (30,35,40)\n"
      "  --vote=honest|accept|reject  malicious validators' votes (accept)\n"
      "run:\n"
      "  --rounds=N                 total rounds (50)\n"
      "  --transport=0|1            run rounds over the wire protocol\n"
      "                             (src/net; prints exact byte counts)\n"
      "  --seed=N                   RNG seed (1)\n"
      "  --from-scratch=1           skip stable-model pre-training\n"
      "  --quiet=1                  summary only\n"
      "  --metrics=PATH             dump runtime metrics CSV on exit\n");
}

std::vector<std::size_t> parse_rounds(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      out.push_back(static_cast<std::size_t>(
          std::strtoul(token.c_str(), nullptr, 10)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

// GCC 12 emits a spurious -Wrestrict from the inlined std::string copy of
// the "1" literal below (GCC PR105329); suppress it for the parse loop.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags.values.insert_or_assign(body, "1");
    } else {
      flags.values.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
    }
  }

  ExperimentConfig cfg;
  const std::string task = flags.str("task", "vision");
  const double default_sfrac = task == "femnist" ? 0.01 : 0.10;
  const double sfrac = flags.num("server-frac", default_sfrac);
  cfg.scenario = task == "femnist" ? femnist_scenario(sfrac)
                                   : vision_scenario(sfrac);
  if (flags.has("clients")) {
    cfg.scenario.num_clients =
        static_cast<std::size_t>(flags.integer("clients", 50));
  }
  cfg.scenario.dirichlet_alpha = flags.num("alpha", 0.9);
  cfg.scenario.iid = flags.flag("iid", false);
  cfg.scenario.secure_aggregation = flags.flag("secure-agg", true);

  const std::string mode = flags.str("mode", "C+S");
  cfg.feedback.mode = mode == "C"   ? DefenseMode::kClientsOnly
                      : mode == "S" ? DefenseMode::kServerOnly
                                    : DefenseMode::kClientsAndServer;
  cfg.feedback.quorum = static_cast<std::size_t>(flags.integer("q", 5));
  cfg.feedback.validator.lookback =
      static_cast<std::size_t>(flags.integer("lookback", 20));
  cfg.defense_start =
      static_cast<std::size_t>(flags.integer("defense-start", 20));
  cfg.defense_enabled = !flags.flag("no-defense", false);
  cfg.separate_validators = flags.flag("separate-validators", false);
  cfg.validator_dropout = flags.num("validator-dropout", 0.0);
  const std::string prec = flags.str("eval-precision", "fp32");
  if (prec == "bf16") {
    cfg.feedback.validator.eval_precision = EvalPrecision::kBf16;
  } else if (prec == "int8") {
    cfg.feedback.validator.eval_precision = EvalPrecision::kInt8;
  } else if (prec != "fp32") {
    std::fprintf(stderr, "unknown --eval-precision: %s\n", prec.c_str());
    return 2;
  }

  const std::string attack = flags.str("attack", "replacement");
  cfg.schedule = AttackSchedule::stable_scenario();
  if (flags.has("poison-rounds")) {
    cfg.schedule.poison_rounds =
        parse_rounds(flags.str("poison-rounds", ""));
  }
  if (attack == "none") cfg.schedule.poison_rounds.clear();
  cfg.schedule.adaptive = flags.flag("adaptive", false);
  if (attack == "dba") {
    cfg.use_dba = true;
    cfg.scenario.backdoor_override = BackdoorKind::kTrigger;
    cfg.dba_colluders =
        static_cast<std::size_t>(flags.integer("colluders", 4));
  }
  const std::string vote = flags.str("vote", "accept");
  cfg.malicious_vote = vote == "honest" ? VoteStrategy::kHonest
                       : vote == "reject" ? VoteStrategy::kAlwaysReject
                                          : VoteStrategy::kAlwaysAccept;

  cfg.rounds = static_cast<std::size_t>(flags.integer("rounds", 50));
  cfg.stable_start = !flags.flag("from-scratch", false);
  cfg.transport = flags.flag("transport", false);

  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 1));
  const bool quiet = flags.flag("quiet", false);

  std::printf("baffle_sim: task=%s mode=%s q=%zu l=%zu rounds=%zu seed=%llu"
              " attack=%s%s\n\n",
              task.c_str(), mode.c_str(), cfg.feedback.quorum,
              cfg.feedback.validator.lookback, cfg.rounds,
              static_cast<unsigned long long>(seed), attack.c_str(),
              cfg.schedule.adaptive ? " (adaptive)" : "");

  const ExperimentResult result = run_experiment(cfg, seed);

  if (!quiet) {
    std::printf("%-7s %-8s %-9s %-9s %-9s %s\n", "round", "poison",
                "verdict", "votes", "main", "backdoor");
    for (const auto& r : result.rounds) {
      if (!r.poisoned && r.round % 5 != 0) continue;
      std::printf("%-7zu %-8s %-9s %zu/%-7zu %-9.3f %.3f\n", r.round,
                  r.poisoned ? "YES" : "-",
                  !r.defense_active ? "(off)"
                                    : (r.rejected ? "REJECT" : "accept"),
                  r.reject_votes, r.num_validators, r.main_accuracy,
                  r.backdoor_accuracy);
    }
    std::printf("\n");
  }
  std::printf("clean rounds: %zu (false positives: %zu, rate %.3f)\n",
              result.rates.clean_rounds, result.rates.false_positives,
              result.rates.fp_rate);
  std::printf("poisoned rounds: %zu (false negatives: %zu, rate %.3f)\n",
              result.rates.poisoned_rounds, result.rates.false_negatives,
              result.rates.fn_rate);
  if (result.adaptive_skipped > 0) {
    std::printf("adaptive attacker skipped %zu scheduled rounds\n",
                result.adaptive_skipped);
  }
  std::printf("final main accuracy: %.3f, backdoor accuracy: %.3f\n",
              result.final_main_accuracy, result.final_backdoor_accuracy);
  if (cfg.transport) {
    const auto& comm = result.comm;
    std::printf("wire traffic (exact): %llu bytes — %llu download, "
                "%llu upload, %llu history, %llu control\n",
                static_cast<unsigned long long>(comm.total_bytes()),
                static_cast<unsigned long long>(comm.model_download_bytes),
                static_cast<unsigned long long>(comm.update_upload_bytes),
                static_cast<unsigned long long>(comm.history_bytes),
                static_cast<unsigned long long>(comm.control_bytes));
  }

  const auto& registry = MetricsRegistry::global();
  const std::uint64_t trains = registry.timer_count("experiment.round_train");
  if (trains > 0) {
    std::printf("round training: %.2f ms/round over %llu rounds\n",
                registry.timer_mean_ms("experiment.round_train"),
                static_cast<unsigned long long>(trains));
  }
  const std::uint64_t evals = registry.timer_count("experiment.round_eval");
  if (evals > 0) {
    std::printf("defense evaluation: %.2f ms/round over %llu rounds "
                "(cache: %llu hits / %llu misses, %llu promotions, "
                "%llu candidate reuses)\n",
                registry.timer_mean_ms("experiment.round_eval"),
                static_cast<unsigned long long>(evals),
                static_cast<unsigned long long>(
                    registry.counter("prediction_cache.hits")),
                static_cast<unsigned long long>(
                    registry.counter("prediction_cache.misses")),
                static_cast<unsigned long long>(
                    registry.counter("prediction_cache.promotions")),
                static_cast<unsigned long long>(
                    registry.counter("validator.candidate_reuse")));
  }
  const std::uint64_t overlapped =
      registry.counter("experiment.pipelined_evals");
  if (overlapped > 0) {
    std::printf("accuracy tracking: %llu rounds overlapped with the next "
                "round's training (%.2f ms/round hidden)\n",
                static_cast<unsigned long long>(overlapped),
                registry.timer_mean_ms("experiment.round_accuracy"));
  }
  const std::uint64_t graph_tasks = registry.counter("task_graph.tasks");
  if (graph_tasks > 0) {
    std::printf("executor: %llu graph tasks (%llu help-drained) — "
                "train %.2f ms, validate %.2f, checkpoint %.2f, eval %.2f\n",
                static_cast<unsigned long long>(graph_tasks),
                static_cast<unsigned long long>(
                    registry.counter("thread_pool.help_drained")),
                registry.timer_mean_ms("task_graph.node.train"),
                registry.timer_mean_ms("task_graph.node.validate"),
                registry.timer_mean_ms("task_graph.node.checkpoint"),
                registry.timer_mean_ms("task_graph.node.eval"));
  }
  const std::uint64_t engine_runs = registry.timer_count("multi_eval.run");
  if (engine_runs > 0) {
    std::printf("eval engine: %llu batched passes over %llu tiles — "
                "bind %.2f ms, run %.2f ms, %llu guard re-evals\n",
                static_cast<unsigned long long>(engine_runs),
                static_cast<unsigned long long>(
                    registry.counter("multi_eval.tiles")),
                registry.timer_mean_ms("multi_eval.bind"),
                registry.timer_mean_ms("multi_eval.run"),
                static_cast<unsigned long long>(
                    registry.counter("multi_eval.guard_samples")));
  }
  if (flags.has("metrics")) {
    const std::string path = flags.str("metrics", "metrics.csv");
    try {
      registry.dump_csv(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "baffle_sim: --metrics failed: %s\n", e.what());
      return 1;
    }
    std::printf("metrics written to %s\n", path.c_str());
  }
  return 0;
}

#pragma GCC diagnostic pop

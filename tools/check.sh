#!/usr/bin/env bash
# Strict local CI gate: warnings-as-errors build + full test suite (on
# both kernel-dispatch arms), plus optional sanitizer stages.
#
# Usage:
#   tools/check.sh            # strict build + ctest + forced-scalar ctest
#   tools/check.sh --tsan     # also build with -fsanitize=thread and run
#                             # the tensor/core suites under TSan
#   tools/check.sh --ubsan    # also build with -fsanitize=undefined and
#                             # run the numeric suites on both arms
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=0
RUN_UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --ubsan) RUN_UBSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== strict build (BAFFLE_STRICT=ON) =="
cmake -B build-strict -S . -DBAFFLE_STRICT=ON
cmake --build build-strict -j "$JOBS"

echo "== tests (dispatched kernels) =="
ctest --test-dir build-strict --output-on-failure -j "$JOBS"

echo "== tests (BAFFLE_FORCE_SCALAR=1) =="
# The scalar arm must stay a drop-in replacement: every numeric outcome
# the suite checks has to hold with SIMD dispatch pinned off.
BAFFLE_FORCE_SCALAR=1 ctest --test-dir build-strict --output-on-failure \
  -j "$JOBS"

if [[ "$RUN_TSAN" -eq 1 ]]; then
  echo "== ThreadSanitizer (BAFFLE_TSAN=ON) =="
  cmake -B build-tsan -S . -DBAFFLE_TSAN=ON
  cmake --build build-tsan -j "$JOBS" \
    --target test_tensor test_core test_util test_fl test_exp
  # Force a multi-worker pool even on single-core hosts so the parallel
  # GEMM, round-training, secure-agg masking and defense.evaluate paths
  # actually interleave under TSan.
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_tensor
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_core
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_util
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_fl
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_exp
fi

if [[ "$RUN_UBSAN" -eq 1 ]]; then
  echo "== UndefinedBehaviorSanitizer (BAFFLE_UBSAN=ON) =="
  cmake -B build-ubsan -S . -DBAFFLE_UBSAN=ON
  cmake --build build-ubsan -j "$JOBS" --target test_tensor test_nn
  # Both dispatch arms: the packed SIMD microkernels and the legacy
  # scalar loops each get a pass over the numeric suites.
  ./build-ubsan/tests/test_tensor
  ./build-ubsan/tests/test_nn
  BAFFLE_FORCE_SCALAR=1 ./build-ubsan/tests/test_tensor
  BAFFLE_FORCE_SCALAR=1 ./build-ubsan/tests/test_nn
fi

echo "check.sh: all stages passed"

#!/usr/bin/env bash
# Strict local CI gate: warnings-as-errors build + full test suite, plus an
# optional ThreadSanitizer stage over the concurrency-heavy targets.
#
# Usage:
#   tools/check.sh            # strict build + ctest
#   tools/check.sh --tsan     # also build with -fsanitize=thread and run
#                             # the tensor/core suites under TSan
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== strict build (BAFFLE_STRICT=ON) =="
cmake -B build-strict -S . -DBAFFLE_STRICT=ON
cmake --build build-strict -j "$JOBS"

echo "== tests =="
ctest --test-dir build-strict --output-on-failure -j "$JOBS"

if [[ "$RUN_TSAN" -eq 1 ]]; then
  echo "== ThreadSanitizer (BAFFLE_TSAN=ON) =="
  cmake -B build-tsan -S . -DBAFFLE_TSAN=ON
  cmake --build build-tsan -j "$JOBS" \
    --target test_tensor test_core test_util test_fl test_exp
  # Force a multi-worker pool even on single-core hosts so the parallel
  # GEMM, round-training, secure-agg masking and defense.evaluate paths
  # actually interleave under TSan.
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_tensor
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_core
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_util
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_fl
  BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_exp
fi

echo "check.sh: all stages passed"

#!/usr/bin/env bash
# Strict local CI gate: warnings-as-errors build + full test suite (on
# both kernel-dispatch arms), repo lint, and optional sanitizer stages.
#
# Usage:
#   tools/check.sh            # strict build + ctest (both arms) + lint
#   tools/check.sh --checks   # also build with BAFFLE_CHECKS=ON (live
#                             # DCHECK contracts) and run the full suite
#   tools/check.sh --asan     # also build with -fsanitize=address,leak
#                             # and run the full suite on both arms
#   tools/check.sh --tsan     # also build with -fsanitize=thread and run
#                             # the concurrent suites under TSan
#   tools/check.sh --ubsan    # also build with -fsanitize=undefined and
#                             # run the numeric suites on both arms
#   tools/check.sh --tidy     # also run clang-tidy (skips if absent)
#   tools/check.sh --thread-safety
#                             # also build everything with clang under
#                             # -Werror=thread-safety-analysis and run
#                             # the compile-fail fixtures (skips when
#                             # clang is absent)
#   tools/check.sh --bench-smoke
#                             # also run defense_bench --smoke and fail
#                             # on an incremental/baseline parity break
#   tools/check.sh --fuzz     # also run the deterministic wire-protocol
#                             # fuzzer under the ASan build (truncation /
#                             # bit-flip / garbage corpus must never
#                             # crash or over-read)
#   tools/check.sh --sweep-smoke
#                             # also run sweep_bench --smoke plus a tiny
#                             # baffle_sweep grid at BAFFLE_THREADS=1 vs
#                             # 4 and fail on any CSV byte difference
#   tools/check.sh --all      # every stage above
#
# Each stage reports one PASS/FAIL/SKIP line; the script stops at the
# first failure so the offending stage is the last line printed.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
TEST_TARGETS=(test_util test_tensor test_nn test_data test_metrics
              test_fl test_attack test_core test_net test_baselines
              test_exp test_integration)

RUN_CHECKS=0
RUN_ASAN=0
RUN_TSAN=0
RUN_UBSAN=0
RUN_TIDY=0
RUN_THREAD_SAFETY=0
RUN_BENCH_SMOKE=0
RUN_FUZZ=0
RUN_SWEEP_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --checks) RUN_CHECKS=1 ;;
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --ubsan) RUN_UBSAN=1 ;;
    --tidy) RUN_TIDY=1 ;;
    --thread-safety) RUN_THREAD_SAFETY=1 ;;
    --bench-smoke) RUN_BENCH_SMOKE=1 ;;
    --fuzz) RUN_FUZZ=1 ;;
    --sweep-smoke) RUN_SWEEP_SMOKE=1 ;;
    --all) RUN_CHECKS=1; RUN_ASAN=1; RUN_TSAN=1; RUN_UBSAN=1; RUN_TIDY=1
           RUN_THREAD_SAFETY=1
           RUN_BENCH_SMOKE=1; RUN_FUZZ=1; RUN_SWEEP_SMOKE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

SUMMARY=()
stage() {  # stage <name> <command...>
  local name="$1"; shift
  echo "== ${name} =="
  if "$@"; then
    SUMMARY+=("PASS  ${name}")
  else
    SUMMARY+=("FAIL  ${name}")
    print_summary
    exit 1
  fi
}
skip() {
  SUMMARY+=("SKIP  $1 ($2)")
  echo "== $1: SKIP ($2) =="
}
print_summary() {
  echo
  echo "check.sh summary:"
  printf '  %s\n' "${SUMMARY[@]}"
}

run_suite_both_arms() {  # run_suite_both_arms <build-dir>
  # The scalar arm must stay a drop-in replacement: every numeric
  # outcome the suite checks has to hold with SIMD dispatch pinned off.
  ctest --test-dir "$1" --output-on-failure -j "$JOBS" &&
    BAFFLE_FORCE_SCALAR=1 ctest --test-dir "$1" --output-on-failure \
      -j "$JOBS"
}

build_cfg() {  # build_cfg <build-dir> <cmake-args...>
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" && cmake --build "$dir" -j "$JOBS"
}

build_targets() {  # build_targets <build-dir> <cmake-arg> <targets...>
  local dir="$1" cfg="$2"; shift 2
  cmake -B "$dir" -S . "$cfg" &&
    cmake --build "$dir" -j "$JOBS" --target "$@"
}

stage "strict build (BAFFLE_STRICT=ON)" \
  build_cfg build-strict -DBAFFLE_STRICT=ON
stage "tests (dispatched + forced-scalar)" \
  run_suite_both_arms build-strict
stage "repo lint (tools/baffle_lint.py)" \
  python3 tools/baffle_lint.py --root .

run_bench_smoke() {
  # One rep per sweep cell; exits nonzero when the incremental engine's
  # (vote, φ, τ) triples diverge from fresh recomputation. Runs inside
  # build-strict so the smoke JSON does not clobber the committed
  # full-run BENCH_defense.json.
  cmake --build build-strict -j "$JOBS" --target defense_bench &&
    (cd build-strict && ./bench/defense_bench --smoke)
}

run_multieval_smoke() {
  # Exits nonzero when the batched engine's fp32 predictions are not
  # byte-identical to sequential Mlp::predict_into, when a
  # reduced-precision arm's confusion matrices diverge from fp32, or
  # when the pool-parallel arms are not byte-identical to the serial
  # tile loop. Smoke mode skips the ≥2x speed gates (timing on shared
  # CI hosts is too noisy to assert).
  cmake --build build-strict -j "$JOBS" --target multieval_bench &&
    (cd build-strict && ./bench/multieval_bench --smoke)
}

run_bench_gate() {
  # Compares the smoke runs' fresh JSON against the committed
  # baselines: parity/bit-identity flags hard-fail unconditionally;
  # speedups are tolerance-checked only when both runs enforced their
  # speed gates (multi-core, non-smoke — so typically skipped here, but
  # the flag scan still guards every committed and fresh file).
  python3 tools/bench_gate.py --fresh build-strict --baseline . \
    --file BENCH_defense.json --file BENCH_multieval.json
}

if [[ "$RUN_BENCH_SMOKE" -eq 1 ]]; then
  stage "defense bench smoke (incremental parity)" run_bench_smoke
  stage "multieval bench smoke (batched/reduced-precision parity)" \
    run_multieval_smoke
  stage "bench gate (fresh JSON vs committed baselines)" run_bench_gate
fi

run_sweep_smoke() {
  # Exits nonzero when the task-graph sweep driver's per-cell rows are
  # not bit-identical to the serial cell loop (speedup gates only on
  # multi-core hosts), then asserts CSV byte-parity across thread
  # counts via the out-of-process python check.
  cmake --build build-strict -j "$JOBS" --target sweep_bench \
    baffle_sweep &&
    (cd build-strict && ./bench/sweep_bench --smoke) &&
    python3 tools/sweep_parity_test.py build-strict/tools/baffle_sweep
}

if [[ "$RUN_SWEEP_SMOKE" -eq 1 ]]; then
  stage "sweep smoke (task-graph parity + thread-count determinism)" \
    run_sweep_smoke
fi

if [[ "$RUN_CHECKS" -eq 1 ]]; then
  stage "contracts build (BAFFLE_CHECKS=ON)" \
    build_cfg build-checks -DBAFFLE_CHECKS=ON
  stage "tests under live DCHECKs" \
    run_suite_both_arms build-checks
fi

run_asan_suites() {
  # Full suite on both dispatch arms under ASan+LSan. ctest would work
  # too, but running the binaries directly keeps the report readable on
  # a failure (one process per suite, no interleaving).
  local bin arm
  for arm in "" "BAFFLE_FORCE_SCALAR=1"; do
    for bin in "${TEST_TARGETS[@]}"; do
      env ${arm} ASAN_OPTIONS=halt_on_error=1 \
        "./build-asan/tests/${bin}" --gtest_brief=1 || return 1
    done
  done
}

if [[ "$RUN_ASAN" -eq 1 ]]; then
  stage "ASan build (BAFFLE_ASAN=ON)" \
    build_targets build-asan -DBAFFLE_ASAN=ON "${TEST_TARGETS[@]}"
  stage "tests under ASan+LSan (both arms)" run_asan_suites
fi

run_tsan_suites() {
  # Force a multi-worker pool even on single-core hosts so the parallel
  # GEMM, round-training, secure-agg masking and defense.evaluate paths
  # actually interleave under TSan.
  local bin
  for bin in test_tensor test_nn test_core test_util test_data test_fl \
      test_net test_exp; do
    BAFFLE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
      "./build-tsan/tests/${bin}" --gtest_brief=1 || return 1
  done
}

if [[ "$RUN_TSAN" -eq 1 ]]; then
  stage "TSan build (BAFFLE_TSAN=ON)" \
    build_targets build-tsan -DBAFFLE_TSAN=ON \
    test_tensor test_nn test_core test_util test_data test_fl test_net \
    test_exp
  stage "concurrent suites under TSan" run_tsan_suites
fi

run_ubsan_suites() {
  # Both dispatch arms: the packed SIMD microkernels and the legacy
  # scalar loops each get a pass over the numeric suites.
  ./build-ubsan/tests/test_tensor --gtest_brief=1 &&
    ./build-ubsan/tests/test_nn --gtest_brief=1 &&
    BAFFLE_FORCE_SCALAR=1 ./build-ubsan/tests/test_tensor \
      --gtest_brief=1 &&
    BAFFLE_FORCE_SCALAR=1 ./build-ubsan/tests/test_nn --gtest_brief=1
}

if [[ "$RUN_UBSAN" -eq 1 ]]; then
  stage "UBSan build (BAFFLE_UBSAN=ON)" \
    build_targets build-ubsan -DBAFFLE_UBSAN=ON test_tensor test_nn
  stage "numeric suites under UBSan (both arms)" run_ubsan_suites
fi

run_protocol_fuzz() {
  # The fuzzer's no-crash/no-over-read contract only bites with ASan
  # watching the reads, so it runs from the sanitizer build; a plain
  # strict-build pass rides along in ctest (protocol_fuzz_smoke).
  cmake -B build-asan -S . -DBAFFLE_ASAN=ON &&
    cmake --build build-asan -j "$JOBS" --target protocol_fuzz &&
    ASAN_OPTIONS=halt_on_error=1 ./build-asan/tools/protocol_fuzz \
      --rounds=50
}

if [[ "$RUN_FUZZ" -eq 1 ]]; then
  stage "wire-protocol fuzz under ASan" run_protocol_fuzz
fi

if [[ "$RUN_TIDY" -eq 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    stage "clang-tidy (tools/tidy.sh)" tools/tidy.sh build-strict
  else
    skip "clang-tidy" "not installed"
  fi
fi

run_thread_safety_build() {
  # Whole-tree clang build with the analysis promoted to an error: any
  # guarded field touched without its lock anywhere in src/tools/bench
  # fails this stage. The fixtures then prove the gate actually rejects
  # the three seeded lock-discipline bugs.
  CC=clang CXX=clang++ cmake -B build-threadsafety -S . \
    -DBAFFLE_THREAD_SAFETY=ON &&
    cmake --build build-threadsafety -j "$JOBS" &&
    tools/thread_safety_fixtures.sh
}

if [[ "$RUN_THREAD_SAFETY" -eq 1 ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    stage "thread-safety analysis (clang, BAFFLE_THREAD_SAFETY=ON)" \
      run_thread_safety_build
  else
    skip "thread-safety analysis" "clang not installed"
  fi
fi

print_summary
echo "check.sh: all stages passed"

#!/usr/bin/env bash
# Compile-fail tests for the Clang Thread Safety Analysis gate.
#
# The positive control (ok_annotated.cpp) must compile clean under the
# exact flags BAFFLE_THREAD_SAFETY=ON adds; each bad_*.cpp fixture must
# be REJECTED, and the diagnostic must contain the substring on the
# fixture's `// expect-error:` line — proving the gate catches (1) a
# guarded-field access without the lock, (2) a missing-REQUIRES call,
# and (3) a double acquire.
#
#   tools/thread_safety_fixtures.sh
#
# Exits 0 when all fixtures behave, 1 on any miss, and 0 with a SKIP
# notice when no clang++ is installed (the analysis is clang-only; CI
# installs it, local gcc-only boxes still run everything else).
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANGXX=""
for cand in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
            clang++-17 clang++-16 clang++-15 clang++-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    CLANGXX="$cand"
    break
  fi
done
if [[ -z "${CLANGXX}" ]]; then
  echo "thread-safety fixtures: SKIP (no clang++ installed)"
  exit 0
fi

TSA_FLAGS=(-std=c++20 -fsyntax-only -I src
           -Wthread-safety -Wthread-safety-beta
           -Werror=thread-safety-analysis)
FIXTURES=tests/tools/thread_safety_fixture
status=0

# Positive control: the wrappers themselves must be warning-clean, or
# the rejections below would prove nothing.
if out=$("${CLANGXX}" "${TSA_FLAGS[@]}" "${FIXTURES}/ok_annotated.cpp" 2>&1); then
  echo "PASS  ok_annotated.cpp compiles clean"
else
  echo "FAIL  ok_annotated.cpp must compile clean under TSA, got:"
  echo "${out}"
  status=1
fi

for bad in "${FIXTURES}"/bad_*.cpp; do
  expect=$(sed -n 's|^// expect-error: ||p' "${bad}")
  if [[ -z "${expect}" ]]; then
    echo "FAIL  $(basename "${bad}") has no '// expect-error:' line"
    status=1
    continue
  fi
  if out=$("${CLANGXX}" "${TSA_FLAGS[@]}" "${bad}" 2>&1); then
    echo "FAIL  $(basename "${bad}") compiled — the gate missed it"
    status=1
  elif [[ "${out}" == *"${expect}"* ]]; then
    echo "PASS  $(basename "${bad}") rejected (\"${expect}\")"
  else
    echo "FAIL  $(basename "${bad}") rejected, but without \"${expect}\":"
    echo "${out}"
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "thread-safety fixtures: all fixtures behaved (${CLANGXX})"
fi
exit ${status}

// protocol_fuzz — deterministic smoke fuzzer for the wire protocol.
//
// Feeds decode_frame/peek_type three hostile corpora derived from valid
// frames of every message type with a seeded Rng:
//
//   1. truncation: every proper prefix of every frame
//   2. bit flips: frames with 1..8 random bits flipped
//   3. garbage: random byte strings of random lengths
//
// The contract under test (src/net/wire.hpp): a malformed frame always
// surfaces as a thrown std::exception — never a crash, hang, or
// out-of-bounds read. Run under ASan/UBSan (tools/check.sh --all, CI's
// protocol-fuzz job) any over-read becomes a hard failure; in a plain
// build this still catches crashes and accept/reject contract breaks.
//
// Exits 0 on success, 1 with a diagnostic on the first violation.
// Deterministic: same seed, same corpus, same result.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace baffle;

ParamVec random_params(Rng& rng, std::size_t max_len) {
  ParamVec params(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len))));
  for (auto& p : params) p = static_cast<float>(rng.normal());
  return params;
}

/// One valid frame of each message type, sizes varied by the rng.
std::vector<WireBytes> seed_corpus(Rng& rng) {
  std::vector<WireBytes> corpus;

  ModelBroadcast broadcast;
  broadcast.round = rng.next_u64() % 1000;
  broadcast.version = broadcast.round;
  broadcast.purpose =
      rng.bernoulli(0.5) ? ModelPurpose::kTraining : ModelPurpose::kCandidate;
  broadcast.params = random_params(rng, 64);
  corpus.push_back(encode_frame(broadcast));

  ClientUpdate update;
  update.round = rng.next_u64() % 1000;
  update.client_id = rng.next_u64() % 100;
  update.update = random_params(rng, 64);
  corpus.push_back(encode_frame(update));

  Vote vote;
  vote.round = rng.next_u64() % 1000;
  vote.client_id = rng.next_u64() % 100;
  vote.vote = rng.bernoulli(0.5) ? 1 : 0;
  vote.abstained = rng.bernoulli(0.2) ? 1 : 0;
  vote.phi = rng.normal(0.0, 10.0);
  vote.tau = rng.normal(0.0, 10.0);
  corpus.push_back(encode_frame(vote));

  HistoryDelta delta;
  delta.round = rng.next_u64() % 1000;
  const auto entries = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < entries; ++i) {
    delta.entries.push_back(
        HistoryDelta::Entry{delta.round + i, random_params(rng, 16)});
  }
  corpus.push_back(encode_frame(delta));

  RoundResult result;
  result.round = rng.next_u64() % 1000;
  result.committed = rng.bernoulli(0.5) ? 1 : 0;
  result.version = result.round;
  result.reject_votes = static_cast<std::uint32_t>(rng.next_u64() % 10);
  result.total_voters = static_cast<std::uint32_t>(rng.next_u64() % 20);
  corpus.push_back(encode_frame(result));

  return corpus;
}

/// Decode must either succeed or throw std::exception; anything else
/// (a crash, an ASan report) never returns here. Returns whether the
/// frame decoded cleanly.
bool decode_is_clean(std::span<const std::uint8_t> frame) {
  try {
    (void)decode_frame(frame);
    (void)peek_type(frame);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

int run(std::uint64_t seed, int rounds) {
  Rng rng(seed);
  std::uint64_t cases = 0;
  std::uint64_t survivors = 0;  // mutated frames that still decode

  for (int iter = 0; iter < rounds; ++iter) {
    const auto corpus = seed_corpus(rng);

    for (const auto& frame : corpus) {
      if (!decode_is_clean(frame)) {
        std::fprintf(stderr,
                     "protocol_fuzz: pristine frame rejected (iter %d)\n",
                     iter);
        return 1;
      }
      ++cases;

      // 1. Every proper prefix must be rejected.
      for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        const std::span<const std::uint8_t> prefix(frame.data(), cut);
        if (decode_is_clean(prefix)) {
          std::fprintf(stderr,
                       "protocol_fuzz: truncated frame accepted "
                       "(iter %d, %zu of %zu bytes)\n",
                       iter, cut, frame.size());
          return 1;
        }
        ++cases;
      }

      // 2. Random bit flips: decode may legitimately still succeed
      // (e.g. a flipped parameter bit), but must never crash.
      for (int flip = 0; flip < 64; ++flip) {
        WireBytes mutated = frame;
        const auto flips = 1 + rng.uniform_int(0, 7);
        for (std::int64_t b = 0; b < flips; ++b) {
          const auto bit = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(mutated.size()) * 8 - 1));
          mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        if (decode_is_clean(mutated)) ++survivors;
        ++cases;
      }
    }

    // 3. Random garbage of random lengths (including empty).
    for (int g = 0; g < 64; ++g) {
      WireBytes garbage(
          static_cast<std::size_t>(rng.uniform_int(0, 256)));
      for (auto& byte : garbage) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
      }
      (void)decode_is_clean(garbage);
      ++cases;
    }
  }

  std::printf(
      "protocol_fuzz: OK (%llu cases, %llu mutated frames still decoded)\n",
      static_cast<unsigned long long>(cases),
      static_cast<unsigned long long>(survivors));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int rounds = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = static_cast<int>(std::strtol(argv[i] + 9, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: protocol_fuzz [--seed=N] [--rounds=N]\n");
      return 2;
    }
  }
  return run(seed, rounds);
}

#!/usr/bin/env python3
"""baffle_lint: project-specific lint rules clang-tidy cannot express.

Rules (each failure names the file and the rule id):

  dispatch-table      Every function-pointer entry in the KernelTable of
                      tensor/kernels.hpp must have an implementation in
                      BOTH kernel arms (kernels_scalar.cpp and
                      kernels_simd.cpp) and coverage in the SimdParity
                      suite (tests/tensor/simd_parity_test.cpp).
  no-iostream         Library translation units (src/**) must not
                      include <iostream>/<cstdio>/<stdio.h> or call
                      printf/fprintf/puts. Console output belongs to the
                      executables (tools/, bench/, examples/) and to the
                      single designated sink, src/util/logging.cpp.
  no-naked-new        No `new`/`delete` expressions in src/**; use
                      containers or smart pointers.
  no-libc-random      No rand()/srand()/time() seeding in src/**; all
                      randomness flows through util/rng.hpp so runs stay
                      reproducible.
  raw-sync            No naked std::mutex / std::lock_guard /
                      std::condition_variable (and friends) in src/**;
                      all locking goes through the annotated capability
                      wrappers in util/sync.hpp so Clang Thread Safety
                      Analysis sees every critical section. sync.hpp
                      itself is the one sanctioned user of the raw
                      primitives.
  header-hygiene      Every header under src/ must be self-contained:
                      `#include "x.hpp"` alone must compile (checked
                      with $CXX -fsyntax-only). Skipped with
                      --no-headers or when no compiler is available.

Exit status: 0 when clean, 1 when any rule fires, 2 on usage errors.
A line may opt out with a trailing `// baffle-lint: allow(<rule>)`
comment; abuse of that shows up in review.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile

LIBRARY_OUTPUT_SINKS = {os.path.join("util", "logging.cpp")}
# The annotated wrapper layer is the single sanctioned user of the raw
# standard-library synchronization primitives.
RAW_SYNC_SINKS = {os.path.join("util", "sync.hpp")}

IOSTREAM_INCLUDE = re.compile(r'^\s*#\s*include\s*<(iostream|cstdio|stdio\.h)>')
PRINTF_CALL = re.compile(r'(?<![\w:.])(?:std::)?(?:printf|fprintf|puts)\s*\(')
NEW_EXPR = re.compile(r'(?<![\w.])new\s+[A-Za-z_(]')
DELETE_EXPR = re.compile(r'(?<![\w.])delete(\[\])?\s+[A-Za-z_(*]')
LIBC_RANDOM = re.compile(r'(?<![\w:.])(?:std::)?(?:rand|srand|time)\s*\(')
RAW_SYNC = re.compile(
    r'std::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|'
    r'condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|'
    r'shared_lock)\b')
RAW_SYNC_INCLUDE = re.compile(
    r'^\s*#\s*include\s*<(mutex|shared_mutex|condition_variable)>')
ALLOW = re.compile(r'//\s*baffle-lint:\s*allow\(([a-z-]+)\)')

TABLE_MEMBER = re.compile(r'\(\s*\*\s*(\w+)\s*\)\s*\(')


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents so the
    pattern rules do not fire on prose or log messages."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            break
        if c in ('"', "'"):
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == '\\':
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return ''.join(out)


class Linter:
    def __init__(self, root: str) -> None:
        self.root = root
        self.failures: list[str] = []

    def fail(self, rule: str, path: str, line_no: int | None, msg: str) -> None:
        rel = os.path.relpath(path, self.root)
        where = f"{rel}:{line_no}" if line_no else rel
        self.failures.append(f"{where}: [{rule}] {msg}")

    # -- pattern rules over library TUs --------------------------------

    def lint_source_file(self, path: str) -> None:
        rel = os.path.relpath(path, os.path.join(self.root, "src"))
        is_output_sink = rel in LIBRARY_OUTPUT_SINKS
        is_sync_sink = rel in RAW_SYNC_SINKS
        with open(path, encoding="utf-8") as f:
            for line_no, raw in enumerate(f, start=1):
                allowed = {m for m in ALLOW.findall(raw)}
                line = strip_comments_and_strings(raw)
                if not is_output_sink and "no-iostream" not in allowed:
                    if IOSTREAM_INCLUDE.search(line) or PRINTF_CALL.search(line):
                        self.fail("no-iostream", path, line_no,
                                  "console I/O in a library TU (route it "
                                  "through util/logging.hpp)")
                if "no-naked-new" not in allowed:
                    if NEW_EXPR.search(line) or DELETE_EXPR.search(line):
                        self.fail("no-naked-new", path, line_no,
                                  "naked new/delete (use containers or "
                                  "smart pointers)")
                if "no-libc-random" not in allowed:
                    if LIBC_RANDOM.search(line):
                        self.fail("no-libc-random", path, line_no,
                                  "libc rand()/srand()/time() (use "
                                  "util/rng.hpp so runs are reproducible)")
                if not is_sync_sink and "raw-sync" not in allowed:
                    if RAW_SYNC.search(line) or RAW_SYNC_INCLUDE.search(line):
                        self.fail("raw-sync", path, line_no,
                                  "raw standard-library synchronization "
                                  "(use the annotated wrappers in "
                                  "util/sync.hpp so thread-safety "
                                  "analysis sees the critical section)")

    # -- dispatch-table completeness -----------------------------------

    # Table members are wrappers around differently-named public entry
    # points in a few places; the parity test exercises those.
    PARITY_ALIASES = {
        "gemm_ab_rows": ["gemm_ab"],
        "gemm_atb_rows": ["gemm_atb"],
        "gemm_abt_rows": ["gemm_abt"],
        "gemm_packed_rows": ["gemm_ab_packed"],
        "squared_l2": ["l2_norm", "squared_l2"],
        "sum_d": ["sum(", "sum ("],
        "sum_sq_diff_d": ["sum_sq_diff"],
    }

    # The reduced-precision evaluation arm (DESIGN.md §14) lives in its
    # own TU (kernels_bf16.cpp, spliced into the vector table at install
    # time), so its vector implementations are checked there instead of
    # in kernels_simd.cpp.
    REDUCED_PRECISION_MEMBERS = {
        "eval_layer_bf16",
        "eval_layer_u8",
        "quantize_panel_u8",
        "convert_f32_bf16",
        "convert_bf16_f32",
    }

    def lint_dispatch_table(self) -> None:
        table_path = os.path.join(self.root, "src", "tensor", "kernels.hpp")
        scalar_path = os.path.join(self.root, "src", "tensor",
                                   "kernels_scalar.cpp")
        simd_path = os.path.join(self.root, "src", "tensor",
                                 "kernels_simd.cpp")
        bf16_path = os.path.join(self.root, "src", "tensor",
                                 "kernels_bf16.cpp")
        parity_path = os.path.join(self.root, "tests", "tensor",
                                   "simd_parity_test.cpp")
        for p in (table_path, scalar_path, simd_path, bf16_path, parity_path):
            if not os.path.exists(p):
                self.fail("dispatch-table", p, None, "file missing")
                return

        text = open(table_path, encoding="utf-8").read()
        struct = re.search(r'struct KernelTable\s*\{(.*?)\n\};', text,
                           re.DOTALL)
        if not struct:
            self.fail("dispatch-table", table_path, None,
                      "could not locate struct KernelTable")
            return
        members = TABLE_MEMBER.findall(struct.group(1))
        if not members:
            self.fail("dispatch-table", table_path, None,
                      "KernelTable has no function-pointer members")
            return

        scalar = open(scalar_path, encoding="utf-8").read()
        simd = open(simd_path, encoding="utf-8").read()
        bf16 = open(bf16_path, encoding="utf-8").read()
        parity = open(parity_path, encoding="utf-8").read()
        for name in members:
            if name not in scalar:
                self.fail("dispatch-table", scalar_path, None,
                          f"table entry '{name}' has no scalar "
                          "implementation")
            if name in self.REDUCED_PRECISION_MEMBERS:
                if name not in bf16:
                    self.fail("dispatch-table", bf16_path, None,
                              f"table entry '{name}' has no "
                              "reduced-precision implementation")
            elif name not in simd:
                self.fail("dispatch-table", simd_path, None,
                          f"table entry '{name}' has no SIMD "
                          "implementation")
            probes = [name] + self.PARITY_ALIASES.get(name, [])
            if not any(p in parity for p in probes):
                self.fail("dispatch-table", parity_path, None,
                          f"table entry '{name}' has no SimdParity "
                          "coverage")

    # -- header self-containment ---------------------------------------

    def lint_headers(self, jobs: int) -> None:
        cxx = os.environ.get("CXX") or shutil.which("g++") or \
            shutil.which("clang++")
        if cxx is None:
            print("baffle_lint: SKIP header-hygiene (no C++ compiler found)")
            return
        src = os.path.join(self.root, "src")
        headers = []
        for dirpath, _, files in os.walk(src):
            for f in sorted(files):
                if f.endswith(".hpp"):
                    headers.append(os.path.join(dirpath, f))

        def compile_one(header: str) -> tuple[str, str | None]:
            rel = os.path.relpath(header, src)
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".cpp", delete=False) as tu:
                tu.write(f'#include "{rel}"\n')
                tu_path = tu.name
            try:
                proc = subprocess.run(
                    [cxx, "-std=c++20", "-fsyntax-only", "-I", src, tu_path],
                    capture_output=True, text=True)
                if proc.returncode != 0:
                    lines = proc.stderr.strip().splitlines()
                    summary = next((ln for ln in lines if "error" in ln),
                                   lines[-1] if lines else "compile failed")
                    return rel, summary.strip()
                return rel, None
            finally:
                os.unlink(tu_path)

        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            for rel, err in pool.map(compile_one, headers):
                if err is not None:
                    self.fail("header-hygiene",
                              os.path.join(src, rel), None,
                              f"header is not self-contained: {err}")

    def run(self, check_headers: bool, jobs: int) -> int:
        src = os.path.join(self.root, "src")
        if not os.path.isdir(src):
            print(f"baffle_lint: no src/ under {self.root}", file=sys.stderr)
            return 2
        for dirpath, _, files in os.walk(src):
            for f in sorted(files):
                if f.endswith(".cpp") or f.endswith(".hpp"):
                    self.lint_source_file(os.path.join(dirpath, f))
        self.lint_dispatch_table()
        if check_headers:
            self.lint_headers(jobs)

        if self.failures:
            for failure in sorted(self.failures):
                print(failure)
            print(f"baffle_lint: {len(self.failures)} violation(s)")
            return 1
        print("baffle_lint: clean")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this script)")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the header self-containment compile")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 1)),
                        help="parallelism for header compiles")
    args = parser.parse_args()
    return Linter(os.path.abspath(args.root)).run(
        check_headers=not args.no_headers, jobs=args.jobs)


if __name__ == "__main__":
    sys.exit(main())

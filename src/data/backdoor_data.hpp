#pragma once
// Backdoor task specification and poisoned-training-set construction.
//
// Model replacement (Bagdasaryan et al.) trains the attacker's local
// model on a *blend* of correctly-labelled data (to keep main-task
// accuracy) and backdoor instances relabelled to the target class (the
// adversarial sub-task).

#include "data/synth.hpp"

namespace baffle {

struct BackdoorTask {
  BackdoorKind kind = BackdoorKind::kSemantic;
  int source_class = 1;
  int target_class = 2;
};

/// Relabels every example of `backdoor_pool` to the target class.
Dataset relabel_to_target(const Dataset& backdoor_pool,
                          const BackdoorTask& task);

/// Attacker's local training set: the attacker's clean shard blended
/// with `poison_fraction` backdoor samples (relabelled to target).
/// The backdoor pool is resampled (with replacement if needed) to hit
/// the requested fraction of the final set.
Dataset make_poisoned_training_set(const Dataset& attacker_clean,
                                   const Dataset& backdoor_pool,
                                   const BackdoorTask& task,
                                   double poison_fraction, Rng& rng);

/// For label-flip backdoors the paper picks the source as the class "so
/// that the adversary has most data" and the target uniformly among the
/// remaining classes.
BackdoorTask pick_label_flip_task(const Dataset& attacker_data, Rng& rng);

}  // namespace baffle

#include "data/backdoor_data.hpp"

#include <algorithm>
#include <stdexcept>

namespace baffle {

Dataset relabel_to_target(const Dataset& backdoor_pool,
                          const BackdoorTask& task) {
  Dataset out(backdoor_pool.dim(), backdoor_pool.num_classes());
  for (const auto& ex : backdoor_pool.examples()) {
    Example poisoned = ex;
    poisoned.y = task.target_class;
    out.add(std::move(poisoned));
  }
  return out;
}

Dataset make_poisoned_training_set(const Dataset& attacker_clean,
                                   const Dataset& backdoor_pool,
                                   const BackdoorTask& task,
                                   double poison_fraction, Rng& rng) {
  if (poison_fraction <= 0.0 || poison_fraction >= 1.0) {
    throw std::invalid_argument(
        "make_poisoned_training_set: poison_fraction out of (0,1)");
  }
  if (backdoor_pool.empty()) {
    throw std::invalid_argument(
        "make_poisoned_training_set: empty backdoor pool");
  }
  Dataset out = attacker_clean;
  const auto clean_n = static_cast<double>(attacker_clean.size());
  const auto poison_n = static_cast<std::size_t>(
      poison_fraction / (1.0 - poison_fraction) * clean_n + 0.5);
  const Dataset relabelled = relabel_to_target(backdoor_pool, task);
  for (std::size_t i = 0; i < std::max<std::size_t>(poison_n, 1); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(relabelled.size()) - 1));
    out.add(relabelled[j]);
  }
  out.shuffle(rng);
  return out;
}

BackdoorTask pick_label_flip_task(const Dataset& attacker_data, Rng& rng) {
  if (attacker_data.empty()) {
    throw std::invalid_argument("pick_label_flip_task: empty attacker data");
  }
  const auto counts = attacker_data.class_counts();
  const auto source = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  // Target uniform among the remaining classes.
  const auto k = static_cast<std::int64_t>(counts.size());
  auto target = static_cast<int>(rng.uniform_int(0, k - 2));
  if (target >= source) ++target;
  return BackdoorTask{BackdoorKind::kLabelFlip, source, target};
}

}  // namespace baffle

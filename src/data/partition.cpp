#include "data/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace baffle {

std::vector<Dataset> dirichlet_partition(const Dataset& data,
                                         std::size_t num_clients,
                                         double alpha, Rng& rng) {
  if (num_clients == 0) {
    throw std::invalid_argument("dirichlet_partition: num_clients == 0");
  }
  std::vector<Dataset> clients(
      num_clients, Dataset(data.dim(), data.num_classes()));

  // Group example indices per class, then deal each class out with its
  // own Dirichlet draw.
  std::vector<std::vector<std::size_t>> by_class(data.num_classes());
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data[i].y)].push_back(i);
  }
  for (auto& indices : by_class) {
    if (indices.empty()) continue;
    const auto proportions = rng.dirichlet(num_clients, alpha);
    // Shuffle so the assignment is exchangeable within the class.
    rng.shuffle(indices);
    // Largest-remainder allocation of |indices| samples to clients.
    std::vector<std::size_t> quota(num_clients, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      const double exact =
          proportions[c] * static_cast<double>(indices.size());
      quota[c] = static_cast<std::size_t>(exact);
      assigned += quota[c];
      remainders.emplace_back(exact - static_cast<double>(quota[c]), c);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; assigned < indices.size(); ++i, ++assigned) {
      quota[remainders[i % num_clients].second]++;
    }
    std::size_t pos = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      for (std::size_t k = 0; k < quota[c]; ++k) {
        clients[c].add(data[indices[pos++]]);
      }
    }
  }
  return clients;
}

std::vector<Dataset> iid_partition(const Dataset& data,
                                   std::size_t num_clients, Rng& rng) {
  if (num_clients == 0) {
    throw std::invalid_argument("iid_partition: num_clients == 0");
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<Dataset> clients(
      num_clients, Dataset(data.dim(), data.num_classes()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    clients[i % num_clients].add(data[order[i]]);
  }
  return clients;
}

ClientServerSplit split_client_server(const Dataset& data,
                                      double server_fraction, Rng& rng) {
  if (server_fraction < 0.0 || server_fraction >= 1.0) {
    throw std::invalid_argument(
        "split_client_server: server_fraction out of [0,1)");
  }
  auto [server, clients] = data.split(server_fraction, rng);
  return ClientServerSplit{std::move(clients), std::move(server)};
}

}  // namespace baffle

#pragma once
// Splitting the global training pool across the FL participants.
//
// The paper assigns data to clients "according to the Dirichlet
// distribution with hyper-parameter 0.9" (Minka 2000 / Bagdasaryan et
// al.), making clients' class distributions unbalanced, and studies
// client/server splits C-S% where the server keeps S% of the data as its
// own validation holdout.

#include <vector>

#include "data/dataset.hpp"

namespace baffle {

/// Per-class Dirichlet partition: for every class, proportions over the
/// n clients are drawn from Dir(alpha) and that class's samples are
/// dealt out accordingly. Smaller alpha -> more skewed clients.
std::vector<Dataset> dirichlet_partition(const Dataset& data,
                                         std::size_t num_clients,
                                         double alpha, Rng& rng);

/// Uniform random partition into equal-size shards (the IID baseline for
/// the non-IID ablation).
std::vector<Dataset> iid_partition(const Dataset& data,
                                   std::size_t num_clients, Rng& rng);

/// Client/server split of the training pool: the server keeps
/// `server_fraction` of the data (its validation holdout for BAFFLE-S /
/// BAFFLE), clients share the rest.
struct ClientServerSplit {
  Dataset client_pool;
  Dataset server_holdout;
};

ClientServerSplit split_client_server(const Dataset& data,
                                      double server_fraction, Rng& rng);

}  // namespace baffle

#include "data/synth.hpp"

#include <cmath>
#include <stdexcept>

namespace baffle {

namespace {

/// Random direction with the given L2 norm.
std::vector<float> random_direction(std::size_t dim, double norm, Rng& rng) {
  std::vector<float> v(dim);
  double total = 0.0;
  for (auto& x : v) {
    const double g = rng.normal();
    x = static_cast<float>(g);
    total += g * g;
  }
  const double current = std::sqrt(total);
  if (current > 0.0) {
    const auto scale = static_cast<float>(norm / current);
    for (auto& x : v) x *= scale;
  }
  return v;
}

std::vector<float> add_vecs(const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

struct MixtureModel {
  // mode_means[c][m] is the mean of class c's m-th sub-population.
  std::vector<std::vector<std::vector<float>>> mode_means;
  std::vector<float> backdoor_mean;  // semantic backdoor sub-population
};

MixtureModel build_mixture(const SynthTaskConfig& cfg, Rng& rng) {
  MixtureModel model;
  model.mode_means.resize(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    const auto base = random_direction(cfg.dim, cfg.class_sep, rng);
    model.mode_means[c].reserve(cfg.modes_per_class);
    for (std::size_t m = 0; m < cfg.modes_per_class; ++m) {
      model.mode_means[c].push_back(
          add_vecs(base, random_direction(cfg.dim, cfg.mode_spread, rng)));
    }
  }
  if (cfg.backdoor_kind == BackdoorKind::kSemantic) {
    // The backdoor sub-population sits inside the source class but is
    // shifted along a distinctive trigger direction — a coherent,
    // naturally-occurring feature subset (the "striped background").
    const auto& source_base =
        model.mode_means[static_cast<std::size_t>(cfg.backdoor_source)][0];
    model.backdoor_mean = add_vecs(
        source_base, random_direction(cfg.dim, cfg.trigger_strength, rng));
  }
  return model;
}

Example sample_from_mean(const std::vector<float>& mean, int label,
                         double noise, Rng& rng) {
  Example ex;
  ex.x.resize(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    ex.x[i] = mean[i] + static_cast<float>(rng.normal(0.0, noise));
  }
  ex.y = label;
  return ex;
}

/// Clean sample of class c: uniform over its sub-populations.
Example sample_clean(const MixtureModel& model, const SynthTaskConfig& cfg,
                     std::size_t c, Rng& rng) {
  const auto& modes = model.mode_means[c];
  const auto m = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(modes.size()) - 1));
  return sample_from_mean(modes[m], static_cast<int>(c), cfg.noise, rng);
}

Dataset make_clean_set(const MixtureModel& model, const SynthTaskConfig& cfg,
                       std::size_t per_class, double label_noise, Rng& rng) {
  Dataset out(cfg.dim, cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      Example ex = sample_clean(model, cfg, c, rng);
      if (label_noise > 0.0 && rng.bernoulli(label_noise)) {
        // Mislabel to a uniformly random *other* class.
        const auto shift = rng.uniform_int(
            1, static_cast<std::int64_t>(cfg.num_classes) - 1);
        ex.y = static_cast<int>(
            (c + static_cast<std::size_t>(shift)) % cfg.num_classes);
      }
      out.add(std::move(ex));
    }
  }
  out.shuffle(rng);
  return out;
}

Dataset make_backdoor_set(const MixtureModel& model,
                          const SynthTaskConfig& cfg, std::size_t count,
                          Rng& rng) {
  Dataset out(cfg.dim, cfg.num_classes);
  const std::vector<float> pattern =
      cfg.backdoor_kind == BackdoorKind::kTrigger ? trigger_pattern(cfg)
                                                  : std::vector<float>{};
  for (std::size_t i = 0; i < count; ++i) {
    switch (cfg.backdoor_kind) {
      case BackdoorKind::kSemantic:
        out.add(sample_from_mean(model.backdoor_mean, cfg.backdoor_source,
                                 cfg.noise, rng));
        break;
      case BackdoorKind::kLabelFlip:
        // The backdoor instances are ordinary samples of the source
        // class.
        out.add(sample_clean(model, cfg,
                             static_cast<std::size_t>(cfg.backdoor_source),
                             rng));
        break;
      case BackdoorKind::kTrigger: {
        // Any input stamped with the patch; true class preserved.
        const auto c = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cfg.num_classes) - 1));
        Example ex = sample_clean(model, cfg, c, rng);
        apply_trigger(ex, pattern);
        out.add(std::move(ex));
        break;
      }
    }
  }
  return out;
}

}  // namespace

const char* backdoor_kind_name(BackdoorKind kind) {
  switch (kind) {
    case BackdoorKind::kSemantic: return "semantic";
    case BackdoorKind::kLabelFlip: return "label-flip";
    case BackdoorKind::kTrigger: return "trigger-patch";
  }
  return "?";
}

std::vector<float> trigger_pattern(const SynthTaskConfig& config) {
  std::vector<float> pattern(config.dim, 0.0f);
  const std::size_t dims = std::min(kTriggerPatchDims, config.dim);
  for (std::size_t i = 0; i < dims; ++i) {
    pattern[i] = static_cast<float>(config.trigger_strength);
  }
  return pattern;
}

void apply_trigger(Example& example, std::span<const float> pattern) {
  if (example.x.size() != pattern.size()) {
    throw std::invalid_argument("apply_trigger: pattern size mismatch");
  }
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    example.x[i] += pattern[i];
  }
}

SynthTaskConfig synth_vision10_config() {
  SynthTaskConfig cfg;
  cfg.num_classes = 10;
  cfg.dim = 32;
  cfg.modes_per_class = 6;
  cfg.class_sep = 3.2;
  cfg.mode_spread = 1.5;
  cfg.noise = 0.95;
  cfg.label_noise = 0.03;
  // 10k training samples across 100 clients puts ~90 samples on each
  // client (90-10 split) — the same order as the paper's CIFAR-10
  // deployment (500/client), and enough resolution for a client's
  // VALIDATE to see the side effects of a behavior-cloned adaptive
  // injection.
  cfg.train_per_class = 1000;
  cfg.test_per_class = 100;
  cfg.backdoor_kind = BackdoorKind::kSemantic;
  cfg.backdoor_source = 1;  // 'cars'
  cfg.backdoor_target = 2;  // 'birds'
  cfg.trigger_strength = 2.5;
  cfg.backdoor_train_size = 200;
  cfg.backdoor_test_size = 100;
  return cfg;
}

SynthTaskConfig synth_femnist62_config() {
  SynthTaskConfig cfg;
  cfg.num_classes = 62;
  cfg.dim = 48;
  cfg.modes_per_class = 2;
  cfg.class_sep = 3.9;
  cfg.mode_spread = 1.0;
  cfg.noise = 0.95;
  cfg.label_noise = 0.02;
  cfg.train_per_class = 120;
  cfg.test_per_class = 30;
  cfg.backdoor_kind = BackdoorKind::kLabelFlip;
  cfg.backdoor_source = 0;  // overridden per-run by the harness
  cfg.backdoor_target = 1;
  cfg.backdoor_train_size = 150;
  cfg.backdoor_test_size = 60;
  return cfg;
}

SynthTask make_synth_task(const SynthTaskConfig& config, Rng& rng) {
  if (config.num_classes < 2) {
    throw std::invalid_argument("make_synth_task: need >= 2 classes");
  }
  if (config.backdoor_source < 0 ||
      static_cast<std::size_t>(config.backdoor_source) >= config.num_classes ||
      config.backdoor_target < 0 ||
      static_cast<std::size_t>(config.backdoor_target) >= config.num_classes ||
      config.backdoor_source == config.backdoor_target) {
    throw std::invalid_argument("make_synth_task: bad backdoor classes");
  }
  const MixtureModel model = build_mixture(config, rng);
  SynthTask task;
  task.config = config;
  task.train = make_clean_set(model, config, config.train_per_class,
                              config.label_noise, rng);
  task.test = make_clean_set(model, config, config.test_per_class, 0.0, rng);
  task.backdoor_train =
      make_backdoor_set(model, config, config.backdoor_train_size, rng);
  task.backdoor_test =
      make_backdoor_set(model, config, config.backdoor_test_size, rng);
  return task;
}

}  // namespace baffle

#pragma once
// Labelled dataset container plus the conversions the training loop and
// the metrics layer need.
//
// features()/labels() return references into a lazily materialized
// cache, built once per mutation epoch — the validation loop evaluates
// the same held-out set against ℓ+1 models every round, and used to pay
// a full matrix copy per evaluation. Concurrent const access is safe:
// readers check the cache under a shared lock (many validators can hit
// the warm cache in parallel), the one-time fill takes the writer side.
// Mutation needs external synchronization, like any standard container.

#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace baffle {

struct Example {
  std::vector<float> x;
  int y = 0;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t dim, std::size_t num_classes)
      : dim_(dim), num_classes_(num_classes) {}

  // The mutex member deletes the defaults; copies drop the cache (it is
  // rebuilt on first access), moves would not be cheaper by keeping it.
  Dataset(const Dataset& other)
      : dim_(other.dim_),
        num_classes_(other.num_classes_),
        examples_(other.examples_) {}
  Dataset(Dataset&& other) noexcept
      : dim_(other.dim_),
        num_classes_(other.num_classes_),
        examples_(std::move(other.examples_)) {}
  Dataset& operator=(const Dataset& other);
  Dataset& operator=(Dataset&& other) noexcept;

  std::size_t dim() const { return dim_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }

  const Example& operator[](std::size_t i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Appends an example; validates feature dim and label range.
  void add(Example ex);

  /// Dense feature matrix (one sample per row). The reference stays
  /// valid until the next mutating call.
  const Matrix& features() const;

  /// Integer labels, aligned with features() rows. Same lifetime rules
  /// as features().
  const std::vector<int>& labels() const;

  /// Per-class sample counts (length = num_classes).
  std::vector<std::size_t> class_counts() const;

  /// New dataset containing the examples at `indices`.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset with only the examples of class y.
  Dataset filter_class(int y) const;

  /// Appends all examples of `other` (same dim/num_classes required).
  void merge(const Dataset& other);

  /// Random split: first part gets `fraction` of the examples.
  std::pair<Dataset, Dataset> split(double fraction, Rng& rng) const;

  /// Uniformly sampled subset of k examples (k <= size).
  Dataset sample(std::size_t k, Rng& rng) const;

  void shuffle(Rng& rng);

 private:
  void invalidate_cache();
  /// One-time cache fill (re-checks validity under the writer lock —
  /// concurrent readers race only on who fills it).
  void materialize_cache() const;

  std::size_t dim_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<Example> examples_;

  // Lazily built dense views of examples_, shared by every evaluation
  // against this dataset. Readers take the shared side of the lock;
  // only the cache fill and invalidation write.
  mutable SharedMutex cache_mutex_;
  mutable bool cache_valid_ BAFFLE_GUARDED_BY(cache_mutex_) = false;
  mutable Matrix features_cache_ BAFFLE_GUARDED_BY(cache_mutex_);
  mutable std::vector<int> labels_cache_ BAFFLE_GUARDED_BY(cache_mutex_);
};

}  // namespace baffle

#pragma once
// Labelled dataset container plus the conversions the training loop and
// the metrics layer need.

#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace baffle {

struct Example {
  std::vector<float> x;
  int y = 0;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::size_t dim, std::size_t num_classes)
      : dim_(dim), num_classes_(num_classes) {}

  std::size_t dim() const { return dim_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }

  const Example& operator[](std::size_t i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Appends an example; validates feature dim and label range.
  void add(Example ex);

  /// Dense feature matrix (one sample per row).
  Matrix features() const;

  /// Integer labels, aligned with features() rows.
  std::vector<int> labels() const;

  /// Per-class sample counts (length = num_classes).
  std::vector<std::size_t> class_counts() const;

  /// New dataset containing the examples at `indices`.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset with only the examples of class y.
  Dataset filter_class(int y) const;

  /// Appends all examples of `other` (same dim/num_classes required).
  void merge(const Dataset& other);

  /// Random split: first part gets `fraction` of the examples.
  std::pair<Dataset, Dataset> split(double fraction, Rng& rng) const;

  /// Uniformly sampled subset of k examples (k <= size).
  Dataset sample(std::size_t k, Rng& rng) const;

  void shuffle(Rng& rng);

 private:
  std::size_t dim_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<Example> examples_;
};

}  // namespace baffle

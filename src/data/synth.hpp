#pragma once
// Synthetic image-classification surrogates for CIFAR-10 and FEMNIST.
//
// Substitution rationale (see DESIGN.md §2): BaFFLe consumes only the
// per-class error behaviour of the global model across FL rounds, so any
// classifier + data distribution with (a) incremental round-to-round
// improvement, (b) class-conditional error structure, and (c) a
// *sub-population* semantic-trigger for the backdoor exercises the exact
// defense code path. Each class is a Gaussian mixture over several
// "modes" (sub-populations). The designated backdoor mode of the source
// class is shifted along a private trigger direction — the analogue of
// "cars with a striped background": a naturally-occurring feature subset,
// not a pixel patch.
//
// The generator returns:
//   train          — clean training pool (backdoor-mode samples of the
//                    source class excluded, matching the paper's
//                    worst-case "no validating client holds backdoor
//                    data" setup for semantic backdoors)
//   test           — clean held-out test set (same exclusion)
//   backdoor_train — attacker's pool of backdoor instances (true class =
//                    source; the attacker relabels them to the target)
//   backdoor_test  — held-out backdoor instances for measuring backdoor
//                    accuracy (Eq. 1)

#include "data/dataset.hpp"

namespace baffle {

enum class BackdoorKind {
  kSemantic,   // sub-population trigger (CIFAR-10 experiment)
  kLabelFlip,  // entire source class -> target (FEMNIST experiment)
  kTrigger,    // pixel-patch analogue: a fixed additive pattern stamped
               // onto otherwise ordinary inputs (BadNets/DBA-style); the
               // paper conjectures (§V) that dedicated instantiations
               // detect other backdoor types — the ablation bench tests
               // the default instantiation against this one
};

const char* backdoor_kind_name(BackdoorKind kind);

struct SynthTaskConfig {
  std::size_t num_classes = 10;
  std::size_t dim = 32;
  std::size_t modes_per_class = 3;
  double class_sep = 3.0;      // scale of class/mode mean vectors
  double mode_spread = 1.2;    // how far modes sit from the class mean
  double noise = 1.0;          // per-component sample noise
  double label_noise = 0.03;   // fraction of mislabeled training samples
  std::size_t train_per_class = 400;
  std::size_t test_per_class = 100;

  BackdoorKind backdoor_kind = BackdoorKind::kSemantic;
  int backdoor_source = 1;       // paper: 'cars'
  int backdoor_target = 2;       // paper: 'birds'
  double trigger_strength = 2.5; // shift of the backdoor mode
  std::size_t backdoor_train_size = 200;
  std::size_t backdoor_test_size = 100;
};

struct SynthTask {
  SynthTaskConfig config;
  Dataset train;
  Dataset test;
  Dataset backdoor_train;  // labelled with the TRUE (source) class
  Dataset backdoor_test;   // labelled with the TRUE (source) class
};

/// CIFAR-10 surrogate: 10 classes, semantic sub-population backdoor
/// ('cars with striped background' -> 'birds').
SynthTaskConfig synth_vision10_config();

/// FEMNIST surrogate: 62 classes, label-flipping backdoor; source class
/// chosen as the attacker's best-represented class by the experiment
/// harness, target uniform among the rest (paper §VI-A).
SynthTaskConfig synth_femnist62_config();

/// Generates all four datasets from the config.
SynthTask make_synth_task(const SynthTaskConfig& config, Rng& rng);

/// The fixed additive pattern used by kTrigger backdoors: zero outside
/// the first `trigger_patch_dims` feature dimensions, `trigger_strength`
/// inside. Deterministic — the "pixel patch" every attacker stamps.
std::vector<float> trigger_pattern(const SynthTaskConfig& config);

/// Number of feature dims the trigger patch occupies.
constexpr std::size_t kTriggerPatchDims = 6;

/// Stamps (adds) a trigger pattern onto an example's features.
void apply_trigger(Example& example, std::span<const float> pattern);

}  // namespace baffle

#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace baffle {

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  num_classes_ = other.num_classes_;
  examples_ = other.examples_;
  invalidate_cache();
  return *this;
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  num_classes_ = other.num_classes_;
  examples_ = std::move(other.examples_);
  invalidate_cache();
  return *this;
}

void Dataset::add(Example ex) {
  if (ex.x.size() != dim_) {
    throw std::invalid_argument("Dataset::add: feature dim mismatch");
  }
  if (ex.y < 0 || static_cast<std::size_t>(ex.y) >= num_classes_) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  examples_.push_back(std::move(ex));
  invalidate_cache();
}

const Matrix& Dataset::features() const {
  // Fast path: a warm cache is served entirely under the shared lock,
  // so concurrent validators never serialize on a mutex here. The
  // returned reference deliberately outlives the lock — it stays valid
  // until the next mutating call, which the caller must order
  // externally (class contract).
  {
    ReaderLock lock(cache_mutex_);
    if (cache_valid_) return features_cache_;
  }
  materialize_cache();
  ReaderLock lock(cache_mutex_);
  return features_cache_;
}

const std::vector<int>& Dataset::labels() const {
  {
    ReaderLock lock(cache_mutex_);
    if (cache_valid_) return labels_cache_;
  }
  materialize_cache();
  ReaderLock lock(cache_mutex_);
  return labels_cache_;
}

void Dataset::invalidate_cache() {
  WriterLock lock(cache_mutex_);
  cache_valid_ = false;
}

void Dataset::materialize_cache() const {
  WriterLock lock(cache_mutex_);
  if (cache_valid_) return;  // another thread won the fill race
  features_cache_.resize(examples_.size(), dim_);
  labels_cache_.resize(examples_.size());
  for (std::size_t i = 0; i < examples_.size(); ++i) {
    auto row = features_cache_.row(i);
    std::copy(examples_[i].x.begin(), examples_[i].x.end(), row.begin());
    labels_cache_[i] = examples_[i].y;
  }
  cache_valid_ = true;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes_, 0);
  for (const auto& ex : examples_) {
    counts[static_cast<std::size_t>(ex.y)]++;
  }
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(dim_, num_classes_);
  for (std::size_t i : indices) {
    if (i >= examples_.size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    out.examples_.push_back(examples_[i]);
  }
  return out;
}

Dataset Dataset::filter_class(int y) const {
  Dataset out(dim_, num_classes_);
  for (const auto& ex : examples_) {
    if (ex.y == y) out.examples_.push_back(ex);
  }
  return out;
}

void Dataset::merge(const Dataset& other) {
  if (other.dim_ != dim_ || other.num_classes_ != num_classes_) {
    throw std::invalid_argument("Dataset::merge: incompatible datasets");
  }
  examples_.insert(examples_.end(), other.examples_.begin(),
                   other.examples_.end());
  invalidate_cache();
}

std::pair<Dataset, Dataset> Dataset::split(double fraction, Rng& rng) const {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("Dataset::split: fraction out of range");
  }
  std::vector<std::size_t> order(examples_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const auto cut = static_cast<std::size_t>(
      fraction * static_cast<double>(examples_.size()) + 0.5);
  Dataset first(dim_, num_classes_), second(dim_, num_classes_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < cut ? first : second).examples_.push_back(examples_[order[i]]);
  }
  return {std::move(first), std::move(second)};
}

Dataset Dataset::sample(std::size_t k, Rng& rng) const {
  const auto idx = rng.sample_without_replacement(examples_.size(), k);
  return subset(idx);
}

void Dataset::shuffle(Rng& rng) {
  rng.shuffle(examples_);
  invalidate_cache();
}

}  // namespace baffle

#pragma once
// Communication accounting (reproduces §VI-D).
//
// Tracks bytes moved between server and clients: per-round model
// download, update upload, and — with BaFFLe enabled — the history of
// ℓ+1 accepted models shipped to each validating client. A client that
// was selected within the last ℓ rounds only needs the history *delta*
// (the paper's 40MB-per-20-rounds amortization argument).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace baffle {

struct CommStats {
  std::uint64_t model_download_bytes = 0;   // G sent to contributors
  std::uint64_t update_upload_bytes = 0;    // (masked) updates to server
  std::uint64_t history_bytes = 0;          // model history to validators
  std::uint64_t rounds = 0;

  std::uint64_t total_bytes() const {
    return model_download_bytes + update_upload_bytes + history_bytes;
  }
};

class CommTracker {
 public:
  /// `model_bytes` — wire size of one encoded model; `history_len` — the
  /// ℓ+1 models a validator needs; `compression` — model-compression
  /// factor applied to history transfers (×10 per Caldas et al., as the
  /// paper assumes); 1.0 = uncompressed.
  CommTracker(std::size_t num_clients, std::size_t model_bytes,
              std::size_t history_len, double compression = 1.0);

  /// Accounts one round: every selected client downloads G and uploads
  /// an update; if the defense is on, each also receives the part of the
  /// history it does not already hold from a previous selection.
  void record_round(const std::vector<std::size_t>& selected,
                    bool defense_active);

  const CommStats& stats() const { return stats_; }

  /// Mean bytes a single client received as history so far.
  double history_bytes_per_client() const;

 private:
  std::size_t model_bytes_;
  std::size_t history_len_;
  double compression_;
  CommStats stats_;
  // last round at which each client synced the history; SIZE_MAX = never
  std::vector<std::uint64_t> last_sync_round_;
  std::uint64_t current_round_ = 0;
};

}  // namespace baffle

#pragma once
// Communication accounting (reproduces §VI-D).
//
// Tracks bytes moved between server and clients: per-round model
// download, update upload, and — with BaFFLe enabled — the history of
// ℓ+1 accepted models shipped to each validating client. A client that
// validated recently only needs the history *delta* (the paper's
// 40MB-per-20-rounds amortization argument).
//
// Two feeding modes share the same CommStats:
//   - record_round(): the estimated path — per-client byte costs derived
//     from the nominal model size. The history delta is measured on the
//     *commit clock*: rejected rounds do not advance the accepted-model
//     window, so a returning validator is charged only for the commits
//     it actually missed.
//   - add_bytes()/add_round(): the exact path — the transport-backed
//     round loop (src/net) reports every frame at its actually-
//     serialized size, attributed by CommCategory. Totals then match
//     the channel byte counters bit for bit.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace baffle {

struct CommStats {
  std::uint64_t model_download_bytes = 0;   // G / candidate to clients
  std::uint64_t update_upload_bytes = 0;    // (masked) updates to server
  std::uint64_t history_bytes = 0;          // model history to validators
  std::uint64_t control_bytes = 0;          // votes + round results
  std::uint64_t rounds = 0;

  std::uint64_t total_bytes() const {
    return model_download_bytes + update_upload_bytes + history_bytes +
           control_bytes;
  }
};

/// Traffic class a wire frame is attributed to (exact accounting).
enum class CommCategory {
  kModelDownload,
  kUpdateUpload,
  kHistory,
  kControl,
};

class CommTracker {
 public:
  /// `model_bytes` — wire size of one encoded model; `history_len` — the
  /// ℓ+1 models a validator needs; `compression` — model-compression
  /// factor applied to history transfers (×10 per Caldas et al., as the
  /// paper assumes); 1.0 = uncompressed.
  CommTracker(std::size_t num_clients, std::size_t model_bytes,
              std::size_t history_len, double compression = 1.0);

  /// Accounts one round: every selected client downloads G and uploads
  /// an update; if the defense is on, each also receives the part of the
  /// history it does not already hold from a previous selection.
  /// `committed` reports the round's outcome — a rejected round leaves
  /// the accepted-model window unchanged, so it advances the round
  /// count but not the history clock.
  void record_round(const std::vector<std::size_t>& selected,
                    bool defense_active, bool committed = true);

  /// Exact accounting: one transport-driven round started.
  void add_round() { ++stats_.rounds; }
  /// Exact accounting: `bytes` of serialized frames in `category`.
  void add_bytes(CommCategory category, std::uint64_t bytes);

  const CommStats& stats() const { return stats_; }

  /// Mean bytes a single client received as history so far.
  double history_bytes_per_client() const;

 private:
  std::size_t model_bytes_;
  std::size_t history_len_;
  double compression_;
  CommStats stats_;
  /// Commit-clock value (number of accepted models) at each client's
  /// last history sync; kNeverSynced (max uint64) = never synced.
  std::vector<std::uint64_t> last_sync_commit_;
  std::uint64_t commit_clock_ = 0;
};

}  // namespace baffle

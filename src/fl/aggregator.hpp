#pragma once
// Server-side aggregation of client updates into a global-model delta.
//
// FedAvg follows the paper's rule G' = G + (λ/N) Σ_i U_i where λ is the
// global learning rate and N the total client population; λ = N/n fully
// replaces G with the average of the n local models. The Byzantine-
// robust aggregators live in src/baselines and share this interface —
// note that every one of them needs the *individual* updates, which is
// exactly why the paper rules them out under secure aggregation.

#include <string_view>

#include "fl/update.hpp"

namespace baffle {

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Combines the round's updates into one delta to add to the global
  /// parameters. Throws std::invalid_argument on empty/ragged input.
  virtual ParamVec aggregate(const std::vector<ParamVec>& updates) const = 0;

  virtual std::string_view name() const = 0;
};

class FedAvgAggregator final : public Aggregator {
 public:
  /// `global_lr` is λ; `total_clients` is N.
  FedAvgAggregator(double global_lr, std::size_t total_clients);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "fedavg"; }

  double global_lr() const { return global_lr_; }
  std::size_t total_clients() const { return total_clients_; }

  /// The model-replacement boost factor γ = N/λ for the aggregation rule
  /// G' = G + (λ/N) Σ U_i: scaling a single update by γ makes the
  /// aggregated global model equal the attacker's local model (plus the
  /// other clients' small contributions). (Bagdasaryan et al. write this
  /// as γ = N/(ηn) for their G + (η/n) Σ U rule — same quantity.)
  double replacement_boost(std::size_t clients_per_round) const;

 private:
  double global_lr_;
  std::size_t total_clients_;
};

}  // namespace baffle

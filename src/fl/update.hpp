#pragma once
// Parameter-space vocabulary for federated learning.
//
// A model update is U_i = L_i - G: the client's locally-trained
// parameters minus the global parameters, as one flat vector.

#include <cstddef>
#include <vector>

namespace baffle {

using ParamVec = std::vector<float>;

/// Element-wise mean of equally-weighted updates.
ParamVec mean_update(const std::vector<ParamVec>& updates);

/// Element-wise sum.
ParamVec sum_updates(const std::vector<ParamVec>& updates);

/// Throws unless all updates share `expected_size`.
void check_update_sizes(const std::vector<ParamVec>& updates,
                        std::size_t expected_size);

}  // namespace baffle

#pragma once
// Simulated secure aggregation (Bonawitz et al., CCS'17) via pairwise
// additive masking over fixed-point integers.
//
// Each pair of round participants (i, j) shares a seed; client i adds
// PRG(seed) to its (quantized) update when i < j and subtracts it when
// i > j, so all masks cancel in the sum and the server learns *only* the
// aggregate. Working in uint64 arithmetic (wrap-around group Z_2^64)
// makes the cancellation exact — a property the tests assert bit-for-bit.
//
// Simulated vs. real protocol: key agreement and Shamir-shared seed
// recovery are replaced by deterministic per-pair seeds derived from a
// per-round key; dropout handling reconstructs the dropped clients'
// pairwise masks the way the real protocol does after seed recovery.
// The arithmetic — which is what the BaFFLe compatibility claim rests
// on — is faithful.

#include <cstdint>
#include <vector>

#include "fl/update.hpp"

namespace baffle {

struct SecureAggConfig {
  /// Fixed-point scale: floats are encoded as round(x * 2^frac_bits).
  unsigned frac_bits = 24;
  /// Per-round key from which pairwise seeds derive (stands in for the
  /// Diffie-Hellman agreement of the real protocol).
  std::uint64_t round_key = 0;
};

using MaskedVec = std::vector<std::uint64_t>;

class SecureAggregation {
 public:
  explicit SecureAggregation(SecureAggConfig config) : config_(config) {}

  /// Client-side: quantize `update` and add the pairwise masks of
  /// `self_id` against every other id in `participants`.
  MaskedVec mask_update(const ParamVec& update, std::size_t self_id,
                        const std::vector<std::size_t>& participants) const;

  /// Server-side: sum the survivors' masked vectors, cancel the masks of
  /// dropped participants (ids in `participants` without a masked
  /// vector; the real protocol reconstructs their seeds from Shamir
  /// shares), and dequantize. `senders[k]` is the id that produced
  /// `masked[k]`.
  ParamVec unmask_sum(const std::vector<MaskedVec>& masked,
                      const std::vector<std::size_t>& senders,
                      const std::vector<std::size_t>& participants,
                      std::size_t vec_len) const;

  /// Exact quantization helpers (exposed for tests). decode_sum
  /// interprets the wrapped uint64 as a signed fixed-point sum.
  std::uint64_t encode(float x) const;
  float decode_sum(std::uint64_t total) const;

 private:
  std::uint64_t pair_seed(std::size_t a, std::size_t b) const;
  void add_pair_mask(MaskedVec& vec, std::size_t self_id,
                     std::size_t other_id, bool subtract) const;

  SecureAggConfig config_;
};

}  // namespace baffle

#include "fl/comm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace baffle {

namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
}

CommTracker::CommTracker(std::size_t num_clients, std::size_t model_bytes,
                         std::size_t history_len, double compression)
    : model_bytes_(model_bytes),
      history_len_(history_len),
      compression_(compression),
      last_sync_round_(num_clients, kNever) {
  if (compression < 1.0) {
    throw std::invalid_argument("CommTracker: compression < 1");
  }
}

void CommTracker::record_round(const std::vector<std::size_t>& selected,
                               bool defense_active) {
  ++current_round_;
  ++stats_.rounds;
  for (std::size_t id : selected) {
    if (id >= last_sync_round_.size()) {
      throw std::out_of_range("CommTracker: unknown client id");
    }
    stats_.model_download_bytes += model_bytes_;
    stats_.update_upload_bytes += model_bytes_;
    if (!defense_active) continue;
    // History delta: a client selected r rounds ago already holds all
    // but min(r, history_len) of the ℓ+1 models.
    std::uint64_t missing = history_len_;
    if (last_sync_round_[id] != kNever) {
      missing = std::min<std::uint64_t>(history_len_,
                                        current_round_ - last_sync_round_[id]);
    }
    stats_.history_bytes += static_cast<std::uint64_t>(
        static_cast<double>(missing * model_bytes_) / compression_);
    last_sync_round_[id] = current_round_;
  }
}

double CommTracker::history_bytes_per_client() const {
  if (last_sync_round_.empty()) return 0.0;
  return static_cast<double>(stats_.history_bytes) /
         static_cast<double>(last_sync_round_.size());
}

}  // namespace baffle

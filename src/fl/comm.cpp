#include "fl/comm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace baffle {

namespace {
/// last_sync_commit_ sentinel: the client has never received history.
constexpr std::uint64_t kNeverSynced =
    std::numeric_limits<std::uint64_t>::max();
}  // namespace

CommTracker::CommTracker(std::size_t num_clients, std::size_t model_bytes,
                         std::size_t history_len, double compression)
    : model_bytes_(model_bytes),
      history_len_(history_len),
      compression_(compression),
      last_sync_commit_(num_clients, kNeverSynced) {
  if (compression < 1.0) {
    throw std::invalid_argument("CommTracker: compression < 1");
  }
}

void CommTracker::record_round(const std::vector<std::size_t>& selected,
                               bool defense_active, bool committed) {
  ++stats_.rounds;
  for (std::size_t id : selected) {
    if (id >= last_sync_commit_.size()) {
      throw std::out_of_range("CommTracker: unknown client id");
    }
    stats_.model_download_bytes += model_bytes_;
    stats_.update_upload_bytes += model_bytes_;
    if (!defense_active) continue;
    // History delta, measured on the commit clock: a client that last
    // synced k *commits* ago already holds all but min(k, history_len)
    // of the ℓ+1 window models. Rounds rejected in between moved no
    // model into the window, so they cost nothing here — and a client
    // validating in consecutive committed rounds needs nothing either,
    // because the candidate it just judged (already paid for as a model
    // download) became the window's newest entry.
    std::uint64_t missing = history_len_;
    if (last_sync_commit_[id] != kNeverSynced) {
      missing = std::min<std::uint64_t>(
          history_len_, commit_clock_ - last_sync_commit_[id]);
    }
    stats_.history_bytes += static_cast<std::uint64_t>(
        static_cast<double>(missing * model_bytes_) / compression_);
    // After this round the client holds the pre-round window plus, on a
    // commit, the candidate it validated.
    last_sync_commit_[id] = commit_clock_ + (committed ? 1 : 0);
  }
  if (committed) ++commit_clock_;
}

void CommTracker::add_bytes(CommCategory category, std::uint64_t bytes) {
  switch (category) {
    case CommCategory::kModelDownload:
      stats_.model_download_bytes += bytes;
      return;
    case CommCategory::kUpdateUpload:
      stats_.update_upload_bytes += bytes;
      return;
    case CommCategory::kHistory:
      stats_.history_bytes += bytes;
      return;
    case CommCategory::kControl:
      stats_.control_bytes += bytes;
      return;
  }
  throw std::invalid_argument("CommTracker: unknown category");
}

double CommTracker::history_bytes_per_client() const {
  if (last_sync_commit_.empty()) return 0.0;
  return static_cast<double>(stats_.history_bytes) /
         static_cast<double>(last_sync_commit_.size());
}

}  // namespace baffle

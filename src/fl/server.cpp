#include "fl/server.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace baffle {

void validate_fl_config(const FlConfig& config) {
  BAFFLE_CHECK(config.total_clients > 0, "FL needs at least one client");
  BAFFLE_CHECK(config.clients_per_round > 0,
               "every round needs at least one contributor");
  BAFFLE_CHECK(config.clients_per_round <= config.total_clients,
               "cannot sample more contributors than clients exist");
  BAFFLE_CHECK(config.global_lr > 0.0,
               "global learning rate must be positive");
  BAFFLE_CHECK(!config.secure_aggregation ||
                   (config.secure_agg_frac_bits > 0 &&
                    config.secure_agg_frac_bits < 64),
               "secure-agg fixed-point precision must fit a 64-bit word");
}

FlServer::FlServer(MlpConfig arch, FlConfig config, std::uint64_t seed)
    : arch_(std::move(arch)),
      config_(config),
      global_(arch_),
      aggregator_(config.global_lr, config.total_clients),
      secure_agg_key_base_(Rng::split_mix(seed)) {
  validate_fl_config(config);
  Rng init_rng(seed);
  global_.init(init_rng);
}

FlServer::Proposal FlServer::propose_round(UpdateProvider& provider,
                                           Rng& round_rng) {
  const ClientSampler sampler(config_.total_clients,
                              config_.clients_per_round);
  return propose_round_with(sampler.sample_round(round_rng), provider,
                            round_rng);
}

FlServer::Proposal FlServer::propose_round_with(
    const std::vector<std::size_t>& contributors, UpdateProvider& provider,
    Rng& round_rng) {
  if (contributors.empty()) {
    throw std::invalid_argument("propose_round: no contributors");
  }
  // Pre-fork one Rng per contributor serially, in contributor order —
  // the per-client streams are then identical to the serial loop's, so
  // scheduling order cannot change the result (bit-for-bit).
  std::vector<Rng> client_rngs;
  client_rngs.reserve(contributors.size());
  for (std::size_t i = 0; i < contributors.size(); ++i) {
    client_rngs.push_back(round_rng.fork());
  }
  std::vector<ParamVec> updates(contributors.size());
  const auto compute_one = [&](std::size_t i) {
    // One training workspace per worker thread: the per-step loop in
    // train_sgd is allocation-free once its thread's workspace is warm,
    // across contributors and across rounds.
    thread_local TrainWorkspace ws;
    updates[i] =
        provider.update_for(contributors[i], global_, client_rngs[i], ws);
  };
  if (config_.parallel_updates && contributors.size() > 1) {
    ThreadPool::global().parallel_for(contributors.size(), compute_one);
  } else {
    for (std::size_t i = 0; i < contributors.size(); ++i) compute_one(i);
  }
  return aggregate_updates(std::move(updates), contributors);
}

FlServer::Proposal FlServer::aggregate_updates(
    std::vector<ParamVec> updates,
    const std::vector<std::size_t>& contributors) {
  if (contributors.empty()) {
    throw std::invalid_argument("aggregate_updates: no contributors");
  }
  if (updates.size() != contributors.size()) {
    throw std::invalid_argument(
        "aggregate_updates: one update per contributor");
  }
  check_update_sizes(updates, global_.num_params());

  ParamVec delta;
  if (config_.secure_aggregation) {
    // The server only ever sees the (unmasked) *sum*; scale it per the
    // FedAvg rule afterwards.
    ParamVec total = aggregate_secure(updates, contributors);
    scale(total, static_cast<float>(config_.global_lr /
                                    static_cast<double>(
                                        config_.total_clients)));
    delta = std::move(total);
  } else {
    delta = aggregator_.aggregate(updates);
  }

  Proposal proposal;
  proposal.candidate_params = ::baffle::add(global_.parameters(), delta);
  proposal.contributors = contributors;
  proposal.round = round_ + 1;
  return proposal;
}

ParamVec FlServer::aggregate_secure(
    const std::vector<ParamVec>& updates,
    const std::vector<std::size_t>& contributors) {
  SecureAggConfig sa_config;
  sa_config.frac_bits = config_.secure_agg_frac_bits;
  sa_config.round_key =
      Rng::split_mix(secure_agg_key_base_ ^ (round_ + 1));
  const SecureAggregation secure(sa_config);
  // Masking is per-update independent (mask_update is const), so the
  // client-side masking cost parallelizes like the training phase.
  std::vector<MaskedVec> masked(updates.size());
  const auto mask_one = [&](std::size_t i) {
    masked[i] = secure.mask_update(updates[i], contributors[i], contributors);
  };
  if (config_.parallel_updates && updates.size() > 1) {
    ThreadPool::global().parallel_for(updates.size(), mask_one);
  } else {
    for (std::size_t i = 0; i < updates.size(); ++i) mask_one(i);
  }
  return secure.unmask_sum(masked, contributors, contributors,
                           global_.num_params());
}

std::uint64_t FlServer::commit(const Proposal& proposal) {
  if (proposal.round != round_ + 1) {
    throw std::logic_error("FlServer::commit: stale proposal");
  }
  global_.set_parameters(proposal.candidate_params);
  ++version_;
  ++round_;
  log_debug() << "round " << round_ << " committed (version " << version_
              << ")";
  return version_;
}

void FlServer::discard(const Proposal& proposal) {
  if (proposal.round != round_ + 1) {
    throw std::logic_error("FlServer::discard: stale proposal");
  }
  ++round_;
  log_debug() << "round " << round_ << " rejected; keeping version "
              << version_;
}

}  // namespace baffle

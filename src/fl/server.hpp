#pragma once
// FL server: owns the global model and runs the training side of each
// round. Accept/reject of the proposed model is *not* decided here —
// that is BaFFLe's feedback loop (src/core) — so the server exposes a
// propose/commit/discard protocol.

#include <memory>
#include <optional>

#include "fl/aggregator.hpp"
#include "fl/client.hpp"
#include "fl/sampler.hpp"
#include "fl/secure_agg.hpp"
#include "nn/mlp.hpp"

namespace baffle {

struct FlConfig {
  std::size_t total_clients = 100;   // N
  std::size_t clients_per_round = 10;  // n
  double global_lr = 10.0;           // λ; λ = N/n replaces G by the mean L_i
  TrainConfig local_train;           // 2 epochs, lr 0.1 by default
  bool secure_aggregation = true;
  unsigned secure_agg_frac_bits = 24;
  /// Run the round's client updates (and secure-agg masking) across the
  /// global thread pool. Per-client Rngs are pre-forked serially, so the
  /// result is bit-identical to the serial loop — the switch exists for
  /// serial baselines (benchmarks) and debugging.
  bool parallel_updates = true;
};

/// Validates an FlConfig (contributor counts, learning rate, secure-agg
/// precision). Throws ContractViolation on a bad config; also run by
/// the FlServer constructor.
void validate_fl_config(const FlConfig& config);

/// Snapshot of a committed global model, used by the defense history.
struct GlobalModel {
  std::uint64_t version = 0;
  ParamVec params;
};

class FlServer {
 public:
  FlServer(MlpConfig arch, FlConfig config, std::uint64_t seed);

  const FlConfig& config() const { return config_; }
  const MlpConfig& arch() const { return arch_; }

  /// Current committed global model (G^{r-1} at the start of round r).
  Mlp& global_model() { return global_; }
  const Mlp& global_model() const { return global_; }
  std::uint64_t version() const { return version_; }

  /// Result of the training phase of one round.
  struct Proposal {
    ParamVec candidate_params;          // G + (λ/N) Σ U_i
    std::vector<std::size_t> contributors;
    std::size_t round = 0;
  };

  /// Samples n contributors, collects their updates through `provider`,
  /// aggregates (through secure aggregation when enabled) and returns
  /// the candidate model parameters. Does not modify the global model.
  Proposal propose_round(UpdateProvider& provider, Rng& round_rng);

  /// As propose_round but with caller-chosen contributors (tests,
  /// attack-schedule control).
  Proposal propose_round_with(const std::vector<std::size_t>& contributors,
                              UpdateProvider& provider, Rng& round_rng);

  /// Aggregation half of propose_round_with: combines already-collected
  /// updates (aligned index-for-index with `contributors`) into the
  /// round's candidate, through secure aggregation when enabled. The
  /// transport-backed round server (src/net) collects updates over
  /// channels and feeds them here, so both paths aggregate through one
  /// code path — bit-identically.
  Proposal aggregate_updates(std::vector<ParamVec> updates,
                             const std::vector<std::size_t>& contributors);

  /// Installs the candidate as the new global model G^r; returns the
  /// version assigned to it (feeds BaffleDefense::on_commit).
  std::uint64_t commit(const Proposal& proposal);

  /// Rejects the candidate: the global model stays G^{r-1}; the round
  /// counter still advances (the paper restarts the round with the old
  /// model).
  void discard(const Proposal& proposal);

  std::size_t current_round() const { return round_; }

 private:
  ParamVec aggregate_secure(const std::vector<ParamVec>& updates,
                            const std::vector<std::size_t>& contributors);

  MlpConfig arch_;
  FlConfig config_;
  Mlp global_;
  FedAvgAggregator aggregator_;
  std::uint64_t version_ = 0;
  std::size_t round_ = 0;
  std::uint64_t secure_agg_key_base_;
};

}  // namespace baffle

#pragma once
// Per-round client selection. The paper samples n << N contributors
// uniformly at random each round; with the communication optimization of
// §VI-D the same selection also serves as the validating set.

#include <vector>

#include "util/rng.hpp"

namespace baffle {

class ClientSampler {
 public:
  ClientSampler(std::size_t total_clients, std::size_t per_round);

  /// n distinct client ids, uniform over [0, N).
  std::vector<std::size_t> sample_round(Rng& rng) const;

  std::size_t total_clients() const { return total_clients_; }
  std::size_t per_round() const { return per_round_; }

 private:
  std::size_t total_clients_;
  std::size_t per_round_;
};

}  // namespace baffle

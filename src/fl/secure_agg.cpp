#include "fl/secure_agg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/primitives.hpp"
#include "util/rng.hpp"

namespace baffle {

std::uint64_t SecureAggregation::encode(float x) const {
  const double scaled =
      std::round(static_cast<double>(x) *
                 static_cast<double>(std::uint64_t{1} << config_.frac_bits));
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(scaled));
}

float SecureAggregation::decode_sum(std::uint64_t total) const {
  const auto as_signed = static_cast<std::int64_t>(total);
  return static_cast<float>(
      static_cast<double>(as_signed) /
      static_cast<double>(std::uint64_t{1} << config_.frac_bits));
}

std::uint64_t SecureAggregation::pair_seed(std::size_t a,
                                           std::size_t b) const {
  const std::size_t lo = std::min(a, b), hi = std::max(a, b);
  std::uint64_t s = config_.round_key;
  s = Rng::split_mix(s ^ (static_cast<std::uint64_t>(lo) + 1));
  s = Rng::split_mix(s ^ (static_cast<std::uint64_t>(hi) + 1) << 1);
  return s;
}

void SecureAggregation::add_pair_mask(MaskedVec& vec, std::size_t self_id,
                                      std::size_t other_id,
                                      bool subtract) const {
  Rng prg(pair_seed(self_id, other_id));
  for (auto& slot : vec) {
    const std::uint64_t m = prg.next_u64();
    slot = subtract ? slot - m : slot + m;  // wrap-around group Z_2^64
  }
}

MaskedVec SecureAggregation::mask_update(
    const ParamVec& update, std::size_t self_id,
    const std::vector<std::size_t>& participants) const {
  MaskedVec out(update.size());
  for (std::size_t i = 0; i < update.size(); ++i) out[i] = encode(update[i]);
  bool self_seen = false;
  for (std::size_t other : participants) {
    if (other == self_id) {
      self_seen = true;
      continue;
    }
    // The lower id adds, the higher id subtracts — so each pair's mask
    // cancels in the sum.
    add_pair_mask(out, self_id, other, /*subtract=*/self_id > other);
  }
  if (!self_seen) {
    throw std::invalid_argument("mask_update: self not in participants");
  }
  return out;
}

ParamVec SecureAggregation::unmask_sum(
    const std::vector<MaskedVec>& masked,
    const std::vector<std::size_t>& senders,
    const std::vector<std::size_t>& participants, std::size_t vec_len) const {
  if (masked.size() != senders.size()) {
    throw std::invalid_argument("unmask_sum: senders/masked mismatch");
  }
  if (masked.empty()) {
    throw std::invalid_argument("unmask_sum: no masked updates");
  }
  for (const auto& m : masked) {
    if (m.size() != vec_len) {
      throw std::invalid_argument("unmask_sum: vector length mismatch");
    }
  }
  MaskedVec total(vec_len, 0);
  for (const auto& m : masked) add_u64(total, m);
  // Cancel the masks survivors applied against dropped participants: in
  // the real protocol the server recovers these seeds from the Shamir
  // shares held by surviving clients.
  for (std::size_t dropped : participants) {
    if (std::find(senders.begin(), senders.end(), dropped) != senders.end()) {
      continue;
    }
    for (std::size_t survivor : senders) {
      // The survivor applied +mask if survivor < dropped else -mask;
      // undo it.
      add_pair_mask(total, survivor, dropped,
                    /*subtract=*/survivor < dropped);
    }
  }
  ParamVec out(vec_len);
  for (std::size_t i = 0; i < vec_len; ++i) out[i] = decode_sum(total[i]);
  return out;
}

}  // namespace baffle

#include "fl/sampler.hpp"

#include <stdexcept>

namespace baffle {

ClientSampler::ClientSampler(std::size_t total_clients, std::size_t per_round)
    : total_clients_(total_clients), per_round_(per_round) {
  if (per_round == 0 || per_round > total_clients) {
    throw std::invalid_argument("ClientSampler: bad per_round");
  }
}

std::vector<std::size_t> ClientSampler::sample_round(Rng& rng) const {
  return rng.sample_without_replacement(total_clients_, per_round_);
}

}  // namespace baffle

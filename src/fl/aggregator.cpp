#include "fl/aggregator.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace baffle {

FedAvgAggregator::FedAvgAggregator(double global_lr,
                                   std::size_t total_clients)
    : global_lr_(global_lr), total_clients_(total_clients) {
  if (global_lr <= 0.0) {
    throw std::invalid_argument("FedAvgAggregator: global_lr <= 0");
  }
  if (total_clients == 0) {
    throw std::invalid_argument("FedAvgAggregator: total_clients == 0");
  }
}

ParamVec FedAvgAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  ParamVec delta = sum_updates(updates);
  scale(delta, static_cast<float>(global_lr_ /
                                  static_cast<double>(total_clients_)));
  return delta;
}

double FedAvgAggregator::replacement_boost(
    std::size_t clients_per_round) const {
  (void)clients_per_round;  // γ = N/λ: the sum in the aggregation rule is
                            // not divided by n, so n does not appear.
  return static_cast<double>(total_clients_) / global_lr_;
}

}  // namespace baffle

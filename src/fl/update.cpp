#include "fl/update.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace baffle {

void check_update_sizes(const std::vector<ParamVec>& updates,
                        std::size_t expected_size) {
  for (const auto& u : updates) {
    if (u.size() != expected_size) {
      throw std::invalid_argument("update size mismatch");
    }
  }
}

ParamVec sum_updates(const std::vector<ParamVec>& updates) {
  if (updates.empty()) throw std::invalid_argument("sum_updates: empty");
  ParamVec out(updates.front().size(), 0.0f);
  for (const auto& u : updates) {
    check_update_sizes({u}, out.size());
    axpy(1.0f, u, out);
  }
  return out;
}

ParamVec mean_update(const std::vector<ParamVec>& updates) {
  ParamVec out = sum_updates(updates);
  scale(out, 1.0f / static_cast<float>(updates.size()));
  return out;
}

}  // namespace baffle

#include "fl/client.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace baffle {

ParamVec FlClient::compute_update(const Mlp& global, const TrainConfig& config,
                                  Rng& rng) const {
  TrainWorkspace ws;
  return compute_update(global, config, rng, ws);
}

ParamVec FlClient::compute_update(const Mlp& global, const TrainConfig& config,
                                  Rng& rng, TrainWorkspace& ws) const {
  if (data_.empty()) {
    return ParamVec(global.num_params(), 0.0f);
  }
  Mlp local = global;
  train_sgd(local, data_.features(), data_.labels(), config, rng, ws);
  return subtract(local.parameters(), global.parameters());
}

ParamVec HonestUpdateProvider::update_for(std::size_t client_id,
                                          const Mlp& global, Rng& rng,
                                          TrainWorkspace& ws) {
  if (client_id >= clients_->size()) {
    throw std::out_of_range("HonestUpdateProvider: unknown client");
  }
  return (*clients_)[client_id].compute_update(global, config_, rng, ws);
}

}  // namespace baffle

#pragma once
// FL client: owns a private shard and produces local-training updates.

#include "data/dataset.hpp"
#include "fl/update.hpp"
#include "nn/train.hpp"

namespace baffle {

class FlClient {
 public:
  FlClient(std::size_t id, Dataset data)
      : id_(id), data_(std::move(data)) {}

  std::size_t id() const { return id_; }
  const Dataset& data() const { return data_; }

  /// Trains a copy of the global model on the local shard for the
  /// configured number of epochs and returns the update U = L - G.
  /// A client with no data returns a zero update.
  ParamVec compute_update(const Mlp& global, const TrainConfig& config,
                          Rng& rng) const;

 private:
  std::size_t id_;
  Dataset data_;
};

/// Round-level source of client updates. The honest implementation
/// trains locally; the attack module substitutes poisoned updates for
/// adversary-controlled ids.
class UpdateProvider {
 public:
  virtual ~UpdateProvider() = default;
  /// Produces the update client `client_id` submits for this round.
  virtual ParamVec update_for(std::size_t client_id, const Mlp& global,
                              Rng& rng) = 0;
};

class HonestUpdateProvider : public UpdateProvider {
 public:
  HonestUpdateProvider(const std::vector<FlClient>* clients,
                       TrainConfig config)
      : clients_(clients), config_(config) {}

  ParamVec update_for(std::size_t client_id, const Mlp& global,
                      Rng& rng) override;

 private:
  const std::vector<FlClient>* clients_;
  TrainConfig config_;
};

}  // namespace baffle

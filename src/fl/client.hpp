#pragma once
// FL client: owns a private shard and produces local-training updates.

#include "data/dataset.hpp"
#include "fl/update.hpp"
#include "nn/train.hpp"

namespace baffle {

class FlClient {
 public:
  FlClient(std::size_t id, Dataset data)
      : id_(id), data_(std::move(data)) {}

  std::size_t id() const { return id_; }
  const Dataset& data() const { return data_; }

  /// Trains a copy of the global model on the local shard for the
  /// configured number of epochs and returns the update U = L - G.
  /// A client with no data returns a zero update.
  ParamVec compute_update(const Mlp& global, const TrainConfig& config,
                          Rng& rng) const;

  /// As above with caller-owned training scratch (the round loop hands
  /// each worker thread one workspace, so steady-state local training
  /// allocates nothing per step).
  ParamVec compute_update(const Mlp& global, const TrainConfig& config,
                          Rng& rng, TrainWorkspace& ws) const;

 private:
  std::size_t id_;
  Dataset data_;
};

/// Round-level source of client updates. The honest implementation
/// trains locally; the attack module substitutes poisoned updates for
/// adversary-controlled ids.
///
/// Thread-safety contract: the server's round loop calls the
/// workspace-taking update_for concurrently for the round's
/// contributors (each call gets its own Rng and TrainWorkspace), so
/// implementations must not mutate shared state in update_for — confine
/// per-call state to locals or atomics. arm()-style round configuration
/// happens strictly between rounds and needs no synchronization.
class UpdateProvider {
 public:
  virtual ~UpdateProvider() = default;
  /// Produces the update client `client_id` submits for this round.
  virtual ParamVec update_for(std::size_t client_id, const Mlp& global,
                              Rng& rng) = 0;
  /// Workspace-threaded variant used by the (parallel) round loop; the
  /// default ignores the workspace and forwards to the 3-arg form.
  virtual ParamVec update_for(std::size_t client_id, const Mlp& global,
                              Rng& rng, TrainWorkspace& ws) {
    (void)ws;
    return update_for(client_id, global, rng);
  }
};

class HonestUpdateProvider : public UpdateProvider {
 public:
  HonestUpdateProvider(const std::vector<FlClient>* clients,
                       TrainConfig config)
      : clients_(clients), config_(config) {}

  ParamVec update_for(std::size_t client_id, const Mlp& global,
                      Rng& rng) override {
    TrainWorkspace ws;
    return update_for(client_id, global, rng, ws);
  }

  ParamVec update_for(std::size_t client_id, const Mlp& global, Rng& rng,
                      TrainWorkspace& ws) override;

 private:
  const std::vector<FlClient>* clients_;
  TrainConfig config_;
};

}  // namespace baffle

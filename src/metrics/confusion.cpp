#include "metrics/confusion.hpp"

#include "util/contracts.hpp"

namespace baffle {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  BAFFLE_CHECK(num_classes > 0,
               "ConfusionMatrix needs at least one class");
}

void ConfusionMatrix::record(int true_label, int predicted_label) {
  BAFFLE_CHECK(true_label >= 0 &&
                   static_cast<std::size_t>(true_label) < num_classes_,
               "true label out of class range");
  BAFFLE_CHECK(predicted_label >= 0 &&
                   static_cast<std::size_t>(predicted_label) < num_classes_,
               "predicted label out of class range");
  counts_[static_cast<std::size_t>(true_label) * num_classes_ +
          static_cast<std::size_t>(predicted_label)]++;
  ++total_;
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return counts_[static_cast<std::size_t>(true_label) * num_classes_ +
                 static_cast<std::size_t>(predicted_label)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t y = 0; y < num_classes_; ++y) {
    correct += counts_[y * num_classes_ + y];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::source_focused_errors() const {
  std::vector<double> out(num_classes_, 0.0);
  if (total_ == 0) return out;
  for (std::size_t y = 0; y < num_classes_; ++y) {
    std::size_t wrong = 0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
      if (p != y) wrong += counts_[y * num_classes_ + p];
    }
    out[y] = static_cast<double>(wrong) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> ConfusionMatrix::target_focused_errors() const {
  std::vector<double> out(num_classes_, 0.0);
  if (total_ == 0) return out;
  for (std::size_t p = 0; p < num_classes_; ++p) {
    std::size_t wrong = 0;
    for (std::size_t y = 0; y < num_classes_; ++y) {
      if (y != p) wrong += counts_[y * num_classes_ + p];
    }
    out[p] = static_cast<double>(wrong) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> ConfusionMatrix::per_class_error_rates() const {
  std::vector<double> out(num_classes_, 0.0);
  for (std::size_t y = 0; y < num_classes_; ++y) {
    std::size_t class_total = 0, wrong = 0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
      class_total += counts_[y * num_classes_ + p];
      if (p != y) wrong += counts_[y * num_classes_ + p];
    }
    out[y] = class_total == 0
                 ? 0.0
                 : static_cast<double>(wrong) / static_cast<double>(class_total);
  }
  return out;
}

ConfusionMatrix evaluate_confusion(const Mlp& model, const Dataset& data,
                                   MlpEvalWorkspace& ws) {
  ConfusionMatrix cm(data.num_classes());
  if (data.empty()) return cm;
  const Matrix& x = data.features();
  const auto& labels = data.labels();
  ws.predictions.resize(x.rows());
  model.predict_into(x, ws.predictions, ws);
  for (std::size_t i = 0; i < ws.predictions.size(); ++i) {
    cm.record(labels[i], static_cast<int>(ws.predictions[i]));
  }
  return cm;
}

ConfusionMatrix evaluate_confusion(const Mlp& model, const Dataset& data) {
  MlpEvalWorkspace ws;
  return evaluate_confusion(model, data, ws);
}

}  // namespace baffle

#pragma once
// Confusion matrix and the per-class error rates of Section V.
//
//   source-focused error err_D(f)^{y->*}: fraction of samples in D whose
//     TRUE class is y and which f misclassifies.
//   target-focused error err_D(f)^{*->y}: fraction of samples in D which
//     f wrongly assigns TO class y.
//
// Both are normalized by |D| (fractions of the whole dataset, matching
// the paper's definition "the fraction of samples in D which ...").

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/mlp.hpp"

namespace baffle {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// counts[true][predicted] += 1
  void record(int true_label, int predicted_label);

  std::size_t num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }
  std::size_t count(int true_label, int predicted_label) const;

  double accuracy() const;
  double error() const { return 1.0 - accuracy(); }

  /// err^{y->*} for every class y (length num_classes).
  std::vector<double> source_focused_errors() const;

  /// err^{*->y} for every class y (length num_classes).
  std::vector<double> target_focused_errors() const;

  /// Per-class recall error: misclassified fraction *of class y's own
  /// samples* (used for Figure 2's per-class error plot).
  std::vector<double> per_class_error_rates() const;

 private:
  std::size_t num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major [true][pred]
};

/// Evaluates `model` on `data` and tallies the confusion matrix.
/// Inference runs chunked through `ws`, so repeated evaluations (the
/// validator's ℓ+1 models per round) reuse the same scratch storage.
ConfusionMatrix evaluate_confusion(const Mlp& model, const Dataset& data,
                                   MlpEvalWorkspace& ws);

/// Convenience overload with a throwaway workspace.
ConfusionMatrix evaluate_confusion(const Mlp& model, const Dataset& data);

}  // namespace baffle

#pragma once
// Detection-quality accounting over a run of the defended FL process.
//
// Convention (matching the paper): a "positive" is a *rejected* round.
//   false positive  — clean round rejected
//   false negative  — poisoned round accepted
// FP rate = FP / (# clean rounds with the defense active)
// FN rate = FN / (# poisoned rounds with the defense active)

#include <cstddef>
#include <vector>

namespace baffle {

/// One defended FL round, as recorded by the experiment harness.
struct RoundRecord {
  std::size_t round = 0;
  bool defense_active = false;
  bool poisoned = false;       // a malicious update was injected this round
  bool rejected = false;       // verdict of the feedback loop
  double main_accuracy = 0.0;  // global-model accuracy on the eval set
  double backdoor_accuracy = 0.0;  // Eq. (1) on the backdoor test set
  std::size_t reject_votes = 0;    // # validators voting "poisoned"
  std::size_t num_validators = 0;
  double eval_ms = 0.0;   // wall-clock of the round's defense evaluation
  double train_ms = 0.0;  // wall-clock of the round's client-update phase
};

struct DetectionRates {
  double fp_rate = 0.0;
  double fn_rate = 0.0;
  std::size_t clean_rounds = 0;
  std::size_t poisoned_rounds = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

DetectionRates compute_detection_rates(const std::vector<RoundRecord>& rounds);

}  // namespace baffle

#include "metrics/rates.hpp"

namespace baffle {

DetectionRates compute_detection_rates(
    const std::vector<RoundRecord>& rounds) {
  DetectionRates rates;
  for (const auto& r : rounds) {
    if (!r.defense_active) continue;
    if (r.poisoned) {
      ++rates.poisoned_rounds;
      if (!r.rejected) ++rates.false_negatives;
    } else {
      ++rates.clean_rounds;
      if (r.rejected) ++rates.false_positives;
    }
  }
  if (rates.clean_rounds > 0) {
    rates.fp_rate = static_cast<double>(rates.false_positives) /
                    static_cast<double>(rates.clean_rounds);
  }
  if (rates.poisoned_rounds > 0) {
    rates.fn_rate = static_cast<double>(rates.false_negatives) /
                    static_cast<double>(rates.poisoned_rounds);
  }
  return rates;
}

}  // namespace baffle

#pragma once
// Annotated synchronization layer: the only sanctioned entry point for
// locking in src/ (enforced by the `raw-sync` repo lint rule).
//
// Mutex / SharedMutex / CondVar wrap their std counterparts and carry
// Clang Thread Safety Analysis capability attributes, so every
// guarded-data invariant in the codebase is a *compile-time* property
// under clang (`cmake -DBAFFLE_THREAD_SAFETY=ON`, which adds
// -Wthread-safety -Werror=thread-safety-analysis; see DESIGN.md §16).
// On GCC — and on clang builds without the option — the annotations
// expand to nothing and the wrappers compile down to the std types.
//
// Usage pattern (see any adopted subsystem, e.g. util/thread_pool.hpp):
//
//   class Queue {
//     void drain() BAFFLE_REQUIRES(mu_);       // caller must hold mu_
//     Mutex mu_;
//     std::deque<int> items_ BAFFLE_GUARDED_BY(mu_);
//     CondVar cv_;
//   };
//
//   MutexLock lock(mu_);                        // scoped acquire
//   while (items_.empty() && !stop_) cv_.wait(mu_);
//
// Condition-variable waits deliberately take the *mutex*, not a
// predicate: the analysis can only check guarded reads it sees in a
// scope that holds the capability, so the predicate loop lives at the
// call site (the "analysis-friendly shape") instead of inside a lambda
// the analysis would treat as an unrelated function.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------
// Attribute plumbing. Clang implements the analysis; GCC merely warns
// about the unknown attributes, so they vanish entirely there.
#if defined(__clang__)
#define BAFFLE_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define BAFFLE_TS_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a type as a lockable capability ("mutex", "shared_mutex").
#define BAFFLE_CAPABILITY(x) BAFFLE_TS_ATTRIBUTE(capability(x))
/// Declares an RAII type whose lifetime equals a critical section.
#define BAFFLE_SCOPED_CAPABILITY BAFFLE_TS_ATTRIBUTE(scoped_lockable)
/// Data member readable/writable only while holding the named mutex
/// (shared capability suffices for reads).
#define BAFFLE_GUARDED_BY(x) BAFFLE_TS_ATTRIBUTE(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named mutex.
#define BAFFLE_PT_GUARDED_BY(x) BAFFLE_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function callable only while holding the named mutexes exclusively.
#define BAFFLE_REQUIRES(...) \
  BAFFLE_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Function callable while holding the named mutexes at least shared.
#define BAFFLE_REQUIRES_SHARED(...) \
  BAFFLE_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
/// Function that acquires the named capability (exclusively / shared)
/// and holds it on return.
#define BAFFLE_ACQUIRE(...) \
  BAFFLE_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define BAFFLE_ACQUIRE_SHARED(...) \
  BAFFLE_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
/// Function that releases the named capability (any mode for scoped
/// guards — the analysis matches the acquisition mode).
#define BAFFLE_RELEASE(...) \
  BAFFLE_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define BAFFLE_RELEASE_SHARED(...) \
  BAFFLE_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `val`.
#define BAFFLE_TRY_ACQUIRE(...) \
  BAFFLE_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// Function that must be called while NOT holding the named mutexes
/// (documents "will acquire internally"; checked under
/// -Wthread-safety-negative only).
#define BAFFLE_EXCLUDES(...) BAFFLE_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Asserts (at analysis level) that the capability is held — for code
/// reached only from holders the analysis cannot see.
#define BAFFLE_ASSERT_CAPABILITY(x) \
  BAFFLE_TS_ATTRIBUTE(assert_capability(x))
/// Function returning a reference to the named mutex.
#define BAFFLE_RETURN_CAPABILITY(x) BAFFLE_TS_ATTRIBUTE(lock_returned(x))
/// Deliberate escape hatch. Every use carries a one-line comment naming
/// the invariant that makes the unchecked access safe (DESIGN.md §16
/// lists all of them).
#define BAFFLE_NO_THREAD_SAFETY_ANALYSIS \
  BAFFLE_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace baffle {

/// Exclusive mutex (std::mutex) declared as a capability.
class BAFFLE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BAFFLE_ACQUIRE() { m_.lock(); }
  void unlock() BAFFLE_RELEASE() { m_.unlock(); }
  bool try_lock() BAFFLE_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Underlying handle, for CondVar only — bypassing the annotations
  /// with it defeats the layer's purpose.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Reader/writer mutex (std::shared_mutex) declared as a capability.
class BAFFLE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BAFFLE_ACQUIRE() { m_.lock(); }
  void unlock() BAFFLE_RELEASE() { m_.unlock(); }
  void lock_shared() BAFFLE_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() BAFFLE_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class BAFFLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BAFFLE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BAFFLE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex (writer side).
class BAFFLE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BAFFLE_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() BAFFLE_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock on a SharedMutex (reader side).
class BAFFLE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) BAFFLE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() BAFFLE_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex. Waits take the mutex the
/// caller already holds; the predicate loop stays at the call site so
/// guarded reads in the condition are checked under the capability:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu` and blocks; `mu` is reacquired before
  /// returning (including on spurious wakeup — same contract as
  /// std::condition_variable::wait).
  void wait(Mutex& mu) BAFFLE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's scope still owns the lock
  }

  /// As wait(), but returns std::cv_status::timeout once `deadline`
  /// passes. `mu` is held again whenever this returns.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      BAFFLE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  /// As wait(), but gives up after `timeout`.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      BAFFLE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace baffle

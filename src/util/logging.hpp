#pragma once
// Leveled stderr logger. Intentionally tiny: experiments log round-level
// events at kDebug and table-level progress at kInfo; tests run at kWarn
// to keep ctest output clean.

#include <sstream>
#include <string>

namespace baffle {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Reads the
/// BAFFLE_LOG environment variable ("debug"/"info"/"warn"/"error") once
/// at startup; defaults to kWarn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace baffle

#include "util/task_graph.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace baffle {

const char* task_node_kind_name(TaskNodeKind kind) {
  switch (kind) {
    case TaskNodeKind::kTrain:
      return "train";
    case TaskNodeKind::kAggregate:
      return "aggregate";
    case TaskNodeKind::kValidate:
      return "validate";
    case TaskNodeKind::kEval:
      return "eval";
    case TaskNodeKind::kCheckpoint:
      return "checkpoint";
    case TaskNodeKind::kExperiment:
      return "experiment";
  }
  return "unknown";
}

TaskGraph::TaskGraph(ThreadPool& pool) : pool_(pool) {}

TaskGraph::~TaskGraph() {
  // Quiesce so node closures (which capture caller locals and `this`)
  // cannot outlive the graph — the exceptional-unwind counterpart of a
  // normal wait_all().
  try {
    wait_all();
  } catch (...) {  // already unwinding: the stored error dies with us
  }
}

TaskGraph::TaskId TaskGraph::add(TaskNodeKind kind, std::function<void()> fn,
                                 const std::vector<TaskId>& deps) {
  BAFFLE_CHECK(fn != nullptr, "TaskGraph::add: null task body");
  std::vector<TaskId> ready;
  TaskId id = 0;
  {
    MutexLock lock(mutex_);
    id = nodes_.size();
    // Dependencies must already exist, which keeps the graph acyclic by
    // construction (a node can never depend on a later one). Validated
    // before any wiring so a violation leaves the graph untouched.
    for (const TaskId dep : deps) {
      if (dep == kNoTask) continue;
      BAFFLE_CHECK(dep < id, "TaskGraph::add: dependency on a later node");
    }
    nodes_.push_back(Node{});
    Node& node = nodes_.back();
    node.fn = std::move(fn);
    node.kind = kind;
    bool poisoned = false;
    for (const TaskId dep : deps) {
      if (dep == kNoTask) continue;
      Node& parent = nodes_[dep];
      switch (parent.state) {
        case State::kDone:
          break;  // already satisfied
        case State::kFailed:
        case State::kSkipped:
          poisoned = true;
          break;
        case State::kWaiting:
        case State::kReady:
          ++node.pending;
          parent.dependents.push_back(id);
          break;
      }
    }
    if (poisoned) {
      node.state = State::kSkipped;
      node.fn = nullptr;
      ++skipped_;
      return id;
    }
    ++unfinished_;
    if (node.pending == 0) {
      node.state = State::kReady;
      ready.push_back(id);
    }
  }
  submit_ready(ready);
  return id;
}

void TaskGraph::run_node(TaskId id) {
  std::function<void()> fn;
  TaskNodeKind kind = TaskNodeKind::kTrain;
  {
    MutexLock lock(mutex_);
    fn = std::move(nodes_[id].fn);
    nodes_[id].fn = nullptr;
    kind = nodes_[id].kind;
  }
  std::exception_ptr failure;
  const auto start = std::chrono::steady_clock::now();
  try {
    fn();
  } catch (...) {
    failure = std::current_exception();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  auto& metrics = MetricsRegistry::global();
  metrics.add_timer(std::string("task_graph.node.") + task_node_kind_name(kind),
                    seconds);
  if (!failure) metrics.add_counter("task_graph.tasks");

  std::vector<TaskId> ready;
  {
    MutexLock lock(mutex_);
    if (failure && !error_) error_ = failure;
    ready = finish_node(id, failure ? State::kFailed : State::kDone);
  }
  // After the lock is dropped a waiter may observe unfinished_ == 0 and
  // destroy the graph, so past this point only locals may be touched
  // when there is nothing left to submit.
  if (!ready.empty()) submit_ready(ready);
}

std::vector<TaskGraph::TaskId> TaskGraph::finish_node(TaskId id, State state) {
  std::vector<TaskId> ready;
  std::vector<TaskId> finished;
  nodes_[id].state = state;
  finished.push_back(id);
  while (!finished.empty()) {
    const TaskId nid = finished.back();
    finished.pop_back();
    Node& node = nodes_[nid];
    --unfinished_;
    if (node.state == State::kDone) ++run_;
    if (node.state == State::kSkipped) ++skipped_;
    const bool ok = node.state == State::kDone;
    for (const TaskId did : node.dependents) {
      Node& dep = nodes_[did];
      if (dep.state != State::kWaiting) continue;
      if (ok) {
        if (--dep.pending == 0) {
          dep.state = State::kReady;
          ready.push_back(did);
        }
      } else {
        // A failed (or skipped) dependency poisons the whole transitive
        // closure immediately — no point waiting for its other inputs.
        dep.state = State::kSkipped;
        dep.fn = nullptr;
        finished.push_back(did);
      }
    }
    node.dependents.clear();
  }
  return ready;
}

void TaskGraph::submit_ready(const std::vector<TaskId>& ready) {
  for (const TaskId id : ready) {
    pool_.submit([this, id] { run_node(id); });
  }
}

void TaskGraph::wait_all() {
  for (;;) {
    // Stamp before the check: a node completion racing with us either
    // drops unfinished_ to zero before we read it or advances the stamp
    // and wakes the wait below — never a lost wakeup.
    const std::uint64_t seen = pool_.progress_stamp();
    {
      MutexLock lock(mutex_);
      if (unfinished_ == 0) break;
    }
    if (pool_.try_run_one()) continue;
    pool_.wait_progress(seen);
  }
  std::exception_ptr err;
  {
    MutexLock lock(mutex_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::size_t TaskGraph::tasks_run() const {
  MutexLock lock(mutex_);
  return run_;
}

std::size_t TaskGraph::tasks_skipped() const {
  MutexLock lock(mutex_);
  return skipped_;
}

}  // namespace baffle

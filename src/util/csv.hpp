#pragma once
// Minimal CSV writer. Benches optionally dump their table/figure data to
// CSV (next to the printed report) so plots can be regenerated offline.

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace baffle {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O
  /// failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double x);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t width_;
  std::ofstream out_;
};

/// Escape a cell per RFC 4180 (quotes doubled, wrap when needed).
std::string csv_escape(const std::string& cell);

}  // namespace baffle

#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace baffle {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), width_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

}  // namespace baffle

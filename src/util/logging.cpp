#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "util/sync.hpp"

namespace baffle {

namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("BAFFLE_LOG");
  if (!env) return LogLevel::kWarn;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{initial_threshold()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(); }
void set_log_threshold(LogLevel level) { threshold_storage().store(level); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  // Serializes whole lines onto stderr; there is no guarded data, the
  // mutex only keeps concurrent messages from interleaving.
  static Mutex mutex;
  MutexLock lock(mutex);
  std::cerr << "[baffle:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace baffle

#pragma once
// Contract checking for the protocol invariants BaFFLe's security
// argument depends on (history window ℓ+1, k = ⌈ℓ/2⌉, τ over ⌊ℓ/4⌋
// trusted points, quorum q ≤ n) and for the shape/alignment/aliasing
// preconditions of the numeric kernels.
//
// Two tiers (see DESIGN.md §11):
//
//   BAFFLE_CHECK(cond, msg)   — always on, in every build. For cheap
//     boundary validation: configuration, shapes at kernel entry
//     points, label ranges. Failure throws ContractViolation, which
//     derives from std::invalid_argument so pre-contract callers (and
//     tests) that caught std::invalid_argument keep working.
//
//   BAFFLE_DCHECK(cond, msg) / BAFFLE_DCHECK_BOUNDS(i, n) — compiled
//     in only when the BAFFLE_CHECKS CMake option is ON (defines
//     BAFFLE_CHECKS=1). For per-element and inner-loop invariants that
//     would cost real time in release builds: index bounds, aliasing,
//     alignment, neighborhood non-emptiness. Zero code is generated
//     when off.
//
// Header-only and dependency-free on purpose: the kernel arms
// (tensor/kernels_*.cpp) sit below baffle_util in the layering and
// must still be able to state their preconditions.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace baffle {

/// Thrown by BAFFLE_CHECK / BAFFLE_DCHECK on a violated precondition.
/// Derives from std::invalid_argument: a contract violation is a
/// caller bug, and the pre-contract code reported those the same way.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
  std::string out(kind);
  out += " failed: ";
  out += msg;
  out += " [";
  out += expr;
  out += "] at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  throw ContractViolation(out);
}

[[noreturn]] inline void bounds_failed(std::size_t index, std::size_t size,
                                       const char* file, int line) {
  std::string out("BAFFLE_DCHECK_BOUNDS failed: index ");
  out += std::to_string(index);
  out += " >= size ";
  out += std::to_string(size);
  out += " at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  throw ContractViolation(out);
}

}  // namespace detail
}  // namespace baffle

#define BAFFLE_CHECK(cond, msg)                                       \
  (static_cast<bool>(cond)                                            \
       ? static_cast<void>(0)                                         \
       : ::baffle::detail::contract_failed("BAFFLE_CHECK", #cond,     \
                                           __FILE__, __LINE__, msg))

#if defined(BAFFLE_CHECKS) && BAFFLE_CHECKS
#define BAFFLE_DCHECK(cond, msg)                                      \
  (static_cast<bool>(cond)                                            \
       ? static_cast<void>(0)                                         \
       : ::baffle::detail::contract_failed("BAFFLE_DCHECK", #cond,    \
                                           __FILE__, __LINE__, msg))
#define BAFFLE_DCHECK_BOUNDS(index, size)                             \
  ((static_cast<std::size_t>(index) < static_cast<std::size_t>(size)) \
       ? static_cast<void>(0)                                         \
       : ::baffle::detail::bounds_failed(                             \
             static_cast<std::size_t>(index),                         \
             static_cast<std::size_t>(size), __FILE__, __LINE__))
#else
// Off: generate no code and no reads. The conditions must stay free of
// side effects; keeping them syntactically checked via sizeof would
// reject lambdas, so they are simply dropped.
#define BAFFLE_DCHECK(cond, msg) static_cast<void>(0)
#define BAFFLE_DCHECK_BOUNDS(index, size) static_cast<void>(0)
#endif

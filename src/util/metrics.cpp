#include "util/metrics.hpp"

#include "util/csv.hpp"

namespace baffle {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  MutexLock lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::add_timer(const std::string& name, double seconds) {
  MutexLock lock(mutex_);
  Timer& t = timers_[name];
  ++t.count;
  t.total_seconds += seconds;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::timer_seconds(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.total_seconds;
}

std::uint64_t MetricsRegistry::timer_count(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0 : it->second.count;
}

double MetricsRegistry::timer_mean_ms(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = timers_.find(name);
  if (it == timers_.end() || it->second.count == 0) return 0.0;
  return it->second.total_seconds * 1e3 /
         static_cast<double>(it->second.count);
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + timers_.size());
  for (const auto& [name, value] : counters_) {
    out.push_back({name, "counter", value, 0.0});
  }
  for (const auto& [name, timer] : timers_) {
    out.push_back({name, "timer", timer.count, timer.total_seconds});
  }
  return out;
}

void MetricsRegistry::dump_csv(const std::string& path) const {
  CsvWriter csv(path, {"kind", "name", "count", "total_seconds"});
  for (const auto& sample : snapshot()) {
    csv.row({sample.kind, sample.name, std::to_string(sample.count),
             CsvWriter::num(sample.total_seconds)});
  }
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  counters_.clear();
  timers_.clear();
}

}  // namespace baffle

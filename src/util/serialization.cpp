#include "util/serialization.hpp"

#include <bit>
#include <stdexcept>

namespace baffle {

namespace {
template <typename T>
void append_le(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <typename T>
T read_le(std::span<const std::uint8_t> bytes, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(bytes[pos + i]) << (8 * i);
  }
  return v;
}

constexpr bool kLittleEndian = std::endian::native == std::endian::little;
}  // namespace

void ByteWriter::u8(std::uint8_t v) { bytes_.push_back(v); }
void ByteWriter::u16(std::uint16_t v) { append_le(bytes_, v); }
void ByteWriter::u32(std::uint32_t v) { append_le(bytes_, v); }
void ByteWriter::u64(std::uint64_t v) { append_le(bytes_, v); }
void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::f32_span(std::span<const float> v) {
  u64(v.size());
  if constexpr (kLittleEndian) {
    // float bit patterns already have wire layout on LE hosts; append
    // the whole payload in one shot instead of 4 pushes per element.
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(float));
  } else {
    for (float x : v) f32(x);
  }
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void ByteReader::need(std::size_t n) {
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated input");
}

std::size_t ByteReader::length_prefix(std::size_t elem_size,
                                      const char* what) {
  const std::uint64_t n = u64();
  // Validate against remaining() BEFORE computing n * elem_size: the
  // division cannot overflow, while the multiplication (or a later
  // pos_ + n) would wrap for hostile prefixes near 2^64 and turn a
  // truncated buffer into an over-read.
  const std::uint64_t max_elems =
      elem_size == 0 ? 0 : remaining() / elem_size;
  if (n > max_elems) throw std::runtime_error(what);
  return static_cast<std::size_t>(n);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const auto v = read_le<std::uint16_t>(bytes_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const auto v = read_le<std::uint32_t>(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const auto v = read_le<std::uint64_t>(bytes_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }
float ByteReader::f32() { return std::bit_cast<float>(u32()); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<float> ByteReader::f32_vec() {
  std::vector<float> out;
  f32_vec_into(out);
  return out;
}

void ByteReader::f32_vec_into(std::vector<float>& out) {
  const std::size_t n =
      length_prefix(sizeof(float), "ByteReader: implausible f32 vector length");
  out.resize(n);
  if (n == 0) return;  // keep memcpy away from an empty buffer's null base
  if constexpr (kLittleEndian) {
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = f32();
  }
}

std::string ByteReader::str() {
  const std::size_t n =
      length_prefix(1, "ByteReader: implausible string length");
  if (n == 0) return std::string();
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  const auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

}  // namespace baffle

#include "util/serialization.hpp"

#include <bit>
#include <stdexcept>

namespace baffle {

namespace {
template <typename T>
void append_le(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <typename T>
T read_le(std::span<const std::uint8_t> bytes, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(bytes[pos + i]) << (8 * i);
  }
  return v;
}
}  // namespace

void ByteWriter::u8(std::uint8_t v) { bytes_.push_back(v); }
void ByteWriter::u32(std::uint32_t v) { append_le(bytes_, v); }
void ByteWriter::u64(std::uint64_t v) { append_le(bytes_, v); }
void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::f32_span(std::span<const float> v) {
  u64(v.size());
  for (float x : v) f32(x);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) {
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  const auto v = read_le<std::uint32_t>(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const auto v = read_le<std::uint64_t>(bytes_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }
float ByteReader::f32() { return std::bit_cast<float>(u32()); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<float> ByteReader::f32_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4) {
    throw std::runtime_error("ByteReader: implausible f32 vector length");
  }
  std::vector<float> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f32());
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) {
    throw std::runtime_error("ByteReader: implausible string length");
  }
  need(n);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace baffle

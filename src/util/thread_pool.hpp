#pragma once
// Fixed-size thread pool with a `parallel_for` helper.
//
// FL rounds train each selected client independently; the pool lets a
// round's local-training jobs (and experiment repetitions) run
// concurrently. Determinism is preserved by handing each job a
// pre-forked Rng rather than sharing one.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace baffle {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (default: hardware concurrency, at
  /// least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> job);

  /// Run fn(i) for i in [0, n), blocking until all iterations finish.
  /// Exceptions thrown by iterations propagate (the first one observed).
  /// Safe to call from inside pool tasks (nested fork-join): while
  /// waiting, the caller helps drain the queue instead of blocking, so
  /// saturating the pool with outer loops cannot deadlock inner ones.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Pops and runs one queued task if any; returns whether it did.
  bool try_run_one();

  /// Monotonic stamp bumped whenever the pool makes progress: a task is
  /// queued or a task finishes. Pair with wait_progress to sleep between
  /// help-drain attempts instead of polling.
  std::uint64_t progress_stamp() const;

  /// Blocks until progress_stamp() != seen (a task completed somewhere
  /// or new work arrived) or the pool is shutting down. Waiters that
  /// help-drain call this only when the queue is empty, so a completion
  /// on another worker wakes them exactly once — no timed backoff.
  void wait_progress(std::uint64_t seen) const;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();
  void bump_progress();

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::queue<std::packaged_task<void()>> queue_ BAFFLE_GUARDED_BY(mutex_);
  CondVar cv_;                    // workers: queued work or shutdown
  mutable CondVar progress_cv_;   // waiters: any task queued/completed
  // Progress-stamp protocol: bumped under mutex_ on every submit and
  // every completion; wait_progress sleepers re-check it against the
  // stamp they read before their readiness check (no lost wakeups).
  std::uint64_t progress_ BAFFLE_GUARDED_BY(mutex_) = 0;
  bool stop_ BAFFLE_GUARDED_BY(mutex_) = false;
};

}  // namespace baffle

#pragma once
// Dependency-graph task executor on top of ThreadPool.
//
// A TaskGraph holds typed nodes (train / aggregate / validate / eval /
// checkpoint / experiment units) connected by dependency edges. Edges
// express *version* dependencies: "this validation reads the model that
// commit produced", "round r+1 trains on round r's committed params".
// A node is submitted to the pool the moment its last dependency
// finishes, so independent subgraphs (multiple rounds, repeated
// experiments, sweep cells) saturate every worker while ordered chains
// stay strictly serialized — which is what keeps Rng call order, and
// therefore every result, bit-identical to a serial loop.
//
// Waiting help-drains the pool (ThreadPool::try_run_one + the progress
// condition variable), so nodes may themselves build and wait on nested
// graphs sharing the same pool without deadlocking a saturated pool:
// a blocked waiter always either runs queued work or sleeps until some
// task completes elsewhere.
//
// Error model: a throwing node records the first exception; its
// transitive dependents are skipped (never run). wait_all() rethrows
// the recorded exception after the graph quiesces, so node closures
// never outlive the locals they capture.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace baffle {

/// Work-unit flavor; drives the per-kind runtime metrics
/// (task_graph.node.<kind> timers) and nothing else.
enum class TaskNodeKind {
  kTrain,       // client sampling + local training + aggregation
  kAggregate,   // standalone aggregation step
  kValidate,    // defense / feedback-loop evaluation
  kEval,        // accuracy tracking (test + backdoor passes)
  kCheckpoint,  // commit/reject + record emission
  kExperiment,  // whole-experiment root (repetition or sweep cell)
};

const char* task_node_kind_name(TaskNodeKind kind);

class TaskGraph {
 public:
  using TaskId = std::size_t;
  /// Sentinel dependency: ignored wherever it appears, so callers can
  /// write unconditional edge lists ("depends on eval[r-2]") without
  /// special-casing the first iterations.
  static constexpr TaskId kNoTask = static_cast<TaskId>(-1);

  explicit TaskGraph(ThreadPool& pool = ThreadPool::global());
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;
  /// Waits for every scheduled node (exceptions already consumed by a
  /// wait_all stay consumed; an unobserved one is dropped) so node
  /// closures never dangle.
  ~TaskGraph();

  /// Adds a node depending on previously added nodes. Dependencies must
  /// be ids returned by this graph's add() (or kNoTask), which makes
  /// cycles unrepresentable. Nodes whose dependencies have all finished
  /// are submitted to the pool immediately — adding while the graph is
  /// running is the normal mode of use.
  TaskId add(TaskNodeKind kind, std::function<void()> fn,
             const std::vector<TaskId>& deps = {});

  /// Blocks until every node has run or been skipped, help-draining the
  /// pool while waiting. Rethrows the first node exception (once); the
  /// graph stays usable — more nodes may be added afterwards.
  void wait_all();

  /// Nodes whose bodies ran to completion (so far).
  std::size_t tasks_run() const;
  /// Nodes skipped because a dependency failed (so far).
  std::size_t tasks_skipped() const;

 private:
  enum class State { kWaiting, kReady, kDone, kFailed, kSkipped };

  struct Node {
    std::function<void()> fn;
    TaskNodeKind kind = TaskNodeKind::kTrain;
    State state = State::kWaiting;
    std::size_t pending = 0;           // unfinished dependencies
    std::vector<TaskId> dependents;
  };

  void run_node(TaskId id);
  /// Marks `id` finished with `state`, releases dependents, and skips
  /// their transitive closure on failure. Returns nodes to submit.
  std::vector<TaskId> finish_node(TaskId id, State state)
      BAFFLE_REQUIRES(mutex_);
  void submit_ready(const std::vector<TaskId>& ready);

  ThreadPool& pool_;
  mutable Mutex mutex_;
  std::vector<Node> nodes_ BAFFLE_GUARDED_BY(mutex_);
  // waiting + ready + running
  std::size_t unfinished_ BAFFLE_GUARDED_BY(mutex_) = 0;
  std::size_t run_ BAFFLE_GUARDED_BY(mutex_) = 0;
  std::size_t skipped_ BAFFLE_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ BAFFLE_GUARDED_BY(mutex_);
};

}  // namespace baffle

#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace baffle {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("categorical: non-positive total");
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack
}

std::vector<double> Rng::dirichlet(std::size_t dim, double alpha) {
  if (dim == 0) throw std::invalid_argument("dirichlet: dim == 0");
  if (alpha <= 0.0) throw std::invalid_argument("dirichlet: alpha <= 0");
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> out(dim);
  double total = 0.0;
  for (auto& x : out) {
    x = gamma(engine_);
    total += x;
  }
  if (total <= 0.0) {
    // Extremely small alpha can underflow every gamma draw; fall back to
    // a one-hot sample, which is the correct limiting distribution.
    std::fill(out.begin(), out.end(), 0.0);
    out[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(dim) - 1))] =
        1.0;
    return out;
  }
  for (auto& x : out) x /= total;
  return out;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(engine_()); }

std::uint64_t Rng::split_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace baffle

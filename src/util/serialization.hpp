#pragma once
// Byte-level serialization used by the model codec and the
// communication-accounting layer (§VI-D reproduces the history-transfer
// overhead, so model byte sizes must be real, not estimated).
//
// Format: little-endian, fixed-width primitives, length-prefixed
// containers. No alignment assumptions; safe across the processes of the
// simulated deployment.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace baffle {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f32(float v);
  void f64(double v);
  void f32_span(std::span<const float> v);  // length-prefixed
  void str(const std::string& s);           // length-prefixed

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Throws std::out_of_range on truncated input and std::runtime_error on
/// malformed length prefixes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::vector<float> f32_vec();
  std::string str();

  bool done() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace baffle

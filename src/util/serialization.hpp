#pragma once
// Byte-level serialization used by the model codec, the wire protocol
// (src/net) and the communication-accounting layer (§VI-D reproduces the
// history-transfer overhead, so model byte sizes must be real, not
// estimated).
//
// Format: little-endian, fixed-width primitives, length-prefixed
// containers. No alignment assumptions; safe across the processes of the
// simulated deployment.
//
// Decoding is defensive: every length prefix is validated against the
// bytes actually remaining BEFORE any byte-count arithmetic happens, so
// a hostile prefix near 2^64 can never wrap `n * sizeof(elem)` (or
// `pos_ + n`) into a small number and turn truncated input into an
// over-read. Truncation throws std::out_of_range; implausible prefixes
// throw std::runtime_error; nothing is ever read past the span.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace baffle {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f32(float v);
  void f64(double v);
  void f32_span(std::span<const float> v);        // length-prefixed
  void str(const std::string& s);                 // length-prefixed
  void raw(std::span<const std::uint8_t> bytes);  // no prefix

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Throws std::out_of_range on truncated input and std::runtime_error on
/// malformed length prefixes. Never reads past the given span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::vector<float> f32_vec();
  /// Decodes a length-prefixed f32 vector into `out` (resized to fit).
  /// On little-endian hosts the payload is copied in one memcpy straight
  /// from the wire bytes — the zero-copy path the model/update decoding
  /// rides; big-endian hosts fall back to per-element decoding.
  void f32_vec_into(std::vector<float>& out);
  std::string str();
  /// Consumes exactly `n` bytes and returns a view aliasing the input
  /// span (valid for the span's lifetime).
  std::span<const std::uint8_t> raw(std::size_t n);

  bool done() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n);
  /// Reads a u64 length prefix for `count` elements of `elem_size`
  /// bytes and validates it against remaining() BEFORE any size
  /// arithmetic; throws std::runtime_error when the payload it announces
  /// cannot fit in the remaining bytes.
  std::size_t length_prefix(std::size_t elem_size, const char* what);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace baffle

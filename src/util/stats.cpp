#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace baffle {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stddev: empty input");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

MeanStd mean_std(std::span<const double> xs) {
  return MeanStd{mean(xs), stddev(xs)};
}

}  // namespace baffle

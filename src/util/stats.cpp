#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

// The util layer sits below tensor, so it reaches the dispatched sum
// kernels through the table directly instead of tensor/primitives.hpp.
#include "tensor/kernels.hpp"

namespace baffle {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  return kernels::active_table().sum_d(xs.data(), xs.size()) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("stddev: empty input");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  return std::sqrt(kernels::active_table().sum_sq_diff_d(xs.data(), m,
                                                         xs.size()) /
                   static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

MeanStd mean_std(std::span<const double> xs) {
  return MeanStd{mean(xs), stddev(xs)};
}

}  // namespace baffle

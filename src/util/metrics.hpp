#pragma once
// Lightweight process-wide metrics registry: named monotonic counters
// and accumulating wall-clock timers.
//
// The evaluation hot path (Validator::validate, PredictionCache, the
// parallel GEMM kernels, run_experiment's round loop) reports here so
// throughput claims are measured, not guessed. Recording is mutex-backed
// and intended for per-call granularity (validations, rounds, large
// kernels) — not per-element loops. Dump the snapshot to CSV with
// MetricsRegistry::dump_csv or read single values in tests/benches.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace baffle {

/// One named metric in a registry snapshot. Counters carry `count`
/// (value == 0); timers carry both the number of samples and the total
/// accumulated seconds.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "timer"
  std::uint64_t count = 0;
  double total_seconds = 0.0;
};

class MetricsRegistry {
 public:
  /// Process-wide shared registry (thread-safe).
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// counters[name] += delta.
  void add_counter(const std::string& name, std::uint64_t delta = 1);

  /// timers[name] += seconds (and one sample).
  void add_timer(const std::string& name, double seconds);

  std::uint64_t counter(const std::string& name) const;
  /// Total accumulated seconds for `name` (0 when never recorded).
  double timer_seconds(const std::string& name) const;
  /// Number of samples accumulated into timer `name`.
  std::uint64_t timer_count(const std::string& name) const;
  /// Mean milliseconds per sample of timer `name` (0 when never
  /// recorded) — the per-round figure the CLI summaries print.
  double timer_mean_ms(const std::string& name) const;

  /// All metrics, name-sorted (counters first is not guaranteed).
  std::vector<MetricSample> snapshot() const;

  /// Writes the snapshot via CsvWriter: kind,name,count,total_seconds.
  void dump_csv(const std::string& path) const;

  /// Drops every metric (tests and repeated bench runs).
  void reset();

 private:
  struct Timer {
    std::uint64_t count = 0;
    double total_seconds = 0.0;
  };

  mutable Mutex mutex_;
  std::map<std::string, std::uint64_t> counters_ BAFFLE_GUARDED_BY(mutex_);
  std::map<std::string, Timer> timers_ BAFFLE_GUARDED_BY(mutex_);
};

/// RAII wall-clock timer: accumulates its lifetime into
/// `registry.add_timer(name, ...)` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name,
                       MetricsRegistry& registry = MetricsRegistry::global())
      : name_(std::move(name)),
        registry_(registry),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.add_timer(
        name_, std::chrono::duration<double>(elapsed).count());
  }

 private:
  std::string name_;
  MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace baffle

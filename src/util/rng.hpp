#pragma once
// Deterministic random-number utilities.
//
// Every stochastic component of the library takes an explicit `Rng&` so
// that experiments are reproducible from a single seed. `Rng::fork()`
// derives statistically independent child generators (SplitMix64 over the
// parent stream), which lets client-local work run on a thread pool
// without making results depend on scheduling order.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace baffle {

/// Seeded pseudo-random generator wrapping mt19937_64 with the sampling
/// helpers used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(split_mix(seed)) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (optionally scaled/shifted).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Index sampled from an (unnormalized) weight vector.
  std::size_t categorical(std::span<const double> weights);

  /// Sample from Dirichlet(alpha, ..., alpha) over `dim` categories.
  std::vector<double> dirichlet(std::size_t dim, double alpha);

  /// k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator. Deterministic given the
  /// parent's state; advancing the parent afterwards does not affect the
  /// child.
  Rng fork();

  /// Raw 64-bit draw (used by the secure-aggregation mask PRG).
  std::uint64_t next_u64() { return engine_(); }

  /// SplitMix64 hash step; used for seed derivation.
  static std::uint64_t split_mix(std::uint64_t x);

 private:
  std::mt19937_64 engine_;
};

}  // namespace baffle

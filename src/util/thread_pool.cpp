#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace baffle {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  auto fut = task.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  const std::size_t fanout = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(fanout);
  for (std::size_t i = 0; i + 1 < fanout; ++i) futures.push_back(submit(body));
  body();  // caller participates, so parallel_for works from pool threads too
  for (auto& f : futures) {
    // Help drain the queue instead of blocking: nested parallel_for
    // calls from pool threads would otherwise deadlock a saturated pool.
    // When the queue is empty but the future is still unfinished (the
    // tail task runs on another worker), back off on the future itself
    // instead of busy-spinning: escalate the wait from 50µs to 1ms so
    // the caller neither burns a core nor adds meaningful latency.
    auto backoff = std::chrono::microseconds(50);
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (try_run_one()) {
        backoff = std::chrono::microseconds(50);
      } else {
        if (f.wait_for(backoff) == std::future_status::ready) break;
        backoff = std::min(backoff * 2, std::chrono::microseconds(1000));
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  // BAFFLE_THREADS overrides hardware_concurrency for the shared pool —
  // lets single-core CI hosts still exercise the concurrent code paths
  // (e.g. under TSan) and lets benchmarks pin the worker count.
  static ThreadPool pool([] {
    std::size_t n = 0;
    if (const char* env = std::getenv("BAFFLE_THREADS")) {
      try {
        n = static_cast<std::size_t>(std::stoul(env));
      } catch (...) {
        n = 0;
      }
    }
    return n;
  }());
  return pool;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace baffle

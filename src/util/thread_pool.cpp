#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/metrics.hpp"

namespace baffle {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
    ++progress_;
  }
  cv_.notify_all();
  progress_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  auto fut = task.get_future();
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++progress_;
  }
  cv_.notify_one();
  progress_cv_.notify_all();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  Mutex error_mutex;
  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  const std::size_t fanout = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(fanout);
  for (std::size_t i = 0; i + 1 < fanout; ++i) futures.push_back(submit(body));
  body();  // caller participates, so parallel_for works from pool threads too
  for (auto& f : futures) {
    // Help drain the queue instead of blocking: nested parallel_for
    // calls from pool threads would otherwise deadlock a saturated pool.
    // When the queue is empty but the future is still unfinished (the
    // tail task runs on another worker), sleep on the pool's progress
    // condition variable: the tail task's completion wakes the caller
    // exactly once, with no timed-backoff polling slices. The stamp is
    // read before the readiness check, so a completion racing with the
    // check either flips the future to ready or advances the stamp —
    // never a lost wakeup.
    for (;;) {
      const std::uint64_t seen = progress_stamp();
      if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        break;
      }
      if (try_run_one()) continue;
      wait_progress(seen);
    }
  }
  if (error) std::rethrow_exception(error);
}

std::uint64_t ThreadPool::progress_stamp() const {
  MutexLock lock(mutex_);
  return progress_;
}

void ThreadPool::wait_progress(std::uint64_t seen) const {
  MutexLock lock(mutex_);
  while (!stop_ && progress_ == seen) progress_cv_.wait(mutex_);
}

ThreadPool& ThreadPool::global() {
  // BAFFLE_THREADS overrides hardware_concurrency for the shared pool —
  // lets single-core CI hosts still exercise the concurrent code paths
  // (e.g. under TSan) and lets benchmarks pin the worker count.
  static ThreadPool pool([] {
    std::size_t n = 0;
    if (const char* env = std::getenv("BAFFLE_THREADS")) {
      try {
        n = static_cast<std::size_t>(std::stoul(env));
      } catch (...) {
        n = 0;
      }
    }
    return n;
  }());
  return pool;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  MetricsRegistry::global().add_counter("thread_pool.help_drained");
  task();
  bump_progress();
  return true;
}

void ThreadPool::bump_progress() {
  {
    MutexLock lock(mutex_);
    ++progress_;
  }
  progress_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    bump_progress();
  }
}

}  // namespace baffle

#pragma once
// Small descriptive-statistics helpers used by the experiment harness
// (mean ± std rows in the paper tables) and by the LOF/threshold logic.

#include <span>
#include <vector>

namespace baffle {

double mean(std::span<const double> xs);

/// Sample standard deviation (ddof=1). The ± columns aggregate a handful
/// of independent runs, so the unbiased estimator is the right one;
/// dividing by N understates the spread exactly where samples are
/// scarcest. A single sample has no spread estimate and returns 0.
double stddev(std::span<const double> xs);

double median(std::vector<double> xs);  // by value: needs to sort

/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::vector<double> xs, double q);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Aggregate of repeated scalar measurements.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

MeanStd mean_std(std::span<const double> xs);

}  // namespace baffle

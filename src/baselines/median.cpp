#include "baselines/median.hpp"

#include <algorithm>
#include <stdexcept>

namespace baffle {

ParamVec CoordinateMedianAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  if (updates.empty()) {
    throw std::invalid_argument("coord-median: no updates");
  }
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);
  ParamVec out(dim);
  std::vector<float> column(updates.size());
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      column[i] = updates[i][j];
    }
    const std::size_t mid = column.size() / 2;
    std::nth_element(column.begin(),
                     column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (column.size() % 2 == 1) {
      out[j] = column[mid];
    } else {
      const float hi = column[mid];
      const float lo =
          *std::max_element(column.begin(),
                            column.begin() + static_cast<std::ptrdiff_t>(mid));
      out[j] = (lo + hi) / 2.0f;
    }
  }
  return out;
}

}  // namespace baffle

#pragma once
// Coordinate-wise median aggregation (Yin et al., ICML'18).

#include "fl/aggregator.hpp"

namespace baffle {

class CoordinateMedianAggregator final : public Aggregator {
 public:
  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "coord-median"; }
};

}  // namespace baffle

#include "baselines/foolsgold.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/primitives.hpp"

namespace baffle {

ParamVec FoolsGold::aggregate(const std::vector<ParamVec>& updates,
                              const std::vector<std::size_t>& ids) {
  if (updates.empty() || updates.size() != ids.size()) {
    throw std::invalid_argument("FoolsGold: bad inputs");
  }
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);
  const std::size_t n = updates.size();

  // Update per-client aggregate history.
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] = memory_.try_emplace(ids[i], ParamVec(dim, 0.0f));
    axpy(1.0f, updates[i], it->second);
  }

  // Pairwise cosine similarity of the clients' historical directions.
  std::vector<double> max_cs(n, 0.0);
  std::vector<std::vector<double>> cs(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      cs[i][j] = cosine_similarity(memory_.at(ids[i]), memory_.at(ids[j]));
      max_cs[i] = std::max(max_cs[i], cs[i][j]);
    }
  }

  // Pardoning + logit re-weighting (Fung et al., Alg. 1).
  std::vector<double> weight(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = max_cs[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && max_cs[j] > max_cs[i] && max_cs[j] > 0.0) {
        v = std::max(v, cs[i][j] * max_cs[i] / max_cs[j]);
      }
    }
    weight[i] = 1.0 - v;
  }
  const double wmax = *std::max_element(weight.begin(), weight.end());
  for (auto& w : weight) {
    if (wmax > 0.0) w /= wmax;
    w = std::clamp(w, 1e-5, 1.0 - 1e-5);
    w = confidence_ * (std::log(w / (1.0 - w)) + 0.5);
    w = std::clamp(w, 0.0, 1.0);
  }

  last_weights_ = weight;
  ParamVec out(dim, 0.0f);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    axpy(static_cast<float>(weight[i]), updates[i], out);
    total += weight[i];
  }
  if (total > 0.0) scale(out, static_cast<float>(1.0 / total));
  return out;
}

}  // namespace baffle

#include "baselines/norm_clip.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/stats.hpp"

namespace baffle {

NormClipAggregator::NormClipAggregator(double max_norm)
    : max_norm_(max_norm) {}

ParamVec NormClipAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  if (updates.empty()) throw std::invalid_argument("norm-clip: no updates");
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);

  double bound = max_norm_;
  if (bound <= 0.0) {
    std::vector<double> norms;
    norms.reserve(updates.size());
    for (const auto& u : updates) norms.push_back(l2_norm(u));
    bound = median(std::move(norms));
    if (bound <= 0.0) bound = 1.0;
  }

  ParamVec out(dim, 0.0f);
  for (const auto& u : updates) {
    const double norm = l2_norm(u);
    const float factor =
        norm > bound ? static_cast<float>(bound / norm) : 1.0f;
    axpy(factor, u, out);
  }
  scale(out, 1.0f / static_cast<float>(updates.size()));
  return out;
}

}  // namespace baffle

#pragma once
// Coordinate-wise β-trimmed mean (Yin et al., ICML'18).

#include "fl/aggregator.hpp"

namespace baffle {

class TrimmedMeanAggregator final : public Aggregator {
 public:
  /// Drops the `trim` largest and `trim` smallest values per coordinate;
  /// requires n > 2·trim.
  explicit TrimmedMeanAggregator(std::size_t trim);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "trimmed-mean"; }

 private:
  std::size_t trim_;
};

}  // namespace baffle

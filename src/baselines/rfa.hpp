#pragma once
// Robust Federated Aggregation (Pillutla et al.) — geometric median of
// the updates via the smoothed Weiszfeld algorithm. The paper cites RFA
// as robust against *untargeted* attacks but vulnerable to targeted
// backdoors (Xie et al.); the ablation bench reproduces that gap.

#include "fl/aggregator.hpp"

namespace baffle {

class RfaAggregator final : public Aggregator {
 public:
  explicit RfaAggregator(std::size_t max_iterations = 8,
                         double smoothing = 1e-6);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "rfa"; }

 private:
  std::size_t max_iterations_;
  double smoothing_;
};

}  // namespace baffle

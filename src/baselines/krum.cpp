#include "baselines/krum.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tensor/primitives.hpp"

namespace baffle {

KrumAggregator::KrumAggregator(std::size_t assumed_byzantine, bool multi)
    : assumed_byzantine_(assumed_byzantine), multi_(multi) {}

std::vector<double> KrumAggregator::scores(
    const std::vector<ParamVec>& updates) const {
  const std::size_t n = updates.size();
  if (n < assumed_byzantine_ + 3) {
    throw std::invalid_argument("Krum: need n >= f + 3 updates");
  }
  // Pairwise squared distances, straight from the squared-norm kernel
  // (no sqrt-then-square round trip).
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d2[i][j] = d2[j][i] = static_cast<double>(
          squared_l2_distance(updates[i], updates[j]));
    }
  }
  const std::size_t closest = n - assumed_byzantine_ - 2;
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(d2[i][j]);
    }
    std::sort(row.begin(), row.end());
    out[i] = std::accumulate(row.begin(),
                             row.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(closest, row.size())),
                             0.0);
  }
  return out;
}

std::size_t KrumAggregator::select(
    const std::vector<ParamVec>& updates) const {
  const auto s = scores(updates);
  return static_cast<std::size_t>(
      std::min_element(s.begin(), s.end()) - s.begin());
}

ParamVec KrumAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  check_update_sizes(updates, updates.empty() ? 0 : updates.front().size());
  if (!multi_) return updates[select(updates)];
  const auto s = scores(updates);
  std::vector<std::size_t> order(updates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return s[a] < s[b]; });
  const std::size_t m = std::max<std::size_t>(
      1, updates.size() - assumed_byzantine_ - 2);
  std::vector<ParamVec> best;
  best.reserve(m);
  for (std::size_t i = 0; i < m; ++i) best.push_back(updates[order[i]]);
  return mean_update(best);
}

}  // namespace baffle

#include "baselines/flguard_lite.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/stats.hpp"

namespace baffle {

FlGuardLiteAggregator::FlGuardLiteAggregator(double filter_fraction,
                                             double noise_factor,
                                             std::uint64_t seed)
    : filter_fraction_(filter_fraction),
      noise_factor_(noise_factor),
      seed_(seed) {
  if (filter_fraction < 0.0 || filter_fraction >= 1.0) {
    throw std::invalid_argument("flguard-lite: bad filter fraction");
  }
  if (noise_factor < 0.0) {
    throw std::invalid_argument("flguard-lite: negative noise");
  }
}

std::vector<std::size_t> FlGuardLiteAggregator::filter(
    const std::vector<ParamVec>& updates) const {
  const std::size_t n = updates.size();
  // Mean cosine similarity of each update to all others; the least
  // aligned updates are dropped.
  std::vector<double> alignment(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        alignment[i] += cosine_similarity(updates[i], updates[j]);
      }
    }
    if (n > 1) alignment[i] /= static_cast<double>(n - 1);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return alignment[a] > alignment[b];
  });
  const auto keep = std::max<std::size_t>(
      1, n - static_cast<std::size_t>(filter_fraction_ *
                                      static_cast<double>(n)));
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

ParamVec FlGuardLiteAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  if (updates.empty()) {
    throw std::invalid_argument("flguard-lite: no updates");
  }
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);

  const auto kept = filter(updates);

  // Layer 2: clip to the median norm of the survivors, average, noise.
  std::vector<double> norms;
  norms.reserve(kept.size());
  for (std::size_t i : kept) norms.push_back(l2_norm(updates[i]));
  double bound = median(norms);
  if (bound <= 0.0) bound = 1.0;

  ParamVec out(dim, 0.0f);
  for (std::size_t i : kept) {
    const double norm = l2_norm(updates[i]);
    const float factor =
        norm > bound ? static_cast<float>(bound / norm) : 1.0f;
    axpy(factor, updates[i], out);
  }
  scale(out, 1.0f / static_cast<float>(kept.size()));

  if (noise_factor_ > 0.0) {
    Rng rng(seed_);
    const double sigma = noise_factor_ * bound /
                         std::sqrt(static_cast<double>(dim));
    for (float& x : out) {
      x += static_cast<float>(rng.normal(0.0, sigma));
    }
  }
  return out;
}

}  // namespace baffle

#pragma once
// FoolsGold (Fung et al.) — down-weights clients whose *historical*
// update directions are suspiciously similar (sybils pushing the same
// poisoned objective). Needs stable client identities across rounds,
// which is exactly what makes it incompatible with secure aggregation —
// and, as the paper notes, a single-client adaptive attack circumvents
// it (there is no sybil group to correlate). The ablation bench
// demonstrates both properties.

#include <unordered_map>

#include "fl/update.hpp"

namespace baffle {

class FoolsGold {
 public:
  explicit FoolsGold(double confidence = 1.0) : confidence_(confidence) {}

  /// Aggregates one round. `ids[i]` identifies the client that produced
  /// `updates[i]`; per-client aggregate-update memory accumulates across
  /// calls. Returns the re-weighted mean update.
  ParamVec aggregate(const std::vector<ParamVec>& updates,
                     const std::vector<std::size_t>& ids);

  /// The per-client weights computed in the last aggregate() call
  /// (aligned with its `ids`), for inspection.
  const std::vector<double>& last_weights() const { return last_weights_; }

 private:
  double confidence_;
  std::unordered_map<std::size_t, ParamVec> memory_;
  std::vector<double> last_weights_;
};

}  // namespace baffle

#include "baselines/trimmed_mean.hpp"

#include <algorithm>
#include <stdexcept>

namespace baffle {

TrimmedMeanAggregator::TrimmedMeanAggregator(std::size_t trim)
    : trim_(trim) {}

ParamVec TrimmedMeanAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  if (updates.size() <= 2 * trim_) {
    throw std::invalid_argument("trimmed-mean: need n > 2*trim");
  }
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);
  ParamVec out(dim);
  std::vector<float> column(updates.size());
  const std::size_t keep = updates.size() - 2 * trim_;
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      column[i] = updates[i][j];
    }
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t i = trim_; i < trim_ + keep; ++i) acc += column[i];
    out[j] = static_cast<float>(acc / static_cast<double>(keep));
  }
  return out;
}

}  // namespace baffle

#pragma once
// Krum / Multi-Krum (Blanchard et al., NIPS'17).
//
// Krum scores each update by the sum of squared distances to its n−f−2
// closest peers and selects the lowest-scoring one; Multi-Krum averages
// the m best. Implemented as a comparison baseline: the paper's point
// (§I, §VII) is that Byzantine-robust rules assume near-IID clients and
// need individual updates — incompatible with secure aggregation — and
// still miss single-client model replacement under non-IID data.

#include "fl/aggregator.hpp"

namespace baffle {

class KrumAggregator final : public Aggregator {
 public:
  /// `assumed_byzantine` is f; `multi` selects Multi-Krum with m =
  /// n − f − 2 averaged updates (m is clamped to ≥ 1).
  KrumAggregator(std::size_t assumed_byzantine, bool multi = false);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override {
    return multi_ ? "multi-krum" : "krum";
  }

  /// Index of the update plain Krum would select (exposed for tests).
  std::size_t select(const std::vector<ParamVec>& updates) const;

 private:
  std::vector<double> scores(const std::vector<ParamVec>& updates) const;

  std::size_t assumed_byzantine_;
  bool multi_;
};

}  // namespace baffle

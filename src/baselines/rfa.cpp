#include "baselines/rfa.hpp"

#include <stdexcept>

#include "tensor/primitives.hpp"

namespace baffle {

RfaAggregator::RfaAggregator(std::size_t max_iterations, double smoothing)
    : max_iterations_(max_iterations), smoothing_(smoothing) {
  if (max_iterations == 0) {
    throw std::invalid_argument("RFA: max_iterations == 0");
  }
}

ParamVec RfaAggregator::aggregate(
    const std::vector<ParamVec>& updates) const {
  if (updates.empty()) throw std::invalid_argument("RFA: no updates");
  const std::size_t dim = updates.front().size();
  check_update_sizes(updates, dim);

  // Weiszfeld: z <- Σ w_i u_i / Σ w_i with w_i = 1 / max(ν, ||z - u_i||).
  ParamVec z = mean_update(updates);
  for (std::size_t it = 0; it < max_iterations_; ++it) {
    ParamVec next(dim, 0.0f);
    double weight_total = 0.0;
    for (const auto& u : updates) {
      const double d = std::max(
          smoothing_, static_cast<double>(l2_distance(z, u)));
      const double w = 1.0 / d;
      weight_total += w;
      axpy(static_cast<float>(w), u, next);
    }
    scale(next, static_cast<float>(1.0 / weight_total));
    const float shift = l2_distance(z, next);
    z = std::move(next);
    if (shift < 1e-9f) break;
  }
  return z;
}

}  // namespace baffle

#pragma once
// Norm-clipping aggregation (Sun et al., "Can you really backdoor
// federated learning?"): bound each update's L2 norm before averaging,
// which blunts boosted model-replacement updates. Like all
// update-inspection defenses it requires individual updates.

#include "fl/aggregator.hpp"

namespace baffle {

class NormClipAggregator final : public Aggregator {
 public:
  /// `max_norm` <= 0 selects an adaptive bound: the median norm of the
  /// round's updates.
  explicit NormClipAggregator(double max_norm = 0.0);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "norm-clip"; }

 private:
  double max_norm_;
};

}  // namespace baffle

#pragma once
// FLGUARD-lite (after Nguyen et al., cited by the paper as [20]) — a
// simplified rendition of the two-layer defense:
//   layer 1 (filtering): drop updates outside the majority direction
//     cluster (here: lowest mean cosine similarity to the others, a
//     stand-in for the paper's HDBSCAN over cosine distances);
//   layer 2 (residual removal): clip survivors to the median norm,
//     average, and add Gaussian noise.
// Included as a comparison baseline: it inspects individual updates
// (secure-aggregation incompatible) and — as the paper notes — its
// private variant requires heavyweight changes to the FL process.

#include "fl/aggregator.hpp"
#include "util/rng.hpp"

namespace baffle {

class FlGuardLiteAggregator final : public Aggregator {
 public:
  /// `filter_fraction` — share of updates removed by layer 1;
  /// `noise_factor` — Gaussian σ as a fraction of the clip bound
  /// (0 disables noising); `seed` — noise determinism.
  FlGuardLiteAggregator(double filter_fraction = 0.25,
                        double noise_factor = 0.01,
                        std::uint64_t seed = 0x71A2D);

  ParamVec aggregate(const std::vector<ParamVec>& updates) const override;
  std::string_view name() const override { return "flguard-lite"; }

  /// Indices surviving layer 1 (exposed for tests).
  std::vector<std::size_t> filter(const std::vector<ParamVec>& updates) const;

 private:
  double filter_fraction_;
  double noise_factor_;
  std::uint64_t seed_;
};

}  // namespace baffle

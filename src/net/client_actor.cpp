#include "net/client_actor.hpp"

#include <stdexcept>
#include <utility>

namespace baffle {

ClientActor::ClientActor(ClientActorConfig config, MlpConfig arch,
                         Dataset shard, ValidatorConfig validator_config,
                         UpdateProvider* provider,
                         std::shared_ptr<Channel> channel)
    : config_(config),
      provider_(provider),
      channel_(std::move(channel)),
      model_(arch) {
  if (provider_ == nullptr) {
    throw std::invalid_argument("ClientActor: null update provider");
  }
  if (channel_ == nullptr) {
    throw std::invalid_argument("ClientActor: null channel");
  }
  if (!shard.empty()) {
    validator_.emplace(std::move(shard), std::move(arch), validator_config);
  }
}

WireMessage ClientActor::recv_expect(MsgType expected) {
  auto frame = channel_->recv_for(config_.recv_timeout);
  if (!frame) {
    throw std::runtime_error(std::string("ClientActor: timed out waiting "
                                         "for ") +
                             msg_type_name(expected));
  }
  WireMessage msg = decode_frame(*frame);
  const auto actual = static_cast<MsgType>(
      static_cast<std::uint8_t>(msg.index()) + 1);
  if (actual != expected) {
    throw WireError(std::string("ClientActor: expected ") +
                    msg_type_name(expected) + ", got " +
                    msg_type_name(actual));
  }
  return msg;
}

void ClientActor::handle_training(Rng rng) {
  const auto broadcast =
      std::get<ModelBroadcast>(recv_expect(MsgType::kModelBroadcast));
  if (broadcast.purpose != ModelPurpose::kTraining) {
    throw WireError("ClientActor: training phase got a candidate model");
  }
  model_.set_parameters(broadcast.params);

  ClientUpdate reply;
  reply.round = broadcast.round;
  reply.client_id = config_.client_id;
  reply.update =
      provider_->update_for(config_.client_id, model_, rng, train_ws_);
  channel_->send(encode_frame(reply));
}

void ClientActor::merge_history(HistoryDelta delta) {
  for (auto& entry : delta.entries) {
    if (!window_.empty() && entry.version <= window_.back().version) {
      throw WireError(
          "ClientActor: history delta regresses behind local window");
    }
    window_.push_back(
        GlobalModel{entry.version, std::move(entry.params)});
  }
  trim_window();
}

void ClientActor::trim_window() {
  const std::size_t cap = config_.lookback + 1;
  if (window_.size() > cap) {
    window_.erase(window_.begin(),
                  window_.begin() +
                      static_cast<std::ptrdiff_t>(window_.size() - cap));
  }
}

void ClientActor::handle_validation() {
  auto delta = std::get<HistoryDelta>(recv_expect(MsgType::kHistoryDelta));
  const std::uint64_t round = delta.round;
  merge_history(std::move(delta));

  auto candidate =
      std::get<ModelBroadcast>(recv_expect(MsgType::kModelBroadcast));
  if (candidate.purpose != ModelPurpose::kCandidate) {
    throw WireError("ClientActor: validation phase got a training model");
  }
  if (candidate.round != round) {
    throw WireError("ClientActor: candidate round mismatches history delta");
  }

  // Honest verdict first; a malicious actor then lies on the wire. The
  // abstained flag always reports the honest state — the server counts
  // abstentions independently of vote manipulation, exactly like the
  // in-process path.
  ValidationOutcome outcome;  // vote 0 / no abstention by default
  bool abstained = true;      // no data at all: nothing to judge
  if (validator_) {
    outcome = validator_->validate(candidate.params, window_);
    abstained = outcome.abstained;
  }
  int wire_vote = outcome.vote;
  if (config_.malicious && config_.strategy != VoteStrategy::kHonest) {
    wire_vote = config_.strategy == VoteStrategy::kAlwaysReject ? 1 : 0;
  }

  pending_ = PendingCandidate{round, std::move(candidate.params)};

  Vote vote;
  vote.round = round;
  vote.client_id = config_.client_id;
  vote.vote = static_cast<std::uint8_t>(wire_vote);
  vote.abstained = abstained ? 1 : 0;
  vote.phi = outcome.phi;
  vote.tau = outcome.tau;
  channel_->send(encode_frame(vote));
}

void ClientActor::handle_round_result() {
  const auto result =
      std::get<RoundResult>(recv_expect(MsgType::kRoundResult));
  const bool judged_this_round =
      pending_ && pending_->round == result.round;
  if (result.committed != 0) {
    if (judged_this_round) {
      window_.push_back(GlobalModel{result.version,
                                    std::move(pending_->params)});
      trim_window();
      if (validator_) {
        validator_->notify_commit(result.version,
                                  window_.back().params);
      }
    }
  } else if (judged_this_round && validator_) {
    validator_->notify_reject();
  }
  pending_.reset();
}

}  // namespace baffle

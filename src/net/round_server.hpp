#pragma once
// Session-oriented round server: the server half of the wire protocol.
//
// One RoundSession per connected client, persistent across rounds —
// it remembers the newest accepted-model version the client holds
// (synced_version), which is what turns §VI-D's history shipping into
// deltas. The phase methods drive one FL round over those sessions:
//
//   broadcast_training   →  ModelBroadcast(kTraining) to contributors
//   collect_updates      ←  ClientUpdate from each, admission-checked
//   send_validation      →  HistoryDelta + ModelBroadcast(kCandidate)
//   collect_votes        ←  Vote from each validator
//   finish_round         →  RoundResult to every round participant
//
// Collection enforces per-round admission on every inbound frame
// (decodes, type, round number, session identity, duplicates, update
// size); a frame that fails any check is dropped and counted in
// ProtocolStats, never trusted. Stragglers are handled by deadline: a
// client that has not answered when the timeout expires is reported in
// `dropped` and the round proceeds without it — aggregation over the
// responders, and per the paper's footnote 1 an undersized voter set
// simply tallies the votes that did arrive (accept by default).
//
// While waiting, the server helps drain the global thread pool instead
// of blocking, because the simulated clients run as pool tasks (and
// whole experiments nest inside pool tasks under run_repeated).
//
// Byte accounting is exact: every frame sent or received is reported to
// the attached CommTracker at its actually-serialized size, attributed
// by phase (broadcasts → model download, updates → upload, history
// deltas → history, votes/results → control). Inadmissible frames
// still crossed the wire, so their bytes count toward the phase that
// received them.

#include <functional>
#include <unordered_map>

#include "core/history.hpp"
#include "fl/comm.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"

namespace baffle {

struct RoundServerConfig {
  /// Straggler deadlines per collection phase.
  std::chrono::milliseconds update_timeout{30'000};
  std::chrono::milliseconds vote_timeout{30'000};
};

/// Inbound frames rejected at the protocol boundary, by reason; and the
/// peers that missed a collection deadline.
struct ProtocolStats {
  std::uint64_t decode_errors = 0;     // malformed frame / bad version
  std::uint64_t unexpected_type = 0;   // well-formed but out of phase
  std::uint64_t wrong_round = 0;
  std::uint64_t wrong_client = 0;      // id does not match the session
  std::uint64_t duplicates = 0;        // second update/vote this round
  std::uint64_t bad_update_size = 0;   // update length != model params
  std::uint64_t timeouts = 0;          // expected peers that never answered
  std::uint64_t total_rejected() const {
    return decode_errors + unexpected_type + wrong_round + wrong_client +
           duplicates + bad_update_size;
  }
};

class RoundServer {
 public:
  /// `expected_params` — flat parameter count of the model; admission
  /// rejects updates of any other length.
  RoundServer(RoundServerConfig config, std::size_t expected_params);

  /// Registers (or replaces) the server-side channel for `client_id`.
  void add_session(std::size_t client_id, std::shared_ptr<Channel> channel);
  bool has_session(std::size_t client_id) const;

  /// Exact-byte communication accounting sink; may be null.
  void set_tracker(CommTracker* tracker) { tracker_ = tracker; }

  void broadcast_training(std::uint64_t round, std::uint64_t version,
                          const ParamVec& global,
                          const std::vector<std::size_t>& contributors);

  struct UpdateCollection {
    /// Responders' updates, in the order the ids appeared in `expected`.
    std::vector<ParamVec> updates;
    std::vector<std::size_t> responders;
    std::vector<std::size_t> dropped;  // deadline missed
  };
  UpdateCollection collect_updates(std::uint64_t round,
                                   const std::vector<std::size_t>& expected);

  /// Ships each validator the window entries it is missing (those newer
  /// than its session's synced_version) followed by the candidate, and
  /// advances synced_version to the window head.
  void send_validation(std::uint64_t round, std::uint64_t candidate_version,
                       const ParamVec& candidate, const ModelWindow& window,
                       const std::vector<std::size_t>& validators);

  struct VoteCollection {
    /// Responders' votes, in the order the ids appeared in `expected`.
    std::vector<Vote> votes;
    std::vector<std::size_t> responders;
    std::vector<std::size_t> dropped;
  };
  VoteCollection collect_votes(std::uint64_t round,
                               const std::vector<std::size_t>& expected);

  /// Sends the RoundResult to every id in `participants`; on a commit,
  /// marks each id in `validators` as holding the committed version
  /// (they promote the candidate they already received).
  void finish_round(const RoundResult& result,
                    const std::vector<std::size_t>& participants,
                    const std::vector<std::size_t>& validators);

  /// Snapshot of the admission counters (copied under the lock).
  ProtocolStats protocol_stats() const;

  /// Raw frame bytes that crossed all sessions, both directions, as the
  /// channels counted them — the ground truth CommTracker must match.
  std::uint64_t wire_bytes() const;

  /// Newest accepted version `client_id` holds; kNeverSynced before the
  /// first delta.
  static constexpr std::uint64_t kNeverSynced = ~std::uint64_t{0};
  std::uint64_t synced_version(std::size_t client_id) const;

 private:
  struct Session {
    std::shared_ptr<Channel> channel;
    std::uint64_t synced_version = kNeverSynced;
  };

  Session& session_for(std::size_t client_id) BAFFLE_REQUIRES(mu_);
  void send_frame(std::size_t client_id, const WireMessage& msg,
                  CommCategory category) BAFFLE_REQUIRES(mu_);
  /// One admission-checked poll of `client_id`'s channel. Returns the
  /// decoded message when a frame passed all checks, nullopt when the
  /// queue is empty or the frame was rejected (stats updated).
  std::optional<WireMessage> poll_admissible(std::size_t client_id,
                                             std::uint64_t round,
                                             MsgType expected)
      BAFFLE_REQUIRES(mu_);

  RoundServerConfig config_;
  std::size_t expected_params_;
  // Lock order: mu_ before any channel's internal link mutex (channel
  // calls happen under mu_; channels never call back into the server).
  // Collection loops release mu_ before helping the thread pool, so an
  // assisted task can safely reenter the server.
  mutable Mutex mu_;
  std::unordered_map<std::size_t, Session> sessions_ BAFFLE_GUARDED_BY(mu_);
  ProtocolStats stats_ BAFFLE_GUARDED_BY(mu_);
  CommTracker* tracker_ = nullptr;
};

}  // namespace baffle

#include "net/round_driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace baffle {

TransportRoundDriver::TransportRoundDriver(
    Transport& transport, FlServer& server, BaffleDefense& defense,
    const std::vector<FlClient>& clients, UpdateProvider& provider,
    const std::unordered_set<std::size_t>& malicious_ids,
    VoteStrategy strategy, TransportRoundConfig config)
    : transport_(transport),
      server_(server),
      defense_(defense),
      clients_(clients),
      provider_(provider),
      malicious_ids_(malicious_ids),
      strategy_(strategy),
      config_(config),
      tracker_(clients.size(),
               server.global_model().num_params() * sizeof(float),
               defense.config().validator.lookback + 1,
               /*compression=*/1.0),
      round_server_(config.server, server.global_model().num_params()) {
  round_server_.set_tracker(&tracker_);
}

ClientActor& TransportRoundDriver::actor_for(std::size_t id) {
  if (const auto it = actors_.find(id); it != actors_.end()) {
    return *it->second;
  }
  if (id >= clients_.size()) {
    throw std::out_of_range("TransportRoundDriver: unknown client id");
  }
  DuplexChannel duplex = transport_.connect();
  round_server_.add_session(id, duplex.server);
  ClientActorConfig actor_config;
  actor_config.client_id = id;
  actor_config.lookback = defense_.config().validator.lookback;
  actor_config.malicious = malicious_ids_.contains(id);
  actor_config.strategy = strategy_;
  actor_config.recv_timeout = config_.actor_recv_timeout;
  auto [it, inserted] = actors_.try_emplace(
      id, std::make_unique<ClientActor>(
              actor_config, server_.arch(), clients_[id].data(),
              defense_.config().validator, &provider_,
              std::move(duplex.client)));
  return *it->second;
}

void TransportRoundDriver::join_tasks(std::vector<std::future<void>>& tasks) {
  for (auto& task : tasks) {
    while (task.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!ThreadPool::global().try_run_one()) std::this_thread::yield();
    }
    task.get();
  }
  tasks.clear();
}

FlServer::Proposal TransportRoundDriver::propose_round(
    const std::vector<std::size_t>& contributors, Rng& round_rng) {
  if (contributors.empty()) {
    throw std::invalid_argument("propose_round: no contributors");
  }
  tracker_.add_round();
  round_contributors_ = contributors;
  round_validators_.clear();
  const std::uint64_t round = server_.current_round() + 1;

  // Same pre-fork discipline (and therefore the same rng stream) as
  // FlServer::propose_round_with: one fork per contributor, in order.
  std::vector<Rng> client_rngs;
  client_rngs.reserve(contributors.size());
  for (std::size_t i = 0; i < contributors.size(); ++i) {
    client_rngs.push_back(round_rng.fork());
  }

  for (std::size_t id : contributors) actor_for(id);  // sessions ready
  round_server_.broadcast_training(round, server_.version(),
                                   server_.global_model().parameters(),
                                   contributors);

  std::vector<std::future<void>> tasks;
  tasks.reserve(contributors.size());
  for (std::size_t i = 0; i < contributors.size(); ++i) {
    ClientActor& actor = actor_for(contributors[i]);
    tasks.push_back(ThreadPool::global().submit(
        [&actor, rng = client_rngs[i]]() mutable {
          actor.handle_training(std::move(rng));
        }));
  }
  auto collected = round_server_.collect_updates(round, contributors);
  join_tasks(tasks);

  return server_.aggregate_updates(std::move(collected.updates),
                                   collected.responders);
}

FeedbackDecision TransportRoundDriver::evaluate(
    const FlServer::Proposal& proposal,
    const std::vector<std::size_t>& validating_ids) {
  const FeedbackConfig& feedback = defense_.config();
  const bool use_clients = feedback.mode != DefenseMode::kServerOnly;
  const ModelWindow window = defense_.current_window();

  RoundServer::VoteCollection collected;
  if (use_clients && !validating_ids.empty()) {
    round_validators_ = validating_ids;
    for (std::size_t id : validating_ids) actor_for(id);
    // The candidate's version-on-commit, so validators can promote it
    // into their windows without a second download.
    round_server_.send_validation(proposal.round, server_.version() + 1,
                                  proposal.candidate_params, window,
                                  validating_ids);
    std::vector<std::future<void>> tasks;
    tasks.reserve(validating_ids.size());
    for (std::size_t id : validating_ids) {
      ClientActor& actor = actor_for(id);
      tasks.push_back(ThreadPool::global().submit(
          [&actor] { actor.handle_validation(); }));
    }
    collected = round_server_.collect_votes(proposal.round, validating_ids);
    join_tasks(tasks);
  }

  ValidationOutcome server_outcome;
  const bool use_server = feedback.mode != DefenseMode::kClientsOnly &&
                          defense_.server_validator() != nullptr;
  if (use_server) {
    server_outcome = defense_.server_validator()->validate(
        proposal.candidate_params, window);
  }

  // Wire votes → tally, through the protocol-boundary guard. Missing
  // voters (deadline) are simply absent — footnote 1's accept-by-
  // default behavior falls out of tallying the votes that arrived.
  std::vector<int> votes;
  votes.reserve(collected.votes.size());
  std::size_t abstentions = 0;
  for (const Vote& vote : collected.votes) {
    votes.push_back(static_cast<int>(vote.vote));
    if (vote.abstained != 0) ++abstentions;
  }
  validate_decoded_votes(votes, collected.responders);
  const bool server_abstained = use_server && server_outcome.abstained;
  if (server_abstained) ++abstentions;

  FeedbackDecision decision =
      decide_quorum(feedback.mode, feedback.quorum, votes,
                    collected.responders, server_outcome.vote,
                    server_abstained);
  decision.abstentions = abstentions;
  return decision;
}

void TransportRoundDriver::finish_round(const FlServer::Proposal& proposal,
                                        bool committed, std::uint64_t version,
                                        const FeedbackDecision& decision) {
  RoundResult result;
  result.round = proposal.round;
  result.committed = committed ? 1 : 0;
  result.version = version;
  result.reject_votes = static_cast<std::uint32_t>(decision.reject_votes);
  result.total_voters = static_cast<std::uint32_t>(decision.total_voters);

  std::vector<std::size_t> participants = round_contributors_;
  for (std::size_t id : round_validators_) {
    if (std::find(participants.begin(), participants.end(), id) ==
        participants.end()) {
      participants.push_back(id);
    }
  }
  round_server_.finish_round(result, participants, round_validators_);
  // Actors consume the result inline: promotion/rollback is cheap and
  // ordering it here keeps the round loop free of trailing tasks.
  for (std::size_t id : participants) {
    actor_for(id).handle_round_result();
  }
  round_contributors_.clear();
  round_validators_.clear();
}

}  // namespace baffle

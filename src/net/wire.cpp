#include "net/wire.hpp"

namespace baffle {

namespace {

// Hard ceilings on decoded container sizes, enforced before any
// allocation: a frame that passed the length-prefix checks can still
// claim absurd element counts relative to the deployment (e.g. a
// history delta of 2^32 entries each of zero floats).
constexpr std::size_t kMaxHistoryEntries = 4096;

void encode_body(ByteWriter& w, const ModelBroadcast& m) {
  w.u64(m.round);
  w.u64(m.version);
  w.u8(static_cast<std::uint8_t>(m.purpose));
  w.f32_span(m.params);
}

void encode_body(ByteWriter& w, const ClientUpdate& m) {
  w.u64(m.round);
  w.u64(m.client_id);
  w.f32_span(m.update);
}

void encode_body(ByteWriter& w, const Vote& m) {
  w.u64(m.round);
  w.u64(m.client_id);
  w.u8(m.vote);
  w.u8(m.abstained);
  w.f64(m.phi);
  w.f64(m.tau);
}

void encode_body(ByteWriter& w, const HistoryDelta& m) {
  w.u64(m.round);
  w.u64(m.entries.size());
  for (const auto& entry : m.entries) {
    w.u64(entry.version);
    w.f32_span(entry.params);
  }
}

void encode_body(ByteWriter& w, const RoundResult& m) {
  w.u64(m.round);
  w.u8(m.committed);
  w.u64(m.version);
  w.u32(m.reject_votes);
  w.u32(m.total_voters);
}

MsgType type_of(const WireMessage& msg) {
  switch (msg.index()) {
    case 0: return MsgType::kModelBroadcast;
    case 1: return MsgType::kClientUpdate;
    case 2: return MsgType::kVote;
    case 3: return MsgType::kHistoryDelta;
    case 4: return MsgType::kRoundResult;
  }
  throw WireError("wire: valueless message");
}

ModelBroadcast decode_model_broadcast(ByteReader& r) {
  ModelBroadcast m;
  m.round = r.u64();
  m.version = r.u64();
  const std::uint8_t purpose = r.u8();
  if (purpose > static_cast<std::uint8_t>(ModelPurpose::kCandidate)) {
    throw WireError("wire: unknown model purpose");
  }
  m.purpose = static_cast<ModelPurpose>(purpose);
  r.f32_vec_into(m.params);
  return m;
}

ClientUpdate decode_client_update(ByteReader& r) {
  ClientUpdate m;
  m.round = r.u64();
  m.client_id = r.u64();
  r.f32_vec_into(m.update);
  return m;
}

Vote decode_vote(ByteReader& r) {
  Vote m;
  m.round = r.u64();
  m.client_id = r.u64();
  m.vote = r.u8();
  m.abstained = r.u8();
  m.phi = r.f64();
  m.tau = r.f64();
  if (m.vote > 1) throw WireError("wire: vote outside {0,1}");
  if (m.abstained > 1) throw WireError("wire: abstained flag outside {0,1}");
  return m;
}

HistoryDelta decode_history_delta(ByteReader& r) {
  HistoryDelta m;
  m.round = r.u64();
  const std::uint64_t count = r.u64();
  if (count > kMaxHistoryEntries) {
    throw WireError("wire: implausible history delta entry count");
  }
  m.entries.reserve(count);
  std::uint64_t prev_version = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    HistoryDelta::Entry entry;
    entry.version = r.u64();
    if (i > 0 && entry.version <= prev_version) {
      throw WireError("wire: history delta versions must strictly increase");
    }
    prev_version = entry.version;
    r.f32_vec_into(entry.params);
    m.entries.push_back(std::move(entry));
  }
  return m;
}

RoundResult decode_round_result(ByteReader& r) {
  RoundResult m;
  m.round = r.u64();
  m.committed = r.u8();
  if (m.committed > 1) throw WireError("wire: committed flag outside {0,1}");
  m.version = r.u64();
  m.reject_votes = r.u32();
  m.total_voters = r.u32();
  return m;
}

/// Validates the frame envelope and returns a reader positioned at the
/// (version, type, body) payload, spanning exactly payload_len bytes.
ByteReader open_frame(std::span<const std::uint8_t> frame) {
  ByteReader header(frame);
  const std::uint32_t payload_len = header.u32();
  if (payload_len != frame.size() - 4) {
    throw WireError("wire: frame length does not match buffer");
  }
  if (payload_len < 3) {  // version (2) + type (1)
    throw WireError("wire: frame too short for header");
  }
  return header;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kModelBroadcast: return "ModelBroadcast";
    case MsgType::kClientUpdate: return "ClientUpdate";
    case MsgType::kVote: return "Vote";
    case MsgType::kHistoryDelta: return "HistoryDelta";
    case MsgType::kRoundResult: return "RoundResult";
  }
  return "?";
}

WireBytes encode_frame(const WireMessage& msg, std::uint16_t version) {
  ByteWriter body;
  body.u16(version);
  body.u8(static_cast<std::uint8_t>(type_of(msg)));
  std::visit([&](const auto& m) { encode_body(body, m); }, msg);

  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());
  return frame.take();
}

WireMessage decode_frame(std::span<const std::uint8_t> frame) {
  ByteReader r = open_frame(frame);
  const std::uint16_t version = r.u16();
  if (version < kProtocolVersionMin || version > kProtocolVersion) {
    throw WireError("wire: unsupported protocol version");
  }
  const std::uint8_t type = r.u8();
  WireMessage msg = [&]() -> WireMessage {
    switch (static_cast<MsgType>(type)) {
      case MsgType::kModelBroadcast: return decode_model_broadcast(r);
      case MsgType::kClientUpdate: return decode_client_update(r);
      case MsgType::kVote: return decode_vote(r);
      case MsgType::kHistoryDelta: return decode_history_delta(r);
      case MsgType::kRoundResult: return decode_round_result(r);
    }
    throw WireError("wire: unknown message type");
  }();
  // Strict decoding: a successful body decode must consume the payload
  // exactly — trailing bytes mean a grammar mismatch between endpoints.
  if (!r.done()) throw WireError("wire: trailing bytes after message body");
  return msg;
}

MsgType peek_type(std::span<const std::uint8_t> frame) {
  ByteReader r = open_frame(frame);
  const std::uint16_t version = r.u16();
  if (version < kProtocolVersionMin || version > kProtocolVersion) {
    throw WireError("wire: unsupported protocol version");
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kModelBroadcast) ||
      type > static_cast<std::uint8_t>(MsgType::kRoundResult)) {
    throw WireError("wire: unknown message type");
  }
  return static_cast<MsgType>(type);
}

}  // namespace baffle

#pragma once
// TransportRoundDriver: the experiment loop's bridge onto the wire
// protocol. It owns one ClientActor (+ connected channel pair) per
// client that ever participates, and replays each round's three
// exchanges through the RoundServer:
//
//   propose_round  — broadcast the global model to the contributors,
//                    run their training as thread-pool tasks, collect
//                    and admission-check their ClientUpdates, aggregate
//                    the responders through FlServer::aggregate_updates.
//   evaluate       — ship each validator its history delta plus the
//                    candidate, collect Votes, validate them at the
//                    protocol boundary, and apply Algorithm 1's quorum
//                    (the server-side validator votes locally; it never
//                    crosses a wire).
//   finish_round   — deliver the RoundResult to every participant so
//                    actors promote or drop the judged candidate.
//
// Determinism contract: with no stragglers, a transport-driven round is
// bit-identical to the in-process FlServer/BaffleDefense path. The
// driver forks the per-contributor Rngs from the round rng in exactly
// the order propose_round_with does, aggregation runs through the same
// FlServer code, and VALIDATE depends only on (candidate, window,
// shard, config) — all reconstructed exactly on the actor side.
// tests/exp/transport_parity_test locks this in.
//
// With stragglers (a collection deadline expires), the round proceeds
// over the responders: aggregation over the updates that arrived, and —
// per the paper's footnote 1 — a short voter set is tallied as-is, so
// missing votes mean accept-by-default.

#include <future>
#include <memory>
#include <unordered_set>

#include "core/defense.hpp"
#include "net/client_actor.hpp"
#include "net/round_server.hpp"

namespace baffle {

struct TransportRoundConfig {
  RoundServerConfig server;
  std::chrono::milliseconds actor_recv_timeout{30'000};
};

class TransportRoundDriver {
 public:
  /// All references must outlive the driver. `provider` is shared by
  /// every actor (its update_for is thread-safe per the UpdateProvider
  /// contract); ids in `malicious_ids` get actors that apply `strategy`
  /// to their outgoing votes.
  TransportRoundDriver(Transport& transport, FlServer& server,
                       BaffleDefense& defense,
                       const std::vector<FlClient>& clients,
                       UpdateProvider& provider,
                       const std::unordered_set<std::size_t>& malicious_ids,
                       VoteStrategy strategy,
                       TransportRoundConfig config = {});

  /// Training phase over the wire; the drop-in replacement for
  /// FlServer::propose_round_with. `round_rng` advances exactly as in
  /// the in-process path (one fork per contributor, in order).
  FlServer::Proposal propose_round(
      const std::vector<std::size_t>& contributors, Rng& round_rng);

  /// Validation phase over the wire; the drop-in replacement for
  /// BaffleDefense::evaluate for the same candidate and validator set.
  FeedbackDecision evaluate(const FlServer::Proposal& proposal,
                            const std::vector<std::size_t>& validating_ids);

  /// Closes the round towards every participant. `version` is the
  /// committed version on a commit, the unchanged pre-round version on
  /// a reject. Must be called once per round, after commit/discard.
  void finish_round(const FlServer::Proposal& proposal, bool committed,
                    std::uint64_t version, const FeedbackDecision& decision);

  /// Exact per-category byte totals, measured from encoded frames.
  const CommTracker& tracker() const { return tracker_; }
  RoundServer& round_server() { return round_server_; }
  const RoundServer& round_server() const { return round_server_; }
  /// Ground truth the tracker must equal: channel-counted frame bytes.
  std::uint64_t wire_bytes() const { return round_server_.wire_bytes(); }

 private:
  ClientActor& actor_for(std::size_t id);
  /// Joins actor tasks by helping drain the pool (never parks a worker
  /// slot — experiments themselves run as pool tasks under
  /// run_repeated), rethrowing the first actor exception.
  static void join_tasks(std::vector<std::future<void>>& tasks);

  Transport& transport_;
  FlServer& server_;
  BaffleDefense& defense_;
  const std::vector<FlClient>& clients_;
  UpdateProvider& provider_;
  std::unordered_set<std::size_t> malicious_ids_;
  VoteStrategy strategy_;
  TransportRoundConfig config_;
  CommTracker tracker_;
  RoundServer round_server_;
  std::unordered_map<std::size_t, std::unique_ptr<ClientActor>> actors_;
  /// Current round's participants (reset by propose_round, consumed by
  /// finish_round).
  std::vector<std::size_t> round_contributors_;
  std::vector<std::size_t> round_validators_;
};

}  // namespace baffle

#include "net/transport.hpp"

#include <deque>
#include <stdexcept>

#include "util/sync.hpp"

namespace baffle {

namespace {

/// Shared state of one in-process duplex link. Endpoint 0 and endpoint 1
/// each send into their own queue and receive from the peer's. Every
/// field — queues, per-direction byte counters, the closed flag — is
/// guarded by the link mutex; received bytes are counted at pop time,
/// under the same critical section that dequeues the frame, so the
/// counters can never disagree with the queues.
struct InProcLink {
  Mutex mutex;
  CondVar cv;
  std::deque<WireBytes> queue[2] BAFFLE_GUARDED_BY(mutex);
  std::uint64_t bytes_sent[2] BAFFLE_GUARDED_BY(mutex) = {0, 0};
  std::uint64_t bytes_received[2] BAFFLE_GUARDED_BY(mutex) = {0, 0};
  bool closed BAFFLE_GUARDED_BY(mutex) = false;
};

class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<InProcLink> link, int end)
      : link_(std::move(link)), end_(end) {}

  void send(WireBytes frame) override {
    MutexLock lock(link_->mutex);
    if (link_->closed) {
      throw std::runtime_error("InProcChannel: send on closed channel");
    }
    link_->bytes_sent[end_] += frame.size();
    link_->queue[end_].push_back(std::move(frame));
    link_->cv.notify_all();
  }

  std::optional<WireBytes> try_recv() override {
    MutexLock lock(link_->mutex);
    return pop_locked();
  }

  std::optional<WireBytes> recv_for(
      std::chrono::milliseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(link_->mutex);
    const int peer = 1 - end_;
    while (link_->queue[peer].empty() && !link_->closed) {
      if (link_->cv.wait_until(link_->mutex, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    return pop_locked();
  }

  void close() override {
    MutexLock lock(link_->mutex);
    link_->closed = true;
    link_->cv.notify_all();
  }

  bool closed() const override {
    MutexLock lock(link_->mutex);
    return link_->closed;
  }

  std::uint64_t bytes_sent() const override {
    MutexLock lock(link_->mutex);
    return link_->bytes_sent[end_];
  }

  std::uint64_t bytes_received() const override {
    MutexLock lock(link_->mutex);
    return link_->bytes_received[end_];
  }

 private:
  /// Pops the next frame sent by the peer and counts its bytes as
  /// received by this endpoint.
  std::optional<WireBytes> pop_locked() BAFFLE_REQUIRES(link_->mutex) {
    const int peer = 1 - end_;
    if (link_->queue[peer].empty()) return std::nullopt;
    WireBytes frame = std::move(link_->queue[peer].front());
    link_->queue[peer].pop_front();
    link_->bytes_received[end_] += frame.size();
    return frame;
  }

  std::shared_ptr<InProcLink> link_;
  int end_;
};

}  // namespace

DuplexChannel InProcTransport::connect() {
  auto link = std::make_shared<InProcLink>();
  DuplexChannel duplex;
  duplex.server = std::make_shared<InProcChannel>(link, 0);
  duplex.client = std::make_shared<InProcChannel>(link, 1);
  return duplex;
}

SocketTransport::SocketTransport(std::string address)
    : address_(std::move(address)) {
  if (address_.empty()) {
    throw std::invalid_argument("SocketTransport: empty address");
  }
}

DuplexChannel SocketTransport::connect() {
  throw std::runtime_error(
      "SocketTransport: not available in this build (stub); use "
      "InProcTransport");
}

}  // namespace baffle

#include "net/transport.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace baffle {

namespace {

/// Shared state of one in-process duplex link. Endpoint 0 and endpoint 1
/// each send into their own queue and receive from the peer's.
struct InProcLink {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<WireBytes> queue[2];  // queue[i] holds frames sent BY end i
  std::uint64_t bytes_sent[2] = {0, 0};
  std::uint64_t bytes_received[2] = {0, 0};
  bool closed = false;
};

class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<InProcLink> link, int end)
      : link_(std::move(link)), end_(end) {}

  void send(WireBytes frame) override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    if (link_->closed) {
      throw std::runtime_error("InProcChannel: send on closed channel");
    }
    link_->bytes_sent[end_] += frame.size();
    link_->queue[end_].push_back(std::move(frame));
    link_->cv.notify_all();
  }

  std::optional<WireBytes> try_recv() override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    return pop_locked();
  }

  std::optional<WireBytes> recv_for(
      std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(link_->mutex);
    const int peer = 1 - end_;
    link_->cv.wait_for(lock, timeout, [&] {
      return !link_->queue[peer].empty() || link_->closed;
    });
    return pop_locked();
  }

  void close() override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    link_->closed = true;
    link_->cv.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    return link_->closed;
  }

  std::uint64_t bytes_sent() const override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    return link_->bytes_sent[end_];
  }

  std::uint64_t bytes_received() const override {
    std::lock_guard<std::mutex> lock(link_->mutex);
    return link_->bytes_received[end_];
  }

 private:
  /// Pops the next frame sent by the peer; caller holds the lock.
  std::optional<WireBytes> pop_locked() {
    const int peer = 1 - end_;
    if (link_->queue[peer].empty()) return std::nullopt;
    WireBytes frame = std::move(link_->queue[peer].front());
    link_->queue[peer].pop_front();
    link_->bytes_received[end_] += frame.size();
    return frame;
  }

  std::shared_ptr<InProcLink> link_;
  int end_;
};

}  // namespace

DuplexChannel InProcTransport::connect() {
  auto link = std::make_shared<InProcLink>();
  DuplexChannel duplex;
  duplex.server = std::make_shared<InProcChannel>(link, 0);
  duplex.client = std::make_shared<InProcChannel>(link, 1);
  return duplex;
}

SocketTransport::SocketTransport(std::string address)
    : address_(std::move(address)) {
  if (address_.empty()) {
    throw std::invalid_argument("SocketTransport: empty address");
  }
}

DuplexChannel SocketTransport::connect() {
  throw std::runtime_error(
      "SocketTransport: not available in this build (stub); use "
      "InProcTransport");
}

}  // namespace baffle

#include "net/round_server.hpp"

#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace baffle {

namespace {

/// Waiting posture for collection loops: run one queued pool task if
/// any (the simulated clients are pool tasks — blocking a worker slot
/// on them could deadlock a small pool), otherwise yield.
void assist_or_yield() {
  if (!ThreadPool::global().try_run_one()) std::this_thread::yield();
}

}  // namespace

RoundServer::RoundServer(RoundServerConfig config,
                         std::size_t expected_params)
    : config_(config), expected_params_(expected_params) {
  if (expected_params_ == 0) {
    throw std::invalid_argument("RoundServer: model has no parameters");
  }
}

void RoundServer::add_session(std::size_t client_id,
                              std::shared_ptr<Channel> channel) {
  if (channel == nullptr) {
    throw std::invalid_argument("RoundServer: null channel");
  }
  MutexLock lock(mu_);
  sessions_[client_id] = Session{std::move(channel), kNeverSynced};
}

bool RoundServer::has_session(std::size_t client_id) const {
  MutexLock lock(mu_);
  return sessions_.contains(client_id);
}

RoundServer::Session& RoundServer::session_for(std::size_t client_id) {
  const auto it = sessions_.find(client_id);
  if (it == sessions_.end()) {
    throw std::out_of_range("RoundServer: no session for client");
  }
  return it->second;
}

std::uint64_t RoundServer::synced_version(std::size_t client_id) const {
  MutexLock lock(mu_);
  const auto it = sessions_.find(client_id);
  if (it == sessions_.end()) {
    throw std::out_of_range("RoundServer: no session for client");
  }
  return it->second.synced_version;
}

void RoundServer::send_frame(std::size_t client_id, const WireMessage& msg,
                             CommCategory category) {
  WireBytes frame = encode_frame(msg);
  if (tracker_) tracker_->add_bytes(category, frame.size());
  session_for(client_id).channel->send(std::move(frame));
}

void RoundServer::broadcast_training(
    std::uint64_t round, std::uint64_t version, const ParamVec& global,
    const std::vector<std::size_t>& contributors) {
  ModelBroadcast msg;
  msg.round = round;
  msg.version = version;
  msg.purpose = ModelPurpose::kTraining;
  msg.params = global;  // one copy per encode below; params stay put
  MutexLock lock(mu_);
  for (std::size_t id : contributors) {
    send_frame(id, msg, CommCategory::kModelDownload);
  }
}

std::optional<WireMessage> RoundServer::poll_admissible(
    std::size_t client_id, std::uint64_t round, MsgType expected) {
  Session& session = session_for(client_id);
  auto frame = session.channel->try_recv();
  if (!frame) return std::nullopt;
  const CommCategory category = expected == MsgType::kClientUpdate
                                    ? CommCategory::kUpdateUpload
                                    : CommCategory::kControl;
  if (tracker_) tracker_->add_bytes(category, frame->size());

  WireMessage msg;
  try {
    msg = decode_frame(*frame);
  } catch (const std::exception&) {
    ++stats_.decode_errors;
    return std::nullopt;
  }

  const auto type =
      static_cast<MsgType>(static_cast<std::uint8_t>(msg.index()) + 1);
  if (type != expected) {
    ++stats_.unexpected_type;
    return std::nullopt;
  }
  std::uint64_t msg_round = 0;
  std::uint64_t msg_client = 0;
  if (const auto* update = std::get_if<ClientUpdate>(&msg)) {
    msg_round = update->round;
    msg_client = update->client_id;
    if (update->update.size() != expected_params_) {
      ++stats_.bad_update_size;
      return std::nullopt;
    }
  } else if (const auto* vote = std::get_if<Vote>(&msg)) {
    msg_round = vote->round;
    msg_client = vote->client_id;
  } else {
    ++stats_.unexpected_type;  // clients never send other types
    return std::nullopt;
  }
  if (msg_round != round) {
    ++stats_.wrong_round;
    return std::nullopt;
  }
  if (msg_client != client_id) {
    ++stats_.wrong_client;
    return std::nullopt;
  }
  return msg;
}

RoundServer::UpdateCollection RoundServer::collect_updates(
    std::uint64_t round, const std::vector<std::size_t>& expected) {
  std::vector<std::optional<ParamVec>> slots(expected.size());
  std::vector<bool> pending(expected.size(), true);
  std::size_t remaining = expected.size();
  const auto deadline =
      std::chrono::steady_clock::now() + config_.update_timeout;

  while (remaining > 0) {
    bool progressed = false;
    {
      // Hold the server lock only for the poll sweep; it is released
      // before helping the pool below, so an assisted task (a nested
      // experiment driving its own server) can never deadlock on mu_.
      MutexLock lock(mu_);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (!pending[i]) continue;
        // Drain everything queued on this session before marking it
        // answered, so a duplicate sent in the same burst is seen (and
        // rejected) rather than left to poison the next round's phase.
        while (auto msg = poll_admissible(expected[i], round,
                                          MsgType::kClientUpdate)) {
          progressed = true;
          auto& update = std::get<ClientUpdate>(*msg);
          if (slots[i]) {
            ++stats_.duplicates;
            continue;
          }
          slots[i] = std::move(update.update);
        }
        if (slots[i]) {
          pending[i] = false;
          --remaining;
        }
      }
    }
    if (remaining == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (!progressed) assist_or_yield();
  }

  UpdateCollection out;
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (slots[i]) {
      out.updates.push_back(std::move(*slots[i]));
      out.responders.push_back(expected[i]);
    } else {
      out.dropped.push_back(expected[i]);
      ++stats_.timeouts;
    }
  }
  return out;
}

void RoundServer::send_validation(std::uint64_t round,
                                  std::uint64_t candidate_version,
                                  const ParamVec& candidate,
                                  const ModelWindow& window,
                                  const std::vector<std::size_t>& validators) {
  ModelBroadcast candidate_msg;
  candidate_msg.round = round;
  candidate_msg.version = candidate_version;
  candidate_msg.purpose = ModelPurpose::kCandidate;
  candidate_msg.params = candidate;

  MutexLock lock(mu_);
  for (std::size_t id : validators) {
    Session& session = session_for(id);
    HistoryDelta delta;
    delta.round = round;
    for (const auto& entry : window) {
      if (session.synced_version != kNeverSynced &&
          entry->version <= session.synced_version) {
        continue;
      }
      delta.entries.push_back(
          HistoryDelta::Entry{entry->version, entry->params});
    }
    send_frame(id, delta, CommCategory::kHistory);
    if (!window.empty()) {
      session.synced_version = window.back()->version;
    }
    send_frame(id, candidate_msg, CommCategory::kModelDownload);
  }
}

RoundServer::VoteCollection RoundServer::collect_votes(
    std::uint64_t round, const std::vector<std::size_t>& expected) {
  std::vector<std::optional<Vote>> slots(expected.size());
  std::vector<bool> pending(expected.size(), true);
  std::size_t remaining = expected.size();
  const auto deadline =
      std::chrono::steady_clock::now() + config_.vote_timeout;

  while (remaining > 0) {
    bool progressed = false;
    {
      MutexLock lock(mu_);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (!pending[i]) continue;
        while (auto msg =
                   poll_admissible(expected[i], round, MsgType::kVote)) {
          progressed = true;
          if (slots[i]) {
            ++stats_.duplicates;
            continue;
          }
          slots[i] = std::get<Vote>(std::move(*msg));
        }
        if (slots[i]) {
          pending[i] = false;
          --remaining;
        }
      }
    }
    if (remaining == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (!progressed) assist_or_yield();
  }

  VoteCollection out;
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (slots[i]) {
      out.votes.push_back(*slots[i]);
      out.responders.push_back(expected[i]);
    } else {
      out.dropped.push_back(expected[i]);
      ++stats_.timeouts;
    }
  }
  return out;
}

void RoundServer::finish_round(const RoundResult& result,
                               const std::vector<std::size_t>& participants,
                               const std::vector<std::size_t>& validators) {
  MutexLock lock(mu_);
  for (std::size_t id : participants) {
    send_frame(id, result, CommCategory::kControl);
  }
  if (result.committed != 0) {
    // Validators promote the candidate they already hold into their
    // window, so their sync level advances to the committed version.
    for (std::size_t id : validators) {
      session_for(id).synced_version = result.version;
    }
  }
}

ProtocolStats RoundServer::protocol_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::uint64_t RoundServer::wire_bytes() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, session] : sessions_) {
    total += session.channel->bytes_sent() + session.channel->bytes_received();
  }
  return total;
}

}  // namespace baffle

#pragma once
// Versioned wire protocol for the FL round server (DESIGN.md §13).
//
// Every exchange between the server and a (simulated) client is one
// length-prefixed frame:
//
//   u32  payload_len          bytes after this field
//   u16  protocol_version     kProtocolVersionMin ≤ v ≤ kProtocolVersion
//   u8   message_type         MsgType
//   ...  body                 message-specific, see the structs below
//
// Decoding is strict: the frame length must match the buffer, the body
// must consume the payload exactly (trailing bytes are an error), every
// length prefix is overflow-checked (util/serialization), and unknown
// versions or message types are rejected. A malformed frame therefore
// always surfaces as WireError (std::runtime_error) — never as a crash
// or an over-read — which is what the protocol-fuzz stage in
// tools/check.sh locks in under ASan.
//
// Model parameters travel as raw f32 vectors (the architecture is
// session-static scenario configuration); on little-endian hosts they
// decode with a single memcpy into the destination ParamVec.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "fl/update.hpp"
#include "util/serialization.hpp"

namespace baffle {

/// Newest protocol revision this build speaks…
inline constexpr std::uint16_t kProtocolVersion = 1;
/// …and the oldest revision it still accepts. A frame with a version in
/// [min, current] decodes (all revisions so far share one grammar); a
/// newer or older version is a WireError, which is the entire
/// negotiation story: the server answers a rejected frame by closing the
/// session, so a mixed-version fleet degrades to explicit errors rather
/// than silent misparses.
inline constexpr std::uint16_t kProtocolVersionMin = 1;

/// Malformed frame / unknown version / grammar violation.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : std::uint8_t {
  kModelBroadcast = 1,
  kClientUpdate = 2,
  kVote = 3,
  kHistoryDelta = 4,
  kRoundResult = 5,
};

const char* msg_type_name(MsgType type);

/// Why the server is shipping a model this round: the committed global
/// model contributors train on, or the aggregated candidate validators
/// judge (Algorithm 1's VALIDATE input).
enum class ModelPurpose : std::uint8_t { kTraining = 0, kCandidate = 1 };

/// Server → client: one model, flat parameters.
struct ModelBroadcast {
  std::uint64_t round = 0;
  /// Committed version for kTraining; for kCandidate the version the
  /// model will receive if the round commits (server.version() + 1).
  std::uint64_t version = 0;
  ModelPurpose purpose = ModelPurpose::kTraining;
  ParamVec params;
};

/// Client → server: the round's local-training update U = L − G.
struct ClientUpdate {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  ParamVec update;
};

/// Client → server: VALIDATE verdict on the candidate.
struct Vote {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  std::uint8_t vote = 0;       // 1 = poisoned, 0 = clean
  std::uint8_t abstained = 0;  // history too short / no data to judge
  double phi = 0.0;            // candidate LOF (diagnostics)
  double tau = 0.0;            // rejection threshold (diagnostics)
};

/// Server → validating client: the history entries it is missing. A
/// client that validated recently gets only the delta (§VI-D's
/// amortization); a first-time or long-absent validator gets the full
/// ℓ+1 window.
struct HistoryDelta {
  std::uint64_t round = 0;
  struct Entry {
    std::uint64_t version = 0;
    ParamVec params;
  };
  std::vector<Entry> entries;  // oldest first
};

/// Server → round participants: the round's outcome. Validators use it
/// to promote/drop the candidate they judged (commit → the candidate
/// becomes `version`; reject → roll back).
struct RoundResult {
  std::uint64_t round = 0;
  std::uint8_t committed = 0;
  std::uint64_t version = 0;  // committed version; pre-round on reject
  std::uint32_t reject_votes = 0;
  std::uint32_t total_voters = 0;
};

using WireMessage = std::variant<ModelBroadcast, ClientUpdate, Vote,
                                 HistoryDelta, RoundResult>;

using WireBytes = std::vector<std::uint8_t>;

/// Encodes one message as a complete frame (length prefix included),
/// stamped with `version` (defaults to the current protocol revision —
/// the knob exists so tests can forge unsupported versions).
WireBytes encode_frame(const WireMessage& msg,
                       std::uint16_t version = kProtocolVersion);

/// Decodes one complete frame. Throws WireError on malformed input
/// (bad length, unknown version/type, trailing bytes) and
/// std::out_of_range on truncation; both are protocol errors.
WireMessage decode_frame(std::span<const std::uint8_t> frame);

/// Message type of an encoded frame without decoding the body (frame
/// header must be intact; throws like decode_frame otherwise).
MsgType peek_type(std::span<const std::uint8_t> frame);

}  // namespace baffle

#pragma once
// Simulated FL client behind a Channel: the peer the round server talks
// to. One actor persists across rounds and owns everything a real
// client process would — its data shard, its Validator (with the
// cross-round prediction/LOF caches of DESIGN.md §12), and its local
// copy of the accepted-model window, kept in sync through HistoryDelta
// messages (§VI-D: a recently-selected validator receives only the
// models it is missing).
//
// The actor's verdicts are bit-identical to the in-process
// BaffleDefense path: VALIDATE depends only on (candidate, window,
// shard, config), all of which this side reconstructs exactly, and the
// incremental validator is bit-identical to fresh recomputation. That
// equivalence is what lets run_experiment swap the transport in without
// perturbing a single RoundRecord (tests/exp/transport_parity_test).
//
// Handlers are blocking: each receives the message(s) of its phase from
// the channel (the server sends before the actor task is scheduled, so
// in-process runs never actually wait) and replies. A malicious actor
// lies on the wire — it applies its VoteStrategy to the vote it sends,
// which is where vote manipulation happens in a deployment; the server
// never rewrites votes.

#include <optional>

#include "attack/malicious_voter.hpp"
#include "core/validate.hpp"
#include "net/transport.hpp"

namespace baffle {

struct ClientActorConfig {
  std::size_t client_id = 0;
  /// Window retention ℓ+1 is lookback + 1 (mirrors ModelHistory).
  std::size_t lookback = 20;
  /// Adversary-controlled actor: applies `strategy` to outgoing votes.
  bool malicious = false;
  VoteStrategy strategy = VoteStrategy::kHonest;
  /// How long a handler waits for its expected message before giving up
  /// (a deployment's defense against a silent server).
  std::chrono::milliseconds recv_timeout{30'000};
};

class ClientActor {
 public:
  /// `shard` may be empty — the actor then abstains from every vote
  /// (matching BaffleDefense::client_validator returning nullptr).
  /// `provider` outlives the actor and is shared with other actors; its
  /// update_for is thread-safe per the UpdateProvider contract.
  ClientActor(ClientActorConfig config, MlpConfig arch, Dataset shard,
              ValidatorConfig validator_config, UpdateProvider* provider,
              std::shared_ptr<Channel> channel);

  /// Training phase: receives ModelBroadcast(kTraining), trains through
  /// the update provider with the caller-forked `rng`, sends
  /// ClientUpdate. Safe to run concurrently across distinct actors.
  void handle_training(Rng rng);

  /// Validation phase: receives HistoryDelta then
  /// ModelBroadcast(kCandidate), merges the delta into the local
  /// window, runs VALIDATE (or abstains without data/history), applies
  /// the malicious strategy if configured, sends Vote, and retains the
  /// candidate pending the round result.
  void handle_validation();

  /// Round epilogue: receives RoundResult. On commit the retained
  /// candidate is promoted into the local window (and the validator's
  /// prediction cache); on reject it is dropped.
  void handle_round_result();

  std::size_t id() const { return config_.client_id; }
  bool has_validator() const { return validator_.has_value(); }
  /// Local copy of the accepted-model window, oldest first (tests).
  const std::vector<GlobalModel>& window() const { return window_; }

 private:
  /// Receives one frame and decodes it, insisting on `expected` type.
  WireMessage recv_expect(MsgType expected);
  void merge_history(HistoryDelta delta);
  void trim_window();

  ClientActorConfig config_;
  UpdateProvider* provider_;
  std::shared_ptr<Channel> channel_;
  Mlp model_;  // scratch: decoded broadcasts materialize here
  TrainWorkspace train_ws_;
  std::optional<Validator> validator_;  // nullopt: empty shard
  std::vector<GlobalModel> window_;     // oldest first, ≤ lookback+1

  /// Candidate judged this round, awaiting the server's verdict.
  struct PendingCandidate {
    std::uint64_t round = 0;
    ParamVec params;
  };
  std::optional<PendingCandidate> pending_;
};

}  // namespace baffle

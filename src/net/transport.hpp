#pragma once
// Message transport between the round server and its clients.
//
// A Channel is one endpoint of a bidirectional, ordered, reliable frame
// stream; a Transport mints connected channel pairs. The round server
// and the simulated client actors only ever talk through this interface,
// so the in-process queue transport used by the simulation and a real
// socket transport are interchangeable (the latter ships as an explicit
// stub in this build — constructing it works, connecting reports
// "not available" instead of pretending).
//
// Channels count the raw frame bytes that crossed them in each
// direction; the communication-accounting layer (fl/comm) reconciles its
// totals against these counters, which is what makes §VI-D's numbers
// measured rather than estimated.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "net/wire.hpp"

namespace baffle {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Enqueues one complete frame. Throws std::runtime_error if the peer
  /// closed the channel.
  virtual void send(WireBytes frame) = 0;

  /// Dequeues the next pending frame, if any. Never blocks.
  virtual std::optional<WireBytes> try_recv() = 0;

  /// Blocks until a frame arrives or `timeout` elapses.
  virtual std::optional<WireBytes> recv_for(
      std::chrono::milliseconds timeout) = 0;

  virtual void close() = 0;
  virtual bool closed() const = 0;

  /// Raw frame bytes sent from / delivered to this endpoint.
  virtual std::uint64_t bytes_sent() const = 0;
  virtual std::uint64_t bytes_received() const = 0;
};

/// A connected channel pair: the server holds one end, the client the
/// other. Frames sent on either end arrive, in order, at the peer.
struct DuplexChannel {
  std::shared_ptr<Channel> server;
  std::shared_ptr<Channel> client;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual DuplexChannel connect() = 0;
  virtual const char* name() const = 0;
};

/// Mutex+deque transport for simulated clients in the server's process.
/// Thread-safe: actors run as thread-pool tasks while the server polls.
class InProcTransport final : public Transport {
 public:
  DuplexChannel connect() override;
  const char* name() const override { return "inproc"; }
};

/// TCP transport placeholder keeping the interface honest: everything a
/// deployment needs beyond frame exchange (framing over a byte stream,
/// accept loop, reconnect) lands behind this type without touching the
/// round server. connect() throws std::runtime_error("SocketTransport:
/// …") until a build provides it.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(std::string address);
  DuplexChannel connect() override;
  const char* name() const override { return "socket"; }
  const std::string& address() const { return address_; }

 private:
  std::string address_;
};

}  // namespace baffle

#pragma once
// Shared flat-vector primitives, dispatched to the scalar or SIMD
// kernel arm at runtime (see tensor/simd.hpp for the dispatch rules).
//
// These are the loops that used to be re-implemented ad hoc across the
// SGD step, secure-aggregation masking, the top-k compression codec and
// every robust-aggregation baseline. The reductions (dot/norm/distance
// family) accumulate in double regardless of arm; the scalar arm
// reproduces the pre-SIMD arithmetic exactly, the vector arm differs
// only by reassociation/FMA rounding.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace baffle {

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// y = beta * y + alpha * x  (the SGD momentum update with beta =
/// momentum, alpha = 1).
void scale_add(std::span<float> y, float beta, std::span<const float> x,
               float alpha);

/// out = alpha * x
void scale_into(std::span<float> out, float alpha, std::span<const float> x);

/// out = |x| elementwise.
void abs_into(std::span<float> out, std::span<const float> x);

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> x);
float l2_distance(std::span<const float> a, std::span<const float> b);
/// ||a - b||^2 without the sqrt-then-square round trip (Krum's scores).
float squared_l2_distance(std::span<const float> a, std::span<const float> b);
float cosine_similarity(std::span<const float> a, std::span<const float> b);

/// x = max(x, 0) elementwise; NaN passes through.
void relu_forward(std::span<float> x);
/// grad zeroed where the activated output is <= 0.
void relu_backward(std::span<const float> activated, std::span<float> grad);

/// acc += x elementwise in Z_2^64 (secure-aggregation mask sums).
void add_u64(std::span<std::uint64_t> acc, std::span<const std::uint64_t> x);

double sum(std::span<const double> xs);
/// Sum of (x - center)^2 — the stddev inner loop.
double sum_sq_diff(std::span<const double> xs, double center);

/// Fused row-softmax + mean cross-entropy + gradient. On entry
/// `probs_grad` holds the logits; on exit it holds dL/dlogits for the
/// mean loss, which is returned. Labels must be pre-validated by the
/// caller (nn/loss.cpp keeps the error messages).
double softmax_xent_rows(Matrix& probs_grad, std::span<const int> labels);

/// out = a - b (allocating).
std::vector<float> subtract(std::span<const float> a, std::span<const float> b);

/// out = a + b (allocating).
std::vector<float> add(std::span<const float> a, std::span<const float> b);

/// out = (1 - t) * a + t * b (allocating).
std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t);

}  // namespace baffle

#include "tensor/matrix.hpp"

#include <stdexcept>

namespace baffle {

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::vector<float> data) {
  if (data.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: size mismatch");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  // Copy into the aligned buffer: the vector's own allocation carries
  // no alignment guarantee, so it cannot be adopted by move.
  m.data_.assign(data.begin(), data.end());
  return m;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Matrix::reshape: size mismatch");
  }
  rows_ = rows;
  cols_ = cols;
}

}  // namespace baffle

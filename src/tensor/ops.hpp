#pragma once
// Numeric kernels on Matrix and flat float spans.
//
// GEMM comes in the three transpose configurations backprop needs:
//   forward:   Y  = X  W      -> gemm_ab
//   dW:        dW = Xᵀ dY     -> gemm_atb
//   dX:        dX = dY Wᵀ     -> gemm_abt
// The kernels are cache-blocked over the inner dimension and split over
// row blocks on the global thread pool once the multiply is large
// enough to amortize the dispatch; small multiplies (the per-batch
// training shapes) run inline on the caller. NaN/Inf inputs propagate
// to the output — a diverged model must not be masked by a sparsity
// shortcut. The A operand is taken as a view so callers can feed
// row-chunks of a cached feature matrix without copying.

#include <span>

#include "tensor/matrix.hpp"

namespace baffle {

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
void gemm_ab(ConstMatrixView a, const Matrix& b, Matrix& out);

/// out = aᵀ * b. Shapes: (k,m) x (k,n) -> (m,n).
void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bᵀ. Shapes: (m,k) x (n,k) -> (m,n).
void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds bias (length = m.cols()) to every row of m.
void add_row_bias(Matrix& m, std::span<const float> bias);

/// Column-wise sum of m into out (length = m.cols()).
void col_sum(const Matrix& m, std::span<float> out);

/// In-place row-wise softmax (numerically stabilized).
void softmax_rows(Matrix& m);

/// Index of the max entry of each row.
std::vector<std::size_t> argmax_rows(const Matrix& m);

/// Index of the max entry of each row, written into out (out.size() ==
/// m.rows()). Allocation-free variant for the chunked inference path.
void argmax_rows_into(const Matrix& m, std::span<std::size_t> out);

// --- flat-vector (parameter-space) helpers ----------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> x);
float l2_distance(std::span<const float> a, std::span<const float> b);
float cosine_similarity(std::span<const float> a, std::span<const float> b);

/// out = a - b (allocating).
std::vector<float> subtract(std::span<const float> a, std::span<const float> b);

/// out = a + b (allocating).
std::vector<float> add(std::span<const float> a, std::span<const float> b);

/// out = (1 - t) * a + t * b (allocating).
std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t);

}  // namespace baffle

#pragma once
// Numeric kernels on Matrix and flat float spans.
//
// GEMM comes in the three transpose configurations backprop needs:
//   forward:   Y  = X  W      -> gemm_ab
//   dW:        dW = Xᵀ dY     -> gemm_atb
//   dX:        dX = dY Wᵀ     -> gemm_abt
// Each entry point dispatches between two kernel arms (see
// tensor/simd.hpp): the scalar arm runs the cache-blocked row kernels
// on the operands in place, the SIMD arm first packs B into
// 64-byte-aligned column panels (thread_local scratch, reused across
// calls) and runs FMA register-tile microkernels over them. Either way
// the multiply is split over row blocks on the global thread pool once
// it is large enough to amortize the dispatch; small multiplies (the
// per-batch training shapes) run inline on the caller. NaN/Inf inputs
// propagate to the output — a diverged model must not be masked by a
// sparsity shortcut. The A operand is taken as a view so callers can
// feed row-chunks of a cached feature matrix without copying.
//
// The flat-vector primitives (dot/axpy/norms/...) live in
// tensor/primitives.hpp, included here so existing callers keep
// compiling unchanged.

#include <cstdint>
#include <span>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"
#include "tensor/primitives.hpp"

namespace baffle {

/// B operand packed into contiguous 16-column panels for the SIMD GEMM
/// microkernels (layout described in tensor/kernels.hpp). Carries the
/// owner's parameter version so a cached pack can be validated against
/// the weights it was built from. Copying yields an empty pack — model
/// clones repack on first use rather than paying the copy.
class PackedB {
 public:
  PackedB() = default;
  PackedB(const PackedB&) {}
  PackedB& operator=(const PackedB&) {
    clear();
    return *this;
  }
  PackedB(PackedB&&) = default;
  PackedB& operator=(PackedB&&) = default;

  bool empty() const { return data_.empty(); }
  std::size_t k() const { return k_; }
  std::size_t n() const { return n_; }
  const float* data() const { return data_.data(); }
  std::uint64_t version() const { return version_; }

  /// True when this pack was built from B of shape (k, n) at parameter
  /// version `version` (0 never matches: it marks "never packed").
  bool valid_for(std::size_t k, std::size_t n, std::uint64_t version) const {
    return version != 0 && version_ == version && k_ == k && n_ == n &&
           !data_.empty();
  }

  void clear() {
    data_.clear();
    k_ = n_ = 0;
    version_ = 0;
  }

 private:
  friend void pack_b_panels(ConstMatrixView b, PackedB& out,
                            std::uint64_t version);
  friend void pack_bt_panels(const Matrix& b, PackedB& out);

  AlignedFloatVec data_;
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::uint64_t version_ = 0;
};

/// True when the active kernel arm wants packed-B GEMM (the SIMD arm).
/// Dense uses this to decide whether maintaining its weight pack is
/// worth anything.
bool gemm_uses_packed();

/// Packs B (k x n, natural layout) into panels; tag with `version` so
/// valid_for() can match it later (pass 0 for throwaway packs).
void pack_b_panels(ConstMatrixView b, PackedB& out, std::uint64_t version);

/// Packs Bᵀ for gemm_abt: b is (n, k) and the panels hold its columns.
void pack_bt_panels(const Matrix& b, PackedB& out);

/// out = a * bp where bp packs B (k,n). Shapes: (m,k) x (k,n) -> (m,n).
void gemm_ab_packed(ConstMatrixView a, const PackedB& bp, Matrix& out);

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
void gemm_ab(ConstMatrixView a, const Matrix& b, Matrix& out);

/// out = aᵀ * b. Shapes: (k,m) x (k,n) -> (m,n).
void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bᵀ. Shapes: (m,k) x (n,k) -> (m,n).
void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds bias (length = m.cols()) to every row of m.
void add_row_bias(Matrix& m, std::span<const float> bias);

/// Column-wise sum of m into out (length = m.cols()).
void col_sum(const Matrix& m, std::span<float> out);

/// In-place row-wise softmax (numerically stabilized).
void softmax_rows(Matrix& m);

/// Index of the max entry of each row.
std::vector<std::size_t> argmax_rows(const Matrix& m);

/// Index of the max entry of each row, written into out (out.size() ==
/// m.rows()). Allocation-free variant for the chunked inference path.
void argmax_rows_into(const Matrix& m, std::span<std::size_t> out);

}  // namespace baffle

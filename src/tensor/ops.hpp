#pragma once
// Numeric kernels on Matrix and flat float spans.
//
// GEMM comes in the three transpose configurations backprop needs:
//   forward:   Y  = X  W      -> gemm_ab
//   dW:        dW = Xᵀ dY     -> gemm_atb
//   dX:        dX = dY Wᵀ     -> gemm_abt
// Kernels are written cache-friendly (k-inner accumulation over rows)
// which is plenty for the model sizes used in the simulation.

#include <span>

#include "tensor/matrix.hpp"

namespace baffle {

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
void gemm_ab(const Matrix& a, const Matrix& b, Matrix& out);

/// out = aᵀ * b. Shapes: (k,m) x (k,n) -> (m,n).
void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bᵀ. Shapes: (m,k) x (n,k) -> (m,n).
void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds bias (length = m.cols()) to every row of m.
void add_row_bias(Matrix& m, std::span<const float> bias);

/// Column-wise sum of m into out (length = m.cols()).
void col_sum(const Matrix& m, std::span<float> out);

/// In-place row-wise softmax (numerically stabilized).
void softmax_rows(Matrix& m);

/// Index of the max entry of each row.
std::vector<std::size_t> argmax_rows(const Matrix& m);

// --- flat-vector (parameter-space) helpers ----------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> x);
float l2_distance(std::span<const float> a, std::span<const float> b);
float cosine_similarity(std::span<const float> a, std::span<const float> b);

/// out = a - b (allocating).
std::vector<float> subtract(std::span<const float> a, std::span<const float> b);

/// out = a + b (allocating).
std::vector<float> add(std::span<const float> a, std::span<const float> b);

/// out = (1 - t) * a + t * b (allocating).
std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t);

}  // namespace baffle

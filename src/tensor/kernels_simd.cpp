// Vector kernel arm: packed-panel GEMM microkernels and 8-wide
// primitives written against tensor/simd.hpp. This translation unit is
// the only one compiled with -mavx2 -mfma -ffp-contract=fast (see
// src/CMakeLists.txt), which is why the kernels live behind the
// function-pointer table instead of in a header: nothing here may be
// inlined into code that must run on non-AVX2 CPUs.
//
// Numeric contract: the dot/norm/distance family keeps the scalar
// arm's double-precision accumulation (via 4-wide double lanes), so the
// two arms differ only by reassociation and FMA rounding — within the
// parity-test tolerance — while relu/abs/max and the u64 adds are
// bit-exact.

#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"
#include "util/contracts.hpp"

#if BAFFLE_SIMD_VEC_EXT && defined(BAFFLE_SIMD_TARGET_AVX2) && \
    defined(__x86_64__)

#include <algorithm>
#include <cmath>

namespace baffle::kernels {
namespace {

using simd::f32x8;
using simd::f64x4;
using simd::hsum4;
using simd::i32x8;
using simd::kFloatLanes;
using simd::loada8;
using simd::loadu4d;
using simd::loadu4u;
using simd::loadu8;
using simd::splat8;
using simd::storeu4u;
using simd::storeu8;
using simd::u64x4;
using simd::vabs8;
using simd::vmax8;
using simd::vrelu8;
using simd::widen_hi;
using simd::widen_lo;

/// One MR x 16 register tile: MR rows of C against one packed B panel.
/// MR <= 6 keeps 2*MR accumulators + 2 panel loads + 1 broadcast within
/// the 16 ymm registers. A is addressed through the stride pair so the
/// same tile serves gemm_ab (a_p_stride=1) and gemm_atb (a_row_stride=1).
template <int MR>
BAFFLE_ALWAYS_INLINE void micro_tile(const PackedGemmArgs& g,
                                     const float* panel, std::size_t i0,
                                     std::size_t j0, std::size_t cols) {
  f32x8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = f32x8{};
    acc1[r] = f32x8{};
  }
  const float* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const f32x8 b0 = loada8(panel + p * kPanelCols);
    const f32x8 b1 = loada8(panel + p * kPanelCols + kFloatLanes);
    const float* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      const f32x8 av = splat8(ap[r * g.a_row_stride]);
      acc0[r] += av * b0;  // contracts to FMA under -ffp-contract=fast
      acc1[r] += av * b1;
    }
  }
  if (cols == kPanelCols) {
    for (int r = 0; r < MR; ++r) {
      float* out = g.c + (i0 + r) * g.ldc + j0;
      storeu8(out, acc0[r]);
      storeu8(out + kFloatLanes, acc1[r]);
    }
  } else {
    // Tail panel: spill the registers to an aligned staging row and
    // copy only the live columns, so we never write past row end.
    alignas(32) float tmp[kPanelCols];
    for (int r = 0; r < MR; ++r) {
      *reinterpret_cast<f32x8*>(tmp) = acc0[r];
      *reinterpret_cast<f32x8*>(tmp + kFloatLanes) = acc1[r];
      float* out = g.c + (i0 + r) * g.ldc + j0;
      for (std::size_t c = 0; c < cols; ++c) out[c] = tmp[c];
    }
  }
}

void gemm_packed_rows(const PackedGemmArgs& g, std::size_t r0,
                      std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  BAFFLE_DCHECK(
      reinterpret_cast<std::uintptr_t>(g.bp) % simd::kAlignment == 0,
      "packed panels must be cache-line aligned");
  const std::size_t panels = (g.n + kPanelCols - 1) / kPanelCols;
  // Panel-outer: one k x 16 panel (16 KiB at k=256) stays L1-resident
  // while every row tile in [r0, r1) streams over it.
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const float* panel = g.bp + jp * g.k * kPanelCols;
    const std::size_t j0 = jp * kPanelCols;
    const std::size_t cols = std::min(kPanelCols, g.n - j0);
    std::size_t i = r0;
    for (; i + 6 <= r1; i += 6) micro_tile<6>(g, panel, i, j0, cols);
    switch (r1 - i) {
      case 5: micro_tile<5>(g, panel, i, j0, cols); break;
      case 4: micro_tile<4>(g, panel, i, j0, cols); break;
      case 3: micro_tile<3>(g, panel, i, j0, cols); break;
      case 2: micro_tile<2>(g, panel, i, j0, cols); break;
      case 1: micro_tile<1>(g, panel, i, j0, cols); break;
      default: break;
    }
  }
}

// The double-widening reductions are unrolled 2x (16 floats, four
// independent f64x4 chains per iteration): with only two chains the
// loop is bound by FMA latency, not throughput.

double dot(const float* a, const float* b, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{};
  std::size_t i = 0;
  for (; i + 2 * kFloatLanes <= n; i += 2 * kFloatLanes) {
    const f32x8 a0 = loadu8(a + i);
    const f32x8 b0 = loadu8(b + i);
    const f32x8 a1 = loadu8(a + i + kFloatLanes);
    const f32x8 b1 = loadu8(b + i + kFloatLanes);
    lo0 += widen_lo(a0) * widen_lo(b0);
    hi0 += widen_hi(a0) * widen_hi(b0);
    lo1 += widen_lo(a1) * widen_lo(b1);
    hi1 += widen_hi(a1) * widen_hi(b1);
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    lo0 += widen_lo(av) * widen_lo(bv);
    hi0 += widen_hi(av) * widen_hi(bv);
  }
  double acc = hsum4((lo0 + lo1) + (hi0 + hi1));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double squared_l2(const float* x, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{};
  std::size_t i = 0;
  for (; i + 2 * kFloatLanes <= n; i += 2 * kFloatLanes) {
    const f32x8 v0 = loadu8(x + i);
    const f32x8 v1 = loadu8(x + i + kFloatLanes);
    const f64x4 dl0 = widen_lo(v0), dh0 = widen_hi(v0);
    const f64x4 dl1 = widen_lo(v1), dh1 = widen_hi(v1);
    lo0 += dl0 * dl0;
    hi0 += dh0 * dh0;
    lo1 += dl1 * dl1;
    hi1 += dh1 * dh1;
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 v = loadu8(x + i);
    const f64x4 dl = widen_lo(v), dh = widen_hi(v);
    lo0 += dl * dl;
    hi0 += dh * dh;
  }
  double acc = hsum4((lo0 + lo1) + (hi0 + hi1));
  for (; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return acc;
}

double squared_l2_distance(const float* a, const float* b, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{};
  std::size_t i = 0;
  for (; i + 2 * kFloatLanes <= n; i += 2 * kFloatLanes) {
    const f32x8 a0 = loadu8(a + i);
    const f32x8 b0 = loadu8(b + i);
    const f32x8 a1 = loadu8(a + i + kFloatLanes);
    const f32x8 b1 = loadu8(b + i + kFloatLanes);
    const f64x4 dl0 = widen_lo(a0) - widen_lo(b0);
    const f64x4 dh0 = widen_hi(a0) - widen_hi(b0);
    const f64x4 dl1 = widen_lo(a1) - widen_lo(b1);
    const f64x4 dh1 = widen_hi(a1) - widen_hi(b1);
    lo0 += dl0 * dl0;
    hi0 += dh0 * dh0;
    lo1 += dl1 * dl1;
    hi1 += dh1 * dh1;
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    const f64x4 dl = widen_lo(av) - widen_lo(bv);
    const f64x4 dh = widen_hi(av) - widen_hi(bv);
    lo0 += dl * dl;
    hi0 += dh * dh;
  }
  double acc = hsum4((lo0 + lo1) + (hi0 + hi1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

float cosine_similarity(const float* a, const float* b, std::size_t n) {
  // One fused pass: the scalar arm makes three (norm, norm, dot).
  // Reductions and the norm/zero handling match it structurally, so the
  // results agree to reassociation rounding.
  f64x4 d_lo{}, d_hi{}, na_lo{}, na_hi{}, nb_lo{}, nb_hi{};
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    const f64x4 al = widen_lo(av), ah = widen_hi(av);
    const f64x4 bl = widen_lo(bv), bh = widen_hi(bv);
    d_lo += al * bl;
    d_hi += ah * bh;
    na_lo += al * al;
    na_hi += ah * ah;
    nb_lo += bl * bl;
    nb_hi += bh * bh;
  }
  double d = hsum4(d_lo + d_hi);
  double na2 = hsum4(na_lo + na_hi);
  double nb2 = hsum4(nb_lo + nb_hi);
  for (; i < n; ++i) {
    const double av = a[i], bv = b[i];
    d += av * bv;
    na2 += av * av;
    nb2 += bv * bv;
  }
  const float na = static_cast<float>(std::sqrt(na2));
  const float nb = static_cast<float>(std::sqrt(nb2));
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return static_cast<float>(d) / (na * nb);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(y + i, loadu8(y + i) + av * loadu8(x + i));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(x + i, loadu8(x + i) * av);
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void scale_add(float* y, float beta, const float* x, float alpha,
               std::size_t n) {
  const f32x8 bv = splat8(beta);
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(y + i, bv * loadu8(y + i) + av * loadu8(x + i));
  }
  for (; i < n; ++i) y[i] = beta * y[i] + alpha * x[i];
}

void scale_into(float* out, float alpha, const float* x, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(out + i, av * loadu8(x + i));
  }
  for (; i < n; ++i) out[i] = alpha * x[i];
}

void abs_into(float* out, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(out + i, vabs8(loadu8(x + i)));
  }
  for (; i < n; ++i) out[i] = std::fabs(x[i]);
}

float max_value(const float* x, std::size_t n) {
  std::size_t i = 0;
  float best = x[0];
  if (n >= kFloatLanes) {
    f32x8 acc = loadu8(x);
    for (i = kFloatLanes; i + kFloatLanes <= n; i += kFloatLanes) {
      acc = vmax8(acc, loadu8(x + i));
    }
    best = acc[0];
    for (std::size_t l = 1; l < kFloatLanes; ++l) {
      if (acc[l] > best) best = acc[l];
    }
  }
  for (; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

void relu_forward(float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(x + i, vrelu8(loadu8(x + i)));
  }
  for (; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

void relu_backward(const float* activated, float* grad, std::size_t n) {
  const f32x8 zero{};
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    // keep where NOT (activated <= 0): a NaN activation keeps its
    // gradient, exactly like the scalar `if (a <= 0) g = 0`.
    const i32x8 keep = ~(loadu8(activated + i) <= zero);
    const f32x8 g = loadu8(grad + i);
    storeu8(grad + i, __builtin_bit_cast(
                          f32x8, __builtin_bit_cast(i32x8, g) & keep));
  }
  for (; i < n; ++i) {
    if (activated[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void add_u64(std::uint64_t* acc, const std::uint64_t* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    storeu4u(acc + i, loadu4u(acc + i) + loadu4u(x + i));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

double sum_d(const double* x, std::size_t n) {
  f64x4 acc{};
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    acc += loadu4d(x + i);
  }
  double s = hsum4(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

double sum_sq_diff_d(const double* x, double center, std::size_t n) {
  const f64x4 cv = {center, center, center, center};
  f64x4 acc{};
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    const f64x4 d = loadu4d(x + i) - cv;
    acc += d * d;
  }
  double s = hsum4(acc);
  for (; i < n; ++i) s += (x[i] - center) * (x[i] - center);
  return s;
}

KernelTable make_table() {
  KernelTable t = scalar_table();
  t.name = "avx2";
  t.prefer_packed = true;
  // The natural-layout row kernels stay on the scalar implementations:
  // with prefer_packed set, ops.cpp routes every gemm through the
  // packed path, so those entries only serve as a safety net.
  // scalar-inherited: gemm_ab_rows, gemm_atb_rows, gemm_abt_rows
  t.gemm_packed_rows = gemm_packed_rows;
  t.dot = dot;
  t.squared_l2 = squared_l2;
  t.squared_l2_distance = squared_l2_distance;
  t.cosine_similarity = cosine_similarity;
  t.axpy = axpy;
  t.scale = scale;
  t.scale_add = scale_add;
  t.scale_into = scale_into;
  t.abs_into = abs_into;
  t.max_value = max_value;
  t.relu_forward = relu_forward;
  t.relu_backward = relu_backward;
  t.add_u64 = add_u64;
  t.sum_d = sum_d;
  t.sum_sq_diff_d = sum_sq_diff_d;
  return t;
}

}  // namespace

const KernelTable* vector_table() {
  // CPUID check once; the answer cannot change while the process runs.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const KernelTable table = make_table();
  return &table;
}

}  // namespace baffle::kernels

#else  // vector arm not compiled in

namespace baffle::kernels {
const KernelTable* vector_table() { return nullptr; }
}  // namespace baffle::kernels

#endif

// Vector kernel arm: packed-panel GEMM microkernels and 8-wide
// primitives written against tensor/simd.hpp. This translation unit is
// the only one compiled with -mavx2 -mfma -ffp-contract=fast (see
// src/CMakeLists.txt), which is why the kernels live behind the
// function-pointer table instead of in a header: nothing here may be
// inlined into code that must run on non-AVX2 CPUs.
//
// Numeric contract: the dot/norm/distance family keeps the scalar
// arm's double-precision accumulation (via 4-wide double lanes), so the
// two arms differ only by reassociation and FMA rounding — within the
// parity-test tolerance — while relu/abs/max and the u64 adds are
// bit-exact.

#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"
#include "util/contracts.hpp"

#if BAFFLE_SIMD_VEC_EXT && defined(BAFFLE_SIMD_TARGET_AVX2) && \
    defined(__x86_64__)

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(BAFFLE_HAVE_AVX512F_TARGET)
#include <immintrin.h>  // zmm fp32 layer kernel (vector-ext types elsewhere)
#endif

namespace baffle::kernels {
namespace {

using simd::f32x8;
using simd::f64x4;
using simd::hsum4;
using simd::i32x8;
using simd::kFloatLanes;
using simd::loada8;
using simd::loadu4d;
using simd::loadu4u;
using simd::loadu8;
using simd::splat8;
using simd::storeu4u;
using simd::storeu8;
using simd::u64x4;
using simd::vabs8;
using simd::vmax8;
using simd::vrelu8;
using simd::widen_hi;
using simd::widen_lo;

/// One MR x 16 register tile: MR rows of C against one packed B panel.
/// MR <= 6 keeps 2*MR accumulators + 2 panel loads + 1 broadcast within
/// the 16 ymm registers. A is addressed through the stride pair so the
/// same tile serves gemm_ab (a_p_stride=1) and gemm_atb (a_row_stride=1).
template <int MR>
BAFFLE_ALWAYS_INLINE void micro_tile(const PackedGemmArgs& g,
                                     const float* panel, std::size_t i0,
                                     std::size_t j0, std::size_t cols) {
  f32x8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = f32x8{};
    acc1[r] = f32x8{};
  }
  const float* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const f32x8 b0 = loada8(panel + p * kPanelCols);
    const f32x8 b1 = loada8(panel + p * kPanelCols + kFloatLanes);
    const float* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      const f32x8 av = splat8(ap[r * g.a_row_stride]);
      acc0[r] += av * b0;  // contracts to FMA under -ffp-contract=fast
      acc1[r] += av * b1;
    }
  }
  if (cols == kPanelCols) {
    for (int r = 0; r < MR; ++r) {
      float* out = g.c + (i0 + r) * g.ldc + j0;
      storeu8(out, acc0[r]);
      storeu8(out + kFloatLanes, acc1[r]);
    }
  } else {
    // Tail panel: spill the registers to an aligned staging row and
    // copy only the live columns, so we never write past row end.
    alignas(32) float tmp[kPanelCols];
    for (int r = 0; r < MR; ++r) {
      *reinterpret_cast<f32x8*>(tmp) = acc0[r];
      *reinterpret_cast<f32x8*>(tmp + kFloatLanes) = acc1[r];
      float* out = g.c + (i0 + r) * g.ldc + j0;
      for (std::size_t c = 0; c < cols; ++c) out[c] = tmp[c];
    }
  }
}

void gemm_packed_rows(const PackedGemmArgs& g, std::size_t r0,
                      std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  BAFFLE_DCHECK(
      reinterpret_cast<std::uintptr_t>(g.bp) % simd::kAlignment == 0,
      "packed panels must be cache-line aligned");
  const std::size_t panels = (g.n + kPanelCols - 1) / kPanelCols;
  // Panel-outer: one k x 16 panel (16 KiB at k=256) stays L1-resident
  // while every row tile in [r0, r1) streams over it.
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const float* panel = g.bp + jp * g.k * kPanelCols;
    const std::size_t j0 = jp * kPanelCols;
    const std::size_t cols = std::min(kPanelCols, g.n - j0);
    std::size_t i = r0;
    for (; i + 6 <= r1; i += 6) micro_tile<6>(g, panel, i, j0, cols);
    switch (r1 - i) {
      case 5: micro_tile<5>(g, panel, i, j0, cols); break;
      case 4: micro_tile<4>(g, panel, i, j0, cols); break;
      case 3: micro_tile<3>(g, panel, i, j0, cols); break;
      case 2: micro_tile<2>(g, panel, i, j0, cols); break;
      case 1: micro_tile<1>(g, panel, i, j0, cols); break;
      default: break;
    }
  }
}

// The double-widening reductions are unrolled 4x (32 floats, eight
// independent f64x4 chains per iteration): the loop is bound by FMA
// latency (~4-5 cycles on 2 ports), so it takes 8+ in-flight chains to
// reach multiply-add throughput. Two chains measured 1.28x/1.58x over
// scalar for dot/distance; eight chains roughly double that.

double dot(const float* a, const float* b, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{}, lo2{}, hi2{}, lo3{}, hi3{};
  std::size_t i = 0;
  for (; i + 4 * kFloatLanes <= n; i += 4 * kFloatLanes) {
    const f32x8 a0 = loadu8(a + i);
    const f32x8 b0 = loadu8(b + i);
    const f32x8 a1 = loadu8(a + i + kFloatLanes);
    const f32x8 b1 = loadu8(b + i + kFloatLanes);
    const f32x8 a2 = loadu8(a + i + 2 * kFloatLanes);
    const f32x8 b2 = loadu8(b + i + 2 * kFloatLanes);
    const f32x8 a3 = loadu8(a + i + 3 * kFloatLanes);
    const f32x8 b3 = loadu8(b + i + 3 * kFloatLanes);
    lo0 += widen_lo(a0) * widen_lo(b0);
    hi0 += widen_hi(a0) * widen_hi(b0);
    lo1 += widen_lo(a1) * widen_lo(b1);
    hi1 += widen_hi(a1) * widen_hi(b1);
    lo2 += widen_lo(a2) * widen_lo(b2);
    hi2 += widen_hi(a2) * widen_hi(b2);
    lo3 += widen_lo(a3) * widen_lo(b3);
    hi3 += widen_hi(a3) * widen_hi(b3);
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    lo0 += widen_lo(av) * widen_lo(bv);
    hi0 += widen_hi(av) * widen_hi(bv);
  }
  double acc =
      hsum4(((lo0 + lo1) + (lo2 + lo3)) + ((hi0 + hi1) + (hi2 + hi3)));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double squared_l2(const float* x, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{}, lo2{}, hi2{}, lo3{}, hi3{};
  std::size_t i = 0;
  for (; i + 4 * kFloatLanes <= n; i += 4 * kFloatLanes) {
    const f32x8 v0 = loadu8(x + i);
    const f32x8 v1 = loadu8(x + i + kFloatLanes);
    const f32x8 v2 = loadu8(x + i + 2 * kFloatLanes);
    const f32x8 v3 = loadu8(x + i + 3 * kFloatLanes);
    const f64x4 dl0 = widen_lo(v0), dh0 = widen_hi(v0);
    const f64x4 dl1 = widen_lo(v1), dh1 = widen_hi(v1);
    const f64x4 dl2 = widen_lo(v2), dh2 = widen_hi(v2);
    const f64x4 dl3 = widen_lo(v3), dh3 = widen_hi(v3);
    lo0 += dl0 * dl0;
    hi0 += dh0 * dh0;
    lo1 += dl1 * dl1;
    hi1 += dh1 * dh1;
    lo2 += dl2 * dl2;
    hi2 += dh2 * dh2;
    lo3 += dl3 * dl3;
    hi3 += dh3 * dh3;
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 v = loadu8(x + i);
    const f64x4 dl = widen_lo(v), dh = widen_hi(v);
    lo0 += dl * dl;
    hi0 += dh * dh;
  }
  double acc =
      hsum4(((lo0 + lo1) + (lo2 + lo3)) + ((hi0 + hi1) + (hi2 + hi3)));
  for (; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return acc;
}

double squared_l2_distance(const float* a, const float* b, std::size_t n) {
  f64x4 lo0{}, hi0{}, lo1{}, hi1{}, lo2{}, hi2{}, lo3{}, hi3{};
  std::size_t i = 0;
  for (; i + 4 * kFloatLanes <= n; i += 4 * kFloatLanes) {
    const f32x8 a0 = loadu8(a + i);
    const f32x8 b0 = loadu8(b + i);
    const f32x8 a1 = loadu8(a + i + kFloatLanes);
    const f32x8 b1 = loadu8(b + i + kFloatLanes);
    const f32x8 a2 = loadu8(a + i + 2 * kFloatLanes);
    const f32x8 b2 = loadu8(b + i + 2 * kFloatLanes);
    const f32x8 a3 = loadu8(a + i + 3 * kFloatLanes);
    const f32x8 b3 = loadu8(b + i + 3 * kFloatLanes);
    const f64x4 dl0 = widen_lo(a0) - widen_lo(b0);
    const f64x4 dh0 = widen_hi(a0) - widen_hi(b0);
    const f64x4 dl1 = widen_lo(a1) - widen_lo(b1);
    const f64x4 dh1 = widen_hi(a1) - widen_hi(b1);
    const f64x4 dl2 = widen_lo(a2) - widen_lo(b2);
    const f64x4 dh2 = widen_hi(a2) - widen_hi(b2);
    const f64x4 dl3 = widen_lo(a3) - widen_lo(b3);
    const f64x4 dh3 = widen_hi(a3) - widen_hi(b3);
    lo0 += dl0 * dl0;
    hi0 += dh0 * dh0;
    lo1 += dl1 * dl1;
    hi1 += dh1 * dh1;
    lo2 += dl2 * dl2;
    hi2 += dh2 * dh2;
    lo3 += dl3 * dl3;
    hi3 += dh3 * dh3;
  }
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    const f64x4 dl = widen_lo(av) - widen_lo(bv);
    const f64x4 dh = widen_hi(av) - widen_hi(bv);
    lo0 += dl * dl;
    hi0 += dh * dh;
  }
  double acc =
      hsum4(((lo0 + lo1) + (lo2 + lo3)) + ((hi0 + hi1) + (hi2 + hi3)));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

float cosine_similarity(const float* a, const float* b, std::size_t n) {
  // One fused pass: the scalar arm makes three (norm, norm, dot).
  // Reductions and the norm/zero handling match it structurally, so the
  // results agree to reassociation rounding.
  f64x4 d_lo{}, d_hi{}, na_lo{}, na_hi{}, nb_lo{}, nb_hi{};
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    const f32x8 av = loadu8(a + i);
    const f32x8 bv = loadu8(b + i);
    const f64x4 al = widen_lo(av), ah = widen_hi(av);
    const f64x4 bl = widen_lo(bv), bh = widen_hi(bv);
    d_lo += al * bl;
    d_hi += ah * bh;
    na_lo += al * al;
    na_hi += ah * ah;
    nb_lo += bl * bl;
    nb_hi += bh * bh;
  }
  double d = hsum4(d_lo + d_hi);
  double na2 = hsum4(na_lo + na_hi);
  double nb2 = hsum4(nb_lo + nb_hi);
  for (; i < n; ++i) {
    const double av = a[i], bv = b[i];
    d += av * bv;
    na2 += av * av;
    nb2 += bv * bv;
  }
  const float na = static_cast<float>(std::sqrt(na2));
  const float nb = static_cast<float>(std::sqrt(nb2));
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return static_cast<float>(d) / (na * nb);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(y + i, loadu8(y + i) + av * loadu8(x + i));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(x + i, loadu8(x + i) * av);
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void scale_add(float* y, float beta, const float* x, float alpha,
               std::size_t n) {
  const f32x8 bv = splat8(beta);
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(y + i, bv * loadu8(y + i) + av * loadu8(x + i));
  }
  for (; i < n; ++i) y[i] = beta * y[i] + alpha * x[i];
}

void scale_into(float* out, float alpha, const float* x, std::size_t n) {
  const f32x8 av = splat8(alpha);
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(out + i, av * loadu8(x + i));
  }
  for (; i < n; ++i) out[i] = alpha * x[i];
}

void abs_into(float* out, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(out + i, vabs8(loadu8(x + i)));
  }
  for (; i < n; ++i) out[i] = std::fabs(x[i]);
}

float max_value(const float* x, std::size_t n) {
  std::size_t i = 0;
  float best = x[0];
  if (n >= kFloatLanes) {
    f32x8 acc = loadu8(x);
    for (i = kFloatLanes; i + kFloatLanes <= n; i += kFloatLanes) {
      acc = vmax8(acc, loadu8(x + i));
    }
    best = acc[0];
    for (std::size_t l = 1; l < kFloatLanes; ++l) {
      if (acc[l] > best) best = acc[l];
    }
  }
  for (; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

void relu_forward(float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    storeu8(x + i, vrelu8(loadu8(x + i)));
  }
  for (; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

void relu_backward(const float* activated, float* grad, std::size_t n) {
  const f32x8 zero{};
  std::size_t i = 0;
  for (; i + kFloatLanes <= n; i += kFloatLanes) {
    // keep where NOT (activated <= 0): a NaN activation keeps its
    // gradient, exactly like the scalar `if (a <= 0) g = 0`.
    const i32x8 keep = ~(loadu8(activated + i) <= zero);
    const f32x8 g = loadu8(grad + i);
    storeu8(grad + i, __builtin_bit_cast(
                          f32x8, __builtin_bit_cast(i32x8, g) & keep));
  }
  for (; i < n; ++i) {
    if (activated[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void add_u64(std::uint64_t* acc, const std::uint64_t* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    storeu4u(acc + i, loadu4u(acc + i) + loadu4u(x + i));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

double sum_d(const double* x, std::size_t n) {
  f64x4 acc{};
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    acc += loadu4d(x + i);
  }
  double s = hsum4(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

double sum_sq_diff_d(const double* x, double center, std::size_t n) {
  const f64x4 cv = {center, center, center, center};
  f64x4 acc{};
  std::size_t i = 0;
  for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
    const f64x4 d = loadu4d(x + i) - cv;
    acc += d * d;
  }
  double s = hsum4(acc);
  for (; i < n; ++i) s += (x[i] - center) * (x[i] - center);
  return s;
}

// ---- Batched multi-model evaluation (DESIGN.md §14) ----

BAFFLE_ALWAYS_INLINE f32x8 vmin8(f32x8 a, f32x8 b) {
  const i32x8 m = a < b;  // all-ones where a < b
  return __builtin_bit_cast(f32x8, (__builtin_bit_cast(i32x8, a) & m) |
                                       (__builtin_bit_cast(i32x8, b) & ~m));
}

/// Fused-layer variant of micro_tile: same accumulation (per-p FMA into
/// zero-initialized registers, so bit-identical to gemm_packed_rows),
/// but with the bias add and optional ReLU applied while the tile is
/// still in registers, and the output written panel-packed. The bias
/// add matches the sequential path's add_row_bias (axpy alpha=1: a
/// single correctly-rounded add), and vrelu8 matches relu_forward.
template <int MR>
BAFFLE_ALWAYS_INLINE void eval_tile_f32(const EvalLayerArgs& g,
                                        std::size_t i0) {
  f32x8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = f32x8{};
    acc1[r] = f32x8{};
  }
  const float* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const f32x8 b0 = loada8(g.in + p * kPanelCols);
    const f32x8 b1 = loada8(g.in + p * kPanelCols + kFloatLanes);
    const float* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      const f32x8 av = splat8(ap[r * g.a_row_stride]);
      acc0[r] += av * b0;  // contracts to FMA under -ffp-contract=fast
      acc1[r] += av * b1;
    }
  }
  for (int r = 0; r < MR; ++r) {
    const f32x8 bv = splat8(g.bias[i0 + r]);
    f32x8 v0 = acc0[r] + bv;
    f32x8 v1 = acc1[r] + bv;
    if (g.relu) {
      v0 = vrelu8(v0);
      v1 = vrelu8(v1);
    }
    float* out = g.out + (i0 + r) * kPanelCols;
    storeu8(out, v0);
    storeu8(out + kFloatLanes, v1);
  }
}

void eval_layer_f32(const EvalLayerArgs& g) {
  std::size_t i = 0;
  for (; i + 6 <= g.n_out; i += 6) eval_tile_f32<6>(g, i);
  switch (g.n_out - i) {
    case 5: eval_tile_f32<5>(g, i); break;
    case 4: eval_tile_f32<4>(g, i); break;
    case 3: eval_tile_f32<3>(g, i); break;
    case 2: eval_tile_f32<2>(g, i); break;
    case 1: eval_tile_f32<1>(g, i); break;
    default: break;
  }
}

#if defined(BAFFLE_HAVE_AVX512F_TARGET)

// AVX-512 fused-layer variant: one zmm covers the full 16-column panel
// row, so each output row needs ONE accumulator and ONE panel load per
// k step instead of two — half the issue slots of the ymm tile.
// BIT-IDENTICAL by construction: every output element is an
// independent lane computing fma(a_p, in[p][c], acc) in the same p
// order from a zero accumulator, one post-sum bias add, and vrelu's
// exact `x < 0 ? 0 : x` semantics (the NLT mask keeps NaN/+0/-0 lanes
// like the scalar code) — lane width cannot change any per-element
// result, so runtime selection only changes speed.

#define BAFFLE_TARGET_AVX512F __attribute__((target("avx512f")))

template <int MR>
BAFFLE_TARGET_AVX512F BAFFLE_ALWAYS_INLINE void eval_tile_f32_zmm(
    const EvalLayerArgs& g, std::size_t i0) {
  __m512 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm512_setzero_ps();
  const float* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const __m512 b = _mm512_loadu_ps(g.in + p * kPanelCols);
    const float* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      acc[r] =
          _mm512_fmadd_ps(_mm512_set1_ps(ap[r * g.a_row_stride]), b, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    __m512 v = _mm512_add_ps(acc[r], _mm512_set1_ps(g.bias[i0 + r]));
    if (g.relu) {
      const __mmask16 keep =
          _mm512_cmp_ps_mask(v, _mm512_setzero_ps(), _CMP_NLT_US);
      v = _mm512_maskz_mov_ps(keep, v);
    }
    _mm512_storeu_ps(g.out + (i0 + r) * kPanelCols, v);
  }
}

BAFFLE_TARGET_AVX512F void eval_layer_f32_zmm(const EvalLayerArgs& g) {
  std::size_t i = 0;
  for (; i + 8 <= g.n_out; i += 8) eval_tile_f32_zmm<8>(g, i);
  for (; i + 4 <= g.n_out; i += 4) eval_tile_f32_zmm<4>(g, i);
  switch (g.n_out - i) {
    case 3: eval_tile_f32_zmm<3>(g, i); break;
    case 2: eval_tile_f32_zmm<2>(g, i); break;
    case 1: eval_tile_f32_zmm<1>(g, i); break;
    default: break;
  }
}

#endif  // BAFFLE_HAVE_AVX512F_TARGET

/// Column argmax + top-2 margin over a packed panel, 16 lanes at once.
/// The strict > mask keeps the first maximum (matching the scalar arm
/// and argmax_rows_into), and `second = max(second, min(x, best))` is
/// the branch-free form of the scalar top-2 update: every lane op is an
/// exact copy/compare, so preds and margins are bit-identical across
/// arms for finite logits.
void argmax_margin_panel(const ArgmaxMarginArgs& g) {
  f32x8 best0 = loada8(g.in);
  f32x8 best1 = loada8(g.in + kFloatLanes);
  const f32x8 ninf = splat8(-std::numeric_limits<float>::infinity());
  f32x8 sec0 = ninf, sec1 = ninf;
  i32x8 idx0{}, idx1{};
  for (std::size_t i = 1; i < g.n_rows; ++i) {
    const f32x8 x0 = loada8(g.in + i * kPanelCols);
    const f32x8 x1 = loada8(g.in + i * kPanelCols + kFloatLanes);
    const i32x8 m0 = x0 > best0;
    const i32x8 m1 = x1 > best1;
    sec0 = vmax8(sec0, vmin8(x0, best0));
    sec1 = vmax8(sec1, vmin8(x1, best1));
    best0 = __builtin_bit_cast(
        f32x8, (__builtin_bit_cast(i32x8, x0) & m0) |
                   (__builtin_bit_cast(i32x8, best0) & ~m0));
    best1 = __builtin_bit_cast(
        f32x8, (__builtin_bit_cast(i32x8, x1) & m1) |
                   (__builtin_bit_cast(i32x8, best1) & ~m1));
    const i32x8 iv = i32x8{} + static_cast<std::int32_t>(i);
    idx0 = (iv & m0) | (idx0 & ~m0);
    idx1 = (iv & m1) | (idx1 & ~m1);
  }
  alignas(32) float bests[kPanelCols];
  alignas(32) float seconds[kPanelCols];
  alignas(32) std::int32_t idxs[kPanelCols];
  *reinterpret_cast<f32x8*>(bests) = best0;
  *reinterpret_cast<f32x8*>(bests + kFloatLanes) = best1;
  *reinterpret_cast<f32x8*>(seconds) = sec0;
  *reinterpret_cast<f32x8*>(seconds + kFloatLanes) = sec1;
  *reinterpret_cast<i32x8*>(idxs) = idx0;
  *reinterpret_cast<i32x8*>(idxs + kFloatLanes) = idx1;
  for (std::size_t c = 0; c < g.cols; ++c) {
    g.preds[c] = static_cast<std::size_t>(idxs[c]);
    if (g.margins != nullptr) g.margins[c] = bests[c] - seconds[c];
  }
}

KernelTable make_table() {
  KernelTable t = scalar_table();
  t.name = "avx2";
  t.prefer_packed = true;
  // The natural-layout row kernels stay on the scalar implementations:
  // with prefer_packed set, ops.cpp routes every gemm through the
  // packed path, so those entries only serve as a safety net.
  // scalar-inherited: gemm_ab_rows, gemm_atb_rows, gemm_abt_rows
  t.gemm_packed_rows = gemm_packed_rows;
  t.dot = dot;
  t.squared_l2 = squared_l2;
  t.squared_l2_distance = squared_l2_distance;
  t.cosine_similarity = cosine_similarity;
  t.axpy = axpy;
  t.scale = scale;
  t.scale_add = scale_add;
  t.scale_into = scale_into;
  t.abs_into = abs_into;
  t.max_value = max_value;
  t.relu_forward = relu_forward;
  t.relu_backward = relu_backward;
  t.add_u64 = add_u64;
  t.sum_d = sum_d;
  t.sum_sq_diff_d = sum_sq_diff_d;
  t.eval_layer_f32 = eval_layer_f32;
#if defined(BAFFLE_HAVE_AVX512F_TARGET)
  if (__builtin_cpu_supports("avx512f")) {
    t.eval_layer_f32 = eval_layer_f32_zmm;
  }
#endif
  t.argmax_margin_panel = argmax_margin_panel;
  // eval_layer_bf16 / eval_layer_u8 / quantize_panel_u8 / convert_*
  // overrides live in kernels_bf16.cpp (intrinsics TU).
  detail::install_reduced_precision_avx2(t);
  return t;
}

}  // namespace

const KernelTable* vector_table() {
  // CPUID check once; the answer cannot change while the process runs.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const KernelTable table = make_table();
  return &table;
}

}  // namespace baffle::kernels

#else  // vector arm not compiled in

namespace baffle::kernels {
const KernelTable* vector_table() { return nullptr; }
}  // namespace baffle::kernels

#endif

// Reduced-precision evaluation arm: bf16-storage and u8xi8 integer
// fused-layer kernels plus the conversion/quantization primitives they
// need (DESIGN.md §14). Like kernels_simd.cpp this TU is compiled with
// AVX2+FMA codegen and is the only place these intrinsics may live; the
// entries are spliced into the vector KernelTable via
// detail::install_reduced_precision_avx2 so non-AVX2 builds and CPUs
// keep the scalar implementations.
//
// Unlike kernels_simd.cpp this TU is built with -ffp-contract=off: the
// u8 dequantization epilogue must round exactly like the scalar arm's
// mul-then-add (the integer accumulators are already bit-identical
// across arms), so no implicit FMA contraction is allowed. Where FMA is
// wanted (the bf16 accumulation loop) it is written explicitly with
// _mm256_fmadd_ps.

#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"  // for BAFFLE_ALWAYS_INLINE only

#if defined(BAFFLE_SIMD_TARGET_AVX2) && defined(__AVX2__) && \
    defined(__x86_64__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace baffle::kernels {
namespace {

// ---- bf16 scalar helpers (bit-identical to the scalar arm's) ----

std::uint16_t f32_to_bf16_rne_1(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

float bf16_to_f32_1(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

/// Widen 8 bf16 (lower 128 bits of a 16-element load) to 8 fp32.
BAFFLE_ALWAYS_INLINE __m256 widen_bf16_8(__m128i h) {
  return _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
}

void convert_bf16_f32(const std::uint16_t* in, float* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    _mm256_storeu_ps(out + i, widen_bf16_8(h));
  }
  for (; i < n; ++i) out[i] = bf16_to_f32_1(in[i]);
}

void convert_f32_bf16(const float* in, std::uint16_t* out, std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i exp_inf = _mm256_set1_epi32(0x7f800000);
  const __m256i rne_bias = _mm256_set1_epi32(0x7fff);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i quiet = _mm256_set1_epi32(0x0040);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i lo, hi;
    {
      const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(in + i));
      // (u & 0x7fffffff) is non-negative as i32, so the signed compare
      // implements the unsigned NaN test exactly.
      const __m256i nan_mask =
          _mm256_cmpgt_epi32(_mm256_and_si256(u, abs_mask), exp_inf);
      const __m256i rne = _mm256_srli_epi32(
          _mm256_add_epi32(
              u, _mm256_add_epi32(
                     rne_bias,
                     _mm256_and_si256(_mm256_srli_epi32(u, 16), one))),
          16);
      const __m256i nan16 =
          _mm256_or_si256(_mm256_srli_epi32(u, 16), quiet);
      lo = _mm256_blendv_epi8(rne, nan16, nan_mask);
    }
    {
      const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(in + i + 8));
      const __m256i nan_mask =
          _mm256_cmpgt_epi32(_mm256_and_si256(u, abs_mask), exp_inf);
      const __m256i rne = _mm256_srli_epi32(
          _mm256_add_epi32(
              u, _mm256_add_epi32(
                     rne_bias,
                     _mm256_and_si256(_mm256_srli_epi32(u, 16), one))),
          16);
      const __m256i nan16 =
          _mm256_or_si256(_mm256_srli_epi32(u, 16), quiet);
      hi = _mm256_blendv_epi8(rne, nan16, nan_mask);
    }
    // Both inputs are <= 0xffff per lane, so the unsigned-saturating
    // pack is exact; packus works per 128-bit lane, fix with a permute.
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(lo, hi), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  for (; i < n; ++i) out[i] = f32_to_bf16_rne_1(in[i]);
}

// ---- bf16 fused layer ----

/// MR x 16 tile over a bf16 panel: widen 16 bf16 inputs per inner step,
/// broadcast-widen the bf16 weight, accumulate in fp32 with explicit
/// FMA. MR=4 leaves headroom for the widening temporaries.
template <int MR>
BAFFLE_ALWAYS_INLINE void eval_tile_bf16(const EvalLayerBf16Args& g,
                                         std::size_t i0) {
  __m256 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  const std::uint16_t* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(g.in + p * kPanelCols));
    const __m256 b0 = widen_bf16_8(_mm256_castsi256_si128(h));
    const __m256 b1 = widen_bf16_8(_mm256_extracti128_si256(h, 1));
    const std::uint16_t* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      const __m256 av =
          _mm256_set1_ps(bf16_to_f32_1(ap[r * g.a_row_stride]));
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    const __m256 bv = _mm256_set1_ps(g.bias[i0 + r]);
    __m256 v0 = _mm256_add_ps(acc0[r], bv);
    __m256 v1 = _mm256_add_ps(acc1[r], bv);
    if (g.relu) {
      v0 = _mm256_max_ps(v0, zero);
      v1 = _mm256_max_ps(v1, zero);
    }
    float* out = g.out + (i0 + r) * kPanelCols;
    _mm256_storeu_ps(out, v0);
    _mm256_storeu_ps(out + 8, v1);
  }
}

/// MR x 16 tile over an already-widened fp32 copy of the panel: same
/// operand values as eval_tile_bf16 (bf16->f32 widening is exact), but
/// the per-tile re-widening of the shared input panel is gone, so the
/// inner loop matches the fp32 kernel's shape — broadcast-widen one
/// weight, two FMAs — and MR=6 fits (12 accumulators + 3 temporaries).
template <int MR>
BAFFLE_ALWAYS_INLINE void eval_tile_bf16_wide(const EvalLayerBf16Args& g,
                                              const float* in_f32,
                                              std::size_t i0) {
  __m256 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  const std::uint16_t* a0 = g.a + i0 * g.a_row_stride;
  for (std::size_t p = 0; p < g.k; ++p) {
    const float* bp = in_f32 + p * kPanelCols;
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    const std::uint16_t* ap = a0 + p * g.a_p_stride;
    for (int r = 0; r < MR; ++r) {
      const __m256 av =
          _mm256_set1_ps(bf16_to_f32_1(ap[r * g.a_row_stride]));
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    const __m256 bv = _mm256_set1_ps(g.bias[i0 + r]);
    __m256 v0 = _mm256_add_ps(acc0[r], bv);
    __m256 v1 = _mm256_add_ps(acc1[r], bv);
    if (g.relu) {
      v0 = _mm256_max_ps(v0, zero);
      v1 = _mm256_max_ps(v1, zero);
    }
    float* out = g.out + (i0 + r) * kPanelCols;
    _mm256_storeu_ps(out, v0);
    _mm256_storeu_ps(out + 8, v1);
  }
}

/// Input depths covered by the widen-once fast path (stack buffer of
/// kBf16WidenCap x 16 fp32 = 16 KiB). Larger layers fall back to the
/// per-tile widening tiles.
constexpr std::size_t kBf16WidenCap = 256;

void eval_layer_bf16(const EvalLayerBf16Args& g) {
  if (g.k <= kBf16WidenCap && g.n_out >= 6) {
    // Widen the shared 16-column input panel once; every output tile
    // then streams fp32 operands exactly like the fp32 kernel.
    alignas(32) float in_f32[kBf16WidenCap * kPanelCols];
    for (std::size_t p = 0; p < g.k * kPanelCols; p += 8) {
      const __m128i h = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(g.in + p));
      _mm256_store_ps(in_f32 + p, widen_bf16_8(h));
    }
    std::size_t i = 0;
    for (; i + 6 <= g.n_out; i += 6) eval_tile_bf16_wide<6>(g, in_f32, i);
    switch (g.n_out - i) {
      case 5: eval_tile_bf16_wide<5>(g, in_f32, i); break;
      case 4: eval_tile_bf16_wide<4>(g, in_f32, i); break;
      case 3: eval_tile_bf16_wide<3>(g, in_f32, i); break;
      case 2: eval_tile_bf16_wide<2>(g, in_f32, i); break;
      case 1: eval_tile_bf16_wide<1>(g, in_f32, i); break;
      default: break;
    }
    return;
  }
  std::size_t i = 0;
  for (; i + 4 <= g.n_out; i += 4) eval_tile_bf16<4>(g, i);
  switch (g.n_out - i) {
    case 3: eval_tile_bf16<3>(g, i); break;
    case 2: eval_tile_bf16<2>(g, i); break;
    case 1: eval_tile_bf16<1>(g, i); break;
    default: break;
  }
}

// ---- u8 quantization + u8xi8 fused layer ----

void quantize_panel_u8(const QuantizePanelU8Args& g) {
  // Per-column min/max over the fp32 panel, 16 columns at once.
  __m256 mn0 = _mm256_loadu_ps(g.in);
  __m256 mn1 = _mm256_loadu_ps(g.in + 8);
  __m256 mx0 = mn0, mx1 = mn1;
  for (std::size_t p = 1; p < g.k; ++p) {
    const __m256 v0 = _mm256_loadu_ps(g.in + p * kPanelCols);
    const __m256 v1 = _mm256_loadu_ps(g.in + p * kPanelCols + 8);
    mn0 = _mm256_min_ps(mn0, v0);
    mn1 = _mm256_min_ps(mn1, v1);
    mx0 = _mm256_max_ps(mx0, v0);
    mx1 = _mm256_max_ps(mx1, v1);
  }
  // s = span / 127 when span > 0 else 1; inv = 1 / s. Division in both
  // arms (never a reciprocal) keeps the quantized panels bit-identical.
  const __m256 k127 = _mm256_set1_ps(127.0f);
  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 span0 = _mm256_sub_ps(mx0, mn0);
  const __m256 span1 = _mm256_sub_ps(mx1, mn1);
  const __m256 live0 = _mm256_cmp_ps(span0, zero, _CMP_GT_OQ);
  const __m256 live1 = _mm256_cmp_ps(span1, zero, _CMP_GT_OQ);
  const __m256 s0 =
      _mm256_blendv_ps(ones, _mm256_div_ps(span0, k127), live0);
  const __m256 s1 =
      _mm256_blendv_ps(ones, _mm256_div_ps(span1, k127), live1);
  const __m256 inv0 = _mm256_div_ps(ones, s0);
  const __m256 inv1 = _mm256_div_ps(ones, s1);
  _mm256_storeu_ps(g.scale, s0);
  _mm256_storeu_ps(g.scale + 8, s1);
  _mm256_storeu_ps(g.offset, mn0);
  _mm256_storeu_ps(g.offset + 8, mn1);

  const __m256i q_lo = _mm256_setzero_si256();
  const __m256i q_hi = _mm256_set1_epi32(127);
  // Interleave each 4-row block into per-column byte groups: after
  // packs/packus lane0 holds [r0c0..3 r1c0..3 r2c0..3 r3c0..3]; this
  // shuffle regroups it to [c0:r0r1r2r3][c1:...][c2][c3].
  const __m256i regroup = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,  //
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const std::size_t full_blocks = g.k / 4;
  for (std::size_t p4 = 0; p4 < full_blocks; ++p4) {
    __m256i row_lo[4], row_hi[4];
    for (std::size_t t = 0; t < 4; ++t) {
      const float* src = g.in + (p4 * 4 + t) * kPanelCols;
      const __m256 v0 = _mm256_loadu_ps(src);
      const __m256 v1 = _mm256_loadu_ps(src + 8);
      // cvtps2dq rounds to nearest-even like the scalar nearbyint.
      __m256i qa = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_sub_ps(v0, mn0), inv0));
      __m256i qb = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_sub_ps(v1, mn1), inv1));
      qa = _mm256_min_epi32(_mm256_max_epi32(qa, q_lo), q_hi);
      qb = _mm256_min_epi32(_mm256_max_epi32(qb, q_lo), q_hi);
      row_lo[t] = qa;
      row_hi[t] = qb;
    }
    // Values are in [0,127]: both saturating packs are exact.
    const __m256i pk_lo = _mm256_shuffle_epi8(
        _mm256_packus_epi16(_mm256_packs_epi32(row_lo[0], row_lo[1]),
                            _mm256_packs_epi32(row_lo[2], row_lo[3])),
        regroup);
    const __m256i pk_hi = _mm256_shuffle_epi8(
        _mm256_packus_epi16(_mm256_packs_epi32(row_hi[0], row_hi[1]),
                            _mm256_packs_epi32(row_hi[2], row_hi[3])),
        regroup);
    std::uint8_t* dst = g.out + p4 * 4 * kPanelCols;
    // pk_lo lane0 = cols 0-3, lane1 = cols 4-7; pk_hi = cols 8-15.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), pk_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 32), pk_hi);
  }
  if (full_blocks * 4 < g.k_pad) {
    // Tail block (< 4 live rows) + zero padding: scalar, same formula
    // and rounding (nearbyint == cvtps2dq under default rounding).
    alignas(32) float s_arr[kPanelCols], mn_arr[kPanelCols];
    _mm256_store_ps(s_arr, inv0);
    _mm256_store_ps(s_arr + 8, inv1);
    _mm256_store_ps(mn_arr, mn0);
    _mm256_store_ps(mn_arr + 8, mn1);
    for (std::size_t p = full_blocks * 4; p < g.k_pad; ++p) {
      for (std::size_t c = 0; c < kPanelCols; ++c) {
        std::int32_t q = 0;
        if (p < g.k) {
          const float v = g.in[p * kPanelCols + c];
          q = static_cast<std::int32_t>(
              std::nearbyint((v - mn_arr[c]) * s_arr[c]));
          q = q < 0 ? 0 : (q > 127 ? 127 : q);
        }
        g.out[(p / 4) * 4 * kPanelCols + c * 4 + (p % 4)] =
            static_cast<std::uint8_t>(q);
      }
    }
  }
}

/// Dequantization epilogue of one tile row. Exactly the scalar
/// epilogue's operation sequence (this TU is compiled with
/// -ffp-contract=off, so mul/add never fuse):
///   v = float(acc) * (ws * in_scale[c]) + (in_offset[c] * wsr + b)
BAFFLE_ALWAYS_INLINE void dequant_store_row(
    const EvalLayerU8Args& g, std::size_t i, __m256i acc0, __m256i acc1,
    const __m256 off_lo, const __m256 off_hi, const __m256 isc_lo,
    const __m256 isc_hi) {
  const float ws = g.w_scale[i];
  const float wsr = ws * static_cast<float>(g.w_rowsum[i]);
  const __m256 wsv = _mm256_set1_ps(ws);
  const __m256 wsrv = _mm256_set1_ps(wsr);
  const __m256 bv = _mm256_set1_ps(g.bias[i]);
  const __m256 base_lo = _mm256_add_ps(_mm256_mul_ps(off_lo, wsrv), bv);
  const __m256 base_hi = _mm256_add_ps(_mm256_mul_ps(off_hi, wsrv), bv);
  __m256 v0 = _mm256_add_ps(
      _mm256_mul_ps(_mm256_cvtepi32_ps(acc0), _mm256_mul_ps(wsv, isc_lo)),
      base_lo);
  __m256 v1 = _mm256_add_ps(
      _mm256_mul_ps(_mm256_cvtepi32_ps(acc1), _mm256_mul_ps(wsv, isc_hi)),
      base_hi);
  if (g.relu) {
    const __m256 zero = _mm256_setzero_ps();
    v0 = _mm256_max_ps(v0, zero);
    v1 = _mm256_max_ps(v1, zero);
  }
  float* out = g.out + i * kPanelCols;
  _mm256_storeu_ps(out, v0);
  _mm256_storeu_ps(out + 8, v1);
}

/// MR x 16 integer tile: per 4-row block, 2 panel loads (8 columns
/// each), one 4-byte weight-group broadcast per row, then
/// vpmaddubsw (u8 activations x i8 weights -> i16 pairs, saturation-
/// free because 2*127*127 < 32768) + vpmaddwd(.., 1) -> exact i32.
template <int MR>
BAFFLE_ALWAYS_INLINE void eval_tile_u8(const EvalLayerU8Args& g,
                                       std::size_t i0, const __m256 off_lo,
                                       const __m256 off_hi,
                                       const __m256 isc_lo,
                                       const __m256 isc_hi) {
  __m256i acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_setzero_si256();
    acc1[r] = _mm256_setzero_si256();
  }
  const __m256i ones16 = _mm256_set1_epi16(1);
  for (std::size_t p4 = 0; p4 < g.k_pad / 4; ++p4) {
    const std::uint8_t* blk = g.in + p4 * 4 * kPanelCols;
    const __m256i q_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk));
    const __m256i q_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk + 32));
    for (int r = 0; r < MR; ++r) {
      std::int32_t wgrp;
      std::memcpy(&wgrp, g.wq + (i0 + r) * g.k_pad + p4 * 4,
                  sizeof(wgrp));
      const __m256i wv = _mm256_set1_epi32(wgrp);
      acc0[r] = _mm256_add_epi32(
          acc0[r],
          _mm256_madd_epi16(_mm256_maddubs_epi16(q_lo, wv), ones16));
      acc1[r] = _mm256_add_epi32(
          acc1[r],
          _mm256_madd_epi16(_mm256_maddubs_epi16(q_hi, wv), ones16));
    }
  }
  for (int r = 0; r < MR; ++r) {
    dequant_store_row(g, i0 + r, acc0[r], acc1[r], off_lo, off_hi, isc_lo,
                      isc_hi);
  }
}

void eval_layer_u8(const EvalLayerU8Args& g) {
  const __m256 off_lo = _mm256_loadu_ps(g.in_offset);
  const __m256 off_hi = _mm256_loadu_ps(g.in_offset + 8);
  const __m256 isc_lo = _mm256_loadu_ps(g.in_scale);
  const __m256 isc_hi = _mm256_loadu_ps(g.in_scale + 8);
  std::size_t i = 0;
  for (; i + 4 <= g.n_out; i += 4) {
    eval_tile_u8<4>(g, i, off_lo, off_hi, isc_lo, isc_hi);
  }
  switch (g.n_out - i) {
    case 3: eval_tile_u8<3>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 2: eval_tile_u8<2>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 1: eval_tile_u8<1>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    default: break;
  }
}

#if defined(BAFFLE_HAVE_AVXVNNI_TARGET)

// AVX-VNNI fast path: vpdpbusd fuses the maddubs/maddwd/add chain into
// ONE instruction per 32 MACs. It widens the four u8*i8 pair products
// to i32 before summing into the accumulator (no intermediate i16
// saturation), so in our saturation-free [0,127]x[-127,127] range the
// i32 accumulators are bit-identical to the maddubs chain — the runtime
// selection below can never change results, only speed. These functions
// carry their own target attribute (the TU itself stays plain AVX2+FMA
// so nothing VNNI can leak into the other kernels), and the install
// gate checks __builtin_cpu_supports before wiring them in.

#define BAFFLE_TARGET_AVXVNNI __attribute__((target("avx2,fma,avxvnni")))

template <int MR>
BAFFLE_TARGET_AVXVNNI BAFFLE_ALWAYS_INLINE void eval_tile_u8_vnni(
    const EvalLayerU8Args& g, std::size_t i0, const __m256 off_lo,
    const __m256 off_hi, const __m256 isc_lo, const __m256 isc_hi) {
  __m256i acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_setzero_si256();
    acc1[r] = _mm256_setzero_si256();
  }
  for (std::size_t p4 = 0; p4 < g.k_pad / 4; ++p4) {
    const std::uint8_t* blk = g.in + p4 * 4 * kPanelCols;
    const __m256i q_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk));
    const __m256i q_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(blk + 32));
    for (int r = 0; r < MR; ++r) {
      std::int32_t wgrp;
      std::memcpy(&wgrp, g.wq + (i0 + r) * g.k_pad + p4 * 4,
                  sizeof(wgrp));
      const __m256i wv = _mm256_set1_epi32(wgrp);
      acc0[r] = _mm256_dpbusd_avx_epi32(acc0[r], q_lo, wv);
      acc1[r] = _mm256_dpbusd_avx_epi32(acc1[r], q_hi, wv);
    }
  }
  for (int r = 0; r < MR; ++r) {
    dequant_store_row(g, i0 + r, acc0[r], acc1[r], off_lo, off_hi, isc_lo,
                      isc_hi);
  }
}

BAFFLE_TARGET_AVXVNNI void eval_layer_u8_vnni(const EvalLayerU8Args& g) {
  const __m256 off_lo = _mm256_loadu_ps(g.in_offset);
  const __m256 off_hi = _mm256_loadu_ps(g.in_offset + 8);
  const __m256 isc_lo = _mm256_loadu_ps(g.in_scale);
  const __m256 isc_hi = _mm256_loadu_ps(g.in_scale + 8);
  std::size_t i = 0;
  for (; i + 6 <= g.n_out; i += 6) {
    eval_tile_u8_vnni<6>(g, i, off_lo, off_hi, isc_lo, isc_hi);
  }
  switch (g.n_out - i) {
    case 5: eval_tile_u8_vnni<5>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 4: eval_tile_u8_vnni<4>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 3: eval_tile_u8_vnni<3>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 2: eval_tile_u8_vnni<2>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    case 1: eval_tile_u8_vnni<1>(g, i, off_lo, off_hi, isc_lo, isc_hi); break;
    default: break;
  }
}

#endif  // BAFFLE_HAVE_AVXVNNI_TARGET

#if defined(BAFFLE_HAVE_AVX512VNNI_TARGET)

// GCC's AVX-512 headers implement _mm512_undefined_ps() as a
// self-initialized local, which -Wmaybe-uninitialized flags through
// _mm512_cvtepi32_ps at -O3 -g. Nothing here reads uninitialized data
// (every accumulator is zeroed explicitly), so silence the header
// false positive for this section only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"


// AVX-512 VNNI fast path: a panel's 4-row k-block (4 x kPanelCols u8 =
// 64 bytes) is exactly ONE zmm load, so vpdpbusd covers all 16 columns
// per instruction instead of two 8-column halves — half the shuffle
// and accumulate work of the 256-bit path, and the dequantization
// epilogue writes each 16-float output row as a single register.
// Exactness: i32 accumulation is associative (lane count cannot change
// the sum), and the epilogue applies the identical per-lane operation
// sequence as the 256-bit/scalar arms, so this path is bit-identical
// to both — runtime selection can only change speed, never results.

#define BAFFLE_TARGET_AVX512VNNI \
  __attribute__((target("avx512f,avx512bw,avx512vnni")))

template <int MR>
BAFFLE_TARGET_AVX512VNNI BAFFLE_ALWAYS_INLINE void eval_tile_u8_vnni512(
    const EvalLayerU8Args& g, std::size_t i0, const __m512 off,
    const __m512 isc) {
  __m512i acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm512_setzero_si512();
  for (std::size_t p4 = 0; p4 < g.k_pad / 4; ++p4) {
    const __m512i q = _mm512_loadu_si512(g.in + p4 * 4 * kPanelCols);
    for (int r = 0; r < MR; ++r) {
      std::int32_t wgrp;
      std::memcpy(&wgrp, g.wq + (i0 + r) * g.k_pad + p4 * 4, sizeof(wgrp));
      acc[r] = _mm512_dpbusd_epi32(acc[r], q, _mm512_set1_epi32(wgrp));
    }
  }
  for (int r = 0; r < MR; ++r) {
    const std::size_t i = i0 + r;
    const float ws = g.w_scale[i];
    const float wsr = ws * static_cast<float>(g.w_rowsum[i]);
    const __m512 base = _mm512_add_ps(_mm512_mul_ps(off, _mm512_set1_ps(wsr)),
                                      _mm512_set1_ps(g.bias[i]));
    __m512 v = _mm512_add_ps(
        _mm512_mul_ps(_mm512_cvtepi32_ps(acc[r]),
                      _mm512_mul_ps(_mm512_set1_ps(ws), isc)),
        base);
    if (g.relu) v = _mm512_max_ps(v, _mm512_setzero_ps());
    _mm512_storeu_ps(g.out + i * kPanelCols, v);
  }
}

BAFFLE_TARGET_AVX512VNNI void eval_layer_u8_vnni512(const EvalLayerU8Args& g) {
  const __m512 off = _mm512_loadu_ps(g.in_offset);
  const __m512 isc = _mm512_loadu_ps(g.in_scale);
  std::size_t i = 0;
  for (; i + 8 <= g.n_out; i += 8) eval_tile_u8_vnni512<8>(g, i, off, isc);
  for (; i + 4 <= g.n_out; i += 4) eval_tile_u8_vnni512<4>(g, i, off, isc);
  switch (g.n_out - i) {
    case 3: eval_tile_u8_vnni512<3>(g, i, off, isc); break;
    case 2: eval_tile_u8_vnni512<2>(g, i, off, isc); break;
    case 1: eval_tile_u8_vnni512<1>(g, i, off, isc); break;
    default: break;
  }
}

#pragma GCC diagnostic pop

#endif  // BAFFLE_HAVE_AVX512VNNI_TARGET

}  // namespace

namespace detail {

void install_reduced_precision_avx2(KernelTable& t) {
  t.eval_layer_bf16 = eval_layer_bf16;
#if defined(BAFFLE_HAVE_AVXVNNI_TARGET)
  t.eval_layer_u8 = __builtin_cpu_supports("avxvnni") ? eval_layer_u8_vnni
                                                      : eval_layer_u8;
#else
  t.eval_layer_u8 = eval_layer_u8;
#endif
#if defined(BAFFLE_HAVE_AVX512VNNI_TARGET)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vnni")) {
    t.eval_layer_u8 = eval_layer_u8_vnni512;
  }
#endif
  t.quantize_panel_u8 = quantize_panel_u8;
  t.convert_f32_bf16 = convert_f32_bf16;
  t.convert_bf16_f32 = convert_bf16_f32;
}

}  // namespace detail
}  // namespace baffle::kernels

#else  // reduced-precision vector arm not compiled in

namespace baffle::kernels::detail {
// Leaves the scalar reduced-precision entries in place.
void install_reduced_precision_avx2(KernelTable&) {}
}  // namespace baffle::kernels::detail

#endif

#pragma once
// Internal dispatch table between the scalar and vector kernel arms.
//
// Everything here operates on raw pointers + strides so the same entry
// points can be implemented twice: tensor/kernels_scalar.cpp keeps the
// pre-SIMD loops (and is the ground truth the parity tests compare
// against), tensor/kernels_simd.cpp provides the packed AVX2/FMA
// microkernels and vectorized primitives. tensor/ops.cpp and
// tensor/primitives.cpp do the shape checking, packing and thread-pool
// splitting, then call through active_table().

#include <cstddef>
#include <cstdint>

namespace baffle::kernels {

/// Columns per packed-B panel: two 8-float vectors. Panels are stored
/// contiguously (k rows x 16 floats each, 64-byte aligned, tail panel
/// zero-padded), so one panel row is exactly one cache line.
inline constexpr std::size_t kPanelCols = 16;

/// Row-range GEMM over the operands in their natural layout (the
/// scalar arm's form; also used by the vector arm's fallback-free
/// callers via ops.cpp orchestration).
struct GemmRowArgs {
  const float* a = nullptr;  // A base; meaning of strides depends on kernel
  std::size_t lda = 0;       // row stride of the A matrix as stored
  const float* b = nullptr;  // B base (natural layout)
  std::size_t ldb = 0;       // row stride of B as stored
  float* c = nullptr;        // output base
  std::size_t ldc = 0;       // row stride of C
  std::size_t k = 0;         // inner dimension
  std::size_t n = 0;         // output columns
};

/// Row-range GEMM against a packed-B panel buffer. A is addressed as
/// a[i * a_row_stride + p * a_p_stride] for output row i and inner
/// index p, which expresses both the normal (ab/abt) and transposed
/// (atb) A operand without a separate kernel.
struct PackedGemmArgs {
  const float* a = nullptr;
  std::size_t a_row_stride = 0;
  std::size_t a_p_stride = 0;
  const float* bp = nullptr;  // packed panels, 64-byte aligned
  float* c = nullptr;
  std::size_t ldc = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

// ---- Batched multi-model evaluation kernels (DESIGN.md §14) ----
//
// The validator's forward passes run over the evaluation set packed
// ONCE as Xᵀ panels (pack_bt_panels layout: k rows x kPanelCols sample
// columns, 64-byte aligned, zero-padded tail). Per model and per panel,
// eval_layer_* computes one dense layer transposed — out = Wᵀ·in — with
// the bias add (and optionally ReLU) fused into the register epilogue
// and the output written in the same packed layout, so layers chain
// panel-by-panel without leaving the cache. The reduced-precision arm
// (bf16 storage, u8×i8 integer accumulation) lives in
// tensor/kernels_bf16.cpp and is evaluation-only: training and the
// default validator path stay fp32.

/// Fused transposed layer over one packed fp32 panel. A = Wᵀ is
/// addressed a[i * a_row_stride + p * a_p_stride] like PackedGemmArgs
/// (a_row_stride=1, a_p_stride=n_out reads a row-major W in place).
struct EvalLayerArgs {
  const float* a = nullptr;
  std::size_t a_row_stride = 0;
  std::size_t a_p_stride = 0;
  const float* bias = nullptr;  // n_out entries, one add post-sum
  const float* in = nullptr;    // packed input panel, k x kPanelCols
  float* out = nullptr;         // packed output panel, n_out x kPanelCols
  std::size_t k = 0;
  std::size_t n_out = 0;
  bool relu = false;
};

/// bf16 storage arm: identical computation with both operands stored as
/// bf16 (IEEE round-to-nearest-even truncation); products and sums stay
/// fp32, bias stays fp32.
struct EvalLayerBf16Args {
  const std::uint16_t* a = nullptr;  // bf16 Wᵀ, same stride addressing
  std::size_t a_row_stride = 0;
  std::size_t a_p_stride = 0;
  const float* bias = nullptr;
  const std::uint16_t* in = nullptr;  // packed bf16 panel, k x kPanelCols
  float* out = nullptr;               // fp32 packed output panel
  std::size_t k = 0;
  std::size_t n_out = 0;
  bool relu = false;
};

/// int8 arm: u8 activations (per-column affine x ≈ scale·q + offset,
/// q ∈ [0,127]) against i8 weights (per-output-row scale, q ∈
/// [-127,127]), exact i32 accumulation, fp32 dequantization epilogue
///   y[i,c] = acc·(w_scale[i]·in_scale[c])
///            + in_offset[c]·(w_scale[i]·w_rowsum[i]) + bias[i].
/// The [0,127] activation range keeps every vpmaddubsw pair sum inside
/// i16 (2·127·127 < 32768), so the vector arm is saturation-free and
/// bit-identical to the scalar integer loop.
struct EvalLayerU8Args {
  const std::int8_t* wq = nullptr;  // row-major per output row, k_pad wide
  const float* w_scale = nullptr;   // per output row
  const std::int32_t* w_rowsum = nullptr;  // per output row: Σ_p wq[i][p]
  const float* bias = nullptr;
  const std::uint8_t* in = nullptr;  // packed u8 panel (QuantizePanelU8Args)
  const float* in_scale = nullptr;   // per column, kPanelCols entries
  const float* in_offset = nullptr;  // per column, kPanelCols entries
  float* out = nullptr;              // fp32 packed output panel
  std::size_t k_pad = 0;             // multiple of 4, zero-padded
  std::size_t n_out = 0;
  bool relu = false;
};

/// fp32 panel → u8 panel with a per-column affine map: s = (max-min)/127
/// (1 when the column is constant), offset = min, q = rne((x-min)/s)
/// clamped to [0,127]. The u8 panel interleaves the inner dimension in
/// blocks of 4: byte [p4*4*kPanelCols + c*4 + t] holds column c, inner
/// index 4*p4+t — the layout the vpmaddubsw microkernel consumes
/// directly. Rounding is nearest-even on both arms (std::nearbyint /
/// cvtps2dq), so the quantized panels are bit-identical across arms.
struct QuantizePanelU8Args {
  const float* in = nullptr;    // fp32 panel, k x kPanelCols
  std::uint8_t* out = nullptr;  // u8 panel, (k_pad/4) x kPanelCols x 4
  float* scale = nullptr;       // per column, kPanelCols entries
  float* offset = nullptr;      // per column, kPanelCols entries
  std::size_t k = 0;
  std::size_t k_pad = 0;        // multiple of 4; padding quantizes to 0
};

/// Column argmax over a packed panel with the same first-max tie-break
/// as argmax_rows_into, plus (when `margins` is non-null) the top-2
/// margin per column — the reduced-precision guard re-evaluates columns
/// whose margin falls below threshold through the fp32 path.
struct ArgmaxMarginArgs {
  const float* in = nullptr;     // packed panel, n_rows x kPanelCols
  std::size_t n_rows = 0;        // >= 1
  std::size_t cols = 0;          // live columns <= kPanelCols
  std::size_t* preds = nullptr;  // cols entries
  float* margins = nullptr;      // nullable; cols entries, +inf if n_rows==1
};

struct KernelTable {
  const char* name;
  /// True when gemm_* entry points should pack B and use
  /// gemm_packed_rows (the vector arm); false to use the legacy row
  /// kernels on the natural layout (the scalar arm).
  bool prefer_packed;

  void (*gemm_ab_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_atb_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_abt_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_packed_rows)(const PackedGemmArgs&, std::size_t r0,
                           std::size_t r1);

  // Flat-vector primitives. All length arguments are element counts.
  // The reductions return their raw double accumulator so the public
  // wrappers can round exactly where the pre-SIMD code did (e.g.
  // l2_norm takes sqrt in double, then casts).
  double (*dot)(const float*, const float*, std::size_t);
  double (*squared_l2)(const float*, std::size_t);
  double (*squared_l2_distance)(const float*, const float*, std::size_t);
  float (*cosine_similarity)(const float*, const float*, std::size_t);
  void (*axpy)(float alpha, const float*, float*, std::size_t);
  void (*scale)(float*, float alpha, std::size_t);
  // y = beta * y + alpha * x
  void (*scale_add)(float* y, float beta, const float* x, float alpha,
                    std::size_t);
  // out = alpha * x
  void (*scale_into)(float* out, float alpha, const float* x, std::size_t);
  void (*abs_into)(float* out, const float* x, std::size_t);
  float (*max_value)(const float*, std::size_t);  // n > 0
  void (*relu_forward)(float*, std::size_t);
  void (*relu_backward)(const float* activated, float* grad, std::size_t);
  void (*add_u64)(std::uint64_t* acc, const std::uint64_t*, std::size_t);
  double (*sum_d)(const double*, std::size_t);
  double (*sum_sq_diff_d)(const double*, double center, std::size_t);

  // Batched multi-model evaluation (fused transposed layers, panel
  // argmax) and the reduced-precision evaluation arm. The fp32 entries'
  // vector implementations live in kernels_simd.cpp; the bf16/u8
  // entries' vector implementations live in kernels_bf16.cpp and are
  // installed via detail::install_reduced_precision_avx2.
  void (*eval_layer_f32)(const EvalLayerArgs&);
  void (*eval_layer_bf16)(const EvalLayerBf16Args&);
  void (*eval_layer_u8)(const EvalLayerU8Args&);
  void (*quantize_panel_u8)(const QuantizePanelU8Args&);
  void (*convert_f32_bf16)(const float* in, std::uint16_t* out, std::size_t n);
  void (*convert_bf16_f32)(const std::uint16_t* in, float* out, std::size_t n);
  void (*argmax_margin_panel)(const ArgmaxMarginArgs&);
};

/// Always available; arithmetic identical to the pre-SIMD code.
const KernelTable& scalar_table();
/// AVX2/FMA arm, or nullptr when not compiled in / not supported by
/// the running CPU.
const KernelTable* vector_table();
/// The arm selected by simd::active_isa() (env + CPUID + force_isa).
const KernelTable& active_table();

namespace detail {
/// Overwrites the reduced-precision entries of `t` with the AVX2
/// implementations from kernels_bf16.cpp. Compiles to a no-op stub when
/// that translation unit was built without AVX2 codegen, leaving the
/// scalar entries in place. Called only while vector_table() builds its
/// table — never user code.
void install_reduced_precision_avx2(KernelTable& t);
}  // namespace detail

}  // namespace baffle::kernels

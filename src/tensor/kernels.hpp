#pragma once
// Internal dispatch table between the scalar and vector kernel arms.
//
// Everything here operates on raw pointers + strides so the same entry
// points can be implemented twice: tensor/kernels_scalar.cpp keeps the
// pre-SIMD loops (and is the ground truth the parity tests compare
// against), tensor/kernels_simd.cpp provides the packed AVX2/FMA
// microkernels and vectorized primitives. tensor/ops.cpp and
// tensor/primitives.cpp do the shape checking, packing and thread-pool
// splitting, then call through active_table().

#include <cstddef>
#include <cstdint>

namespace baffle::kernels {

/// Columns per packed-B panel: two 8-float vectors. Panels are stored
/// contiguously (k rows x 16 floats each, 64-byte aligned, tail panel
/// zero-padded), so one panel row is exactly one cache line.
inline constexpr std::size_t kPanelCols = 16;

/// Row-range GEMM over the operands in their natural layout (the
/// scalar arm's form; also used by the vector arm's fallback-free
/// callers via ops.cpp orchestration).
struct GemmRowArgs {
  const float* a = nullptr;  // A base; meaning of strides depends on kernel
  std::size_t lda = 0;       // row stride of the A matrix as stored
  const float* b = nullptr;  // B base (natural layout)
  std::size_t ldb = 0;       // row stride of B as stored
  float* c = nullptr;        // output base
  std::size_t ldc = 0;       // row stride of C
  std::size_t k = 0;         // inner dimension
  std::size_t n = 0;         // output columns
};

/// Row-range GEMM against a packed-B panel buffer. A is addressed as
/// a[i * a_row_stride + p * a_p_stride] for output row i and inner
/// index p, which expresses both the normal (ab/abt) and transposed
/// (atb) A operand without a separate kernel.
struct PackedGemmArgs {
  const float* a = nullptr;
  std::size_t a_row_stride = 0;
  std::size_t a_p_stride = 0;
  const float* bp = nullptr;  // packed panels, 64-byte aligned
  float* c = nullptr;
  std::size_t ldc = 0;
  std::size_t k = 0;
  std::size_t n = 0;
};

struct KernelTable {
  const char* name;
  /// True when gemm_* entry points should pack B and use
  /// gemm_packed_rows (the vector arm); false to use the legacy row
  /// kernels on the natural layout (the scalar arm).
  bool prefer_packed;

  void (*gemm_ab_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_atb_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_abt_rows)(const GemmRowArgs&, std::size_t r0, std::size_t r1);
  void (*gemm_packed_rows)(const PackedGemmArgs&, std::size_t r0,
                           std::size_t r1);

  // Flat-vector primitives. All length arguments are element counts.
  // The reductions return their raw double accumulator so the public
  // wrappers can round exactly where the pre-SIMD code did (e.g.
  // l2_norm takes sqrt in double, then casts).
  double (*dot)(const float*, const float*, std::size_t);
  double (*squared_l2)(const float*, std::size_t);
  double (*squared_l2_distance)(const float*, const float*, std::size_t);
  float (*cosine_similarity)(const float*, const float*, std::size_t);
  void (*axpy)(float alpha, const float*, float*, std::size_t);
  void (*scale)(float*, float alpha, std::size_t);
  // y = beta * y + alpha * x
  void (*scale_add)(float* y, float beta, const float* x, float alpha,
                    std::size_t);
  // out = alpha * x
  void (*scale_into)(float* out, float alpha, const float* x, std::size_t);
  void (*abs_into)(float* out, const float* x, std::size_t);
  float (*max_value)(const float*, std::size_t);  // n > 0
  void (*relu_forward)(float*, std::size_t);
  void (*relu_backward)(const float* activated, float* grad, std::size_t);
  void (*add_u64)(std::uint64_t* acc, const std::uint64_t*, std::size_t);
  double (*sum_d)(const double*, std::size_t);
  double (*sum_sq_diff_d)(const double*, double center, std::size_t);
};

/// Always available; arithmetic identical to the pre-SIMD code.
const KernelTable& scalar_table();
/// AVX2/FMA arm, or nullptr when not compiled in / not supported by
/// the running CPU.
const KernelTable* vector_table();
/// The arm selected by simd::active_isa() (env + CPUID + force_isa).
const KernelTable& active_table();

}  // namespace baffle::kernels

// Runtime ISA dispatch: decides once which kernel arm the process
// uses, with test hooks to pin either arm.

#include "tensor/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/kernels.hpp"

namespace baffle {
namespace simd {
namespace {

bool env_forces_scalar() {
  const char* v = std::getenv("BAFFLE_FORCE_SCALAR");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

const kernels::KernelTable* default_table() {
  if (env_forces_scalar()) return &kernels::scalar_table();
  if (const kernels::KernelTable* vec = kernels::vector_table()) return vec;
  return &kernels::scalar_table();
}

// The selected arm. Pointer swap is atomic so force_isa() from a test
// racing a concurrent kernel call is merely a stale read, not a tear.
std::atomic<const kernels::KernelTable*> g_table{nullptr};

const kernels::KernelTable* table() {
  const kernels::KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = default_table();
    g_table.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

Isa active_isa() {
  return table() == &kernels::scalar_table() ? Isa::kScalar : Isa::kVector;
}

bool isa_available(Isa isa) {
  if (isa == Isa::kScalar) return true;
  return kernels::vector_table() != nullptr;
}

bool force_isa(Isa isa) {
  if (isa == Isa::kScalar) {
    g_table.store(&kernels::scalar_table(), std::memory_order_release);
    return true;
  }
  const kernels::KernelTable* vec = kernels::vector_table();
  if (vec == nullptr) return false;
  g_table.store(vec, std::memory_order_release);
  return true;
}

void reset_isa() {
  g_table.store(default_table(), std::memory_order_release);
}

bool scalar_forced_by_env() { return env_forces_scalar(); }

const char* isa_name(Isa isa) {
  return isa == Isa::kScalar ? "scalar" : "avx2";
}

}  // namespace simd

namespace kernels {

const KernelTable& active_table() { return *simd::table(); }

}  // namespace kernels
}  // namespace baffle

#pragma once
// Cache-line-aligned allocator for SIMD-friendly buffers.
//
// Matrix storage and the packed GEMM panels are allocated through this
// so 256-bit loads never straddle a cache line and the panel kernels
// can use aligned loads outright.

#include <cstddef>
#include <new>
#include <vector>

namespace baffle {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T),
                "AlignedAllocator: alignment below the type's natural one");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Float buffer aligned to a cache line (the alignment simd kernels
/// assume for packed panels; see simd::kAlignment).
using AlignedFloatVec = std::vector<float, AlignedAllocator<float, 64>>;

}  // namespace baffle

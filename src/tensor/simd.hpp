#pragma once
// Fixed-width SIMD vector layer with runtime ISA dispatch.
//
// The numeric kernels come in two arms:
//   - a scalar arm (plain loops, always compiled) that preserves the
//     pre-SIMD arithmetic exactly, and
//   - a vector arm written against the 8-wide float / 4-wide double
//     types below (GCC/Clang vector extensions), compiled with
//     -mavx2 -mfma when the toolchain supports it.
// Which arm runs is decided once per process: the vector arm is used
// when it was compiled in and the CPU reports AVX2+FMA, unless the
// BAFFLE_FORCE_SCALAR environment variable is set (any value other
// than "0"), which pins the scalar arm for testing. Tests and benches
// can also flip arms programmatically via force_isa()/reset_isa().
//
// This header only defines the vector types, a few always-inline lane
// helpers, and the dispatch API; the kernels themselves live in
// tensor/kernels_{scalar,simd}.cpp behind the table in
// tensor/kernels.hpp.

#include <cstddef>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define BAFFLE_SIMD_VEC_EXT 1
#define BAFFLE_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define BAFFLE_SIMD_VEC_EXT 0
#define BAFFLE_ALWAYS_INLINE inline
#endif

namespace baffle::simd {

/// Lanes per float vector (8 x f32 = 256 bits).
inline constexpr std::size_t kFloatLanes = 8;
/// Lanes per double vector (4 x f64 = 256 bits).
inline constexpr std::size_t kDoubleLanes = 4;
/// Alignment of Matrix storage and packed GEMM panels: a full cache
/// line, so an aligned 256-bit load can never straddle one.
inline constexpr std::size_t kAlignment = 64;

// The vector types and lane helpers are only visible to TUs compiled
// with AVX2 codegen (in practice: tensor/kernels_simd.cpp). Elsewhere
// merely returning a 256-bit vector would draw -Wpsabi ABI warnings,
// and no other TU may touch these types anyway — the vector arm is
// reached through the dispatch table alone.
#if BAFFLE_SIMD_VEC_EXT && defined(__AVX2__) && defined(__FMA__)

typedef float f32x8 __attribute__((vector_size(32)));
typedef std::int32_t i32x8 __attribute__((vector_size(32)));
typedef double f64x4 __attribute__((vector_size(32)));
typedef std::uint64_t u64x4 __attribute__((vector_size(32)));

namespace detail {
// Unaligned-access twins: dereferencing a pointer cast to the plain
// vector types asserts 32-byte alignment, which Matrix rows and
// parameter vectors do not guarantee. These carry the element
// alignment instead, so loads/stores through them are emitted as
// unaligned instructions.
typedef float f32x8_u __attribute__((vector_size(32), aligned(4)));
typedef double f64x4_u __attribute__((vector_size(32), aligned(8)));
typedef std::uint64_t u64x4_u __attribute__((vector_size(32), aligned(8)));
typedef float f32x4 __attribute__((vector_size(16)));
}  // namespace detail

BAFFLE_ALWAYS_INLINE f32x8 loadu8(const float* p) {
  return *reinterpret_cast<const detail::f32x8_u*>(p);
}
BAFFLE_ALWAYS_INLINE void storeu8(float* p, f32x8 v) {
  *reinterpret_cast<detail::f32x8_u*>(p) = v;
}
/// Aligned load: p must be 32-byte aligned (packed panels are).
BAFFLE_ALWAYS_INLINE f32x8 loada8(const float* p) {
  return *reinterpret_cast<const f32x8*>(p);
}
BAFFLE_ALWAYS_INLINE f32x8 splat8(float x) {
  return f32x8{x, x, x, x, x, x, x, x};
}
BAFFLE_ALWAYS_INLINE f64x4 loadu4d(const double* p) {
  return *reinterpret_cast<const detail::f64x4_u*>(p);
}
BAFFLE_ALWAYS_INLINE u64x4 loadu4u(const std::uint64_t* p) {
  return *reinterpret_cast<const detail::u64x4_u*>(p);
}
BAFFLE_ALWAYS_INLINE void storeu4u(std::uint64_t* p, u64x4 v) {
  *reinterpret_cast<detail::u64x4_u*>(p) = v;
}

/// Widen the low/high four float lanes to doubles (for the primitives
/// that accumulate in double to match the scalar arm's precision).
BAFFLE_ALWAYS_INLINE f64x4 widen_lo(f32x8 v) {
  return __builtin_convertvector(
      __builtin_shufflevector(v, v, 0, 1, 2, 3), f64x4);
}
BAFFLE_ALWAYS_INLINE f64x4 widen_hi(f32x8 v) {
  return __builtin_convertvector(
      __builtin_shufflevector(v, v, 4, 5, 6, 7), f64x4);
}

BAFFLE_ALWAYS_INLINE double hsum4(f64x4 v) {
  return (v[0] + v[1]) + (v[2] + v[3]);
}

/// Lanewise max via the sign of the comparison mask (portable across
/// GCC/Clang without relying on vector ternaries). NaN lanes in `a`
/// select `b`, matching `a > b ? a : b`.
BAFFLE_ALWAYS_INLINE f32x8 vmax8(f32x8 a, f32x8 b) {
  const i32x8 m = a > b;  // all-ones where a > b
  return __builtin_bit_cast(
      f32x8, (__builtin_bit_cast(i32x8, a) & m) |
                 (__builtin_bit_cast(i32x8, b) & ~m));
}

/// max(x, 0) with the exact semantics of `if (x < 0) x = 0`: negative
/// lanes zeroed, NaN/+0/-0 pass through like the scalar code.
BAFFLE_ALWAYS_INLINE f32x8 vrelu8(f32x8 x) {
  const i32x8 keep = ~(x < f32x8{});  // all-ones unless x < 0
  return __builtin_bit_cast(f32x8, __builtin_bit_cast(i32x8, x) & keep);
}

/// |x| lanewise (clears the sign bit).
BAFFLE_ALWAYS_INLINE f32x8 vabs8(f32x8 x) {
  const std::int32_t m = 0x7fffffff;
  return __builtin_bit_cast(
      f32x8, __builtin_bit_cast(i32x8, x) & i32x8{m, m, m, m, m, m, m, m});
}

#endif  // BAFFLE_SIMD_VEC_EXT && __AVX2__ && __FMA__

/// The two dispatch arms. kVector is available only when the vector
/// kernels were compiled in (GNU-compatible compiler, x86-64, AVX2+FMA
/// flags accepted) and the CPU supports them at runtime.
enum class Isa { kScalar, kVector };

/// Arm currently selected for all dispatched kernels.
Isa active_isa();
/// True if `isa` can be selected on this build/CPU.
bool isa_available(Isa isa);
/// Pin an arm (tests/benches). Returns false if unavailable.
bool force_isa(Isa isa);
/// Drop any force_isa() pin and re-read BAFFLE_FORCE_SCALAR + CPUID.
void reset_isa();
/// True if the BAFFLE_FORCE_SCALAR environment variable pins the
/// scalar arm (parity tests skip their vector side under it).
bool scalar_forced_by_env();
const char* isa_name(Isa isa);

}  // namespace baffle::simd

#pragma once
// Dense row-major float matrix — the numeric workhorse of the NN library.
//
// Deliberately minimal: the training loop needs GEMM in three transpose
// configurations, elementwise arithmetic, and row reductions. All
// heavyweight kernels live in tensor/ops.hpp so this header stays cheap
// to include.

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "util/contracts.hpp"

namespace baffle {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    BAFFLE_DCHECK_BOUNDS(r, rows_);
    BAFFLE_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    BAFFLE_DCHECK_BOUNDS(r, rows_);
    BAFFLE_DCHECK_BOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) {
    BAFFLE_DCHECK_BOUNDS(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    BAFFLE_DCHECK_BOUNDS(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape without reallocating; total size must match.
  void reshape(std::size_t rows, std::size_t cols);

  /// Re-dimension, reusing existing storage where possible. Contents are
  /// unspecified afterwards (the inference scratch buffers overwrite
  /// them anyway).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Cache-line-aligned so SIMD loads of the first row are aligned and
  // no 256-bit access anywhere in the buffer straddles a line.
  AlignedFloatVec data_;
};

/// Non-owning read-only view of a row-major float matrix, or of a
/// contiguous row range of one. Lets the inference path walk a cached
/// feature matrix chunk-by-chunk without copying rows; implicitly
/// constructible from Matrix so the GEMM entry points accept either.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.flat().data()), rows_(m.rows()), cols_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const float* data() const { return data_; }

  std::span<const float> row(std::size_t r) const {
    BAFFLE_DCHECK_BOUNDS(r, rows_);
    return {data_ + r * cols_, cols_};
  }

  /// View of `count` consecutive rows starting at `first`.
  ConstMatrixView row_range(std::size_t first, std::size_t count) const {
    BAFFLE_DCHECK(first + count <= rows_,
                  "row_range must stay inside the viewed matrix");
    return {data_ + first * cols_, count, cols_};
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace baffle

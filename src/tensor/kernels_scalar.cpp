// Scalar kernel arm: the pre-SIMD loops, verbatim. This arm is the
// ground truth for the parity tests and the fallback selected by
// BAFFLE_FORCE_SCALAR or on CPUs without AVX2+FMA, so its arithmetic
// (accumulation order, double-precision reductions) must not change.

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.hpp"
#include "util/contracts.hpp"

namespace baffle::kernels {
namespace {

// Inner-dimension panel: a kKBlock-row slice of B (kKBlock * n floats)
// stays hot in L1/L2 while a block of output rows streams over it.
constexpr std::size_t kKBlock = 128;

// Column panel for the abt kernel: bounds the slice of B rows reused
// across an output-row block.
constexpr std::size_t kJBlock = 128;

void gemm_ab_rows(const GemmRowArgs& g, std::size_t r0, std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  const std::size_t k = g.k, n = g.n;
  for (std::size_t i = r0; i < r1; ++i) {
    std::fill_n(g.c + i * g.ldc, n, 0.0f);
  }
  for (std::size_t p0 = 0; p0 < k; p0 += kKBlock) {
    const std::size_t p1 = std::min(k, p0 + kKBlock);
    // Four output rows at a time: each B row loaded from cache is
    // reused across four independent accumulation chains.
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const float* a0 = g.a + i * g.lda;
      const float* a1 = g.a + (i + 1) * g.lda;
      const float* a2 = g.a + (i + 2) * g.lda;
      const float* a3 = g.a + (i + 3) * g.lda;
      float* o0 = g.c + i * g.ldc;
      float* o1 = g.c + (i + 1) * g.ldc;
      float* o2 = g.c + (i + 2) * g.ldc;
      float* o3 = g.c + (i + 3) * g.ldc;
      for (std::size_t p = p0; p < p1; ++p) {
        const float* b_row = g.b + p * g.ldb;
        const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        for (std::size_t j = 0; j < n; ++j) {
          const float bv = b_row[j];
          o0[j] += av0 * bv;
          o1[j] += av1 * bv;
          o2[j] += av2 * bv;
          o3[j] += av3 * bv;
        }
      }
    }
    for (; i < r1; ++i) {
      const float* a_row = g.a + i * g.lda;
      float* out_row = g.c + i * g.ldc;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = a_row[p];
        const float* b_row = g.b + p * g.ldb;
        for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  }
}

void gemm_atb_rows(const GemmRowArgs& g, std::size_t r0, std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  const std::size_t k = g.k, n = g.n;
  for (std::size_t i = r0; i < r1; ++i) {
    std::fill_n(g.c + i * g.ldc, n, 0.0f);
  }
  for (std::size_t p0 = 0; p0 < k; p0 += kKBlock) {
    const std::size_t p1 = std::min(k, p0 + kKBlock);
    // Same four-row micro-kernel as gemm_ab; the A element for output
    // row i sits at a[p * lda + i] because A enters transposed.
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      float* o0 = g.c + i * g.ldc;
      float* o1 = g.c + (i + 1) * g.ldc;
      float* o2 = g.c + (i + 2) * g.ldc;
      float* o3 = g.c + (i + 3) * g.ldc;
      for (std::size_t p = p0; p < p1; ++p) {
        const float* a_row = g.a + p * g.lda;
        const float* b_row = g.b + p * g.ldb;
        const float av0 = a_row[i], av1 = a_row[i + 1];
        const float av2 = a_row[i + 2], av3 = a_row[i + 3];
        for (std::size_t j = 0; j < n; ++j) {
          const float bv = b_row[j];
          o0[j] += av0 * bv;
          o1[j] += av1 * bv;
          o2[j] += av2 * bv;
          o3[j] += av3 * bv;
        }
      }
    }
    for (; i < r1; ++i) {
      float* out_row = g.c + i * g.ldc;
      for (std::size_t p = p0; p < p1; ++p) {
        const float av = g.a[p * g.lda + i];
        const float* b_row = g.b + p * g.ldb;
        for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  }
}

void gemm_abt_rows(const GemmRowArgs& g, std::size_t r0, std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  const std::size_t k = g.k, n = g.n;
  for (std::size_t j0 = 0; j0 < n; j0 += kJBlock) {
    const std::size_t j1 = std::min(n, j0 + kJBlock);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* a_row = g.a + i * g.lda;
      float* out_row = g.c + i * g.ldc;
      // Four dot products at a time: each A element loaded is reused
      // across four independent reduction chains, which also breaks
      // the serial-accumulation latency bound of a lone dot product.
      std::size_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        const float* b0 = g.b + j * g.ldb;
        const float* b1 = g.b + (j + 1) * g.ldb;
        const float* b2 = g.b + (j + 2) * g.ldb;
        const float* b3 = g.b + (j + 3) * g.ldb;
        float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          const float av = a_row[p];
          acc0 += av * b0[p];
          acc1 += av * b1[p];
          acc2 += av * b2[p];
          acc3 += av * b3[p];
        }
        out_row[j] = acc0;
        out_row[j + 1] = acc1;
        out_row[j + 2] = acc2;
        out_row[j + 3] = acc3;
      }
      for (; j < j1; ++j) {
        const float* b_row = g.b + j * g.ldb;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        out_row[j] = acc;
      }
    }
  }
}

// Packed-panel kernel for the scalar arm: only reached through the
// explicit gemm_*_packed entry points (e.g. a Dense packed-weight
// cache evaluated under BAFFLE_FORCE_SCALAR), so clarity beats
// throughput here.
void gemm_packed_rows(const PackedGemmArgs& g, std::size_t r0,
                      std::size_t r1) {
  BAFFLE_DCHECK(r0 <= r1, "kernel row range must be ordered");
  BAFFLE_DCHECK(r0 == r1 || g.c != nullptr,
                "kernel output pointer must be set for a non-empty range");
  const std::size_t panels = (g.n + kPanelCols - 1) / kPanelCols;
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const float* panel = g.bp + jp * g.k * kPanelCols;
    const std::size_t j0 = jp * kPanelCols;
    const std::size_t cols = std::min(kPanelCols, g.n - j0);
    for (std::size_t i = r0; i < r1; ++i) {
      const float* a_row = g.a + i * g.a_row_stride;
      float acc[kPanelCols] = {};
      for (std::size_t p = 0; p < g.k; ++p) {
        const float av = a_row[p * g.a_p_stride];
        const float* b_row = panel + p * kPanelCols;
        for (std::size_t c = 0; c < kPanelCols; ++c) acc[c] += av * b_row[c];
      }
      float* out_row = g.c + i * g.ldc + j0;
      for (std::size_t c = 0; c < cols; ++c) out_row[c] = acc[c];
    }
  }
}

double dot(const float* a, const float* b, std::size_t n) {
  // Accumulate in double: parameter vectors reach ~10^5 entries and the
  // cosine-similarity baselines (FoolsGold) are sensitive to cancellation.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double squared_l2(const float* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return acc;
}

double squared_l2_distance(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

float cosine_similarity(const float* a, const float* b, std::size_t n) {
  // Structured like the pre-SIMD code: norms rounded through
  // float(sqrt(double)) and a float dot before the division.
  const float na = static_cast<float>(std::sqrt(squared_l2(a, n)));
  const float nb = static_cast<float>(std::sqrt(squared_l2(b, n)));
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return static_cast<float>(dot(a, b, n)) / (na * nb);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void scale_add(float* y, float beta, const float* x, float alpha,
               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = beta * y[i] + alpha * x[i];
}

void scale_into(float* out, float alpha, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = alpha * x[i];
}

void abs_into(float* out, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(x[i]);
}

float max_value(const float* x, std::size_t n) {
  return *std::max_element(x, x + n);
}

void relu_forward(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

void relu_backward(const float* activated, float* grad, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (activated[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void add_u64(std::uint64_t* acc, const std::uint64_t* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}

double sum_d(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double sum_sq_diff_d(const double* x, double center, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += (x[i] - center) * (x[i] - center);
  }
  return acc;
}

// ---- Batched multi-model evaluation (DESIGN.md §14) ----

// Fold-left over p from a zero accumulator with one multiply-add per
// step and a single bias add afterwards: the exact accumulation pattern
// of gemm_ab_rows + add_row_bias above, so a fused evaluation produces
// bit-identical activations to the sequential per-model forward pass on
// this arm.
void eval_layer_f32(const EvalLayerArgs& g) {
  for (std::size_t i = 0; i < g.n_out; ++i) {
    const float* a_row = g.a + i * g.a_row_stride;
    float acc[kPanelCols] = {};
    for (std::size_t p = 0; p < g.k; ++p) {
      const float av = a_row[p * g.a_p_stride];
      const float* in_row = g.in + p * kPanelCols;
      for (std::size_t c = 0; c < kPanelCols; ++c) acc[c] += av * in_row[c];
    }
    float* out_row = g.out + i * kPanelCols;
    const float b = g.bias[i];
    for (std::size_t c = 0; c < kPanelCols; ++c) {
      float v = acc[c] + b;
      if (g.relu && v < 0.0f) v = 0.0f;
      out_row[c] = v;
    }
  }
}

std::uint16_t f32_to_bf16_rne(float x) {
  std::uint32_t u;
  static_assert(sizeof(u) == sizeof(x));
  __builtin_memcpy(&u, &x, sizeof(u));
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate and force a mantissa bit so it stays a (quiet) NaN.
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  u += 0x7fffu + ((u >> 16) & 1u);  // round to nearest, ties to even
  return static_cast<std::uint16_t>(u >> 16);
}

float bf16_to_f32(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float x;
  __builtin_memcpy(&x, &u, sizeof(x));
  return x;
}

void eval_layer_bf16(const EvalLayerBf16Args& g) {
  for (std::size_t i = 0; i < g.n_out; ++i) {
    const std::uint16_t* a_row = g.a + i * g.a_row_stride;
    float acc[kPanelCols] = {};
    for (std::size_t p = 0; p < g.k; ++p) {
      const float av = bf16_to_f32(a_row[p * g.a_p_stride]);
      const std::uint16_t* in_row = g.in + p * kPanelCols;
      for (std::size_t c = 0; c < kPanelCols; ++c) {
        acc[c] += av * bf16_to_f32(in_row[c]);
      }
    }
    float* out_row = g.out + i * kPanelCols;
    const float b = g.bias[i];
    for (std::size_t c = 0; c < kPanelCols; ++c) {
      float v = acc[c] + b;
      if (g.relu && v < 0.0f) v = 0.0f;
      out_row[c] = v;
    }
  }
}

void eval_layer_u8(const EvalLayerU8Args& g) {
  for (std::size_t i = 0; i < g.n_out; ++i) {
    const std::int8_t* w_row = g.wq + i * g.k_pad;
    std::int32_t acc[kPanelCols] = {};
    for (std::size_t p4 = 0; p4 < g.k_pad / 4; ++p4) {
      const std::uint8_t* in_blk = g.in + p4 * 4 * kPanelCols;
      const std::int32_t w0 = w_row[4 * p4];
      const std::int32_t w1 = w_row[4 * p4 + 1];
      const std::int32_t w2 = w_row[4 * p4 + 2];
      const std::int32_t w3 = w_row[4 * p4 + 3];
      for (std::size_t c = 0; c < kPanelCols; ++c) {
        const std::uint8_t* q = in_blk + c * 4;
        acc[c] += w0 * q[0] + w1 * q[1] + w2 * q[2] + w3 * q[3];
      }
    }
    float* out_row = g.out + i * kPanelCols;
    const float ws = g.w_scale[i];
    const float wsr = ws * static_cast<float>(g.w_rowsum[i]);
    const float b = g.bias[i];
    for (std::size_t c = 0; c < kPanelCols; ++c) {
      const float base = g.in_offset[c] * wsr + b;
      float v = static_cast<float>(acc[c]) * (ws * g.in_scale[c]) + base;
      if (g.relu && v < 0.0f) v = 0.0f;
      out_row[c] = v;
    }
  }
}

void quantize_panel_u8(const QuantizePanelU8Args& g) {
  for (std::size_t c = 0; c < kPanelCols; ++c) {
    float mn = g.in[c];
    float mx = g.in[c];
    for (std::size_t p = 1; p < g.k; ++p) {
      const float v = g.in[p * kPanelCols + c];
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
    }
    const float span = mx - mn;
    const float s = span > 0.0f ? span / 127.0f : 1.0f;
    const float inv = 1.0f / s;
    g.scale[c] = s;
    g.offset[c] = mn;
    for (std::size_t p = 0; p < g.k_pad; ++p) {
      std::int32_t q = 0;
      if (p < g.k) {
        // nearbyint == round-to-nearest-even in the default FP
        // environment, matching the vector arm's cvtps2dq exactly.
        const float v = g.in[p * kPanelCols + c];
        q = static_cast<std::int32_t>(std::nearbyint((v - mn) * inv));
        q = q < 0 ? 0 : (q > 127 ? 127 : q);
      }
      g.out[(p / 4) * 4 * kPanelCols + c * 4 + (p % 4)] =
          static_cast<std::uint8_t>(q);
    }
  }
}

void convert_f32_bf16(const float* in, std::uint16_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f32_to_bf16_rne(in[i]);
}

void convert_bf16_f32(const std::uint16_t* in, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = bf16_to_f32(in[i]);
}

void argmax_margin_panel(const ArgmaxMarginArgs& g) {
  for (std::size_t c = 0; c < g.cols; ++c) {
    // Strict > keeps the first maximum, matching argmax_rows_into.
    float best = g.in[c];
    float second = -std::numeric_limits<float>::infinity();
    std::size_t bi = 0;
    for (std::size_t i = 1; i < g.n_rows; ++i) {
      const float x = g.in[i * kPanelCols + c];
      if (x > best) {
        second = best;
        best = x;
        bi = i;
      } else if (x > second) {
        second = x;
      }
    }
    g.preds[c] = bi;
    if (g.margins != nullptr) g.margins[c] = best - second;
  }
}

constexpr KernelTable kTable = {
    "scalar",
    /*prefer_packed=*/false,
    gemm_ab_rows,
    gemm_atb_rows,
    gemm_abt_rows,
    gemm_packed_rows,
    dot,
    squared_l2,
    squared_l2_distance,
    cosine_similarity,
    axpy,
    scale,
    scale_add,
    scale_into,
    abs_into,
    max_value,
    relu_forward,
    relu_backward,
    add_u64,
    sum_d,
    sum_sq_diff_d,
    eval_layer_f32,
    eval_layer_bf16,
    eval_layer_u8,
    quantize_panel_u8,
    convert_f32_bf16,
    convert_bf16_f32,
    argmax_margin_panel,
};

}  // namespace

const KernelTable& scalar_table() { return kTable; }

}  // namespace baffle::kernels

#include "tensor/primitives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace baffle {

namespace {
void check(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}
}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check(x.size() == y.size(), "axpy: length mismatch");
  kernels::active_table().axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, float alpha) {
  kernels::active_table().scale(x.data(), alpha, x.size());
}

void scale_add(std::span<float> y, float beta, std::span<const float> x,
               float alpha) {
  check(x.size() == y.size(), "scale_add: length mismatch");
  kernels::active_table().scale_add(y.data(), beta, x.data(), alpha,
                                    x.size());
}

void scale_into(std::span<float> out, float alpha, std::span<const float> x) {
  check(out.size() == x.size(), "scale_into: length mismatch");
  kernels::active_table().scale_into(out.data(), alpha, x.data(), x.size());
}

void abs_into(std::span<float> out, std::span<const float> x) {
  check(out.size() == x.size(), "abs_into: length mismatch");
  kernels::active_table().abs_into(out.data(), x.data(), x.size());
}

float dot(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "dot: length mismatch");
  return static_cast<float>(
      kernels::active_table().dot(a.data(), b.data(), a.size()));
}

float l2_norm(std::span<const float> x) {
  // sqrt in double, then round: matches the pre-SIMD l2_norm exactly.
  return static_cast<float>(
      std::sqrt(kernels::active_table().squared_l2(x.data(), x.size())));
}

float l2_distance(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "l2_distance: length mismatch");
  return static_cast<float>(std::sqrt(
      kernels::active_table().squared_l2_distance(a.data(), b.data(),
                                                  a.size())));
}

float squared_l2_distance(std::span<const float> a,
                          std::span<const float> b) {
  check(a.size() == b.size(), "squared_l2_distance: length mismatch");
  return static_cast<float>(kernels::active_table().squared_l2_distance(
      a.data(), b.data(), a.size()));
}

float cosine_similarity(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "cosine_similarity: length mismatch");
  return kernels::active_table().cosine_similarity(a.data(), b.data(),
                                                   a.size());
}

void relu_forward(std::span<float> x) {
  kernels::active_table().relu_forward(x.data(), x.size());
}

void relu_backward(std::span<const float> activated, std::span<float> grad) {
  check(activated.size() == grad.size(), "relu_backward: length mismatch");
  kernels::active_table().relu_backward(activated.data(), grad.data(),
                                        grad.size());
}

void add_u64(std::span<std::uint64_t> acc, std::span<const std::uint64_t> x) {
  check(acc.size() == x.size(), "add_u64: length mismatch");
  kernels::active_table().add_u64(acc.data(), x.data(), x.size());
}

double sum(std::span<const double> xs) {
  return kernels::active_table().sum_d(xs.data(), xs.size());
}

double sum_sq_diff(std::span<const double> xs, double center) {
  return kernels::active_table().sum_sq_diff_d(xs.data(), center, xs.size());
}

double softmax_xent_rows(Matrix& probs_grad, std::span<const int> labels) {
  // Arithmetic is kept operation-for-operation identical to the old
  // copy -> softmax_rows -> loss/grad pipeline (stabilized exp, the
  // same two division passes), so loss trajectories don't shift when
  // this fused form took over.
  const kernels::KernelTable& kt = kernels::active_table();
  const auto batch = static_cast<float>(probs_grad.rows());
  const std::size_t n = probs_grad.cols();
  double loss = 0.0;
  for (std::size_t r = 0; r < probs_grad.rows(); ++r) {
    float* x = probs_grad.row(r).data();
    const float mx = kt.max_value(x, n);
    float total = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      x[c] = std::exp(x[c] - mx);
      total += x[c];
    }
    for (std::size_t c = 0; c < n; ++c) x[c] /= total;
    const auto y = static_cast<std::size_t>(labels[r]);
    loss -= std::log(std::max(x[y], 1e-12f));
    for (std::size_t c = 0; c < n; ++c) x[c] /= batch;
    x[y] -= 1.0f / batch;
  }
  return loss / batch;
}

std::vector<float> subtract(std::span<const float> a,
                            std::span<const float> b) {
  check(a.size() == b.size(), "subtract: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "add: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t) {
  check(a.size() == b.size(), "lerp: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0f - t) * a[i] + t * b[i];
  }
  return out;
}

}  // namespace baffle

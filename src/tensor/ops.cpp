#include "tensor/ops.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <stdexcept>

#include "tensor/kernels.hpp"
#include "util/contracts.hpp"
#include "tensor/simd.hpp"
#include "util/metrics.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace baffle {

namespace {
// Multiply-accumulate count above which a GEMM is split into row-block
// tasks on the global thread pool (and its time/flops reported to the
// metrics registry). Below it the pool dispatch costs more than it
// saves — the per-batch training shapes (32x64x10 and friends) all stay
// inline on the caller.
constexpr std::size_t kParallelMacs = std::size_t{1} << 20;

/// Runs fn(r0, r1) over row ranges covering [0, m): in parallel row
/// blocks on the global pool when the kernel is worth it, inline
/// otherwise. Blocks write disjoint output rows, so tasks never alias.
template <typename Fn>
void for_each_row_block(std::size_t m, std::size_t macs, const Fn& fn) {
  if (macs < kParallelMacs || m < 2) {
    fn(std::size_t{0}, m);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_tasks = std::max<std::size_t>(1, 4 * pool.size());
  const std::size_t row_block =
      std::max<std::size_t>(1, (m + max_tasks - 1) / max_tasks);
  const std::size_t blocks = (m + row_block - 1) / row_block;
  pool.parallel_for(blocks, [&](std::size_t blk) {
    const std::size_t r0 = blk * row_block;
    fn(r0, std::min(m, r0 + row_block));
  });
}

/// RAII reporter for the large-kernel path: accumulates wall-clock and
/// flop counters so GFLOP/s is derivable from the metrics dump. No-op
/// (and no clock reads) for small kernels.
class GemmReport {
 public:
  GemmReport(std::size_t macs, bool enabled) : enabled_(enabled) {
    if (enabled_) {
      flops_ = 2 * macs;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~GemmReport() {
    if (!enabled_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricsRegistry& registry = MetricsRegistry::global();
    registry.add_timer("gemm.large",
                       std::chrono::duration<double>(elapsed).count());
    registry.add_counter("gemm.large_flops", flops_);
  }

 private:
  bool enabled_;
  std::size_t flops_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Aliasing precondition of every GEMM kernel: the output may overlap
/// neither input (rows are zero-filled and accumulated in place).
[[maybe_unused]] bool disjoint(const float* a, std::size_t a_len,
                               const float* b, std::size_t b_len) {
  const auto a0 = reinterpret_cast<std::uintptr_t>(a);
  const auto b0 = reinterpret_cast<std::uintptr_t>(b);
  return a0 + a_len * sizeof(float) <= b0 ||
         b0 + b_len * sizeof(float) <= a0;
}

/// Packing scratch, one buffer per (thread, GEMM nesting depth).
///
/// A plain thread_local buffer is not safe here: a large GEMM fans its
/// row blocks out through parallel_for, whose waiter *help-drains* the
/// pool queue. The stolen task can itself GEMM on this thread — with
/// remote workers still reading this thread's panels for the outer
/// call — so each nesting level must pack into its own buffer. Slots
/// live in a deque (stable addresses across growth) and are reused
/// once their level's row blocks have joined.
class PackScratchLease {
 public:
  // Sanctioned lock-free escape: the slot stack is thread_local, so no
  // two threads ever touch the same deque; per-thread exclusivity is the
  // whole invariant and there is no capability to annotate.
  PackScratchLease() BAFFLE_NO_THREAD_SAFETY_ANALYSIS {
    if (slots().size() <= depth()) slots().emplace_back();
    buffer_ = &slots()[depth()];
    ++depth();
  }
  ~PackScratchLease() BAFFLE_NO_THREAD_SAFETY_ANALYSIS { --depth(); }
  PackScratchLease(const PackScratchLease&) = delete;
  PackScratchLease& operator=(const PackScratchLease&) = delete;

  PackedB& operator*() const { return *buffer_; }

 private:
  static std::deque<PackedB>& slots() {
    thread_local std::deque<PackedB> s;
    return s;
  }
  static std::size_t& depth() {
    thread_local std::size_t d = 0;
    return d;
  }
  PackedB* buffer_;
};

/// Packed-path executor shared by the three transpose configurations.
void run_packed(const kernels::KernelTable& kt, const float* a,
                std::size_t a_row_stride, std::size_t a_p_stride,
                const PackedB& bp, Matrix& out, std::size_t m,
                std::size_t macs) {
  BAFFLE_DCHECK(
      reinterpret_cast<std::uintptr_t>(bp.data()) % simd::kAlignment == 0,
      "packed panels must be cache-line aligned");
  kernels::PackedGemmArgs args;
  args.a = a;
  args.a_row_stride = a_row_stride;
  args.a_p_stride = a_p_stride;
  args.bp = bp.data();
  args.c = out.flat().data();
  args.ldc = out.cols();
  args.k = bp.k();
  args.n = bp.n();
  for_each_row_block(m, macs, [&](std::size_t r0, std::size_t r1) {
    kt.gemm_packed_rows(args, r0, r1);
  });
}

void run_rows(void (*kernel)(const kernels::GemmRowArgs&, std::size_t,
                             std::size_t),
              const kernels::GemmRowArgs& args, std::size_t m,
              std::size_t macs) {
  for_each_row_block(m, macs, [&](std::size_t r0, std::size_t r1) {
    kernel(args, r0, r1);
  });
}
}  // namespace

bool gemm_uses_packed() { return kernels::active_table().prefer_packed; }

void pack_b_panels(ConstMatrixView b, PackedB& out, std::uint64_t version) {
  constexpr std::size_t pc = kernels::kPanelCols;
  const std::size_t k = b.rows(), n = b.cols();
  const std::size_t panels = (n + pc - 1) / pc;
  out.data_.resize(panels * k * pc);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = out.data_.data() + jp * k * pc;
    const std::size_t j0 = jp * pc;
    const std::size_t cols = std::min(pc, n - j0);
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b.row(p).data() + j0;
      float* dst = panel + p * pc;
      std::copy_n(src, cols, dst);
      std::fill_n(dst + cols, pc - cols, 0.0f);  // zero-padded tail
    }
  }
  out.k_ = k;
  out.n_ = n;
  out.version_ = version;
}

void pack_bt_panels(const Matrix& b, PackedB& out) {
  // Effective operand is bᵀ: panels hold columns of bᵀ, i.e. rows of b,
  // gathered with a transposing copy (sequential reads of each b row,
  // 16-strided writes into the panel).
  constexpr std::size_t pc = kernels::kPanelCols;
  const std::size_t k = b.cols(), n = b.rows();
  const std::size_t panels = (n + pc - 1) / pc;
  out.data_.resize(panels * k * pc);
  const auto pack_panel = [&](std::size_t jp) {
    float* panel = out.data_.data() + jp * k * pc;
    const std::size_t j0 = jp * pc;
    const std::size_t cols = std::min(pc, n - j0);
    for (std::size_t c = 0; c < cols; ++c) {
      const float* src = b.row(j0 + c).data();
      for (std::size_t p = 0; p < k; ++p) panel[p * pc + c] = src[p];
    }
    for (std::size_t c = cols; c < pc; ++c) {
      for (std::size_t p = 0; p < k; ++p) panel[p * pc + c] = 0.0f;
    }
  };
  // Validation-sized packs (MultiModelEval::bind over a whole holdout)
  // fan the panels out across the pool — each panel is a disjoint write
  // with identical per-element copies, so the pack is byte-identical to
  // the serial loop for any thread count. Training-sized packs (a batch
  // inside gemm_abt) stay inline: the gather is cheaper than a task.
  constexpr std::size_t kParallelPackElems = std::size_t{1} << 18;
  ThreadPool& pool = ThreadPool::global();
  if (panels >= 2 && panels * k * pc >= kParallelPackElems &&
      pool.size() > 1) {
    pool.parallel_for(panels, pack_panel);
  } else {
    for (std::size_t jp = 0; jp < panels; ++jp) pack_panel(jp);
  }
  out.k_ = k;
  out.n_ = n;
  out.version_ = 0;
}

void gemm_ab_packed(ConstMatrixView a, const PackedB& bp, Matrix& out) {
  BAFFLE_CHECK(a.cols() == bp.k(), "gemm_ab: inner dimension mismatch");
  BAFFLE_CHECK(out.rows() == a.rows() && out.cols() == bp.n(),
        "gemm_ab: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = bp.n();
  if (m == 0 || n == 0) return;
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), a.data(), m * k),
                "GEMM output must not alias an input");
  const std::size_t macs = m * k * n;
  const GemmReport report(macs, macs >= kParallelMacs);
  run_packed(kernels::active_table(), a.data(), /*a_row_stride=*/k,
             /*a_p_stride=*/1, bp, out, m, macs);
}

void gemm_ab(ConstMatrixView a, const Matrix& b, Matrix& out) {
  BAFFLE_CHECK(a.cols() == b.rows(), "gemm_ab: inner dimension mismatch");
  BAFFLE_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
        "gemm_ab: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), a.data(), m * k),
                "GEMM output must not alias an input");
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), b.flat().data(), b.size()),
                "GEMM output must not alias an input");
  const std::size_t macs = m * k * n;
  const GemmReport report(macs, macs >= kParallelMacs);
  const kernels::KernelTable& kt = kernels::active_table();
  if (kt.prefer_packed) {
    // Packing happens on the caller thread before any row-block fan-out;
    // the per-depth scratch is reused (and regrown monotonically).
    const PackScratchLease scratch;
    pack_b_panels(b, *scratch, /*version=*/0);
    run_packed(kt, a.data(), /*a_row_stride=*/k, /*a_p_stride=*/1, *scratch,
               out, m, macs);
    return;
  }
  kernels::GemmRowArgs args;
  args.a = a.data();
  args.lda = k;
  args.b = b.flat().data();
  args.ldb = n;
  args.c = out.flat().data();
  args.ldc = n;
  args.k = k;
  args.n = n;
  run_rows(kt.gemm_ab_rows, args, m, macs);
}

void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out) {
  BAFFLE_CHECK(a.rows() == b.rows(), "gemm_atb: inner dimension mismatch");
  BAFFLE_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
        "gemm_atb: output shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), a.flat().data(), a.size()),
                "GEMM output must not alias an input");
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), b.flat().data(), b.size()),
                "GEMM output must not alias an input");
  const std::size_t macs = m * k * n;
  const GemmReport report(macs, macs >= kParallelMacs);
  const kernels::KernelTable& kt = kernels::active_table();
  if (kt.prefer_packed) {
    const PackScratchLease scratch;
    pack_b_panels(b, *scratch, /*version=*/0);
    // A enters transposed: output row i reads column i of a.
    run_packed(kt, a.flat().data(), /*a_row_stride=*/1, /*a_p_stride=*/m,
               *scratch, out, m, macs);
    return;
  }
  kernels::GemmRowArgs args;
  args.a = a.flat().data();
  args.lda = m;
  args.b = b.flat().data();
  args.ldb = n;
  args.c = out.flat().data();
  args.ldc = n;
  args.k = k;
  args.n = n;
  run_rows(kt.gemm_atb_rows, args, m, macs);
}

void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out) {
  BAFFLE_CHECK(a.cols() == b.cols(), "gemm_abt: inner dimension mismatch");
  BAFFLE_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
        "gemm_abt: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return;
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), a.flat().data(), a.size()),
                "GEMM output must not alias an input");
  BAFFLE_DCHECK(disjoint(out.flat().data(), out.size(), b.flat().data(), b.size()),
                "GEMM output must not alias an input");
  const std::size_t macs = m * k * n;
  const kernels::KernelTable& kt = kernels::active_table();
  if (kt.prefer_packed) {
    const GemmReport report(macs, macs >= kParallelMacs);
    const PackScratchLease scratch;
    pack_bt_panels(b, *scratch);
    run_packed(kt, a.flat().data(), /*a_row_stride=*/k, /*a_p_stride=*/1,
               *scratch, out, m, macs);
    return;
  }
  if (macs >= kParallelMacs) {
    // Large multiplies: pack Bᵀ once — O(n·k) against O(m·n·k) compute —
    // so the inner loop walks contiguous memory and runs through the
    // blocked ab kernel instead of n serial dot-product reductions.
    Matrix bt(k, n);
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j).data();
      for (std::size_t p = 0; p < k; ++p) bt.at(p, j) = b_row[p];
    }
    gemm_ab(a, bt, out);
    return;
  }
  const GemmReport report(macs, macs >= kParallelMacs);
  kernels::GemmRowArgs args;
  args.a = a.flat().data();
  args.lda = k;
  args.b = b.flat().data();
  args.ldb = k;
  args.c = out.flat().data();
  args.ldc = n;
  args.k = k;
  args.n = n;
  run_rows(kt.gemm_abt_rows, args, m, macs);
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  BAFFLE_CHECK(bias.size() == m.cols(), "add_row_bias: bias length mismatch");
  const kernels::KernelTable& kt = kernels::active_table();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    kt.axpy(1.0f, bias.data(), m.row(r).data(), m.cols());
  }
}

void col_sum(const Matrix& m, std::span<float> out) {
  BAFFLE_CHECK(out.size() == m.cols(), "col_sum: output length mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  const kernels::KernelTable& kt = kernels::active_table();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    kt.axpy(1.0f, m.row(r).data(), out.data(), m.cols());
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float total = 0.0f;
    for (float& x : row) {
      x = std::exp(x - mx);
      total += x;
    }
    for (float& x : row) x /= total;
  }
}

std::vector<std::size_t> argmax_rows(const Matrix& m) {
  std::vector<std::size_t> out(m.rows());
  argmax_rows_into(m, out);
  return out;
}

void argmax_rows_into(const Matrix& m, std::span<std::size_t> out) {
  BAFFLE_CHECK(out.size() == m.rows(), "argmax_rows_into: output length mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
}

}  // namespace baffle

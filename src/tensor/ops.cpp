#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace baffle {

namespace {
void check(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}
}  // namespace

void gemm_ab(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.rows(), "gemm_ab: inner dimension mismatch");
  check(out.rows() == a.rows() && out.cols() == b.cols(),
        "gemm_ab: output shape mismatch");
  out.fill(0.0f);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    float* out_row = out.row(i).data();
    const float* a_row = a.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows(), "gemm_atb: inner dimension mismatch");
  check(out.rows() == a.cols() && out.cols() == b.cols(),
        "gemm_atb: output shape mismatch");
  out.fill(0.0f);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p).data();
    const float* b_row = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.cols(), "gemm_abt: inner dimension mismatch");
  check(out.rows() == a.rows() && out.cols() == b.rows(),
        "gemm_abt: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i).data();
    float* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j).data();
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  check(bias.size() == m.cols(), "add_row_bias: bias length mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r).data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void col_sum(const Matrix& m, std::span<float> out) {
  check(out.size() == m.cols(), "col_sum: output length mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r).data();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float total = 0.0f;
    for (float& x : row) {
      x = std::exp(x - mx);
      total += x;
    }
    for (float& x : row) x /= total;
  }
}

std::vector<std::size_t> argmax_rows(const Matrix& m) {
  std::vector<std::size_t> out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

float dot(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "dot: length mismatch");
  // Accumulate in double: parameter vectors reach ~10^5 entries and the
  // cosine-similarity baselines (FoolsGold) are sensitive to cancellation.
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return static_cast<float>(std::sqrt(acc));
}

float l2_distance(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "l2_distance: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const float na = l2_norm(a), nb = l2_norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

std::vector<float> subtract(std::span<const float> a,
                            std::span<const float> b) {
  check(a.size() == b.size(), "subtract: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "add: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t) {
  check(a.size() == b.size(), "lerp: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0f - t) * a[i] + t * b[i];
  }
  return out;
}

}  // namespace baffle

#include "tensor/ops.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace baffle {

namespace {
void check(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

// Multiply-accumulate count above which a GEMM is split into row-block
// tasks on the global thread pool (and its time/flops reported to the
// metrics registry). Below it the pool dispatch costs more than it
// saves — the per-batch training shapes (32x64x10 and friends) all stay
// inline on the caller.
constexpr std::size_t kParallelMacs = std::size_t{1} << 20;

// Inner-dimension panel: a kKBlock-row slice of B (kKBlock * n floats)
// stays hot in L1/L2 while a block of output rows streams over it.
constexpr std::size_t kKBlock = 128;

// Column panel for the abt kernel: bounds the slice of B rows reused
// across an output-row block.
constexpr std::size_t kJBlock = 128;

/// Runs fn(r0, r1) over row ranges covering [0, m): in parallel row
/// blocks on the global pool when the kernel is worth it, inline
/// otherwise. Blocks write disjoint output rows, so tasks never alias.
template <typename Fn>
void for_each_row_block(std::size_t m, std::size_t macs, const Fn& fn) {
  if (macs < kParallelMacs || m < 2) {
    fn(std::size_t{0}, m);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_tasks = std::max<std::size_t>(1, 4 * pool.size());
  const std::size_t row_block =
      std::max<std::size_t>(1, (m + max_tasks - 1) / max_tasks);
  const std::size_t blocks = (m + row_block - 1) / row_block;
  pool.parallel_for(blocks, [&](std::size_t blk) {
    const std::size_t r0 = blk * row_block;
    fn(r0, std::min(m, r0 + row_block));
  });
}

/// RAII reporter for the large-kernel path: accumulates wall-clock and
/// flop counters so GFLOP/s is derivable from the metrics dump. No-op
/// (and no clock reads) for small kernels.
class GemmReport {
 public:
  GemmReport(std::size_t macs, bool enabled) : enabled_(enabled) {
    if (enabled_) {
      flops_ = 2 * macs;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~GemmReport() {
    if (!enabled_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricsRegistry& registry = MetricsRegistry::global();
    registry.add_timer("gemm.large",
                       std::chrono::duration<double>(elapsed).count());
    registry.add_counter("gemm.large_flops", flops_);
  }

 private:
  bool enabled_;
  std::size_t flops_ = 0;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

void gemm_ab(ConstMatrixView a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.rows(), "gemm_ab: inner dimension mismatch");
  check(out.rows() == a.rows() && out.cols() == b.cols(),
        "gemm_ab: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  const std::size_t macs = m * k * n;
  const GemmReport report(macs, macs >= kParallelMacs);
  for_each_row_block(m, macs, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill_n(out.row(i).data(), n, 0.0f);
    }
    for (std::size_t p0 = 0; p0 < k; p0 += kKBlock) {
      const std::size_t p1 = std::min(k, p0 + kKBlock);
      // Four output rows at a time: each B row loaded from cache is
      // reused across four independent accumulation chains.
      std::size_t i = r0;
      for (; i + 4 <= r1; i += 4) {
        const float* a0 = a.row(i).data();
        const float* a1 = a.row(i + 1).data();
        const float* a2 = a.row(i + 2).data();
        const float* a3 = a.row(i + 3).data();
        float* o0 = out.row(i).data();
        float* o1 = out.row(i + 1).data();
        float* o2 = out.row(i + 2).data();
        float* o3 = out.row(i + 3).data();
        for (std::size_t p = p0; p < p1; ++p) {
          const float* b_row = b.row(p).data();
          const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
          for (std::size_t j = 0; j < n; ++j) {
            const float bv = b_row[j];
            o0[j] += av0 * bv;
            o1[j] += av1 * bv;
            o2[j] += av2 * bv;
            o3[j] += av3 * bv;
          }
        }
      }
      for (; i < r1; ++i) {
        const float* a_row = a.row(i).data();
        float* out_row = out.row(i).data();
        for (std::size_t p = p0; p < p1; ++p) {
          const float av = a_row[p];
          const float* b_row = b.row(p).data();
          for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  });
}

void gemm_atb(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows(), "gemm_atb: inner dimension mismatch");
  check(out.rows() == a.cols() && out.cols() == b.cols(),
        "gemm_atb: output shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  const std::size_t macs = m * k * n;
  const GemmReport report(macs, macs >= kParallelMacs);
  for_each_row_block(m, macs, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill_n(out.row(i).data(), n, 0.0f);
    }
    for (std::size_t p0 = 0; p0 < k; p0 += kKBlock) {
      const std::size_t p1 = std::min(k, p0 + kKBlock);
      // Same four-row micro-kernel as gemm_ab; the A element for output
      // row i sits at a.row(p)[i] because A enters transposed.
      std::size_t i = r0;
      for (; i + 4 <= r1; i += 4) {
        float* o0 = out.row(i).data();
        float* o1 = out.row(i + 1).data();
        float* o2 = out.row(i + 2).data();
        float* o3 = out.row(i + 3).data();
        for (std::size_t p = p0; p < p1; ++p) {
          const float* a_row = a.row(p).data();
          const float* b_row = b.row(p).data();
          const float av0 = a_row[i], av1 = a_row[i + 1];
          const float av2 = a_row[i + 2], av3 = a_row[i + 3];
          for (std::size_t j = 0; j < n; ++j) {
            const float bv = b_row[j];
            o0[j] += av0 * bv;
            o1[j] += av1 * bv;
            o2[j] += av2 * bv;
            o3[j] += av3 * bv;
          }
        }
      }
      for (; i < r1; ++i) {
        float* out_row = out.row(i).data();
        for (std::size_t p = p0; p < p1; ++p) {
          const float av = a.row(p).data()[i];
          const float* b_row = b.row(p).data();
          for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  });
}

void gemm_abt(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.cols(), "gemm_abt: inner dimension mismatch");
  check(out.rows() == a.rows() && out.cols() == b.rows(),
        "gemm_abt: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return;
  const std::size_t macs = m * k * n;
  if (macs >= kParallelMacs) {
    // Large multiplies: pack Bᵀ once — O(n·k) against O(m·n·k) compute —
    // so the inner loop walks contiguous memory and runs through the
    // vectorized ab kernel instead of n serial dot-product reductions.
    Matrix bt(k, n);
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j).data();
      for (std::size_t p = 0; p < k; ++p) bt.at(p, j) = b_row[p];
    }
    gemm_ab(a, bt, out);
    return;
  }
  const GemmReport report(macs, macs >= kParallelMacs);
  for_each_row_block(m, macs, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t j0 = 0; j0 < n; j0 += kJBlock) {
      const std::size_t j1 = std::min(n, j0 + kJBlock);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* a_row = a.row(i).data();
        float* out_row = out.row(i).data();
        // Four dot products at a time: each A element loaded is reused
        // across four independent reduction chains, which also breaks
        // the serial-accumulation latency bound of a lone dot product.
        std::size_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const float* b0 = b.row(j).data();
          const float* b1 = b.row(j + 1).data();
          const float* b2 = b.row(j + 2).data();
          const float* b3 = b.row(j + 3).data();
          float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
          for (std::size_t p = 0; p < k; ++p) {
            const float av = a_row[p];
            acc0 += av * b0[p];
            acc1 += av * b1[p];
            acc2 += av * b2[p];
            acc3 += av * b3[p];
          }
          out_row[j] = acc0;
          out_row[j + 1] = acc1;
          out_row[j + 2] = acc2;
          out_row[j + 3] = acc3;
        }
        for (; j < j1; ++j) {
          const float* b_row = b.row(j).data();
          float acc = 0.0f;
          for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
          out_row[j] = acc;
        }
      }
    }
  });
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  check(bias.size() == m.cols(), "add_row_bias: bias length mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r).data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void col_sum(const Matrix& m, std::span<float> out) {
  check(out.size() == m.cols(), "col_sum: output length mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r).data();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float total = 0.0f;
    for (float& x : row) {
      x = std::exp(x - mx);
      total += x;
    }
    for (float& x : row) x /= total;
  }
}

std::vector<std::size_t> argmax_rows(const Matrix& m) {
  std::vector<std::size_t> out(m.rows());
  argmax_rows_into(m, out);
  return out;
}

void argmax_rows_into(const Matrix& m, std::span<std::size_t> out) {
  check(out.size() == m.rows(), "argmax_rows_into: output length mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

float dot(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "dot: length mismatch");
  // Accumulate in double: parameter vectors reach ~10^5 entries and the
  // cosine-similarity baselines (FoolsGold) are sensitive to cancellation.
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return static_cast<float>(std::sqrt(acc));
}

float l2_distance(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "l2_distance: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const float na = l2_norm(a), nb = l2_norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

std::vector<float> subtract(std::span<const float> a,
                            std::span<const float> b) {
  check(a.size() == b.size(), "subtract: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "add: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> lerp(std::span<const float> a, std::span<const float> b,
                        float t) {
  check(a.size() == b.size(), "lerp: length mismatch");
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0f - t) * a[i] + t * b[i];
  }
  return out;
}

}  // namespace baffle

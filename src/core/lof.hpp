#pragma once
// Local Outlier Factor (Breunig et al., SIGMOD 2000).
//
// LOF_k(x; N) compares the local reachability density of x against that
// of its k nearest neighbors within the reference set N:
//   k-dist(p)        — distance from p to its k-th nearest neighbor
//   reach-dist(a,b)  — max(k-dist(b), d(a, b))
//   lrd(p)           — 1 / mean reach-dist from p to its k-NN
//   LOF(x)           — mean_{b ∈ kNN(x)} lrd(b) / lrd(x)
// LOF ≈ 1 for points inside a cluster; LOF >> 1 flags outliers. The
// reference points' own densities are computed *within N* (leave-self-
// out), matching the original definition.
//
// Reference sets here are tiny (ℓ ≤ 30 variation points), so exact
// O(n²) neighbor search is the right tool.

#include <cstddef>
#include <span>
#include <vector>

#include "core/error_variation.hpp"
#include "util/contracts.hpp"

namespace baffle {

/// LOF of `query` with respect to `reference` (which must not contain
/// `query` itself). k is clamped to |reference| − 1 ≥ 1; throws if the
/// reference set has fewer than 2 points. Duplicate/degenerate points
/// are handled by an epsilon floor on densities (LOF of a point that
/// coincides with its neighbors is 1).
double lof_score(const VariationPoint& query,
                 std::span<const VariationPoint> reference, std::size_t k);

/// Pairwise-distance window for incremental LOF across rounds. The
/// validator owns one per look-back window: when the window shifts by
/// one model, only the new point's row of distances is computed (O(ℓ))
/// and the retained (ℓ−1)² entries are carried over, instead of every
/// lof_score call redoing the full O(ℓ²) pairwise pass.
///
/// Alongside the matrix it keeps, per point j, the other points' indices
/// sorted by (distance to j, index) — the exact neighbor order the
/// pair-sort in lof_score produces — so windowed scoring can slice any
/// leave-one-out neighborhood without re-sorting distances per call.
class LofWindow {
 public:
  std::size_t size() const { return m_; }
  double dist(std::size_t i, std::size_t j) const {
    BAFFLE_DCHECK_BOUNDS(i, m_);
    BAFFLE_DCHECK_BOUNDS(j, m_);
    return dists_[i * m_ + j];
  }
  /// Distances from point i to every point (entry i is 0).
  std::span<const double> row(std::size_t i) const {
    BAFFLE_DCHECK_BOUNDS(i, m_);
    return {dists_.data() + i * m_, m_};
  }
  /// Indices ≠ j sorted by (dist(j, ·), index) — nearest first.
  std::span<const std::size_t> order(std::size_t j) const {
    BAFFLE_DCHECK_BOUNDS(j, m_);
    return m_ <= 1 ? std::span<const std::size_t>{}
                   : std::span<const std::size_t>{
                         orders_.data() + j * (m_ - 1), m_ - 1};
  }

  /// Installs an m×m distance matrix (row-major, symmetric, zero
  /// diagonal) and rebuilds the per-point neighbor orders.
  void assign(std::vector<double> dists, std::size_t m);

 private:
  std::size_t m_ = 0;
  std::vector<double> dists_;         // m × m
  std::vector<std::size_t> orders_;   // m × (m−1)
};

/// LOF evaluated against the points of `window`, bit-identical to the
/// equivalent lof_score call (same neighbor tie-breaking, clamping,
/// epsilon floor and summation order) but with all pairwise distances
/// read from the window instead of recomputed.
///
/// `query_row` holds the query's distance to every window point. When
/// `leave_out < window.size()`, the query *is* window point `leave_out`
/// (pass `window.row(leave_out)`) and that point is excluded from the
/// reference set — the τ leave-one-out case; pass SIZE_MAX to score an
/// external candidate against the full window.
double lof_score_windowed(const LofWindow& window,
                          std::span<const double> query_row,
                          std::size_t leave_out, std::size_t k);

}  // namespace baffle

#pragma once
// Local Outlier Factor (Breunig et al., SIGMOD 2000).
//
// LOF_k(x; N) compares the local reachability density of x against that
// of its k nearest neighbors within the reference set N:
//   k-dist(p)        — distance from p to its k-th nearest neighbor
//   reach-dist(a,b)  — max(k-dist(b), d(a, b))
//   lrd(p)           — 1 / mean reach-dist from p to its k-NN
//   LOF(x)           — mean_{b ∈ kNN(x)} lrd(b) / lrd(x)
// LOF ≈ 1 for points inside a cluster; LOF >> 1 flags outliers. The
// reference points' own densities are computed *within N* (leave-self-
// out), matching the original definition.
//
// Reference sets here are tiny (ℓ ≤ 30 variation points), so exact
// O(n²) neighbor search is the right tool.

#include <span>
#include <vector>

#include "core/error_variation.hpp"

namespace baffle {

/// LOF of `query` with respect to `reference` (which must not contain
/// `query` itself). k is clamped to |reference| − 1 ≥ 1; throws if the
/// reference set has fewer than 2 points. Duplicate/degenerate points
/// are handled by an epsilon floor on densities (LOF of a point that
/// coincides with its neighbors is 1).
double lof_score(const VariationPoint& query,
                 std::span<const VariationPoint> reference, std::size_t k);

}  // namespace baffle

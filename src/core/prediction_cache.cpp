#include "core/prediction_cache.hpp"

namespace baffle {

const ConfusionMatrix* PredictionCache::find(std::uint64_t version) const {
  const auto it = entries_.find(version);
  return it == entries_.end() ? nullptr : &it->second;
}

void PredictionCache::insert(std::uint64_t version, ConfusionMatrix cm) {
  if (entries_.size() >= max_entries_) {
    // Versions grow monotonically and the window only looks back ℓ+1
    // models, so evicting the smallest version is an exact LRU here.
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first < oldest->first) oldest = it;
    }
    entries_.erase(oldest);
  }
  entries_.insert_or_assign(version, std::move(cm));
}

}  // namespace baffle

#include "core/prediction_cache.hpp"

namespace baffle {

const ConfusionMatrix* PredictionCache::find(std::uint64_t version) const {
  const auto it = entries_.find(version);
  return it == entries_.end() ? nullptr : &it->second;
}

void PredictionCache::insert(std::uint64_t version, ConfusionMatrix cm) {
  if (entries_.size() >= max_entries_ && !entries_.contains(version)) {
    // entries_ is version-ordered, so begin() is the smallest version —
    // an exact LRU eviction (the window only ever looks back ℓ+1
    // monotonically growing versions) without the old O(n) min-scan.
    entries_.erase(entries_.begin());
  }
  entries_.insert_or_assign(version, std::move(cm));
}

void PredictionCache::insert_missed(std::uint64_t version,
                                    ConfusionMatrix cm) {
  ++misses_;
  MetricsRegistry::global().add_counter("prediction_cache.misses");
  insert(version, std::move(cm));
}

void PredictionCache::promote(std::uint64_t version, ConfusionMatrix cm) {
  ++promotions_;
  MetricsRegistry::global().add_counter("prediction_cache.promotions");
  insert(version, std::move(cm));
}

}  // namespace baffle

#pragma once
// BaffleDefense — top-level orchestrator tying Algorithm 1 + Algorithm 2
// into the FL round loop. This is the public entry point of the library:
//
//   BaffleDefense defense(arch, config, server_holdout);
//   ...
//   auto proposal = server.propose_round(provider, rng);
//   auto decision = defense.evaluate(proposal.candidate_params,
//                                    proposal.contributors, clients,
//                                    malicious_ids, strategy);
//   if (decision.reject) { server.discard(proposal);
//                          defense.on_reject(); }
//   else { server.commit(proposal);
//          defense.on_commit(server.version(),
//                            proposal.candidate_params); }
//
// Client validators persist across rounds so their per-model confusion
// matrices are cached; validation of the n validators runs on the global
// thread pool (each validator is an independent object).

#include <map>
#include <optional>

#include "core/feedback_loop.hpp"

namespace baffle {

class BaffleDefense {
 public:
  /// `server_holdout` may be empty for the BAFFLE-C configuration; it is
  /// required for BAFFLE-S and BAFFLE.
  BaffleDefense(MlpConfig arch, FeedbackConfig config,
                Dataset server_holdout);

  /// Records an accepted global model into the history and notifies
  /// every materialized validator (notify_commit), promoting pending
  /// candidate evaluations into the per-validator prediction caches.
  void on_commit(std::uint64_t version, ParamVec params);

  /// Records a rejected round: validators drop the candidate state they
  /// held for promotion (the model was rolled back, its evaluation must
  /// never be attributed to a committed version).
  void on_reject();

  /// True once the history holds enough models for validators to score
  /// (min_variations + 1).
  bool ready() const;

  /// Runs the feedback loop for one proposed model. `validating_ids`
  /// index into `clients`; ids in `malicious_ids` vote per `strategy`
  /// instead of honestly. Clients with empty shards abstain (vote 0).
  FeedbackDecision evaluate(
      const ParamVec& candidate,
      const std::vector<std::size_t>& validating_ids,
      const std::vector<FlClient>& clients,
      const std::unordered_set<std::size_t>& malicious_ids,
      VoteStrategy strategy);

  /// The ℓ+1-model window validators receive this round (zero-copy:
  /// entries alias the stored history snapshots).
  ModelWindow current_window() const;

  const ModelHistory& history() const { return history_; }
  const FeedbackConfig& config() const { return config_; }

  /// Per-client validator accessor (creates it on first use). Returns
  /// nullptr for clients with empty shards.
  Validator* client_validator(std::size_t id,
                              const std::vector<FlClient>& clients);

  Validator* server_validator();

 private:
  MlpConfig arch_;
  FeedbackConfig config_;
  ModelHistory history_;
  std::map<std::size_t, Validator> client_validators_;
  std::optional<Validator> server_validator_;
};

}  // namespace baffle

#include "core/validate.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace baffle {

const char* validation_method_name(ValidationMethod method) {
  switch (method) {
    case ValidationMethod::kErrorVariationLof: return "error-variation+LOF";
    case ValidationMethod::kGlobalAccuracyZScore: return "global-accuracy";
    case ValidationMethod::kVariationNormZScore: return "variation+zscore";
  }
  return "?";
}

std::size_t lof_k_for_lookback(std::size_t lookback) {
  return (lookback + 1) / 2;  // ⌈ℓ/2⌉
}

std::size_t tau_window_for_lookback(std::size_t lookback) {
  return lookback / 4;  // ⌊ℓ/4⌋
}

Validator::Validator(Dataset data, MlpConfig arch, ValidatorConfig config)
    : data_(std::move(data)), config_(config), scratch_model_(arch) {
  BAFFLE_CHECK(config.lookback >= 2,
               "look-back window must cover at least 2 accepted models");
  BAFFLE_CHECK(config.min_variations >= 1,
               "abstention threshold must require at least one variation");
  BAFFLE_CHECK(!data_.empty(), "validator needs a non-empty dataset");
}

ConfusionMatrix Validator::evaluate_params(const ParamVec& params) {
  scratch_model_.set_parameters(params);
  return evaluate_confusion(scratch_model_, data_, eval_ws_);
}

const ConfusionMatrix& Validator::evaluate_history(
    const GlobalModel& snapshot) {
  return cache_.get_or_eval(snapshot.version, [&] {
    return evaluate_params(snapshot.params);
  });
}

namespace {

/// z-score with a degenerate-spread guard: when the history statistic
/// barely moves, any visible jump is an outlier.
double guarded_zscore(double value, std::span<const double> history_values) {
  const double m = mean(history_values);
  const double s = stddev(history_values);
  const double floor = 1e-4;
  return (value - m) / std::max(s, floor);
}

}  // namespace

ValidationOutcome Validator::validate(const ParamVec& candidate,
                                      std::span<const GlobalModel> history) {
  const ScopedTimer timer("validator.validate");
  MetricsRegistry::global().add_counter("validator.validations");
  ValidationOutcome outcome;

  // Variation points between consecutive accepted models. A history of
  // m models yields m-1 points; with the full ℓ+1 window that is ℓ.
  std::vector<VariationPoint> variations;
  if (history.size() >= 2) {
    variations.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
      variations.push_back(error_variation(evaluate_history(history[i - 1]),
                                           evaluate_history(history[i])));
    }
  }

  if (variations.size() < config_.min_variations) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }

  if (config_.method == ValidationMethod::kGlobalAccuracyZScore) {
    // Ablation A1: ignore class structure entirely; look only at the
    // round-to-round change in overall accuracy.
    std::vector<double> deltas;
    deltas.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
      deltas.push_back(evaluate_history(history[i]).accuracy() -
                       evaluate_history(history[i - 1]).accuracy());
    }
    const double candidate_delta =
        evaluate_params(candidate).accuracy() -
        evaluate_history(history.back()).accuracy();
    // An anomalous accuracy *drop* is the poisoning signal.
    outcome.phi = -guarded_zscore(candidate_delta, deltas);
    outcome.tau = config_.zscore_threshold;
    outcome.vote = outcome.phi > outcome.tau ? 1 : 0;
    return outcome;
  }

  if (config_.method == ValidationMethod::kVariationNormZScore) {
    // Ablation A2: per-class variation points, but a global z-score on
    // the point's norm instead of the local-density LOF test.
    const VariationPoint origin(variations.front().size(), 0.0);
    std::vector<double> norms;
    norms.reserve(variations.size());
    for (const auto& v : variations) {
      norms.push_back(variation_distance(v, origin));
    }
    const VariationPoint candidate_point = error_variation(
        evaluate_history(history.back()), evaluate_params(candidate));
    outcome.phi =
        guarded_zscore(variation_distance(candidate_point, origin), norms);
    outcome.tau = config_.zscore_threshold;
    outcome.vote = outcome.phi > outcome.tau ? 1 : 0;
    return outcome;
  }

  const std::size_t ell = variations.size();  // effective look-back
  BAFFLE_DCHECK(ell <= config_.lookback,
                "a window of m models yields at most l variation points");
  const std::size_t k = lof_k_for_lookback(ell);
  BAFFLE_DCHECK(k == (ell + 1) / 2, "Algorithm 2 fixes k = ceil(l/2)");
  const std::size_t tau_window =
      std::max<std::size_t>(1, tau_window_for_lookback(ell));
  BAFFLE_DCHECK(tau_window <= ell,
                "tau is calibrated on trusted points inside the window");

  // Candidate's variation point v_{ℓ+1} = v(𝒢^ℓ, G, D).
  const ConfusionMatrix candidate_cm = evaluate_params(candidate);
  const VariationPoint candidate_point =
      error_variation(evaluate_history(history.back()), candidate_cm);
  BAFFLE_DCHECK(candidate_point.size() == variations.front().size(),
                "candidate and history variation points must share a dim");

  // τ = mean LOF of the last ⌊ℓ/4⌋ trusted points. Each is scored
  // leave-one-out against the remaining ℓ−1 variations so its reference
  // set matches the candidate's (scored against all ℓ): the paper's
  // listing scores trusted points only against their predecessors, but
  // that shrinks their reference sets relative to the candidate's and
  // biases τ low (inflating false positives).
  double tau_sum = 0.0;
  std::size_t tau_count = 0;
  std::vector<VariationPoint> rest;
  rest.reserve(ell - 1);
  for (std::size_t i = ell - tau_window; i < ell; ++i) {
    rest.clear();
    for (std::size_t j = 0; j < ell; ++j) {
      if (j != i) rest.push_back(variations[j]);
    }
    if (rest.size() < 2) continue;
    tau_sum += lof_score(variations[i], rest, k);
    ++tau_count;
  }
  if (tau_count == 0) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }
  outcome.tau = tau_sum / static_cast<double>(tau_count);

  outcome.phi = lof_score(candidate_point, variations, k);
  outcome.vote =
      outcome.phi > config_.tau_margin * outcome.tau ? 1 : 0;
  return outcome;
}

}  // namespace baffle

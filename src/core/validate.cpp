#include "core/validate.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace baffle {

const char* validation_method_name(ValidationMethod method) {
  switch (method) {
    case ValidationMethod::kErrorVariationLof: return "error-variation+LOF";
    case ValidationMethod::kGlobalAccuracyZScore: return "global-accuracy";
    case ValidationMethod::kVariationNormZScore: return "variation+zscore";
  }
  return "?";
}

std::size_t lof_k_for_lookback(std::size_t lookback) {
  return (lookback + 1) / 2;  // ⌈ℓ/2⌉
}

std::size_t tau_window_for_lookback(std::size_t lookback) {
  return lookback / 4;  // ⌊ℓ/4⌋
}

Validator::Validator(Dataset data, MlpConfig arch, ValidatorConfig config)
    : data_(std::move(data)), config_(config), engine_(std::move(arch)) {
  BAFFLE_CHECK(config.lookback >= 2,
               "look-back window must cover at least 2 accepted models");
  BAFFLE_CHECK(config.min_variations >= 1,
               "abstention threshold must require at least one variation");
  BAFFLE_CHECK(!data_.empty(), "validator needs a non-empty dataset");
  engine_.bind(data_.features());
  eval_ws_.precision = config_.eval_precision;
  // The serial workspace backs evaluate_params, which runs under mu_:
  // it must never wait on the pool (see the lock-scope header comment).
  eval_ws_.parallel = false;
  batch_ws_.precision = config_.eval_precision;
  batch_ws_.parallel = config_.parallel_eval;
}

// Move transfers the state wholesale without touching either lock:
// moves happen only in single-threaded setup, before any concurrent use
// (class contract above), so there is no capability to hold and the
// `validating_` flag of a moved-from validator is necessarily clear.
Validator::Validator(Validator&& other) noexcept
    BAFFLE_NO_THREAD_SAFETY_ANALYSIS
    : data_(std::move(other.data_)),
      config_(other.config_),
      cache_(std::move(other.cache_)),
      pending_(std::move(other.pending_)),
      prev_candidate_(std::move(other.prev_candidate_)),
      preds_scratch_(std::move(other.preds_scratch_)),
      eval_ws_(std::move(other.eval_ws_)),
      engine_(std::move(other.engine_)),
      batch_ws_(std::move(other.batch_ws_)),
      batch_preds_(std::move(other.batch_preds_)),
      batch_models_(std::move(other.batch_models_)),
      window_keys_(std::move(other.window_keys_)),
      window_points_(std::move(other.window_points_)),
      lof_window_(std::move(other.lof_window_)),
      window_tau_(other.window_tau_),
      window_tau_count_(other.window_tau_count_),
      candidate_row_(std::move(other.candidate_row_)) {}

Validator& Validator::operator=(Validator&& other) noexcept
    BAFFLE_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) return *this;
  data_ = std::move(other.data_);
  config_ = other.config_;
  engine_ = std::move(other.engine_);
  eval_ws_ = std::move(other.eval_ws_);
  cache_ = std::move(other.cache_);
  pending_ = std::move(other.pending_);
  prev_candidate_ = std::move(other.prev_candidate_);
  preds_scratch_ = std::move(other.preds_scratch_);
  batch_ws_ = std::move(other.batch_ws_);
  batch_preds_ = std::move(other.batch_preds_);
  batch_models_ = std::move(other.batch_models_);
  window_keys_ = std::move(other.window_keys_);
  window_points_ = std::move(other.window_points_);
  lof_window_ = std::move(other.lof_window_);
  window_tau_ = other.window_tau_;
  window_tau_count_ = other.window_tau_count_;
  candidate_row_ = std::move(other.candidate_row_);
  return *this;
}

ConfusionMatrix Validator::confusion_from_preds(
    std::span<const std::size_t> preds) const {
  ConfusionMatrix cm(data_.num_classes());
  const auto& labels = data_.labels();
  for (std::size_t i = 0; i < preds.size(); ++i) {
    cm.record(labels[i], static_cast<int>(preds[i]));
  }
  return cm;
}

ConfusionMatrix Validator::evaluate_params(const ParamVec& params) {
  MetricsRegistry::global().add_counter("validator.model_materializations");
  preds_scratch_.resize(data_.size());
  engine_.predict_into(params, preds_scratch_, eval_ws_);
  return confusion_from_preds(preds_scratch_);
}

const ConfusionMatrix& Validator::evaluate_history(
    const HistoryRef& snapshot) {
  return cache_.get_or_eval(snapshot.version, [&] {
    return evaluate_params(*snapshot.params);
  });
}

void Validator::stash_pending(const ParamVec& candidate,
                              const ConfusionMatrix& cm) {
  if (!config_.incremental) return;
  pending_.emplace(PendingCandidate{candidate, cm});
}

void Validator::notify_commit(std::uint64_t version,
                              const ParamVec& committed) {
  MutexLock lock(mu_);
  // Promotion must be exact: only when the committed parameters are
  // bit-equal to the candidate scored last is its confusion matrix
  // valid under the new version (deterministic inference ⇒ identical
  // predictions ⇒ identical matrix).
  if (pending_ && pending_->params == committed) {
    cache_.promote(version, std::move(pending_->cm));
    MetricsRegistry::global().add_counter("validator.candidate_reuse");
  }
  pending_.reset();
}

void Validator::notify_reject() {
  MutexLock lock(mu_);
  // The pending confusion matrix is no longer promotable, but it is
  // still the exact evaluation of those parameters: keep it as the
  // repeat-candidate memo for a replayed submission.
  if (pending_) prev_candidate_ = std::move(pending_);
  pending_.reset();
}

namespace {

/// z-score with a degenerate-spread guard: when the history statistic
/// barely moves, any visible jump is an outlier. A non-finite sample
/// spread (e.g. NaN from a degenerate history) also falls back to the
/// floor instead of propagating through std::max.
double guarded_zscore(double value, std::span<const double> history_values) {
  const double m = mean(history_values);
  const double s = stddev(history_values);
  const double floor = 1e-4;
  const double spread = std::isfinite(s) ? std::max(s, floor) : floor;
  return (value - m) / spread;
}

}  // namespace

ValidationOutcome Validator::validate(const ParamVec& candidate,
                                      std::span<const GlobalModel> history) {
  std::vector<HistoryRef> refs;
  refs.reserve(history.size());
  for (const auto& h : history) refs.push_back({h.version, &h.params});
  return validate_refs(candidate, refs);
}

ValidationOutcome Validator::validate(const ParamVec& candidate,
                                      const ModelWindow& history) {
  std::vector<HistoryRef> refs;
  refs.reserve(history.size());
  for (const auto& h : history) refs.push_back({h->version, &h->params});
  return validate_refs(candidate, refs);
}

ValidationOutcome Validator::validate_refs(
    const ParamVec& candidate, std::span<const HistoryRef> history) {
  // Runtime enforcement of the external-serialization contract on the
  // unguarded engine-phase state: a second validate() overlapping this
  // one would share batch_preds_/batch_models_, which no lock protects
  // by design. Every current caller runs one validate per validator at
  // a time (per-validator fan-out, per-actor ownership).
  BAFFLE_CHECK(!validating_.exchange(true, std::memory_order_acquire),
               "concurrent validate() calls on one Validator");
  struct ClearFlag {
    std::atomic<bool>& flag;
    ~ClearFlag() { flag.store(false, std::memory_order_release); }
  } clear_flag{validating_};

  const ScopedTimer timer("validator.validate");
  MetricsRegistry::global().add_counter("validator.validations");

  // Phase 1 (locked): decide what this round must evaluate.
  EvalPlan plan;
  {
    MutexLock lock(mu_);
    plan = plan_round(candidate, history);
  }

  // Phase 2 (UNLOCKED): the only expensive step — one batched engine
  // pass, free to fan out across the pool without holding mu_.
  std::vector<ConfusionMatrix> missed_cms;
  run_plan(candidate, history, plan, missed_cms);

  // Phase 3 (locked): deposit and score against a fully-cached window.
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < plan.missed.size(); ++i) {
    cache_.insert_missed(history[plan.missed[i]].version,
                         std::move(missed_cms[i]));
  }
  return score_round(candidate, history, plan);
}

Validator::EvalPlan Validator::plan_round(
    const ParamVec& candidate, std::span<const HistoryRef> history) {
  // A new round supersedes the previous candidate: whatever was pending
  // becomes the repeat-candidate memo (the commit/reject notification
  // evidently never arrived — e.g. pure-evaluation callers).
  if (pending_) prev_candidate_ = std::move(pending_);
  pending_.reset();

  EvalPlan plan;
  // A lone history model yields no variation points, so nothing reads
  // its confusion matrix this round — don't evaluate it (matches the
  // sequential implementation's laziness and its counter trail).
  if (history.size() >= 2) {
    plan.missed.reserve(history.size());
    for (std::size_t i = 0; i < history.size(); ++i) {
      if (cache_.find(history[i].version) == nullptr) plan.missed.push_back(i);
    }
  }

  // The candidate is evaluated only on rounds that will actually score
  // it. This predicate mirrors the abstention check in score_round
  // (m history models ⇒ m−1 variation points, for every method): on an
  // abstaining round the history still gets evaluated — it feeds the
  // incremental window — but the candidate pass is skipped, exactly as
  // the sequential implementation skipped it.
  const std::size_t variations = history.size() < 2 ? 0 : history.size() - 1;
  plan.eval_candidate = variations >= config_.min_variations;

  // Repeat submissions (an adaptive attacker's self-check loop, or a
  // round replayed after a rejection) re-validate bit-identical
  // parameters; deterministic inference makes the previous confusion
  // matrix exact, so the forward pass is skipped entirely.
  if (plan.eval_candidate && prev_candidate_ &&
      prev_candidate_->params == candidate) {
    MetricsRegistry::global().add_counter("validator.candidate_cm_reuse");
    plan.candidate_cm = prev_candidate_->cm;
  }
  return plan;
}

void Validator::run_plan(const ParamVec& candidate,
                         std::span<const HistoryRef> history, EvalPlan& plan,
                         std::vector<ConfusionMatrix>& missed_cms) {
  const bool need_candidate = plan.eval_candidate && !plan.candidate_cm;
  const std::size_t evals = plan.missed.size() + (need_candidate ? 1 : 0);
  if (evals == 0) return;
  const std::size_t n = data_.size();
  batch_preds_.resize(evals * n);
  batch_models_.clear();
  batch_models_.reserve(evals);
  for (std::size_t i = 0; i < plan.missed.size(); ++i) {
    batch_models_.push_back(
        {*history[plan.missed[i]].params,
         std::span<std::size_t>(batch_preds_).subspan(i * n, n)});
  }
  if (need_candidate) {
    batch_models_.push_back(
        {candidate, std::span<std::size_t>(batch_preds_)
                        .subspan(plan.missed.size() * n, n)});
  }
  engine_.predict_many(batch_models_, batch_ws_);
  MetricsRegistry::global().add_counter("validator.model_materializations",
                                        evals);
  // "Batched" means the engine amortized packing across several history
  // models; a lone miss (steady-state rounds: at most the
  // candidate-turned-history model, and promotion usually covers even
  // that) is counted as a plain materialization only.
  if (plan.missed.size() >= 2) {
    MetricsRegistry::global().add_counter("validator.batched_evals",
                                          plan.missed.size());
  }
  missed_cms.reserve(plan.missed.size());
  for (std::size_t i = 0; i < plan.missed.size(); ++i) {
    missed_cms.push_back(confusion_from_preds(
        std::span<const std::size_t>(batch_preds_).subspan(i * n, n)));
  }
  if (need_candidate) {
    plan.candidate_cm = confusion_from_preds(
        std::span<const std::size_t>(batch_preds_)
            .subspan(plan.missed.size() * n, n));
  }
}

void Validator::sync_window(std::span<const HistoryRef> history) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  if (history.size() >= 2) {
    keys.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
      keys.emplace_back(history[i - 1].version, history[i].version);
    }
  }
  // Unchanged window (repeat validation, or the previous round was
  // rejected and rolled back): every cached structure is still valid.
  if (keys == window_keys_) return;

  constexpr auto npos = static_cast<std::size_t>(-1);
  const std::size_t m = keys.size();

  // Index of each new key in the outgoing window. The steady-state
  // commit shifts the window by one (new i was old i+1); anything else
  // (warmup growth, lookback change) falls back to a scan.
  std::vector<std::size_t> old_index(m, npos);
  for (std::size_t i = 0; i < m; ++i) {
    if (i + 1 < window_keys_.size() && window_keys_[i + 1] == keys[i]) {
      old_index[i] = i + 1;
      continue;
    }
    for (std::size_t j = 0; j < window_keys_.size(); ++j) {
      if (window_keys_[j] == keys[i]) {
        old_index[i] = j;
        break;
      }
    }
  }

  // Variation points: reuse by key (each key appears at most once,
  // versions being strictly increasing, so moving out is safe), compute
  // only the genuinely new pairs — O(1) per round in steady state.
  std::vector<VariationPoint> points(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (old_index[i] != npos) {
      points[i] = std::move(window_points_[old_index[i]]);
    } else {
      points[i] = error_variation(evaluate_history(history[i]),
                                  evaluate_history(history[i + 1]));
    }
  }

  // Distance matrix: entries between two retained points carry over
  // (bit-identical — variation_distance is symmetric in IEEE floats);
  // only rows touching a new point are recomputed, O(ℓ) distances per
  // round instead of the O(ℓ²·⌊ℓ/4⌋) the fresh LOF calls redo.
  std::vector<double> dists(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double d =
          (old_index[i] != npos && old_index[j] != npos)
              ? lof_window_.dist(old_index[i], old_index[j])
              : variation_distance(points[i], points[j]);
      dists[i * m + j] = d;
      dists[j * m + i] = d;
    }
  }

  window_keys_ = std::move(keys);
  window_points_ = std::move(points);
  lof_window_.assign(std::move(dists), m);

  // τ = mean leave-one-out LOF of the last ⌊ℓ/4⌋ trusted points. It
  // depends only on the window, so it is computed once per window here
  // and reused for every candidate scored against it.
  window_tau_ = 0.0;
  window_tau_count_ = 0;
  if (m >= config_.min_variations && m >= 1) {
    const std::size_t k = lof_k_for_lookback(m);
    const std::size_t tau_window =
        std::max<std::size_t>(1, tau_window_for_lookback(m));
    double tau_sum = 0.0;
    for (std::size_t i = m - tau_window; i < m; ++i) {
      if (m - 1 < 2) continue;  // mirrors lof_score's 2-point minimum
      tau_sum += lof_score_windowed(lof_window_, lof_window_.row(i), i, k);
      ++window_tau_count_;
    }
    if (window_tau_count_ > 0) {
      window_tau_ = tau_sum / static_cast<double>(window_tau_count_);
    }
  }
}

ValidationOutcome Validator::validate_lof_incremental(
    const ParamVec& candidate, std::span<const HistoryRef> history,
    EvalPlan& plan) {
  ValidationOutcome outcome;
  sync_window(history);

  const std::size_t ell = window_points_.size();  // effective look-back
  if (ell < config_.min_variations) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }
  BAFFLE_DCHECK(ell <= config_.lookback,
                "a window of m models yields at most l variation points");
  const std::size_t k = lof_k_for_lookback(ell);
  BAFFLE_DCHECK(k == (ell + 1) / 2, "Algorithm 2 fixes k = ceil(l/2)");

  // Candidate's variation point v_{ℓ+1} = v(𝒢^ℓ, G, D); its confusion
  // matrix was produced by the plan's engine pass (or the repeat memo).
  BAFFLE_CHECK(plan.candidate_cm.has_value(),
               "scored round requires a planned candidate evaluation");
  const ConfusionMatrix& candidate_cm = *plan.candidate_cm;
  const VariationPoint candidate_point =
      error_variation(evaluate_history(history.back()), candidate_cm);
  BAFFLE_DCHECK(candidate_point.size() == window_points_.front().size(),
                "candidate and history variation points must share a dim");
  stash_pending(candidate, candidate_cm);

  if (window_tau_count_ == 0) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }
  outcome.tau = window_tau_;

  candidate_row_.resize(ell);
  variation_distances(candidate_point, window_points_, candidate_row_);
  outcome.phi =
      lof_score_windowed(lof_window_, candidate_row_,
                         /*leave_out=*/static_cast<std::size_t>(-1), k);
  outcome.vote =
      outcome.phi > config_.tau_margin * outcome.tau ? 1 : 0;
  return outcome;
}

ValidationOutcome Validator::score_round(
    const ParamVec& candidate, std::span<const HistoryRef> history,
    EvalPlan& plan) {
  if (config_.incremental &&
      config_.method == ValidationMethod::kErrorVariationLof) {
    return validate_lof_incremental(candidate, history, plan);
  }

  ValidationOutcome outcome;

  // Variation points between consecutive accepted models. A history of
  // m models yields m-1 points; with the full ℓ+1 window that is ℓ.
  // The evaluate_history calls below are cache hits by construction:
  // every miss was listed by plan_round and deposited before scoring.
  std::vector<VariationPoint> variations;
  if (history.size() >= 2) {
    variations.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
      variations.push_back(error_variation(evaluate_history(history[i - 1]),
                                           evaluate_history(history[i])));
    }
  }

  if (variations.size() < config_.min_variations) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }
  BAFFLE_CHECK(plan.candidate_cm.has_value(),
               "scored round requires a planned candidate evaluation");
  const ConfusionMatrix& candidate_cm = *plan.candidate_cm;

  if (config_.method == ValidationMethod::kGlobalAccuracyZScore) {
    // Ablation A1: ignore class structure entirely; look only at the
    // round-to-round change in overall accuracy.
    std::vector<double> deltas;
    deltas.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
      deltas.push_back(evaluate_history(history[i]).accuracy() -
                       evaluate_history(history[i - 1]).accuracy());
    }
    const double candidate_delta =
        candidate_cm.accuracy() - evaluate_history(history.back()).accuracy();
    stash_pending(candidate, candidate_cm);
    // An anomalous accuracy *drop* is the poisoning signal.
    outcome.phi = -guarded_zscore(candidate_delta, deltas);
    outcome.tau = config_.zscore_threshold;
    outcome.vote = outcome.phi > outcome.tau ? 1 : 0;
    return outcome;
  }

  if (config_.method == ValidationMethod::kVariationNormZScore) {
    // Ablation A2: per-class variation points, but a global z-score on
    // the point's norm instead of the local-density LOF test.
    const VariationPoint origin(variations.front().size(), 0.0);
    std::vector<double> norms;
    norms.reserve(variations.size());
    for (const auto& v : variations) {
      norms.push_back(variation_distance(v, origin));
    }
    const VariationPoint candidate_point =
        error_variation(evaluate_history(history.back()), candidate_cm);
    stash_pending(candidate, candidate_cm);
    outcome.phi =
        guarded_zscore(variation_distance(candidate_point, origin), norms);
    outcome.tau = config_.zscore_threshold;
    outcome.vote = outcome.phi > outcome.tau ? 1 : 0;
    return outcome;
  }

  const std::size_t ell = variations.size();  // effective look-back
  BAFFLE_DCHECK(ell <= config_.lookback,
                "a window of m models yields at most l variation points");
  const std::size_t k = lof_k_for_lookback(ell);
  BAFFLE_DCHECK(k == (ell + 1) / 2, "Algorithm 2 fixes k = ceil(l/2)");
  const std::size_t tau_window =
      std::max<std::size_t>(1, tau_window_for_lookback(ell));
  BAFFLE_DCHECK(tau_window <= ell,
                "tau is calibrated on trusted points inside the window");

  // Candidate's variation point v_{ℓ+1} = v(𝒢^ℓ, G, D).
  const VariationPoint candidate_point =
      error_variation(evaluate_history(history.back()), candidate_cm);
  BAFFLE_DCHECK(candidate_point.size() == variations.front().size(),
                "candidate and history variation points must share a dim");
  stash_pending(candidate, candidate_cm);

  // τ = mean LOF of the last ⌊ℓ/4⌋ trusted points. Each is scored
  // leave-one-out against the remaining ℓ−1 variations so its reference
  // set matches the candidate's (scored against all ℓ): the paper's
  // listing scores trusted points only against their predecessors, but
  // that shrinks their reference sets relative to the candidate's and
  // biases τ low (inflating false positives).
  double tau_sum = 0.0;
  std::size_t tau_count = 0;
  std::vector<VariationPoint> rest;
  rest.reserve(ell - 1);
  for (std::size_t i = ell - tau_window; i < ell; ++i) {
    rest.clear();
    for (std::size_t j = 0; j < ell; ++j) {
      if (j != i) rest.push_back(variations[j]);
    }
    if (rest.size() < 2) continue;
    tau_sum += lof_score(variations[i], rest, k);
    ++tau_count;
  }
  if (tau_count == 0) {
    outcome.abstained = true;
    outcome.vote = 0;
    return outcome;
  }
  outcome.tau = tau_sum / static_cast<double>(tau_count);

  outcome.phi = lof_score(candidate_point, variations, k);
  outcome.vote =
      outcome.phi > config_.tau_margin * outcome.tau ? 1 : 0;
  return outcome;
}

}  // namespace baffle
